"""Tests for the generalised cofactor (constrain) operator."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings

from repro.bdd import BddManager
from repro.bdd.manager import FALSE, TRUE
from repro.errors import BddError
from tests.strategies import DEFAULT_VARS, all_assignments, expressions


def build_two(e1, e2):
    mgr = BddManager()
    mgr.add_vars(DEFAULT_VARS)
    return mgr, e1.to_bdd(mgr), e2.to_bdd(mgr)


@given(expressions(), expressions())
@settings(max_examples=100, deadline=None)
def test_constrain_agrees_with_f_on_care_set(e1, e2) -> None:
    mgr, f, c = build_two(e1, e2)
    assume(c != FALSE)
    r = mgr.constrain(f, c)
    # The defining property: r ∧ c == f ∧ c.
    assert mgr.apply_and(r, c) == mgr.apply_and(f, c)


@given(expressions(), expressions())
@settings(max_examples=75, deadline=None)
def test_constrain_pointwise_on_care_set(e1, e2) -> None:
    mgr, f, c = build_two(e1, e2)
    assume(c != FALSE)
    r = mgr.constrain(f, c)
    for env in all_assignments(DEFAULT_VARS):
        if mgr.eval(c, env):
            assert mgr.eval(r, env) == mgr.eval(f, env)


@given(expressions())
@settings(max_examples=50, deadline=None)
def test_constrain_identities(e) -> None:
    mgr = BddManager()
    mgr.add_vars(DEFAULT_VARS)
    f = e.to_bdd(mgr)
    assert mgr.constrain(f, TRUE) == f
    if f != FALSE:
        assert mgr.constrain(f, f) == TRUE
    assert mgr.constrain(TRUE, f if f != FALSE else TRUE) == TRUE
    assert mgr.constrain(FALSE, f if f != FALSE else TRUE) == FALSE


def test_constrain_by_false_rejected() -> None:
    mgr = BddManager()
    a = mgr.add_var("a")
    with pytest.raises(BddError):
        mgr.constrain(mgr.var_node(a), FALSE)


def test_function_wrapper_constrain() -> None:
    from repro.bdd import Function

    mgr = BddManager()
    a, b = Function.vars(mgr, "a", "b")
    f = a ^ b
    r = f.constrain(a)
    assert (r & a) == (f & a)


def test_constrain_simplifies_on_cube_care_set() -> None:
    # Constraining by a cube is the ordinary cofactor.
    mgr = BddManager()
    a, b, c = mgr.add_vars(["a", "b", "c"])
    f = mgr.apply_or(
        mgr.apply_and(mgr.var_node(a), mgr.var_node(b)), mgr.var_node(c)
    )
    cube = mgr.cube({a: 1})
    assert mgr.constrain(f, cube) == mgr.restrict(f, a, 1)


@given(expressions(), expressions())
@settings(max_examples=50, deadline=None)
def test_constrain_can_be_used_in_image(e1, e2) -> None:
    # ∃x.(f ∧ c) == ∃x.(constrain(f, c) ∧ c): the image-computation use.
    mgr, f, c = build_two(e1, e2)
    assume(c != FALSE)
    variables = [mgr.var_index(n) for n in DEFAULT_VARS[:2]]
    lhs = mgr.and_exists(f, c, variables)
    rhs = mgr.and_exists(mgr.constrain(f, c), c, variables)
    assert lhs == rhs
