"""Sharded multi-process BDD runtime.

The paper's partitioned representations keep the per-component BDDs
small — but a single :class:`~repro.bdd.manager.BddManager` is
single-threaded, so partitioning alone buys memory locality and never
buys cores.  This package runs partition *clusters* in separate worker
processes, each owning its own shard manager (with its own computed
table, garbage collector and reorder policy), and joins the per-shard
results in the coordinator manager through serialized transfers
(:func:`repro.bdd.io.dump_nodes` / :func:`~repro.bdd.io.load_nodes`,
the packed-array wire format).

Layers
------

* :mod:`repro.shard.worker` — the child-process command loop: a shard
  manager plus a handle registry, served over a pipe.
* :mod:`repro.shard.pool` — :class:`ShardPool`, the coordinator-side
  handle to a set of persistent workers (spawn, submit/collect,
  broadcast, shutdown).
* :mod:`repro.shard.plan` — the join-tree scheduler:
  :func:`partition_clusters` assigns partition clusters to shards with
  the :mod:`repro.symb.schedule` affinity heuristic and computes which
  quantified variables are *local* to each shard (retired in-shard,
  sound by the early-quantification argument);
  :class:`ShardedImage` folds the transferred per-shard images back
  together in the coordinator.

``--shards 1`` everywhere selects the unsharded in-process path
bit-identically; ``--shards N`` (N ≥ 2) is result-identical by
construction (all transfers are exact and BDDs are canonical).  See
``docs/sharding.md`` for the architecture and when shards pay.
"""

from repro.shard.plan import ShardedImage, partition_clusters
from repro.shard.pool import ShardError, ShardPool

__all__ = [
    "ShardError",
    "ShardPool",
    "ShardedImage",
    "partition_clusters",
]
