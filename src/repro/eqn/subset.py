"""The modified subset construction (Section 3.2).

This driver realises the paper's key algorithmic point: given the
partitioned representations, *all* steps of Algorithm 1 — completion,
complementation, product, hiding — "are essentially embedded into a
modified determinization procedure".  The driver enumerates subset states
of the product ``F × complement(S)`` explicitly (each subset is a
characteristic-function BDD ψ over the product state variables) and asks
a :class:`TransitionOracle` for the outgoing structure of each subset:

* conforming ``(u,v)`` classes with their successor subsets (the
  cofactor classes of ``P'_ψ``),
* the completion condition routed to the accepting ``DCA`` state
  ("which are not contained in Q_ψ" and have no successor),
* non-conforming classes are either trimmed on the fly (``DCN``
  shortcut, footnote 9) or routed to explicit non-accepting subsets when
  the oracle runs with trimming disabled (the E6 ablation).

The partitioned and monolithic flows differ *only* in how their oracle
computes ``P_ψ`` and ``Q_ψ`` — which is exactly the paper's experimental
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.bdd.manager import FALSE, TRUE
from repro.errors import EquationError
from repro.automata.automaton import Automaton
from repro.eqn.problem import EquationProblem
from repro.util.limits import ResourceLimit


@dataclass
class SubsetEdge:
    """One outgoing (u,v)-class of a subset state."""

    cond: int  # BDD over the (u, v) letter variables
    successor: int  # ψ' BDD over the product cs variables
    accepting: bool = True  # False only in no-trim mode (DC1-containing)


class TransitionOracle(Protocol):
    """What the subset driver needs from a solver flow."""

    def initial(self) -> int:
        """Initial subset ψ0 (a cube over the product state variables)."""

    def is_accepting(self, psi: int) -> bool:
        """Whether a subset state is accepting in the final solution."""

    def expand(self, psi: int) -> tuple[list[SubsetEdge], int]:
        """Outgoing edges of ψ plus the DCA completion condition."""

    def live_roots(self) -> list[int]:
        """BDDs the oracle needs alive across garbage collections.

        Optional (checked with ``getattr``); oracles without it simply
        disable opportunistic garbage collection in the driver.
        """


@dataclass
class SubsetStats:
    """Instrumentation of one subset construction run."""

    subsets: int = 0
    edges: int = 0
    dca_edges: int = 0
    peak_nodes: int = 0
    extra: dict = field(default_factory=dict)


def subset_construct(
    oracle: TransitionOracle,
    problem: EquationProblem,
    *,
    limit: ResourceLimit | None = None,
) -> tuple[Automaton, SubsetStats]:
    """Run the modified subset construction and build the solution.

    Returns the most general prefix-closed solution automaton ``X`` over
    the ``(u, v)`` alphabet (with trimming, every subset state is
    accepting and ``DCA`` is the accepting completion state) plus run
    statistics.  With a no-trim oracle, non-accepting subset states are
    produced and must be removed by ``prefix_close`` afterwards.
    """
    mgr = problem.manager
    budget = limit if limit is not None else ResourceLimit.unlimited()
    aut = Automaton(mgr, tuple(problem.uv_names()))
    stats = SubsetStats()

    psi0 = oracle.initial()
    if psi0 == FALSE:
        raise EquationError("initial subset state is empty")
    ids: dict[int, int] = {}
    worklist: list[int] = []

    # Everything that must survive a kernel garbage collection is pinned
    # as it is created: the oracle's relation parts/plans, every subset ψ
    # (the keys of ``ids``) and every edge-label BDD stored in the growing
    # automaton.  With those roots held, the driver can let the manager
    # reclaim the per-expansion intermediates (P_ψ, Q_ψ, cofactor churn)
    # whenever its growth trigger arms — long runs stay bounded.  The
    # pins also license GC-triggered dynamic reordering (``--reorder
    # auto``): a sift fired after an unprofitable sweep rewrites the
    # state-variable levels in place, so ψ keys, edge labels and plans
    # all keep their edges; the letter block is fenced off by the
    # problem's reorder boundary, preserving the split_by_vars order
    # requirement mid-run.
    roots_fn = getattr(oracle, "live_roots", None)
    gc_enabled = roots_fn is not None
    if gc_enabled:
        for root in roots_fn():
            mgr.ref(root)

    def subset_id(psi: int, accepting: bool) -> int:
        sid = ids.get(psi)
        if sid is None:
            sid = aut.add_state(f"q{len(ids)}", accepting=accepting)
            ids[psi] = sid
            worklist.append(psi)
            stats.subsets += 1
            if gc_enabled:
                mgr.ref(psi)
        return sid

    subset_id(psi0, oracle.is_accepting(psi0))
    dca_id: int | None = None
    while worklist:
        budget.check_time()
        psi = worklist.pop()
        src = ids[psi]
        edges, dca_cond = oracle.expand(psi)
        for edge in edges:
            dst = subset_id(edge.successor, edge.accepting)
            aut.add_edge(src, dst, edge.cond)
            if gc_enabled and edge.cond != FALSE:
                # Pin the *stored* label: add_edge merges parallel edges
                # with OR, so the bucket value is what must stay alive.
                mgr.ref(aut.edges[src][dst])
            stats.edges += 1
        if dca_cond != FALSE:
            if dca_id is None:
                dca_id = aut.add_state("DCA", accepting=True)
                aut.add_edge(dca_id, dca_id, TRUE)
            aut.add_edge(src, dca_id, dca_cond)
            if gc_enabled:
                mgr.ref(aut.edges[src][dca_id])
            stats.dca_edges += 1
        stats.peak_nodes = max(stats.peak_nodes, len(mgr))
        if gc_enabled:
            mgr.maybe_collect_garbage()
    return aut, stats
