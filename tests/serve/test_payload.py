"""Result payloads: dump/load round-trips, including hypothesis sweeps.

The cache answers with what :func:`repro.serve.payload.load_result`
rebuilds, so these round-trips *are* the cache's correctness story:
every edge label must survive bit-for-bit (same minterms), the
structure must survive exactly (same states/edges/accepting/initial),
and a payload loaded into a fresh manager must behave like the
original automaton.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.automaton import Automaton
from repro.automata.kiss import write_kiss
from repro.bdd.manager import BddManager
from repro.bench import S27_BLIF
from repro.errors import ServeError
from repro.eqn.solver import solve_latch_split
from repro.network.blif import parse_blif
from repro.serve.payload import (
    PAYLOAD_FORMAT,
    dump_automaton,
    dump_result,
    load_automaton,
    load_result,
)
from tests.strategies import DEFAULT_VARS, bdd_minterms, expressions

VARS = list(DEFAULT_VARS)


def random_automaton(label_exprs, accepting_bits) -> Automaton:
    mgr = BddManager()
    mgr.add_vars(VARS)
    n = len(accepting_bits)
    aut = Automaton(mgr, tuple(VARS))
    for i, accepting in enumerate(accepting_bits):
        aut.add_state(f"q{i}", accepting=accepting)
    for idx, expr in enumerate(label_exprs):
        src, dst = idx % n, (idx * 7 + 1) % n
        aut.add_edge(src, dst, expr.to_bdd(mgr))
    return aut


class TestAutomatonRoundTrip:
    @given(
        exprs=st.lists(expressions(VARS, max_leaves=8), min_size=1, max_size=6),
        accepting=st.lists(st.booleans(), min_size=2, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_structure_and_labels_survive(self, exprs, accepting) -> None:
        aut = random_automaton(exprs, accepting)
        clone = load_automaton(dump_automaton(aut))  # fresh manager
        assert clone.state_names == aut.state_names
        assert clone.accepting == aut.accepting
        assert clone.initial == aut.initial
        assert [set(b) for b in clone.edges] == [set(b) for b in aut.edges]
        for src in range(aut.num_states):
            for dst, label in aut.edges[src].items():
                assert bdd_minterms(
                    clone.manager, clone.edges[src][dst], VARS
                ) == bdd_minterms(aut.manager, label, VARS)

    @given(
        exprs=st.lists(expressions(VARS, max_leaves=8), min_size=1, max_size=4),
        accepting=st.lists(st.booleans(), min_size=2, max_size=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_load_into_existing_manager(self, exprs, accepting) -> None:
        aut = random_automaton(exprs, accepting)
        target = BddManager()
        target.add_vars(["z9", *VARS])  # different order, extra variable
        clone = load_automaton(dump_automaton(aut), target)
        assert clone.manager is target
        for src in range(aut.num_states):
            for dst, label in aut.edges[src].items():
                assert bdd_minterms(
                    target, clone.edges[src][dst], VARS
                ) == bdd_minterms(aut.manager, label, VARS)


class TestResultRoundTrip:
    @pytest.fixture(scope="class")
    def result(self):
        return solve_latch_split(parse_blif(S27_BLIF), ["G6", "G7"])

    def test_round_trip_preserves_the_csf(self, result) -> None:
        payload = dump_result(result, cache_key="ab" * 32)
        assert payload["format"] == PAYLOAD_FORMAT
        decoded = load_result(payload)
        assert decoded["csf_states"] == result.csf_states
        assert write_kiss(decoded["csf"]) == write_kiss(result.csf)

    def test_stats_and_options_travel(self, result) -> None:
        decoded = load_result(dump_result(result, cache_key=None))
        assert decoded["stats"]["subsets"] == result.stats.subsets
        assert decoded["options"] == result.options
        assert decoded["method"] == result.method

    def test_unknown_format_is_rejected(self, result) -> None:
        payload = dump_result(result)
        payload["format"] = "repro-serve-result/999"
        with pytest.raises(ServeError, match="unknown result payload format"):
            load_result(payload)
