"""Quantification tests: exists / forall / and_exists identities."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BddManager
from tests.strategies import DEFAULT_VARS, all_assignments, expressions

var_subsets = st.sets(st.sampled_from(DEFAULT_VARS), min_size=1, max_size=3)


def build(expr):
    mgr = BddManager()
    mgr.add_vars(DEFAULT_VARS)
    return mgr, expr.to_bdd(mgr)


@given(expressions(), var_subsets)
@settings(max_examples=75, deadline=None)
def test_exists_matches_semantics(expr, names) -> None:
    mgr, node = build(expr)
    q = mgr.exists(node, [mgr.var_index(n) for n in names])
    free = [v for v in DEFAULT_VARS if v not in names]
    for env in all_assignments(free):
        want = any(
            expr.evaluate({**env, **dict(zip(sorted(names), bits))})
            for bits in all_bits(len(names))
        )
        got = mgr.eval(q, {**env, **{n: 0 for n in names}})
        assert got == want


@given(expressions(), var_subsets)
@settings(max_examples=75, deadline=None)
def test_forall_matches_semantics(expr, names) -> None:
    mgr, node = build(expr)
    q = mgr.forall(node, [mgr.var_index(n) for n in names])
    free = [v for v in DEFAULT_VARS if v not in names]
    for env in all_assignments(free):
        want = all(
            expr.evaluate({**env, **dict(zip(sorted(names), bits))})
            for bits in all_bits(len(names))
        )
        got = mgr.eval(q, {**env, **{n: 0 for n in names}})
        assert got == want


def all_bits(n: int):
    for i in range(1 << n):
        yield tuple((i >> k) & 1 for k in range(n))


@given(expressions(), expressions(), var_subsets)
@settings(max_examples=75, deadline=None)
def test_and_exists_equals_exists_of_and(e1, e2, names) -> None:
    mgr = BddManager()
    mgr.add_vars(DEFAULT_VARS)
    f, g = e1.to_bdd(mgr), e2.to_bdd(mgr)
    variables = [mgr.var_index(n) for n in names]
    fused = mgr.and_exists(f, g, variables)
    naive = mgr.exists(mgr.apply_and(f, g), variables)
    assert fused == naive


@given(expressions(), var_subsets)
@settings(max_examples=50, deadline=None)
def test_quantified_result_independent_of_quantified_vars(expr, names) -> None:
    mgr, node = build(expr)
    variables = [mgr.var_index(n) for n in names]
    for q in (mgr.exists(node, variables), mgr.forall(node, variables)):
        assert not (mgr.support(q) & set(variables))


@given(expressions())
@settings(max_examples=50, deadline=None)
def test_exists_of_nothing_is_identity(expr) -> None:
    mgr, node = build(expr)
    assert mgr.exists(node, []) == node
    assert mgr.and_exists(node, 1, []) == node


@given(expressions(), var_subsets, var_subsets)
@settings(max_examples=50, deadline=None)
def test_exists_is_idempotent_and_order_insensitive(expr, names1, names2) -> None:
    mgr, node = build(expr)
    v1 = [mgr.var_index(n) for n in names1]
    v2 = [mgr.var_index(n) for n in names2]
    both = mgr.exists(node, v1 + v2)
    sequential = mgr.exists(mgr.exists(node, v1), v2)
    assert both == sequential
    assert mgr.exists(both, v1) == both


def test_and_exists_early_termination_is_sound() -> None:
    # Regression guard: OR short-circuit inside and_exists must not skip
    # sibling branches when the first branch is TRUE.
    mgr = BddManager()
    a, b, c = mgr.add_vars(["a", "b", "c"])
    f = mgr.apply_or(mgr.var_node(a), mgr.var_node(b))
    g = mgr.apply_or(mgr.apply_not(mgr.var_node(a)), mgr.var_node(c))
    fused = mgr.and_exists(f, g, [a])
    naive = mgr.exists(mgr.apply_and(f, g), [a])
    # a=1 branch contributes c, a=0 branch contributes b.
    assert fused == naive == mgr.apply_or(mgr.var_node(b), mgr.var_node(c))
