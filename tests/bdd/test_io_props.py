"""Property tests for BDD (de)serialisation under a *dynamic* kernel.

The original dump/load coverage only exercised static managers; these
tests round-trip through :func:`dump_function`/:func:`load_function` and
the packed-array :func:`dump_nodes`/:func:`load_nodes` wire format while
the source manager garbage-collects and reorders *mid-run* — exactly the
life of a snapshot inside the sharded runtime, where either side may
sift or sweep between transfers.  Complement-edge-heavy functions (XOR
towers, negations) are the interesting cases: every dumped ref carries a
sign bit that must survive verbatim.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import (
    BddManager,
    dump_function,
    dump_nodes,
    load_function,
    load_nodes,
    sift,
)
from repro.errors import BddError
from tests.strategies import DEFAULT_VARS, all_assignments, expressions


def build(expr, *, order=None):
    mgr = BddManager()
    mgr.add_vars(order or DEFAULT_VARS)
    return mgr, expr.to_bdd(mgr)


def xor_tower(mgr):
    """A maximally complement-edge-heavy function (parity of all vars)."""
    f = 0
    for name in DEFAULT_VARS:
        f = mgr.apply_xor(f, mgr.var_node(mgr.var_index(name)))
    return f


@given(expressions(), st.permutations(list(DEFAULT_VARS)))
@settings(max_examples=40, deadline=None)
def test_dump_function_roundtrip_across_reorder(expr, dst_order) -> None:
    """Dump, sift the source in place, load into a differently-ordered
    manager: all three views must agree with the reference semantics."""
    mgr, node = build(expr)
    mgr.ref(node)
    data = dump_function(mgr, node)
    sift(mgr, [node])  # in-place reorder *after* the dump
    data_after = dump_function(mgr, node)
    dst = BddManager()
    dst.add_vars(dst_order)
    copy = load_function(dst, data)
    copy_after = load_function(dst, data_after)
    for env in all_assignments(DEFAULT_VARS):
        expected = expr.evaluate(env)
        assert mgr.eval(node, env) == expected
        assert dst.eval(copy, env) == expected
        assert dst.eval(copy_after, env) == expected


@given(expressions())
@settings(max_examples=40, deadline=None)
def test_dump_function_roundtrip_across_gc(expr) -> None:
    """A snapshot taken before a sweep loads identically after it, and a
    snapshot of the post-GC manager matches too."""
    mgr, node = build(expr)
    mgr.ref(node)
    data = dump_function(mgr, node)
    # Create garbage, then sweep it; node survives (pinned).
    for name in DEFAULT_VARS:
        mgr.apply_xor(node, mgr.var_node(mgr.var_index(name)))
    mgr.collect_garbage()
    dst = BddManager()
    dst.add_vars(DEFAULT_VARS)
    copy = load_function(dst, data)
    copy_post = load_function(dst, dump_function(mgr, node))
    assert copy == copy_post  # same manager, same function, same edge
    for env in all_assignments(DEFAULT_VARS):
        assert dst.eval(copy, env) == expr.evaluate(env)


@given(st.lists(expressions(), min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_dump_nodes_roundtrip_many_roots(exprs) -> None:
    """Packed snapshots preserve semantics and *sharing* for any root
    set, into a manager with a reversed order."""
    mgr = BddManager()
    mgr.add_vars(DEFAULT_VARS)
    roots = [e.to_bdd(mgr) for e in exprs]
    snap = dump_nodes(mgr, roots)
    dst = BddManager()
    dst.add_vars(list(reversed(DEFAULT_VARS)))
    copies = load_nodes(dst, snap)
    assert len(copies) == len(roots)
    for expr, copy in zip(exprs, copies):
        for env in all_assignments(DEFAULT_VARS):
            assert dst.eval(copy, env) == expr.evaluate(env)
    # Shared structure is stored once: node count ≤ the shared DAG size.
    assert len(snap["var"]) == mgr.size_many(roots)


@given(expressions())
@settings(max_examples=40, deadline=None)
def test_dump_nodes_preserves_complement_pairs(expr) -> None:
    """f and ¬f share all their nodes in the snapshot, and load back as
    exact complements (the sign bit survives the wire)."""
    mgr, node = build(expr)
    snap = dump_nodes(mgr, [node, node ^ 1])
    assert len(snap["var"]) == mgr.size(node)
    dst = BddManager()
    dst.add_vars(DEFAULT_VARS)
    copy, copy_neg = load_nodes(dst, snap)
    assert copy ^ copy_neg == 1


@given(expressions())
@settings(max_examples=30, deadline=None)
def test_dump_nodes_roundtrip_across_gc_and_reorder(expr) -> None:
    """Snapshots taken before and after a GC + in-place sift of the
    source load to the same edge in the destination."""
    mgr, node = build(expr)
    mgr.ref(node)
    before = dump_nodes(mgr, [node])
    for name in DEFAULT_VARS:  # garbage + complement churn
        mgr.apply_xor(node, mgr.nvar_node(mgr.var_index(name)))
    mgr.collect_garbage()
    sift(mgr, [node])
    after = dump_nodes(mgr, [node])
    dst = BddManager()
    dst.add_vars(DEFAULT_VARS)
    (a,) = load_nodes(dst, before)
    (b,) = load_nodes(dst, after)
    assert a == b


def test_dump_nodes_xor_tower_pickle_density() -> None:
    """The packed form must stay compact under pickle (the wire case)."""
    mgr = BddManager()
    mgr.add_vars(DEFAULT_VARS)
    f = xor_tower(mgr)
    snap = dump_nodes(mgr, [f])
    assert len(snap["var"]) == mgr.size(f)
    blob = pickle.dumps(snap)
    dst = BddManager()
    dst.add_vars(DEFAULT_VARS)
    (copy,) = load_nodes(dst, pickle.loads(blob))
    for env in all_assignments(DEFAULT_VARS):
        assert dst.eval(copy, env) == (sum(env.values()) % 2 == 1)


def test_dump_nodes_terminal_roots() -> None:
    mgr = BddManager()
    snap = dump_nodes(mgr, [0, 1])
    assert len(snap["var"]) == 0
    dst = BddManager()
    assert load_nodes(dst, snap) == [0, 1]


def test_load_nodes_rejects_unknown_format() -> None:
    dst = BddManager()
    with pytest.raises(BddError):
        load_nodes(dst, {"format": "bogus/9"})


def test_dump_nodes_deep_chain_no_recursion() -> None:
    """Snapshotting must survive BDDs deeper than the recursion limit."""
    mgr = BddManager(apply_core="iterative")
    vs = mgr.add_vars([f"x{i}" for i in range(3000)])
    f = 1
    for v in reversed(vs):
        f = mgr.apply_and(mgr.var_node(v), f)
    snap = dump_nodes(mgr, [f])
    assert len(snap["var"]) == 3000
    dst = BddManager(apply_core="iterative")
    dst.add_vars([f"x{i}" for i in range(3000)])
    (copy,) = load_nodes(dst, snap)
    assert dst.size(copy) == 3000
