"""Benchmark circuits and the Table 1 experiment suite."""

from repro.bench import circuits
from repro.bench.iscas import S27_BLIF, figure3_network, s27

__all__ = ["S27_BLIF", "circuits", "figure3_network", "s27"]
