"""Network surgery: latch splitting and recomposition (Section 4).

The paper's benchmark generator is *latch splitting*: "a syntactic
transformation of a sequential circuit into two circuits, one containing
a subset of the latches of the original circuit and the other containing
the rest.  One of these becomes the fixed component, F, ... while the
other represents a particular solution, X_P, for the unknown component."

Topology produced (matching Figure 1):

* ``F`` keeps the latches *not* selected, all primary inputs ``i`` and
  outputs ``o``; every read of a moved latch becomes a fresh input
  ``v_<latch>``; ``F`` additionally outputs ``u`` wires — buffered copies
  of the primary inputs and of the kept latch states — which are exactly
  what the moved next-state logic needs to observe.
* ``X_P`` owns the selected latches: inputs ``u``, outputs
  ``v_<latch>`` (Moore-style buffers of its latch states), and next-state
  nodes that are the original next-state functions flattened to
  ``(i, cs)`` and rewired through ``u``/its own state.

:func:`recompose` stitches the two back together; the result is
cycle-accurate equivalent to the original network (tested), which is the
correctness invariant behind using the original behaviour as ``S``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.errors import NetworkError
from repro.expr.ast import Var, substitute
from repro.network.netlist import Network, flatten_expr


def u_wire(signal: str) -> str:
    """Name of the ``u`` wire exposing original signal ``signal``."""
    return f"u_{signal}"


def v_wire(latch: str) -> str:
    """Name of the ``v`` wire carrying moved-latch state ``latch``."""
    return f"v_{latch}"


@dataclass
class LatchSplit:
    """Result of :func:`latch_split`.

    Attributes
    ----------
    original:
        The unmodified input network (used as the specification ``S``).
    fixed:
        The fixed component ``F`` (inputs ``i + v``, outputs ``o + u``).
    unknown:
        The particular solution ``X_P`` (inputs ``u``, outputs ``v``).
    x_latches:
        Names of the latches moved into the unknown component.
    u_signals:
        Original-network signals exposed on the ``u`` wires, in order.
    u_names / v_names:
        The wire names (``u_*`` / ``v_*``), in order.
    """

    original: Network
    fixed: Network
    unknown: Network
    x_latches: list[str]
    u_signals: list[str]
    u_names: list[str] = field(default_factory=list)
    v_names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.u_names:
            self.u_names = [u_wire(s) for s in self.u_signals]
        if not self.v_names:
            self.v_names = [v_wire(s) for s in self.x_latches]

    def describe(self) -> str:
        """The paper's ``Fcs/Xcs`` column."""
        return f"{self.fixed.num_latches}/{self.unknown.num_latches}"


def prune_dangling(net: Network) -> Network:
    """Remove combinational nodes not reachable from outputs or latch drivers."""
    needed: set[str] = set(net.outputs)
    needed.update(latch.driver for latch in net.latches.values())
    keep: set[str] = set()
    stack = list(needed)
    while stack:
        signal = stack.pop()
        if signal in keep or signal not in net.nodes:
            continue
        keep.add(signal)
        stack.extend(net.nodes[signal].expr.variables())
    pruned = net.copy()
    pruned.nodes = {k: v for k, v in net.nodes.items() if k in keep}
    return pruned


def latch_split(
    net: Network,
    x_latches: Sequence[str],
    *,
    u_signals: Sequence[str] | None = None,
) -> LatchSplit:
    """Split ``net`` into a fixed part ``F`` and a particular solution ``X_P``.

    Parameters
    ----------
    net:
        The original sequential network (becomes the specification ``S``).
    x_latches:
        Latch output names to move into the unknown component.
    u_signals:
        Original signals to expose to the unknown component on the ``u``
        wires.  Defaults to all primary inputs plus all kept latches,
        which guarantees ``X_P`` can reproduce the moved logic exactly.

    Raises
    ------
    NetworkError
        If ``x_latches`` is empty, not a subset of the latches, or the
        moved next-state logic needs a signal not exposed through ``u``.
    """
    net.validate()
    x_set = list(dict.fromkeys(x_latches))
    if not x_set:
        raise NetworkError("latch_split requires at least one latch to move")
    unknown_latches = set(x_set)
    missing = unknown_latches - set(net.latches)
    if missing:
        raise NetworkError(f"unknown latches to split: {sorted(missing)}")
    kept_latches = [name for name in net.latches if name not in unknown_latches]

    if u_signals is None:
        u_list = list(net.inputs) + kept_latches
    else:
        u_list = list(dict.fromkeys(u_signals))
        undriven = [s for s in u_list if s not in net.inputs and s not in net.latches]
        if undriven:
            raise NetworkError(
                f"u_signals must be inputs or latches, got: {undriven}"
            )

    # ---------------- fixed component F ---------------- #
    fixed = Network(name=f"{net.name}_F")
    for name in net.inputs:
        fixed.add_input(name)
    for latch in x_set:
        fixed.add_input(v_wire(latch))
    to_v = {latch: v_wire(latch) for latch in x_set}
    for name in kept_latches:
        latch = net.latches[name]
        driver = to_v.get(latch.driver, latch.driver)
        fixed.add_latch(name, driver, latch.init)
    for node in net.nodes.values():
        fixed.add_node(node.name, substitute(node.expr, to_v))
    for out in net.outputs:
        fixed.add_output(to_v.get(out, out))
    for signal in u_list:
        wire = u_wire(signal)
        if wire in fixed.driven_signals():
            raise NetworkError(f"u wire {wire!r} collides with an existing signal")
        fixed.add_node(wire, Var(to_v.get(signal, signal)))
        fixed.add_output(wire)
    fixed = prune_dangling(fixed)
    fixed.validate()

    # ---------------- particular solution X_P ---------------- #
    stop = list(net.inputs) + net.latch_names()
    rewire = {signal: u_wire(signal) for signal in u_list}
    # Moved latches keep their own names inside X_P and observe themselves.
    for latch in x_set:
        rewire.pop(latch, None)

    unknown = Network(name=f"{net.name}_Xp")
    for signal in u_list:
        unknown.add_input(u_wire(signal))
    for name in x_set:
        latch = net.latches[name]
        flat = flatten_expr(net, latch.driver, stop)
        needed = flat.variables() - unknown_latches
        unexposed = [s for s in sorted(needed) if s not in u_list]
        if unexposed:
            raise NetworkError(
                f"next-state of {name!r} needs unexposed signals {unexposed}; "
                "extend u_signals"
            )
        driver_node = f"ns_{name}"
        while driver_node in unknown.driven_signals() or driver_node in unknown_latches:
            driver_node += "_"
        unknown.add_node(driver_node, substitute(flat, rewire))
        unknown.add_latch(name, driver_node, latch.init)
    for name in x_set:
        unknown.add_node(v_wire(name), Var(name))
        unknown.add_output(v_wire(name))
    unknown.validate()

    return LatchSplit(
        original=net,
        fixed=fixed,
        unknown=unknown,
        x_latches=x_set,
        u_signals=u_list,
    )


def recompose(split: LatchSplit) -> Network:
    """Reconnect ``F`` and ``X_P`` into one closed network.

    The ``u`` wires are already driven inside ``F``; the ``v`` inputs of
    ``F`` are replaced by the ``v`` output nodes of ``X_P``.  The result
    has the original primary inputs and outputs and is cycle-accurate
    equivalent to the original network.
    """
    fixed, unknown = split.fixed, split.unknown
    merged = Network(name=f"{split.original.name}_recomposed")
    for name in split.original.inputs:
        merged.add_input(name)
    for latch in fixed.latches.values():
        merged.add_latch(latch.output, latch.driver, latch.init)
    for latch in unknown.latches.values():
        merged.add_latch(latch.output, latch.driver, latch.init)
    for node in fixed.nodes.values():
        merged.add_node(node.name, node.expr)
    for node in unknown.nodes.values():
        if node.name in merged.driven_signals():
            raise NetworkError(f"recompose collision on {node.name!r}")
        merged.add_node(node.name, node.expr)
    for out in split.original.outputs:
        merged.add_output(v_wire(out) if out in split.x_latches else out)
    merged.validate()
    return merged


def compose_networks(
    a: Network,
    b: Network,
    *,
    name: str | None = None,
    keep_internal_outputs: bool = False,
) -> Network:
    """Generic synchronous composition of two networks.

    Signals are connected *by name*: an input of one network that is
    driven (node, latch or input) in the other becomes an internal wire.
    Remaining inputs stay primary inputs; outputs of both networks stay
    primary outputs unless they drive the other network's inputs and
    ``keep_internal_outputs`` is False.  Combinational cycles through the
    connection are rejected by validation.

    This generalises :func:`recompose`: ``recompose(split)`` is
    ``compose_networks(split.fixed, split.unknown)`` up to output
    selection.
    """
    merged = Network(name=name or f"{a.name}+{b.name}")
    driven = (set(a.nodes) | set(a.latches)) | (set(b.nodes) | set(b.latches))
    for net in (a, b):
        for signal in net.inputs:
            if signal not in driven and signal not in merged.inputs:
                merged.add_input(signal)
    for net in (a, b):
        for latch in net.latches.values():
            merged.add_latch(latch.output, latch.driver, latch.init)
        for node in net.nodes.values():
            if node.name in merged.driven_signals():
                raise NetworkError(f"composition collision on {node.name!r}")
            merged.add_node(node.name, node.expr)
    other_inputs = {"a": set(b.inputs), "b": set(a.inputs)}
    for key, net in (("a", a), ("b", b)):
        for out in net.outputs:
            internal = out in other_inputs[key]
            if (not internal or keep_internal_outputs) and out not in merged.outputs:
                merged.add_output(out)
    merged.validate()
    return merged


def cone_of(net: Network, signals: Iterable[str]) -> set[str]:
    """Transitive fan-in (signal names) of the given signals."""
    seen: set[str] = set()
    stack = list(signals)
    while stack:
        signal = stack.pop()
        if signal in seen:
            continue
        seen.add(signal)
        if signal in net.nodes:
            stack.extend(net.nodes[signal].expr.variables())
        elif signal in net.latches:
            stack.append(net.latches[signal].driver)
    return seen
