"""Checkpoint / resume: kill a solve mid-flight, finish it later.

Two layers:

* solver-level — drive :func:`repro.eqn.solver.solve_latch_split` with
  the checkpoint hooks directly, cancel after a couple of batches, and
  prove a resumed run completes to the *identical* CSF (KISS text is
  byte-compared, so state numbering must be reproduced, not just the
  language);
* server-level — the full "kill -9 the server" story: cancel a
  checkpointing job, close the app, start a fresh :class:`ServeApp`
  over the same cache directory and resubmit.  The new job must emit a
  ``resume`` event, report ``resumed=True``, and produce the same KISS
  as an uninterrupted solve.
"""

from __future__ import annotations

import time

import pytest

from repro.automata.kiss import write_kiss
from repro.bench import S27_BLIF
from repro.errors import SolveCancelled
from repro.eqn.solver import solve_latch_split
from repro.eqn.subset import CHECKPOINT_FORMAT
from repro.network.blif import parse_blif
from repro.serve import ServeApp

X = ["G6", "G7"]


def wait_terminal(job, timeout: float = 60.0):
    deadline = time.monotonic() + timeout
    while job.status not in ("done", "failed", "cancelled"):
        if time.monotonic() > deadline:
            raise AssertionError(f"job stuck in {job.status!r}")
        time.sleep(0.01)
    return job


@pytest.fixture(scope="module")
def reference_kiss() -> str:
    result = solve_latch_split(parse_blif(S27_BLIF), X, batch=1)
    return write_kiss(result.csf)


class TestSolverLevel:
    def cancelled_run(self, *, stop_after: int, **kwargs):
        """Run until ``stop_after`` batches, collecting checkpoints."""
        snapshots = []
        seen = {"batches": 0}

        def on_progress(event):
            seen["batches"] = event["batches"]

        def cancel():
            return seen["batches"] >= stop_after

        with pytest.raises(SolveCancelled):
            solve_latch_split(
                parse_blif(S27_BLIF),
                X,
                batch=1,
                progress=on_progress,
                cancel=cancel,
                checkpoint=snapshots.append,
                checkpoint_every=1,
                **kwargs,
            )
        return snapshots

    def test_resume_completes_to_identical_csf(self, reference_kiss) -> None:
        snapshots = self.cancelled_run(stop_after=2)
        assert snapshots, "solve must checkpoint before being cancelled"
        snapshot = snapshots[-1]
        assert snapshot["format"] == CHECKPOINT_FORMAT
        assert snapshot["frontier"], "mid-solve snapshot has pending work"
        resumed = solve_latch_split(
            parse_blif(S27_BLIF), X, batch=1, resume=snapshot
        )
        assert write_kiss(resumed.csf) == reference_kiss

    def test_resume_skips_already_done_batches(self, reference_kiss) -> None:
        snapshot = self.cancelled_run(stop_after=3)[-1]
        done_before = snapshot["stats"]["batches"]
        resumed = solve_latch_split(
            parse_blif(S27_BLIF), X, batch=1, resume=snapshot
        )
        # Counters continue from the snapshot instead of starting over,
        # and the resumed leg alone is shorter than a cold solve.
        cold = solve_latch_split(parse_blif(S27_BLIF), X, batch=1)
        assert resumed.stats.batches == cold.stats.batches
        assert resumed.stats.subsets == cold.stats.subsets
        assert done_before > 0

    def test_checkpoint_seconds_fires_without_batch_cadence(
        self, reference_kiss
    ) -> None:
        """A wall-clock cadence alone must produce snapshots."""
        snapshots = []
        result = solve_latch_split(
            parse_blif(S27_BLIF),
            X,
            batch=1,
            checkpoint=snapshots.append,
            checkpoint_seconds=1e-6,  # every batch boundary is "due"
        )
        assert snapshots, "wall-clock cadence never fired"
        assert all(s["format"] == CHECKPOINT_FORMAT for s in snapshots)
        assert write_kiss(result.csf) == reference_kiss

    def test_whichever_cadence_fires_first(self) -> None:
        """A huge batch cadence must not mask a due wall-clock one."""
        snapshots = []
        solve_latch_split(
            parse_blif(S27_BLIF),
            X,
            batch=1,
            checkpoint=snapshots.append,
            checkpoint_every=10**6,
            checkpoint_seconds=1e-6,
        )
        assert snapshots

    def test_checkpoint_restores_spilled_states(self, reference_kiss) -> None:
        """Snapshots under a resident budget carry the *full* table.

        Eviction must be invisible to resume: the driver reloads every
        spilled ψ before snapshotting, so a solve resumed from a
        budgeted run's checkpoint completes byte-identically.
        """
        snapshots = self.cancelled_run(stop_after=3, resident_budget=1)
        snapshot = snapshots[-1]
        resumed = solve_latch_split(
            parse_blif(S27_BLIF), X, batch=1, resume=snapshot, resident_budget=1
        )
        assert write_kiss(resumed.csf) == reference_kiss
        assert resumed.stats.extra["resident_budget"] == 1

    def test_resume_under_a_different_strategy_is_rejected(self) -> None:
        snapshot = self.cancelled_run(stop_after=2)[-1]
        from repro.errors import EquationError

        with pytest.raises(EquationError, match="strategy"):
            solve_latch_split(
                parse_blif(S27_BLIF), X, batch=1, frontier="bfs", resume=snapshot
            )


class TestServerLevel:
    def test_kill_restart_resume_identical_csf(
        self, tmp_path, reference_kiss
    ) -> None:
        body = {
            "blif": S27_BLIF,
            "x_latches": X,
            "batch": 1,
            "checkpoint_every": 1,
        }
        # Leg one: cancel after the second checkpoint has been written.
        def hook(job, event):
            if event["batches"] >= 2:
                job.cancel_event.set()

        app = ServeApp(str(tmp_path / "cache"), batch_hook=hook)
        try:
            job = wait_terminal(app.submit(body))
            assert job.status == "cancelled"
            assert app.store.get_checkpoint(job.key) is not None
            assert app.store.get(job.key) is None  # no result was cached
            key = job.key
        finally:
            app.close()  # the "kill": executor gone, pool closed

        # Leg two: a fresh server over the same cache directory.
        app2 = ServeApp(str(tmp_path / "cache"))
        try:
            job2 = wait_terminal(app2.submit(body))
            assert job2.status == "done"
            assert job2.resumed is True
            kinds = [e["type"] for e in job2.events]
            assert "resume" in kinds
            assert kinds.index("resume") < kinds.index("progress")
            assert write_kiss_from_store(app2, key) == reference_kiss
            # Success consumed the checkpoint.
            assert app2.store.get_checkpoint(key) is None
        finally:
            app2.close()

    def test_no_resume_option_ignores_the_checkpoint(self, tmp_path) -> None:
        body = {
            "blif": S27_BLIF,
            "x_latches": X,
            "batch": 1,
            "checkpoint_every": 1,
        }

        def hook(job, event):
            if event["batches"] >= 2:
                job.cancel_event.set()

        app = ServeApp(str(tmp_path / "cache"), batch_hook=hook)
        try:
            job = wait_terminal(app.submit(body))
            assert app.store.get_checkpoint(job.key) is not None
        finally:
            app.close()

        app2 = ServeApp(str(tmp_path / "cache"))
        try:
            job2 = wait_terminal(app2.submit({**body, "resume": False}))
            assert job2.status == "done"
            assert job2.resumed is False
            assert "resume" not in [e["type"] for e in job2.events]
        finally:
            app2.close()


def write_kiss_from_store(app: ServeApp, key: str) -> str:
    from repro.serve.payload import result_kiss

    payload = app.store.get(key)
    assert payload is not None
    return result_kiss(payload)
