"""Adaptive runtime policies for the BDD kernel.

The manager's two runtime levers — *when to collect garbage* and *when to
reorder variables* — were static knobs after the kernel overhaul
(``gc_min_live`` / ``gc_growth``).  This module turns both into small
policy objects that observe the stream of collections and adapt:

* :class:`GcPolicy` — the collection trigger.  In ``"static"`` mode it
  reproduces the historical behaviour exactly (collect once the live
  count passes a floor *and* a growth factor over the post-collection
  baseline).  In ``"adaptive"`` mode it also tracks the *reclaim ratio*
  of every sweep (``reclaimed / live_before``) and, after ``window``
  consecutive unprofitable sweeps, backs the floor off multiplicatively —
  a collection that reclaims almost nothing costs a full O(live) sweep
  plus the computed-table scan, so repeating it at the same heap size is
  pure overhead.  Profitable sweeps decay the floor back toward its
  configured minimum.

* :class:`ReorderPolicy` — the dynamic-reordering trigger.  Collections
  that stop paying are the kernel's signal that the *live* structure
  itself is too big, which (per the paper's CNC analysis) usually means a
  bad variable order.  In ``"auto"`` mode the policy fires an in-place
  sift (:func:`repro.bdd.reorder.sift`) after ``window`` consecutive
  sweeps whose reclaim ratio is below ``reclaim_threshold``; ``"sift"``
  mode fires on every unprofitable sweep (aggressive); ``"off"`` never
  fires.  A growth-based cooldown prevents back-to-back sifts: after a
  reorder, the next one is allowed only once the live count exceeds
  ``cooldown_growth ×`` the post-reorder size.

Both policies are pure observers — they never touch the manager — so they
are trivially unit-testable and the manager stays the single owner of all
mutation (see :meth:`repro.bdd.manager.BddManager.collect_garbage` for
the integration point).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Accepted :class:`GcPolicy` modes.
GC_MODES = ("static", "adaptive")
#: Accepted :class:`ReorderPolicy` modes.
REORDER_MODES = ("off", "auto", "sift")


@dataclass
class GcPolicy:
    """Self-tuning garbage-collection trigger.

    Parameters
    ----------
    mode:
        ``"static"`` (fixed floor/growth, the pre-adaptive behaviour) or
        ``"adaptive"`` (reclaim-ratio-driven floor back-off).
    min_live:
        Initial live-node floor below which collection never triggers.
    growth:
        Growth factor over the post-collection baseline that arms the
        trigger.
    reclaim_threshold:
        A sweep reclaiming less than this fraction of the pre-sweep live
        count is *unprofitable*.
    window:
        Number of consecutive unprofitable sweeps after which the
        adaptive floor backs off.
    backoff:
        Multiplier applied to the post-sweep live count when backing off:
        the floor jumps to ``backoff × live``, so no collection runs
        until the heap has genuinely grown past the size that was not
        worth sweeping.
    recovery:
        After a *profitable* sweep the floor decays by this factor back
        toward ``min_live`` (the heap shape changed; cheap collections
        may pay again).
    """

    mode: str = "static"
    min_live: int = 100_000
    growth: float = 2.0
    reclaim_threshold: float = 0.2
    window: int = 3
    backoff: float = 2.0
    recovery: float = 0.5
    # -- runtime state ------------------------------------------------- #
    floor: int = field(init=False)
    bad_streak: int = field(init=False, default=0)
    backoffs: int = field(init=False, default=0)
    last_ratio: float = field(init=False, default=1.0)

    def __post_init__(self) -> None:
        if self.mode not in GC_MODES:
            raise ValueError(f"unknown GC mode {self.mode!r}; choose from {GC_MODES}")
        self.floor = self.min_live

    def should_collect(self, live: int, baseline: int) -> bool:
        """Whether a collection should run at ``live`` nodes now.

        ``baseline`` is the live count right after the previous
        collection.  Never true below the (possibly backed-off) floor, so
        after :meth:`record` has seen ``window`` consecutive unprofitable
        sweeps, no collection triggers until the heap exceeds
        ``backoff ×`` the size those sweeps failed to shrink.
        """
        return live >= self.floor and live >= self.growth * baseline

    def record(self, live_before: int, reclaimed: int) -> float:
        """Feed the outcome of one sweep; returns its reclaim ratio."""
        ratio = reclaimed / live_before if live_before > 0 else 0.0
        self.last_ratio = ratio
        if self.mode != "adaptive":
            return ratio
        live_after = live_before - reclaimed
        if ratio < self.reclaim_threshold:
            self.bad_streak += 1
            if self.bad_streak >= self.window:
                # Collections stopped paying at this heap size: require
                # substantially more growth before sweeping again.
                self.floor = max(self.floor, int(self.backoff * max(live_after, 1)))
                self.backoffs += 1
                self.bad_streak = 0
        else:
            self.bad_streak = 0
            if self.floor > self.min_live:
                decayed = int(self.floor * self.recovery)
                self.floor = max(self.min_live, decayed)
        return ratio


@dataclass
class ReorderPolicy:
    """GC-coupled dynamic variable-reordering trigger.

    Decides, after every completed garbage collection, whether the
    manager should run an in-place sift.  The signal is the same reclaim
    ratio :class:`GcPolicy` adapts on: when sweeps stop reclaiming,
    the live BDDs themselves are the problem and only a better variable
    order can shrink them.

    Parameters
    ----------
    mode:
        ``"off"`` (never reorder), ``"auto"`` (reorder after ``window``
        consecutive unprofitable sweeps) or ``"sift"`` (reorder on every
        unprofitable sweep).
    reclaim_threshold:
        Sweeps below this reclaim ratio count toward the trigger.
    window:
        Consecutive-unprofitable-sweep count that arms ``"auto"`` mode.
    min_live:
        Do not bother reordering managers smaller than this (sifting a
        tiny table costs more than it saves).
    cooldown_growth:
        After a reorder finishing at ``n`` live nodes, the next reorder
        is allowed only once the live count exceeds
        ``cooldown_growth × n``.
    max_growth:
        Passed to :func:`repro.bdd.reorder.sift`: abort sifting a
        variable in a direction once the table grows past this factor of
        its starting size.
    max_vars:
        Optional cap on how many variables each sift pass moves (the
        largest-bucket variables are sifted first); ``None`` sifts all.
    """

    mode: str = "off"
    reclaim_threshold: float = 0.2
    window: int = 2
    min_live: int = 2_000
    cooldown_growth: float = 1.5
    max_growth: float = 1.2
    max_vars: int | None = None
    # -- runtime state ------------------------------------------------- #
    bad_streak: int = field(init=False, default=0)
    cooldown_until: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.mode not in REORDER_MODES:
            raise ValueError(
                f"unknown reorder mode {self.mode!r}; choose from {REORDER_MODES}"
            )

    def should_reorder(self, live: int, reclaim_ratio: float) -> bool:
        """Whether to sift right after a sweep with ``reclaim_ratio``."""
        if self.mode == "off":
            return False
        if reclaim_ratio >= self.reclaim_threshold:
            self.bad_streak = 0
            return False
        self.bad_streak += 1
        if live < self.min_live or live < self.cooldown_until:
            return False
        if self.mode == "sift":
            return True
        return self.bad_streak >= self.window

    def record_reorder(self, live_after: int) -> None:
        """Note a completed reorder; arms the growth cooldown."""
        self.bad_streak = 0
        self.cooldown_until = int(self.cooldown_growth * live_after)
