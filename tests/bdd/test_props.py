"""Property-based tests: every BDD operation agrees with truth tables."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BddManager
from tests.strategies import DEFAULT_VARS, all_assignments, expressions


def build(expr):
    mgr = BddManager()
    mgr.add_vars(DEFAULT_VARS)
    return mgr, expr.to_bdd(mgr)


@given(expressions())
@settings(max_examples=150, deadline=None)
def test_expression_to_bdd_matches_truth_table(expr) -> None:
    mgr, node = build(expr)
    for env in all_assignments(DEFAULT_VARS):
        assert mgr.eval(node, env) == expr.evaluate(env)


@given(expressions(), expressions())
@settings(max_examples=75, deadline=None)
def test_connectives_match_python_semantics(e1, e2) -> None:
    mgr = BddManager()
    mgr.add_vars(DEFAULT_VARS)
    f, g = e1.to_bdd(mgr), e2.to_bdd(mgr)
    fa = mgr.apply_and(f, g)
    fo = mgr.apply_or(f, g)
    fx = mgr.apply_xor(f, g)
    fn = mgr.apply_not(f)
    fi = mgr.apply_implies(f, g)
    fe = mgr.apply_iff(f, g)
    for env in all_assignments(DEFAULT_VARS):
        vf, vg = e1.evaluate(env), e2.evaluate(env)
        assert mgr.eval(fa, env) == (vf and vg)
        assert mgr.eval(fo, env) == (vf or vg)
        assert mgr.eval(fx, env) == (vf != vg)
        assert mgr.eval(fn, env) == (not vf)
        assert mgr.eval(fi, env) == ((not vf) or vg)
        assert mgr.eval(fe, env) == (vf == vg)


@given(expressions(), expressions(), expressions())
@settings(max_examples=50, deadline=None)
def test_ite_matches_semantics(e1, e2, e3) -> None:
    mgr = BddManager()
    mgr.add_vars(DEFAULT_VARS)
    r = mgr.ite(e1.to_bdd(mgr), e2.to_bdd(mgr), e3.to_bdd(mgr))
    for env in all_assignments(DEFAULT_VARS):
        want = e2.evaluate(env) if e1.evaluate(env) else e3.evaluate(env)
        assert mgr.eval(r, env) == want


@given(expressions(), st.sampled_from(DEFAULT_VARS), st.booleans())
@settings(max_examples=75, deadline=None)
def test_restrict_matches_semantics(expr, name, value) -> None:
    mgr, node = build(expr)
    r = mgr.restrict(node, mgr.var_index(name), value)
    for env in all_assignments(DEFAULT_VARS):
        fixed = dict(env)
        fixed[name] = int(value)
        assert mgr.eval(r, env) == expr.evaluate(fixed)


@given(expressions(), st.sampled_from(DEFAULT_VARS), expressions())
@settings(max_examples=50, deadline=None)
def test_compose_matches_semantics(expr, name, sub) -> None:
    mgr, node = build(expr)
    g = sub.to_bdd(mgr)
    r = mgr.compose(node, mgr.var_index(name), g)
    for env in all_assignments(DEFAULT_VARS):
        substituted = dict(env)
        substituted[name] = sub.evaluate(env)
        assert mgr.eval(r, env) == expr.evaluate(substituted)


@given(expressions())
@settings(max_examples=100, deadline=None)
def test_canonicity_syntactic_variants_share_nodes(expr) -> None:
    # f and !!f, f & f, f | f must be the same node.
    mgr, node = build(expr)
    assert mgr.apply_not(mgr.apply_not(node)) == node
    assert mgr.apply_and(node, node) == node
    assert mgr.apply_or(node, node) == node
    assert mgr.apply_xor(node, node) == 0


@given(expressions(), expressions())
@settings(max_examples=50, deadline=None)
def test_boolean_algebra_laws(e1, e2) -> None:
    mgr = BddManager()
    mgr.add_vars(DEFAULT_VARS)
    f, g = e1.to_bdd(mgr), e2.to_bdd(mgr)
    # Absorption, De Morgan, distribution spot laws on arbitrary functions.
    assert mgr.apply_or(f, mgr.apply_and(f, g)) == f
    assert mgr.apply_and(f, mgr.apply_or(f, g)) == f
    assert mgr.apply_not(mgr.apply_and(f, g)) == mgr.apply_or(
        mgr.apply_not(f), mgr.apply_not(g)
    )
