"""The shard worker: one process, one manager, one command loop.

A worker is spawned by :class:`repro.shard.pool.ShardPool` with a
connection (one end of a ``multiprocessing.Pipe``) and a config dict.
It builds its own shard manager — on whichever BDD backend the config
names (:func:`repro.bdd.backends.create_manager`; a native backend
multiplies its speedup by the worker count), with its own computed
table, GC policy and reorder policy, entirely independent of the
coordinator's — and serves commands until told to shut down.

Every command is a tuple ``(op, *args)``; every reply is ``("ok",
payload, meta)`` or ``("err", traceback_text, meta)``, where ``meta``
is the worker's per-command timing stamp — ``{"op", "pid", "t0",
"t1"}`` in the shared :func:`time.perf_counter` timebase — that
:meth:`ShardPool.collect <repro.shard.pool.ShardPool.collect>` relays
onto the coordinator's trace as a pid-tagged per-worker track (the
pool tolerates two-element replies, so the wire stays compatible both
ways).  BDDs cross the pipe as
packed-array snapshots (:func:`repro.bdd.io.dump_nodes`); inside the
worker they live in a *handle registry* (small ints chosen by the
coordinator), each pinned with ``mgr.ref`` so worker-side garbage
collections can never reclaim what the coordinator still names.

Commands
--------

``("vars", names)``
    Declare the variable order (must run first).
``("load", handle, snapshot)``
    Load a snapshot (first root) into the registry under ``handle``.
``("dump", handle)``
    Reply with the snapshot of a registered function (plain registry
    first, then the resident registry).
``("free", handles)``
    Deref and drop registry entries.
``("retain", handle, snapshot)``
    Make a function **shard-resident**: load the snapshot into the
    resident registry under ``handle`` with reference count 1 — or, if
    the handle is already resident, just bump its count (``snapshot``
    may then be ``None``).  Resident entries are pinned with ``mgr.ref``
    so they survive worker-side garbage collection and in-place
    reordering; the reply is the new count.  This is how the subset
    driver's ψ snapshots cross the wire exactly once per subset.
``("release", handles)``
    Drop one reference from each resident handle; an entry whose count
    reaches zero is deref'd and forgotten.  Replies with the number of
    entries actually freed.
``("spill", handles)``
    Force-spill the named resident entries (all of them when ``handles``
    is ``None``) to the worker's content-addressed spill store
    (:class:`repro.eqn.residency.SpillStore` over the
    :func:`repro.bdd.io.dump_function_packed` blob format), keeping
    their reference counts.  A spilled entry reloads transparently on
    its next ``expand_batch``/``dump``/``retain`` touch.  With a
    ``resident_budget`` node count in the worker config, the same spill
    runs *automatically*: whenever the pinned resident-ψ node estimate
    exceeds the budget (checked after every retain and after every item
    of an ``expand_batch``), least-recently-touched entries are spilled
    and the worker collects garbage, so its memory stays bounded no
    matter how many subset states the coordinator parks on it.  Spill
    and reload counts are reported by ``("stats",)``.
``("expand_batch", plan_id, items)``
    Run a plan against a batch of resident constraints and reply with
    the list of result snapshots.  Each item is either a resident
    handle (the constraint itself) or a ``(handle, spec)`` pair, where
    ``spec`` maps variable *names* to 0/1 — the worker then images the
    cofactor slice ``resident ∧ cube(spec)`` (split-mode sharding
    without re-shipping the constraint).
``("conjoin", handle, handles)``
    Store the conjunction of the named functions under ``handle``.
``("and_exists", handle, h1, h2, var_names)``
    Store the fused relational product under ``handle``.
``("plan", plan_id, part_handles, quantify_names, support_names)``
    Precompute a reusable image plan over the named parts
    (:func:`repro.symb.image.plan_image`), quantifying
    ``quantify_names``; ``support_names`` bounds every future
    constraint's support.
``("image", plan_id, snapshot)``
    Run the plan against the constraint in ``snapshot`` (with
    opportunistic GC) and reply with the result snapshot.
``("reset", overrides)``
    Tear down the shard manager and rebuild it from the spawn config
    (with ``overrides`` merged on top): all handles, resident entries
    and plans are dropped and the variable table is empty again —
    ``("vars", ...)`` must run before the next load.  This is how the
    job server reuses one warm pool of processes across solves without
    paying fork/spawn per job.
``("stats",)``
    Reply with a small dict of manager statistics.
``("gc",)``
    Force a collection; reply with the reclaimed count.
``("sift",)``
    Force one in-place sifting pass (handles, resident entries and
    plans all keep their edges); reply with swap/size counters.
``("sift_profile",)``
    Force one in-place sifting pass **and** reply with the resulting
    variable order (the worker's *order profile*) alongside the swap
    counters.  This is per-shard order autonomy: each worker sifts its
    own resident partition independently of the coordinator and its
    peers — the name-keyed ``dump_nodes`` wire format makes transfers
    between differently-ordered managers sound, and image plans hold
    variable indices, which in-place sifting never invalidates.  The
    pool records profiles so a ``reset`` can re-declare each worker's
    variables in its own proven order.
``("shutdown",)``
    Acknowledge and exit the loop.
"""

from __future__ import annotations

import os
import time
import traceback

from repro.bdd.backends import create_manager
from repro.bdd.io import dump_function_packed, load_function_packed
from repro.bdd.policy import GcPolicy, ReorderPolicy
from repro.errors import ReproError
from repro.obs.log import get_logger
from repro.symb.image import image_with_plan, plan_image

_log = get_logger("repro.shard.worker")


class _WorkerState:
    """Manager + registries behind one worker's command loop."""

    def __init__(self, config: dict) -> None:
        self.config = dict(config)
        self._spill = None
        self._build(self.config)

    def _build(self, config: dict) -> None:
        # A reset replaces the manager wholesale; backends holding
        # process-global state (the native adapters) must tear the old
        # instance down before a new one can claim the library.
        old_close = getattr(getattr(self, "mgr", None), "close", None)
        if old_close is not None:
            old_close()
        self.mgr = create_manager(
            config.get("backend", "python"),
            max_nodes=config.get("max_nodes"),
            gc_policy=GcPolicy(mode=config.get("gc", "static")),
            reorder_policy=ReorderPolicy(mode=config.get("reorder", "off")),
        )
        self.handles: dict[int, int] = {}
        self.plans: dict[int, tuple] = {}
        # Resident registry: handle -> [edge, refcount].  Entries are
        # pinned against worker GC/reordering until released.  Dict
        # insertion order doubles as the LRU for the spill policy:
        # touched entries are re-inserted at the MRU end.
        self.resident: dict[int, list] = {}
        # Bounded-memory residency (repro.eqn.residency discipline on
        # the worker side): when the pinned resident-ψ node estimate
        # exceeds ``resident_budget``, cold entries are spilled to a
        # content-addressed store and reloaded transparently on the next
        # touch.  ``spilled``: handle -> [content key, refcount].
        budget = config.get("resident_budget")
        self.resident_budget = int(budget) if budget else None
        self.spill_dir = config.get("spill_dir")
        self.spilled: dict[int, list] = {}
        self._sizes: dict[int, int] = {}
        self._resident_nodes = 0
        self.psi_spills = 0
        self.psi_reloads = 0
        if self._spill is not None and self._spill_owned:
            self._spill.close()
        self._spill = None
        self._spill_owned = False

    # -- the spill policy ---------------------------------------------- #

    def _spill_store(self):
        """The worker's spill store, created on first use.

        With a coordinator-provided ``spill_dir`` the store is shared
        (content addressing makes concurrent workers idempotent); without
        one each worker owns a private temporary directory.
        """
        if self._spill is None:
            from repro.eqn.residency import SpillStore

            self._spill = SpillStore(self.spill_dir)
            self._spill_owned = self.spill_dir is None
        return self._spill

    def _admit_resident(self, handle: int, edge: int, count: int) -> None:
        self.resident[handle] = [edge, count]
        if self.resident_budget is not None:
            size = self.mgr.size(edge)
            self._sizes[handle] = size
            self._resident_nodes += size

    def _drop_resident(self, handle: int) -> None:
        del self.resident[handle]
        self._resident_nodes -= self._sizes.pop(handle, 0)

    def _touch_resident(self, handle: int) -> int:
        """The pinned edge of a resident handle, reloading if spilled."""
        entry = self.resident.get(handle)
        if entry is not None:
            if self.resident_budget is not None:
                self.resident[handle] = self.resident.pop(handle)  # MRU
            return entry[0]
        key, count = self.spilled.pop(handle)
        edge = load_function_packed(self.mgr, self._spill_store().get(key))
        self.mgr.ref(edge)
        self._admit_resident(handle, edge, count)
        self.psi_reloads += 1
        return edge

    def _spill_resident(self, handle: int) -> None:
        """Move one resident entry to the spill store (keeps its count)."""
        edge, count = self.resident[handle]
        blob = dump_function_packed(self.mgr, edge)
        key, _written = self._spill_store().put(blob)
        self.psi_spills += 1
        self._drop_resident(handle)
        self.spilled[handle] = [key, count]
        self.mgr.deref(edge)

    def _enforce_budget(self) -> int:
        """Spill LRU resident entries until the estimate fits the budget."""
        if self.resident_budget is None:
            return 0
        spilled = 0
        while self._resident_nodes > self.resident_budget and self.resident:
            self._spill_resident(next(iter(self.resident)))
            spilled += 1
        if spilled:
            # Eviction only pays off if the nodes actually go away; the
            # adaptive policy's growth floors may never arm at
            # budget-sized scales, so collect explicitly.
            self.mgr.collect_garbage()
        return spilled

    # Each handler returns the reply payload. ------------------------------ #

    def op_vars(self, names: list[str]) -> int:
        for name in names:
            self.mgr.add_var(name)
        return self.mgr.num_vars

    def _store(self, handle: int, edge: int) -> None:
        old = self.handles.get(handle)
        if old is not None:
            self.mgr.deref(old)
        self.handles[handle] = self.mgr.ref(edge)

    def op_load(self, handle: int, snapshot: dict) -> None:
        (edge,) = self.mgr.load_nodes(snapshot)
        self._store(handle, edge)

    def op_dump(self, handle: int) -> dict:
        edge = self.handles.get(handle)
        if edge is None:
            edge = self._touch_resident(handle)
        return self.mgr.dump_nodes([edge])

    def op_free(self, handles: list[int]) -> None:
        for handle in handles:
            edge = self.handles.pop(handle, None)
            if edge is not None:
                self.mgr.deref(edge)

    def op_retain(self, handle: int, snapshot: dict | None = None) -> int:
        entry = self.resident.get(handle)
        if entry is not None:
            entry[1] += 1
            return entry[1]
        spilled = self.spilled.get(handle)
        if spilled is not None:
            # Already on disk: bump the count without materializing.
            spilled[1] += 1
            return spilled[1]
        if snapshot is None:
            raise ReproError(
                f"retain: handle {handle} is not resident and no snapshot given"
            )
        (edge,) = self.mgr.load_nodes(snapshot)
        self.mgr.ref(edge)
        self._admit_resident(handle, edge, 1)
        self._enforce_budget()
        return 1

    def op_release(self, handles: list[int]) -> int:
        freed = 0
        for handle in handles:
            entry = self.resident.get(handle)
            if entry is None:
                spilled = self.spilled.get(handle)
                if spilled is None:
                    continue
                spilled[1] -= 1
                if spilled[1] <= 0:
                    # The blob stays in the (content-addressed) store;
                    # only the registry entry dies.
                    del self.spilled[handle]
                    freed += 1
                continue
            entry[1] -= 1
            if entry[1] <= 0:
                self.mgr.deref(entry[0])
                self._drop_resident(handle)
                freed += 1
        return freed

    def op_expand_batch(self, plan_id: int, items: list) -> list[dict]:
        mgr = self.mgr
        plan, leftover, _parts = self.plans[plan_id]
        out: list[dict] = []
        for item in items:
            if isinstance(item, (tuple, list)):
                handle, spec = item
                constraint = self._touch_resident(handle)
                if spec:
                    cube = mgr.cube(
                        {mgr.var_index(name): int(bit) for name, bit in spec.items()}
                    )
                    constraint = mgr.apply_and(constraint, cube)
            else:
                constraint = self._touch_resident(item)
            with mgr.protect(constraint):
                result = image_with_plan(mgr, plan, leftover, constraint, gc=True)
            # Snapshot immediately: the result edge itself is a per-call
            # intermediate that the next collection may reclaim.
            out.append(mgr.dump_nodes([result]))
            # Bound the registry *during* the batch too: a reload above
            # may have pushed the estimate back over budget.
            self._enforce_budget()
        mgr.maybe_collect_garbage()
        return out

    def op_spill(self, handles: list[int] | None = None) -> int:
        """Force-spill resident entries (all of them when unnamed).

        The test-facing counterpart of the transparent budget path: the
        round-trip suites spill, GC, sift and reload deterministically
        without having to engineer a budget overflow.
        """
        targets = list(self.resident) if handles is None else handles
        spilled = 0
        for handle in targets:
            if handle in self.resident:
                self._spill_resident(handle)
                spilled += 1
        return spilled

    def op_conjoin(self, handle: int, handles: list[int]) -> None:
        mgr = self.mgr
        result = 1
        for h in handles:
            result = mgr.apply_and(result, self.handles[h])
        self._store(handle, result)

    def op_and_exists(
        self, handle: int, h1: int, h2: int, var_names: list[str]
    ) -> None:
        mgr = self.mgr
        variables = [mgr.var_index(n) for n in var_names]
        self._store(
            handle, mgr.and_exists(self.handles[h1], self.handles[h2], variables)
        )

    def op_plan(
        self,
        plan_id: int,
        part_handles: list[int],
        quantify_names: list[str],
        support_names: list[str],
    ) -> None:
        mgr = self.mgr
        parts = [self.handles[h] for h in part_handles]
        quantify = [mgr.var_index(n) for n in quantify_names]
        support = {mgr.var_index(n) for n in support_names}
        self.plans[plan_id] = (
            *plan_image(mgr, parts, quantify, support),
            parts,
        )

    def op_image(self, plan_id: int, snapshot: dict) -> dict:
        mgr = self.mgr
        plan, leftover, parts = self.plans[plan_id]
        (constraint,) = mgr.load_nodes(snapshot)
        with mgr.protect(constraint):
            result = image_with_plan(mgr, plan, leftover, constraint, gc=True)
        out = mgr.dump_nodes([result])
        # The result (and the constraint) are per-call intermediates: let
        # the next growth-armed collection reclaim them.
        mgr.maybe_collect_garbage([*parts, result])
        return out

    def op_reset(self, overrides: dict | None = None) -> int:
        """Rebuild the manager from the spawn config (+ overrides).

        Dropping the whole manager (instead of freeing registries one by
        one) guarantees no state leaks between jobs: node table,
        computed table, variable order and policies all start fresh.
        Returns the number of variables afterwards (always 0 — the next
        job's ``vars`` command declares its own order).
        """
        config = dict(self.config)
        config.update(overrides or {})
        self._build(config)
        return self.mgr.num_vars

    def op_stats(self) -> dict:
        stats = self.mgr.stats
        return {
            "live_nodes": stats["live_nodes"],
            "peak_live_nodes": stats["peak_live_nodes"],
            "gc_runs": stats["gc_runs"],
            "reorder_runs": stats["reorder_runs"],
            "max_nodes": self.mgr.max_nodes,
            "handles": len(self.handles),
            "resident": len(self.resident),
            "spilled": len(self.spilled),
            "resident_nodes": self._resident_nodes,
            "resident_budget": self.resident_budget,
            "psi_spills": self.psi_spills,
            "psi_reloads": self.psi_reloads,
            "plans": len(self.plans),
            "order_profile": self.mgr.var_order(),
        }

    def op_gc(self) -> int:
        return self.mgr.collect_garbage()

    def op_sift(self) -> dict:
        result = self.mgr.sift_now()
        return {
            "swaps": result.swaps,
            "size_before": result.size_before,
            "size_after": result.size_after,
            "vars_sifted": result.vars_sifted,
        }

    def op_sift_profile(self) -> dict:
        out = self.op_sift()
        out["order"] = self.mgr.var_order()
        return out


def _command_meta(op: str, t0: float) -> dict:
    """The timing stamp attached to every reply (see module docstring)."""
    return {
        "op": op,
        "pid": os.getpid(),
        "t0": t0,
        "t1": time.perf_counter(),
    }


def worker_main(conn, config: dict) -> None:
    """Run one worker's command loop until ``shutdown`` or pipe closure.

    Exceptions raised by a command are caught, logged through
    :mod:`repro.obs.log` (previously they were silent worker-side) and
    reported as ``("err", traceback, meta)`` replies, so a bad command
    never kills the worker; only losing the pipe (coordinator death) or
    ``shutdown`` ends the loop.  Every reply — success or error —
    carries the per-command timing stamp for the coordinator's trace.
    """
    state = _WorkerState(config)
    ops = {
        "vars": state.op_vars,
        "load": state.op_load,
        "dump": state.op_dump,
        "free": state.op_free,
        "retain": state.op_retain,
        "release": state.op_release,
        "expand_batch": state.op_expand_batch,
        "spill": state.op_spill,
        "conjoin": state.op_conjoin,
        "and_exists": state.op_and_exists,
        "plan": state.op_plan,
        "image": state.op_image,
        "reset": state.op_reset,
        "stats": state.op_stats,
        "gc": state.op_gc,
        "sift": state.op_sift,
        "sift_profile": state.op_sift_profile,
    }
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        op = msg[0]
        if op == "shutdown":
            conn.send(("ok", None))
            break
        handler = ops.get(op)
        t0 = time.perf_counter()
        try:
            if handler is None:
                raise ReproError(f"unknown shard command {op!r}")
            payload = handler(*msg[1:])
            conn.send(("ok", payload, _command_meta(op, t0)))
        except BaseException:
            _log.exception("shard command failed", op=op, pid=os.getpid())
            try:
                conn.send(
                    ("err", traceback.format_exc(), _command_meta(op, t0))
                )
            except (OSError, BrokenPipeError):  # pragma: no cover
                break
    conn.close()
