"""Backend registry, protocol surface and the cross-backend conformance suite.

Native pairs are **conditionally defined**, not skip-marked: on a
machine without the BuDDy shared library the parametrization simply
contains no native pair, so a pure-Python environment collects zero
extra skips and stays bit-identical to the pre-backend behaviour.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import given, settings

from repro.bdd.backends import (
    BACKEND_CHOICES,
    DEFAULT_BACKEND,
    BackendFallbackWarning,
    _reset_fallback_warnings,
    available_backends,
    backend_available,
    create_manager,
    register_backend,
    registered_backends,
)
from repro.bdd.backends.protocol import (
    PROTOCOL_SURFACE,
    BddBackend,
    generic_load_nodes,
    missing_ops,
)
from repro.bdd.manager import BddManager
from repro.errors import BddError
from tests.bdd.conformance import (
    conformance_pairs,
    program_strategy,
    run_conformance_case,
    run_program,
)


class TestRegistry:
    def test_python_backend_is_the_reference_manager(self) -> None:
        mgr = create_manager("python")
        assert isinstance(mgr, BddManager)
        assert mgr.backend_name == "python"

    def test_default_backend_is_python(self) -> None:
        assert DEFAULT_BACKEND == "python"
        assert create_manager().backend_name == "python"

    def test_builtin_backends_are_registered(self) -> None:
        assert set(BACKEND_CHOICES) <= set(registered_backends())

    def test_python_is_always_available(self) -> None:
        assert "python" in available_backends()

    def test_unknown_backend_raises(self) -> None:
        with pytest.raises(BddError, match="unknown BDD backend"):
            create_manager("cudd")

    def test_kwargs_reach_the_manager(self) -> None:
        mgr = create_manager("python", max_nodes=123)
        assert mgr.max_nodes == 123

    def test_register_backend_round_trip(self) -> None:
        name = "mirror-registry-test"
        register_backend(name, BddManager, probe=lambda: True)
        try:
            assert name in registered_backends()
            assert backend_available(name)
            assert isinstance(create_manager(name), BddManager)
        finally:
            from repro.bdd import backends

            backends._REGISTRY.pop(name, None)

    def test_cli_choices_track_the_registry(self) -> None:
        """The CLI's literal --backend choices must track BACKEND_CHOICES."""
        from repro.cli import _build_parser

        parser = _build_parser()
        subparsers = parser._subparsers._group_actions[0]
        for command in ("solve", "reach", "submit"):
            sub = subparsers.choices[command]
            (action,) = [
                a for a in sub._actions if "--backend" in a.option_strings
            ]
            assert tuple(action.choices) == BACKEND_CHOICES

    def test_bench_driver_accepts_every_registered_backend(
        self, capsys
    ) -> None:
        from repro.bench import driver

        for name in BACKEND_CHOICES:
            assert driver.main(["--backend", name, "--list"]) == 0
        with pytest.raises(SystemExit):
            driver.main(["--backend", "no-such-backend", "--list"])
        capsys.readouterr()


class TestFallback:
    def test_unavailable_backend_warns_once_then_stays_quiet(self) -> None:
        name = "never-there"
        register_backend(name, BddManager, probe=lambda: False)
        try:
            _reset_fallback_warnings()
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                first = create_manager(name)
                second = create_manager(name)
            assert first.backend_name == "python"
            assert second.backend_name == "python"
            fallbacks = [
                w for w in caught
                if issubclass(w.category, BackendFallbackWarning)
            ]
            assert len(fallbacks) == 1
            assert name in str(fallbacks[0].message)
        finally:
            from repro.bdd import backends

            backends._REGISTRY.pop(name, None)
            _reset_fallback_warnings()

    def test_default_backend_never_warns(self) -> None:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            create_manager("python")
        assert not [
            w for w in caught if issubclass(w.category, BackendFallbackWarning)
        ]


class TestProtocolSurface:
    def test_reference_manager_is_complete(self) -> None:
        assert missing_ops(BddManager()) == []

    def test_reference_manager_satisfies_runtime_protocol(self) -> None:
        assert isinstance(BddManager(), BddBackend)

    def test_surface_lists_the_solver_contract(self) -> None:
        for op in (
            "apply_and", "ite", "exists", "and_exists", "rename",
            "vector_compose", "ref", "deref", "collect_garbage",
            "sift_now", "dump_nodes", "load_nodes", "check",
            "backend_name",
        ):
            assert op in PROTOCOL_SURFACE

    def test_missing_ops_reports_gaps(self) -> None:
        class Partial:
            backend_name = "partial"

        gaps = missing_ops(Partial())
        assert "apply_and" in gaps
        assert "backend_name" not in gaps

    def test_generic_load_nodes_round_trips(self) -> None:
        src = BddManager()
        a, b, c = src.add_vars(["a", "b", "c"])
        f = src.ite(
            src.var_node(a),
            src.apply_xor(src.var_node(b), src.var_node(c)),
            src.apply_not(src.var_node(b)),
        )
        g = src.apply_and(src.var_node(a), src.apply_not(f))
        snap = src.dump_nodes([f, g, 0, 1])
        dst = BddManager()
        loaded = generic_load_nodes(dst, snap)
        native = dst.load_nodes(snap)
        assert loaded == native  # shared unique table ⇒ int equality


# ----------------------------------------------------------------------
# Cross-backend conformance: replay one random program on two backends,
# compare the whole operand pool edge-for-edge via the wire format.
#
# The always-on pairs pit the reference manager's two apply cores
# against each other — genuinely different execution engines over the
# same node store — plus the registry path.  Native pairs (python vs
# buddy) appear exactly when the shared library loads.
# ----------------------------------------------------------------------


def _iterative_python():
    return BddManager(apply_core="iterative")


CONFORMANCE_PAIRS: list = [
    pytest.param("python", _iterative_python, id="python-vs-iterative"),
]
for _a, _b in conformance_pairs():
    CONFORMANCE_PAIRS.append(pytest.param(_a, _b, id=f"{_a}-vs-{_b}"))


@pytest.mark.parametrize("backend_a,backend_b", CONFORMANCE_PAIRS)
@given(program=program_strategy())
@settings(max_examples=200, deadline=None)
def test_backends_compute_identical_functions(
    backend_a, backend_b, program
) -> None:
    run_conformance_case(backend_a, backend_b, program)


@given(program=program_strategy(max_steps=15))
@settings(max_examples=60, deadline=None)
def test_replay_on_one_backend_is_deterministic(program) -> None:
    """Same program, same backend, twice: byte-identical snapshots."""
    mgr_a, mgr_b = BddManager(), BddManager()
    pool_a = run_program(mgr_a, program)
    pool_b = run_program(mgr_b, program)
    assert mgr_a.dump_nodes(pool_a) == mgr_b.dump_nodes(pool_b)
