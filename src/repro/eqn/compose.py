"""Compositional solving of decoupled latch splits.

Some splits decompose: the support graph of the partitioned functions
(latch transition functions, ``u`` communication functions, output
functions) falls apart into connected components that share **no**
variables — not even primary inputs.  Over such a split the product
machine is a synchronous product of independent machines, every subset
state ψ of the direct construction factors as ``Π_c ψ_c``, and the
direct solve spends its time tracking per-depth subsets of components
the unknown ``X`` cannot even observe.

:func:`plan_components` finds the decomposition (union-find over the
variable supports, with all ``(u, v)`` letters pre-merged — any two
components touching ``X``'s alphabet are correlated through ``X`` and
must stay together).  :func:`solve_compositional` then applies it under
a deliberately conservative gate:

* exactly one component carries the ``(u, v)`` letters, and
* every letter-free component *verifies* as conformant — a cheap
  reachability fixpoint over just that component's latches checks that
  ``F`` and ``S`` agree on its outputs in every reachable state.

Under that gate the letter-free components contribute nothing to the
non-conformance condition ``Q`` and nothing ``X`` can see to the image
``P``, so the letterful sub-equation's solution has exactly the
language of the direct solution — while skipping the per-depth subset
tracking of the letter-free latches entirely (*state counts* of the two
automata differ; the languages do not).  When the gate does not hold,
:func:`solve_compositional` returns ``None`` and the caller falls back
to the direct solve; composition never weakens soundness.

:func:`conjoin_solutions` is the general composition primitive
(synchronous product of solution automata); the gated flow above does
not need it — one component carries the whole alphabet — but callers
experimenting with multi-letterful decompositions can combine partial
solutions with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bdd.manager import FALSE
from repro.automata.automaton import Automaton
from repro.eqn.problem import EquationProblem
from repro.obs.trace import span as obs_span
from repro.util.limits import ResourceLimit
from repro.util.timer import Stopwatch


@dataclass
class Component:
    """One connected component of the split's support graph."""

    f_latches: list[str] = field(default_factory=list)
    s_latches: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    letterful: bool = False

    @property
    def num_latches(self) -> int:
        return len(self.f_latches) + len(self.s_latches)


@dataclass
class ComposePlan:
    """A decomposition satisfying the compositional gate."""

    components: list[Component]
    letterful: Component

    @property
    def letterfree(self) -> list[Component]:
        return [c for c in self.components if not c.letterful]


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[int, int] = {}

    def find(self, x: int) -> int:
        parent = self._parent
        root = parent.setdefault(x, x)
        while root != parent[root]:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, *items: int) -> None:
        it = iter(items)
        try:
            root = self.find(next(it))
        except StopIteration:
            return
        for x in it:
            self._parent[self.find(x)] = root


def plan_components(problem: EquationProblem) -> ComposePlan | None:
    """Decompose the split's support graph, or ``None`` if it is coupled.

    Components are equivalence classes of variables under "appears in
    the same function's support": each latch ties its ``cs``/``ns``
    pair to its transition function's support, each ``u`` wire ties its
    letter variable to its function's support, each output ties the
    supports of its two implementations (``O^F_j`` / ``O^S_j``)
    together.  All ``(u, v)`` letter variables are merged up front —
    components sharing only ``X``'s alphabet are still coupled, through
    ``X`` itself.

    Returns ``None`` (composition does not apply) when the graph is one
    component, when a letter variable ends up outside the single
    letterful class, when an output has F/S implementations in
    different classes, or when a constant output pair disagrees.
    """
    mgr = problem.manager
    uf = _UnionFind()
    uv = problem.uv_vars()
    if not uv:
        return None
    uf.union(*uv)
    anchor = uv[0]
    for name, fn in problem.f_next.items():
        uf.union(
            problem.f_cs_vars[name], problem.f_ns_vars[name], *mgr.support(fn)
        )
    for name, fn in problem.s_next.items():
        uf.union(
            problem.s_cs_vars[name], problem.s_ns_vars[name], *mgr.support(fn)
        )
    for name, fn in problem.f_u.items():
        uf.union(problem.u_vars[name], *mgr.support(fn))
    output_root: dict[str, int | None] = {}
    for name in problem.o_names:
        supp = sorted(mgr.support(problem.f_o[name]) | mgr.support(problem.s_o[name]))
        if not supp:
            # A stateless, letter-free constant pair: either it conforms
            # trivially or the equation is degenerate — direct solve.
            if problem.f_o[name] != problem.s_o[name]:
                return None
            output_root[name] = None
            continue
        uf.union(*supp)
        output_root[name] = supp[0]

    letterful_root = uf.find(anchor)
    by_root: dict[int, Component] = {}

    def component(root: int) -> Component:
        comp = by_root.get(root)
        if comp is None:
            comp = by_root[root] = Component(letterful=root == letterful_root)
        return comp

    for name in problem.f_cs_vars:
        component(uf.find(problem.f_cs_vars[name])).f_latches.append(name)
    for name in problem.s_cs_vars:
        component(uf.find(problem.s_cs_vars[name])).s_latches.append(name)
    for name, root in output_root.items():
        if root is not None:
            component(uf.find(root)).outputs.append(name)
    letterful = by_root.get(letterful_root)
    if letterful is None:
        return None
    components = list(by_root.values())
    # The gate: a strict decomposition with at least one stateful
    # letter-free component (otherwise there is nothing to skip).
    if not any(c.num_latches > 0 for c in components if not c.letterful):
        return None
    return ComposePlan(components=components, letterful=letterful)


def conforming_component(problem: EquationProblem, comp: Component) -> bool:
    """Verify a letter-free component: ``F`` and ``S`` agree everywhere.

    Runs a forward-reachability fixpoint over just this component's
    latches (its transition functions depend only on primary inputs and
    its own state, by construction of the decomposition) and checks
    that no reachable joint state falsifies any of the component's
    output-conformance conditions ``C_j = [O^F_j ≡ O^S_j]``.
    """
    from repro.symb.reach import reachable_states

    mgr = problem.manager
    cs_vars = [problem.f_cs_vars[n] for n in comp.f_latches] + [
        problem.s_cs_vars[n] for n in comp.s_latches
    ]
    ns_vars = [problem.f_ns_vars[n] for n in comp.f_latches] + [
        problem.s_ns_vars[n] for n in comp.s_latches
    ]
    parts = [
        mgr.apply_iff(mgr.var_node(problem.f_ns_vars[n]), problem.f_next[n])
        for n in comp.f_latches
    ] + [
        mgr.apply_iff(mgr.var_node(problem.s_ns_vars[n]), problem.s_next[n])
        for n in comp.s_latches
    ]
    foreign = [
        v for v in problem.all_cs_vars() if v not in set(cs_vars)
    ]
    init = mgr.exists(problem.init_cube, foreign) if foreign else problem.init_cube
    input_vars = [problem.i_vars[n] for n in problem.i_names]
    if cs_vars:
        reach = reachable_states(
            mgr, parts, init, cs_vars, ns_vars, input_vars
        ).states
    else:
        reach = init
    for name in comp.outputs:
        conf = mgr.apply_iff(problem.f_o[name], problem.s_o[name])
        if mgr.apply_and(reach, mgr.apply_not(conf)) != FALSE:
            return False
    return True


def subproblem(problem: EquationProblem, comp: Component) -> EquationProblem:
    """The letterful component's sub-equation, on the shared manager.

    A filtered :class:`~repro.eqn.problem.EquationProblem`: only the
    component's latches, transition functions and outputs survive; the
    full ``(u, v)`` alphabet carries over (the component holds every
    letter variable by the gate); the initial cube is projected onto
    the component's state variables.  The returned problem runs through
    the ordinary solver machinery unchanged — frontier strategies,
    batching, sharding and residency budgets all apply.
    """
    mgr = problem.manager
    f_latches = set(comp.f_latches)
    s_latches = set(comp.s_latches)
    outputs = set(comp.outputs)
    keep_cs = {problem.f_cs_vars[n] for n in comp.f_latches} | {
        problem.s_cs_vars[n] for n in comp.s_latches
    }
    foreign = [v for v in problem.all_cs_vars() if v not in keep_cs]
    init = mgr.exists(problem.init_cube, foreign) if foreign else problem.init_cube
    sub = EquationProblem(
        manager=mgr,
        split=problem.split,
        i_names=list(problem.i_names),
        o_names=[n for n in problem.o_names if n in outputs],
        u_names=list(problem.u_names),
        v_names=list(problem.v_names),
        i_vars=dict(problem.i_vars),
        o_vars={n: problem.o_vars[n] for n in problem.o_names if n in outputs},
        u_vars=dict(problem.u_vars),
        v_vars=dict(problem.v_vars),
        f_cs_vars={n: problem.f_cs_vars[n] for n in problem.f_cs_vars if n in f_latches},
        f_ns_vars={n: problem.f_ns_vars[n] for n in problem.f_ns_vars if n in f_latches},
        s_cs_vars={n: problem.s_cs_vars[n] for n in problem.s_cs_vars if n in s_latches},
        s_ns_vars={n: problem.s_ns_vars[n] for n in problem.s_ns_vars if n in s_latches},
        dc_var=problem.dc_var,
        dc_ns_var=problem.dc_ns_var,
        init_cube=init,
        product_order=problem.product_order,
    )
    sub.f_next = {n: problem.f_next[n] for n in problem.f_next if n in f_latches}
    sub.f_u = dict(problem.f_u)
    sub.f_o = {n: problem.f_o[n] for n in problem.o_names if n in outputs}
    sub.s_next = {n: problem.s_next[n] for n in problem.s_next if n in s_latches}
    sub.s_o = {n: problem.s_o[n] for n in problem.o_names if n in outputs}
    return sub


def conjoin_solutions(solutions: list[Automaton]) -> Automaton:
    """Synchronous product of solution automata (shared manager).

    The compositional principle in its general form: when an equation
    factors into independent sub-equations, the conjunction of their
    most general solutions solves the whole.  Labels conjoin exactly
    (:func:`repro.automata.ops.product`), so automata over different
    letter supports compose as in the paper.
    """
    from repro.automata.ops import product

    if not solutions:
        raise ValueError("conjoin_solutions needs at least one automaton")
    result = solutions[0]
    for aut in solutions[1:]:
        result = product(result, aut)
    return result


def solve_compositional(
    problem: EquationProblem,
    *,
    limit: ResourceLimit | None = None,
    schedule: bool = True,
    shards: int = 1,
    shard_opts: dict | None = None,
    frontier: str = "dfs",
    batch: int = 1,
    resident_budget: int | None = None,
    spill_dir: str | None = None,
):
    """Solve ``problem`` compositionally, or ``None`` when the gate fails.

    See the module docstring for the gate.  On success, returns a
    :class:`~repro.eqn.solver.SolveResult` whose solution has exactly
    the language of the direct solve (state counts differ — that is the
    point), carrying the original problem, ``compose: True`` options
    and per-component statistics in ``stats.extra``.
    """
    from repro.eqn.solver import SolveResult, solve_equation

    watch = Stopwatch()
    with obs_span("compose_plan") as plan_span:
        plan = plan_components(problem)
        if plan is None:
            plan_span.set(components=1, applied=False)
            return None
        mgr = problem.manager
        verified = 0
        for comp in plan.letterfree:
            with obs_span(
                "compose_verify", latches=comp.num_latches
            ) as verify_span:
                ok = conforming_component(problem, comp)
                verify_span.set(conforming=ok)
            if not ok:
                # A non-conforming letter-free component couples the
                # whole Q condition — only the direct solve is exact.
                return None
            verified += 1
        plan_span.set(components=len(plan.components), applied=True)
    sub = subproblem(problem, plan.letterful)
    mgr.ref(sub.init_cube)
    try:
        result = solve_equation(
            sub,
            method="partitioned",
            limit=limit,
            schedule=schedule,
            trim=True,
            shards=shards,
            shard_opts=shard_opts,
            frontier=frontier,
            batch=batch,
            resident_budget=resident_budget,
            spill_dir=spill_dir,
        )
    finally:
        mgr.deref(sub.init_cube)
    stats = result.stats
    if stats is not None:
        stats.extra["compose_components"] = len(plan.components)
        stats.extra["compose_verified_components"] = verified
        stats.extra["compose_skipped_latches"] = sum(
            c.num_latches for c in plan.letterfree
        )
        stats.extra["compose_solved_latches"] = plan.letterful.num_latches
    options = dict(result.options)
    options["compose"] = True
    options["resident_budget"] = resident_budget
    return SolveResult(
        problem=problem,
        method=result.method,
        solution=result.solution,
        csf=result.csf,
        seconds=watch.elapsed(),
        stats=stats,
        options=options,
    )
