"""Legacy setup shim for offline development environments.

All package metadata lives in ``pyproject.toml`` (PEP 621); setuptools
reads it from there.  This file exists only so environments without
network access or the ``wheel`` package can still do a legacy editable
install (``python setup.py develop``) — modern ``pip install .`` uses
the pyproject build backend and ignores this path.
"""

from setuptools import setup

setup()
