"""Tests for the symbolic STG builder vs the explicit one."""

from __future__ import annotations

import pytest

from repro.bdd import BddManager
from repro.bench import circuits, figure3_network, s27
from repro.errors import AutomatonError
from repro.network import build_network_bdds
from repro.automata import equivalent, functions_to_automaton, network_to_automaton


def symbolic_stg(net, mgr=None):
    """Build the (i, o) automaton of a network via functions_to_automaton."""
    mgr = mgr if mgr is not None else BddManager()
    # Letters first (above the state variables).
    i_vars = {n: mgr.add_var(n) for n in net.inputs}
    o_vars = {n: mgr.add_var(n) for n in net.outputs}
    cs, ns = {}, {}
    for name in net.latches:
        cs[name] = mgr.add_var(f"cs.{name}")
        ns[name] = mgr.add_var(f"ns.{name}")
    bdds = build_network_bdds(net, mgr, i_vars, cs)
    return functions_to_automaton(
        mgr,
        alphabet=list(net.inputs) + list(net.outputs),
        letter_bindings={o_vars[n]: bdds.outputs[n] for n in net.outputs},
        next_state={ns[n]: bdds.next_state[n] for n in net.latches},
        ns_of_cs={cs[n]: ns[n] for n in net.latches},
        init={cs[n]: latch.init for n, latch in net.latches.items()},
    )


@pytest.mark.parametrize(
    "make",
    [
        figure3_network,
        s27,
        lambda: circuits.counter(3),
        lambda: circuits.johnson(3),
        lambda: circuits.sequence_detector("101"),
        lambda: circuits.traffic_light(),
        lambda: circuits.random_network(2, 3, 2, seed=6),
    ],
)
def test_symbolic_matches_explicit_stg(make) -> None:
    net = make()
    symbolic = symbolic_stg(net)
    mgr = symbolic.manager
    explicit = network_to_automaton(net, mgr)
    assert symbolic.num_states == explicit.num_states
    assert equivalent(symbolic, explicit)


def test_symbolic_stg_is_deterministic() -> None:
    aut = symbolic_stg(s27())
    assert aut.is_deterministic()
    assert aut.accepting == set(range(aut.num_states))


def test_max_states_guard() -> None:
    net = circuits.counter(4)
    mgr = BddManager()
    i_vars = {n: mgr.add_var(n) for n in net.inputs}
    o_vars = {n: mgr.add_var(n) for n in net.outputs}
    cs, ns = {}, {}
    for name in net.latches:
        cs[name] = mgr.add_var(f"cs.{name}")
        ns[name] = mgr.add_var(f"ns.{name}")
    bdds = build_network_bdds(net, mgr, i_vars, cs)
    with pytest.raises(AutomatonError):
        functions_to_automaton(
            mgr,
            alphabet=list(net.inputs) + list(net.outputs),
            letter_bindings={o_vars[n]: bdds.outputs[n] for n in net.outputs},
            next_state={ns[n]: bdds.next_state[n] for n in net.latches},
            ns_of_cs={cs[n]: ns[n] for n in net.latches},
            init={cs[n]: latch.init for n, latch in net.latches.items()},
            max_states=3,
        )


def test_unconstrained_letters_are_free_inputs() -> None:
    # A component with NO letter bindings accepts any letter values while
    # following its transition structure.
    net = circuits.shift_register(2)
    mgr = BddManager()
    i_vars = {n: mgr.add_var(n) for n in net.inputs}
    cs, ns = {}, {}
    for name in net.latches:
        cs[name] = mgr.add_var(f"cs.{name}")
        ns[name] = mgr.add_var(f"ns.{name}")
    bdds = build_network_bdds(net, mgr, i_vars, cs)
    aut = functions_to_automaton(
        mgr,
        alphabet=list(net.inputs),
        letter_bindings={},
        next_state={ns[n]: bdds.next_state[n] for n in net.latches},
        ns_of_cs={cs[n]: ns[n] for n in net.latches},
        init={cs[n]: latch.init for n, latch in net.latches.items()},
    )
    assert aut.is_complete()
