"""Client for the job server (stdlib ``urllib`` — no dependencies).

Used by the ``repro submit`` / ``repro jobs`` subcommands and by the
end-to-end tests; importable directly for scripting::

    from repro.serve.client import ServeClient

    client = ServeClient("http://127.0.0.1:8642")
    job = client.submit({"blif": blif_text, "x_latches": ["v6", "v7"]})
    done = client.wait(job["id"])
    print(client.result(job["id"])["csf_states"])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import ServeError

#: Job states that will never change again (polling can stop).
_TERMINAL = ("done", "failed", "cancelled")


class ServeClient:
    """Thin JSON-over-HTTP wrapper around one server's API."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- one call per endpoint ----------------------------------------- #

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The server's Prometheus text exposition (not JSON)."""
        request = urllib.request.Request(
            f"{self.base_url}/metrics", method="GET"
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.URLError as exc:
            raise ServeError(
                f"cannot reach server at {self.base_url}: "
                f"{getattr(exc, 'reason', exc)}"
            ) from exc

    def cache(self) -> dict:
        return self._request("GET", "/cache")

    def submit(self, body: dict) -> dict:
        return self._request("POST", "/jobs", body)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def events(self, job_id: str, since: int = 0) -> dict:
        return self._request("GET", f"/jobs/{job_id}/events?since={since}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    # -- conveniences -------------------------------------------------- #

    def wait(
        self,
        job_id: str,
        *,
        poll: float = 0.05,
        timeout: float | None = None,
        on_event=None,
    ) -> dict:
        """Poll until the job is terminal, streaming events on the way.

        ``on_event`` (when given) is called once per fresh event — this
        is what renders the live progress line of ``repro submit``.
        Raises :class:`~repro.errors.ServeError` on timeout.
        """
        cursor = 0
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if on_event is not None:
                batch = self.events(job_id, since=cursor)
                for event in batch["events"]:
                    on_event(event)
                cursor = batch["next"]
            job = self.job(job_id)
            if job["status"] in _TERMINAL:
                if on_event is not None:
                    batch = self.events(job_id, since=cursor)
                    for event in batch["events"]:
                        on_event(event)
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(f"timed out waiting for {job_id}")
            time.sleep(poll)

    # ------------------------------------------------------------------ #

    def _request(self, method: str, path: str, body: dict | None = None):
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error")
            except Exception:
                detail = str(exc)
            raise ServeError(f"{method} {path} failed: {detail}") from exc
        except urllib.error.URLError as exc:
            raise ServeError(
                f"cannot reach server at {self.base_url}: {exc.reason}"
            ) from exc
