"""Join-tree scheduling for the sharded runtime.

The conjunctive decomposition used here is the early-quantification
argument of the paper, distributed across processes.  Write an image as

.. math::

    \\exists Q .\\; (\\psi \\wedge \\Pi_k C_k)

where the :math:`C_k` are *clusters* of relation parts.  Ship ψ to every
shard; shard *k* computes the partial image

.. math::

    p_k = \\exists L_k .\\; (\\psi \\wedge C_k)

where :math:`L_k \\subseteq Q` are the variables **local** to cluster
*k*: they appear in no other cluster and not in the support of ψ.  Since
conjunction is idempotent (:math:`\\psi \\wedge \\psi = \\psi`) and each
:math:`L_k` is absent from every other factor,

.. math::

    \\exists Q .\\; (\\psi \\wedge \\Pi_k C_k)
    \\;=\\; \\exists (Q - \\cup_k L_k) .\\; \\Pi_k p_k

— the coordinator joins the transferred partials with the ordinary
scheduled ``and_exists`` fold over the remaining shared variables.
Every step is exact, so the sharded image is *function-identical* to the
in-process one (and therefore edge-identical in the coordinator manager,
by BDD canonicity).

:func:`partition_clusters` builds the cluster assignment with the
:func:`repro.symb.schedule.schedule_supports` affinity heuristic;
:class:`ShardedImage` owns the worker-side plans and runs the
transfer-based join per constraint.

Two decompositions, one join protocol
-------------------------------------

The conjunctive *cluster* mode above shines when the quantified
variables split cleanly across clusters (each shard retires its own).
When they do not — image computation over a transition relation shares
the input and current-state variables across *every* part, so the local
sets come out empty and each shard would just build an unquantified
product — the dual *split* mode is used instead: image distributes over
disjunction,

.. math::

    \\exists Q . ((\\psi_1 \\vee \\psi_2) \\wedge \\Pi) =
    (\\exists Q . \\psi_1 \\wedge \\Pi) \\vee (\\exists Q . \\psi_2 \\wedge \\Pi)

so every shard holds *all* parts with a full early-quantification plan,
the constraint is split into cofactor slices on its top variables, each
shard images its slices, and the join is a cheap OR.  ``mode="auto"``
(the default) picks cluster mode when in-shard retirement dominates,
split mode when no retirement is possible — and when the heuristic is
genuinely unsure (some but not most quantified variables retire
in-shard) it **races**: both setups are loaded (worker-manager
canonicity dedups the shared part nodes, so the double load is cheap),
the first constraint runs through *both* joins, the results are checked
identical, and the faster join wins the rest of the run
(:meth:`ShardedImage.resolve_race`).

Work stealing
-------------

The disjunctive split join is embarrassingly parallel but statically
dealt slices can still leave a shard idle while a peer grinds through a
heavy slice.  :meth:`ShardedImage.run_resident_batch` replaces the
static deal with a **work-stealing dispatcher**: each shard keeps a
small window of single-slice commands in flight, and whenever its own
queue drains it steals pending slices from the most-loaded peer.
Because every subset state is shard-resident on *every* worker
(the retain protocol), re-dispatching a slice is just a cheap
``(handle, bits)`` spec — no BDD crosses the wire.  OR is commutative
and associative and BDDs are canonical, so the joined image is
identical whatever the final placement and completion order.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.bdd.io import dump_nodes, load_nodes
from repro.bdd.manager import FALSE, BddManager
from repro.obs.trace import instant as obs_instant
from repro.obs.trace import span as obs_span
from repro.shard.pool import ShardError, ShardPool
from repro.symb.image import image_partitioned
from repro.symb.schedule import schedule_supports


@dataclass
class ClusterAssignment:
    """Which parts each shard owns, and which variables it may retire."""

    clusters: list[list[int]]  # part indices per shard (affinity-ordered)
    local_vars: list[list[int]]  # quantify vars retired inside each shard
    shared_vars: list[int]  # quantify vars left for the coordinator join

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)


def partition_clusters(
    mgr: BddManager,
    parts: Sequence[int],
    num_shards: int,
    quantify: Iterable[int],
    constraint_support: Iterable[int] = (),
) -> ClusterAssignment:
    """Assign ``parts`` to (at most) ``num_shards`` affinity clusters.

    The parts are first ordered by the early-quantification heuristic
    (:func:`~repro.symb.schedule.schedule_supports`): parts adjacent in
    that order share support variables and retire quantified variables
    together.  The ordered list is then cut into contiguous chunks of
    balanced total BDD size, one per shard — contiguity preserves the
    affinity, balance keeps the shard workloads comparable.

    For each cluster the *local* variable set is computed: quantified
    variables mentioned by that cluster only — not by any other cluster
    and not by ``constraint_support`` (the support bound of every future
    constraint).  Those are sound to retire entirely inside the shard;
    everything else stays shared and is quantified at the join.
    """
    qset = set(quantify)
    csupp = set(constraint_support)
    supports = [mgr.support(p) for p in parts]
    ordered = [
        idx
        for idx, _ in schedule_supports(
            supports, qset, constraint_support=csupp
        )
    ]
    num = max(1, min(num_shards, len(ordered)))
    sizes = [mgr.size(p) for p in parts]
    total = sum(sizes[i] for i in ordered)

    clusters: list[list[int]] = []
    chunk: list[int] = []
    acc = 0
    done = 0
    for pos, idx in enumerate(ordered):
        chunk.append(idx)
        acc += sizes[idx]
        remaining_parts = len(ordered) - pos - 1
        remaining_chunks = num - len(clusters) - 1
        if remaining_chunks == 0:
            continue
        # Close the chunk once it reaches its proportional share of what
        # is left, but always keep at least one part per remaining chunk.
        target = (total - done) / (remaining_chunks + 1)
        if acc >= target or remaining_parts <= remaining_chunks:
            clusters.append(chunk)
            done += acc
            chunk = []
            acc = 0
    if chunk:
        clusters.append(chunk)

    cluster_supports = [
        set().union(*(supports[i] for i in cluster)) for cluster in clusters
    ]
    local_vars: list[list[int]] = []
    claimed: set[int] = set()
    for k, supp in enumerate(cluster_supports):
        others: set[int] = set(csupp)
        for j, other in enumerate(cluster_supports):
            if j != k:
                others |= other
        local = sorted((supp & qset) - others)
        local_vars.append(local)
        claimed.update(local)
    shared = sorted(qset - claimed)
    return ClusterAssignment(
        clusters=clusters, local_vars=local_vars, shared_vars=shared
    )


def load_parts(
    pool: ShardPool, shard: int, mgr: BddManager, parts: Sequence[int]
) -> list[int]:
    """Transfer ``parts`` into ``shard``'s manager; returns their handles."""
    handles = []
    for part in parts:
        handle = pool.new_handle()
        pool.submit(shard, ("load", handle, dump_nodes(mgr, [part])))
        handles.append(handle)
    for _ in handles:
        pool.collect(shard)
    return handles


def make_plan(
    pool: ShardPool,
    shard: int,
    mgr: BddManager,
    part_handles: Sequence[int],
    quantify: Iterable[int],
    constraint_support: Iterable[int],
) -> int:
    """Build a reusable worker-side image plan; returns its plan id.

    Variables cross the pipe by name, so the plan stays valid however
    either side reorders afterwards.
    """
    plan_id = pool.new_handle()
    pool.call(
        shard,
        (
            "plan",
            plan_id,
            list(part_handles),
            [mgr.var_name(v) for v in quantify],
            [mgr.var_name(v) for v in constraint_support],
        ),
    )
    return plan_id


class ShardedImage:
    """A partitioned image computation distributed over a worker pool.

    Construction assigns partition clusters to shards
    (:func:`partition_clusters`), transfers each cluster into its
    worker's manager once, and precomputes a worker-side image plan that
    retires the cluster's local variables.  Every :meth:`run` then costs
    one constraint broadcast plus one partial-image transfer per shard,
    folded in the coordinator with the ordinary scheduled ``and_exists``
    join over the shared variables.

    The object holds only variable *indices* and worker handles, so it
    stays valid across coordinator-side garbage collection and in-place
    reordering (callers pin the parts themselves, exactly as for
    :func:`repro.symb.image.plan_image`).
    """

    def __init__(
        self,
        pool: ShardPool,
        mgr: BddManager,
        parts: Sequence[int],
        quantify: Iterable[int],
        constraint_support: Iterable[int],
        *,
        mode: str = "auto",
    ) -> None:
        if mode not in ("auto", "cluster", "split", "race"):
            raise ShardError(
                f"unknown sharded-image mode {mode!r}; "
                "choose from 'auto', 'cluster', 'split', 'race'"
            )
        self.pool = pool
        self.mgr = mgr
        qvars = list(quantify)
        csupp = list(constraint_support)
        self.assignment = partition_clusters(
            mgr, parts, pool.num_shards, qvars, csupp
        )
        #: Slices re-dispatched by the work-stealing batch dispatcher.
        self.steals = 0
        #: Timing record of a resolved speculative race (or None).
        self.race_outcome: dict | None = None
        if mode == "auto":
            # Cluster mode only pays when shards can retire variables
            # in-shard; otherwise every shard would just build an
            # unquantified ψ ∧ cluster product and leave all the real
            # work (and more) to the join.  In between — some variables
            # retire but most stay shared — neither decomposition
            # dominates on paper, so race them on the first constraint.
            retirable = sum(len(lv) for lv in self.assignment.local_vars)
            part_supp: set[int] = set()
            for p in parts:
                part_supp |= mgr.support(p)
            contested = (set(qvars) & part_supp) - set(csupp)
            if retirable == 0:
                mode = "split"
            elif retirable >= 0.5 * len(contested):
                mode = "cluster"
            else:
                mode = "race"
        self.mode = mode
        self._plan_ids: list[int] = []
        self._shards: list[int] = []
        self._race_setups: dict[str, dict] = {}
        if mode in ("cluster", "race"):
            self._race_setups["cluster"] = self._setup_cluster(parts, csupp)
        if mode in ("split", "race"):
            self._race_setups["split"] = self._setup_split(parts, qvars, csupp)
        if mode in ("cluster", "split"):
            self._adopt(mode)

    def _setup_cluster(self, parts: Sequence[int], csupp: list[int]) -> dict:
        pool, mgr = self.pool, self.mgr
        plan_ids: list[int] = []
        shards: list[int] = []
        handles_by_shard: dict[int, list[int]] = {}
        for k, cluster in enumerate(self.assignment.clusters):
            handles = load_parts(pool, k, mgr, [parts[i] for i in cluster])
            plan_id = make_plan(
                pool, k, mgr, handles, self.assignment.local_vars[k], csupp
            )
            plan_ids.append(plan_id)
            shards.append(k)
            handles_by_shard[k] = handles
        return {
            "plan_ids": plan_ids,
            "shards": shards,
            "shared": list(self.assignment.shared_vars),
            "handles": handles_by_shard,
        }

    def _setup_split(
        self, parts: Sequence[int], qvars: list[int], csupp: list[int]
    ) -> dict:
        # Split mode: every shard owns all parts + the full plan;
        # run() deals constraint slices across them.
        pool, mgr = self.pool, self.mgr
        plan_ids: list[int] = []
        shards: list[int] = []
        handles_by_shard: dict[int, list[int]] = {}
        for k in range(pool.num_shards):
            handles = load_parts(pool, k, mgr, parts)
            plan_id = make_plan(pool, k, mgr, handles, qvars, csupp)
            plan_ids.append(plan_id)
            shards.append(k)
            handles_by_shard[k] = handles
        return {
            "plan_ids": plan_ids,
            "shards": shards,
            # Constraint variables eligible as slice splitters, topmost
            # level first (indices, so reordering keeps this valid).
            "candidates": list(csupp),
            "handles": handles_by_shard,
        }

    def _adopt(self, which: str) -> None:
        """Point the active-join attributes at one of the loaded setups."""
        setup = self._race_setups[which]
        self._plan_ids = setup["plan_ids"]
        self._shards = setup["shards"]
        if which == "cluster":
            self._shared = setup["shared"]
        else:
            self._split_candidates = setup["candidates"]

    def _commit(self, winner: str) -> None:
        """End a race: adopt ``winner`` and free the loser's parts."""
        loser = "split" if winner == "cluster" else "cluster"
        self._adopt(winner)
        self.mode = winner
        setup = self._race_setups.pop(loser, None)
        if setup is not None:
            # The loser's plans are never run again; freeing its part
            # handles releases the (canonically shared) nodes its refs
            # were keeping alive.
            for shard, handles in setup["handles"].items():
                self.pool.call(shard, ("free", handles))

    def resolve_race(self, constraint: int) -> int:
        """Run ``constraint`` through both joins and commit the winner.

        Times the conjunctive cluster join against the disjunctive
        split join on one real constraint, verifies the two images are
        edge-identical (they must be — both are exact — so a mismatch
        raises :class:`ShardError`), commits to the faster one for every
        subsequent :meth:`run`, and frees the loser's worker-side parts.
        Returns the image of ``constraint``.

        Call this standalone (no pending pipe traffic): both runs are
        blocking round trips.
        """
        if self.mode != "race":
            raise ShardError(f"resolve_race: mode is {self.mode!r}, not 'race'")
        if constraint == FALSE:
            # Nothing to learn from an empty constraint; stay racing.
            return FALSE
        self._adopt("cluster")
        with obs_span("race_cluster_leg"):
            t0 = time.perf_counter()
            r_cluster = self._run_cluster(constraint)
            t_cluster = time.perf_counter() - t0
        self._adopt("split")
        with obs_span("race_split_leg"):
            t0 = time.perf_counter()
            r_split = self._run_split(constraint)
            t_split = time.perf_counter() - t0
        if r_cluster != r_split:
            raise ShardError(
                "speculative join race: cluster and split joins disagree "
                "(both are exact; this is a sharding bug)"
            )
        winner = "cluster" if t_cluster <= t_split else "split"
        self.race_outcome = {
            "winner": winner,
            "cluster_seconds": t_cluster,
            "split_seconds": t_split,
        }
        obs_instant(
            "race_resolved",
            winner=winner,
            cluster_seconds=t_cluster,
            split_seconds=t_split,
        )
        self._commit(winner)
        return r_cluster

    # ------------------------------------------------------------------ #

    def run(self, constraint: int) -> int:
        """``∃ quantify . (constraint ∧ Π parts)`` via the shard pool.

        Result-identical to the in-process
        :func:`~repro.symb.image.image_partitioned`: cluster mode joins
        the per-shard partials with a scheduled ``and_exists`` fold,
        split mode ORs the per-slice images.
        """
        if constraint == FALSE:
            return FALSE
        if self.mode == "race":
            return self.resolve_race(constraint)
        if self.mode == "cluster":
            return self._run_cluster(constraint)
        return self._run_split(constraint)

    def _run_cluster(self, constraint: int) -> int:
        mgr = self.mgr
        with obs_span("image_cluster", shards=len(self._shards)):
            blob = dump_nodes(mgr, [constraint])
            for shard, plan_id in zip(self._shards, self._plan_ids):
                self.pool.submit(shard, ("image", plan_id, blob))
            partials = []
            dead = False
            for shard in self._shards:
                snapshot = self.pool.collect(shard)
                if dead:
                    continue
                (partial,) = load_nodes(mgr, snapshot)
                if partial == FALSE:
                    dead = True
                    continue
                partials.append(partial)
            if dead:
                return FALSE
            # The join: each partial already contains ψ (idempotent ∧), so
            # the fold's constraint is TRUE and only the shared variables
            # remain to quantify.
            return image_partitioned(
                mgr, partials, 1, self._shared, schedule=True
            )

    def _slice_pairs(self, constraint: int) -> list[tuple[int, dict[str, int]]]:
        """Disjoint cofactor slices of ``constraint``, one per shard.

        Splits on the topmost constraint variables actually in the
        support, binary-tree style, until there are enough slices (or no
        split variable is left).  The slices OR back to the constraint
        exactly, so the join is lossless.  Each slice is returned with
        its defining assignment (variable *name* -> 0/1), so a worker
        holding the constraint can rebuild the slice without the slice
        BDD ever crossing the wire (the resident-handle protocol).
        """
        mgr = self.mgr
        support = mgr.support(constraint)
        splitters = sorted(
            (v for v in self._split_candidates if v in support),
            key=mgr.var_level,
        )
        slices: list[tuple[int, dict[str, int]]] = [(constraint, {})]
        for var in splitters:
            if len(slices) >= self.pool.num_shards:
                break
            pos, neg = mgr.var_node(var), mgr.nvar_node(var)
            name = mgr.var_name(var)
            nxt: list[tuple[int, dict[str, int]]] = []
            for s, spec in slices:
                lo = mgr.apply_and(s, neg)
                hi = mgr.apply_and(s, pos)
                if lo != FALSE:
                    nxt.append((lo, {**spec, name: 0}))
                if hi != FALSE:
                    nxt.append((hi, {**spec, name: 1}))
            slices = nxt
        return slices

    def _slices(self, constraint: int) -> list[int]:
        """The slice BDDs alone (the snapshot-shipping split path)."""
        return [edge for edge, _ in self._slice_pairs(constraint)]

    def _run_split(self, constraint: int) -> int:
        mgr = self.mgr
        with obs_span("image_split", shards=len(self._shards)) as split_span:
            slices = self._slices(constraint)
            split_span.set(slices=len(slices))
            submitted: list[int] = []
            for i, s in enumerate(slices):
                shard = i % len(self._shards)
                self.pool.submit(
                    shard,
                    ("image", self._plan_ids[shard], dump_nodes(mgr, [s])),
                )
                submitted.append(shard)
            result = FALSE
            for shard in submitted:
                (img,) = load_nodes(mgr, self.pool.collect(shard))
                result = mgr.apply_or(result, img)
            return result

    # -- the resident-handle batched protocol --------------------------- #

    def submit_resident(
        self, items: Sequence[tuple[int, int]]
    ) -> Callable[[], list[int]]:
        """Submit a batch of images over **shard-resident** constraints.

        ``items`` is a list of ``(handle, constraint)`` pairs: the
        handle names the constraint in every worker's resident registry
        (the caller must have ``retain``-ed it there first), and the
        coordinator-side edge is used only for slice planning — no
        snapshot is shipped.  Every worker command is submitted
        immediately; the returned closure collects the replies (in the
        ShardPool FIFO order) and joins them, one result per item.
        Splitting submit from collect lets callers pipeline further
        commands — e.g. the per-output ``Q_ψ`` images of the same batch
        — behind these before blocking on any reply.

        The join math is identical to :meth:`run`, so the batched
        resident path is result-identical to the in-process image.
        """
        if self.mode == "race":
            # The batched protocol pipelines further commands behind
            # these submissions, so there is no safe point to run two
            # blocking timed joins here; commit to the cluster setup
            # (the heuristic found real in-shard retirement, or the
            # race would not have been armed).
            self._commit("cluster")
        if self.mode == "cluster":
            return self._submit_resident_cluster(items)
        return self._submit_resident_split(items)

    def _submit_resident_cluster(
        self, items: Sequence[tuple[int, int]]
    ) -> Callable[[], list[int]]:
        handles = [handle for handle, _ in items]
        for shard, plan_id in zip(self._shards, self._plan_ids):
            self.pool.submit(shard, ("expand_batch", plan_id, handles))

        def collect() -> list[int]:
            mgr = self.mgr
            per_shard = [self.pool.collect(shard) for shard in self._shards]
            results: list[int] = []
            for i in range(len(items)):
                partials = []
                dead = False
                for snaps in per_shard:
                    (partial,) = load_nodes(mgr, snaps[i])
                    if partial == FALSE:
                        dead = True
                        break
                    partials.append(partial)
                if dead:
                    results.append(FALSE)
                    continue
                results.append(
                    image_partitioned(
                        mgr, partials, 1, self._shared, schedule=True
                    )
                )
            return results

        return collect

    def _submit_resident_split(
        self, items: Sequence[tuple[int, int]]
    ) -> Callable[[], list[int]]:
        num = len(self._shards)
        per_shard_items: list[list[tuple[int, dict[str, int]]]] = [
            [] for _ in range(num)
        ]
        owners: list[list[int]] = [[] for _ in range(num)]
        cursor = 0
        for i, (handle, constraint) in enumerate(items):
            for _, spec in self._slice_pairs(constraint):
                pos = cursor % num
                cursor += 1
                per_shard_items[pos].append((handle, spec))
                owners[pos].append(i)
        submitted: list[int] = []
        for pos in range(num):
            if not per_shard_items[pos]:
                continue
            self.pool.submit(
                self._shards[pos],
                ("expand_batch", self._plan_ids[pos], per_shard_items[pos]),
            )
            submitted.append(pos)

        def collect() -> list[int]:
            mgr = self.mgr
            results = [FALSE] * len(items)
            for pos in submitted:
                snaps = self.pool.collect(self._shards[pos])
                for i, snap in zip(owners[pos], snaps):
                    (img,) = load_nodes(mgr, snap)
                    results[i] = mgr.apply_or(results[i], img)
            return results

        return collect

    # -- the work-stealing batch dispatcher ------------------------------ #

    def run_resident_batch(
        self, items: Sequence[tuple[int, int]], *, window: int = 2
    ) -> list[int]:
        """Image a resident batch with dynamic work stealing (blocking).

        Split mode only (any other mode falls back to
        :meth:`submit_resident` + collect, which is already optimal for
        the cluster join).  The batch's cofactor slices are dealt
        round-robin into per-shard queues, each shard keeps up to
        ``window`` single-slice ``expand_batch`` commands in flight, and
        the coordinator collects from whichever worker finishes first
        (:meth:`~repro.shard.pool.ShardPool.wait_any`).  A shard whose
        own queue drains **steals** the tail of the most-loaded peer's
        queue — a resident ψ is named by the same handle on every
        worker, so the stolen slice is re-dispatched as a ``(handle,
        bits)`` spec with no BDD transfer.  :attr:`steals` counts the
        re-dispatched slices.

        The per-item result is the OR of its slice images; OR is
        commutative and associative and BDDs are canonical, so the
        result is identical to the statically dealt join whatever
        placement and completion order the stealing produced.

        Must be called with no other traffic pending on the pool: the
        dispatcher owns every watched pipe until the batch completes.
        """
        if self.mode != "split":
            collect = self.submit_resident(items)
            return collect()
        pool, mgr = self.pool, self.mgr
        num = len(self._shards)
        steal_span = obs_span(
            "steal_batch", items=len(items), shards=num, window=window
        )
        steals_before = self.steals
        queues: list[deque] = [deque() for _ in range(num)]
        cursor = 0
        for i, (handle, constraint) in enumerate(items):
            for _, spec in self._slice_pairs(constraint):
                queues[cursor % num].append((i, handle, spec))
                cursor += 1
        results = [FALSE] * len(items)
        inflight: list[deque] = [deque() for _ in range(num)]

        def top_up(pos: int) -> None:
            while len(inflight[pos]) < window:
                if queues[pos]:
                    i, handle, spec = queues[pos].popleft()
                else:
                    donor = max(range(num), key=lambda p: len(queues[p]))
                    if not queues[donor]:
                        return
                    # Steal from the tail: the head slices are about to
                    # be dispatched locally by the donor itself.
                    i, handle, spec = queues[donor].pop()
                    self.steals += 1
                pool.submit(
                    self._shards[pos],
                    ("expand_batch", self._plan_ids[pos], [(handle, spec)]),
                )
                inflight[pos].append(i)

        with steal_span:
            for pos in range(num):
                top_up(pos)
            shard_pos = {shard: pos for pos, shard in enumerate(self._shards)}
            while any(inflight):
                busy = [self._shards[p] for p in range(num) if inflight[p]]
                for shard in pool.wait_any(busy):
                    pos = shard_pos[shard]
                    (snap,) = pool.collect(shard)
                    i = inflight[pos].popleft()
                    (img,) = load_nodes(mgr, snap)
                    results[i] = mgr.apply_or(results[i], img)
                    top_up(pos)
            steal_span.set(slices=cursor, steals=self.steals - steals_before)
        return results

    def worker_stats(self) -> list[dict]:
        """Per-shard manager statistics for the shards this image uses."""
        return self.pool.stats()
