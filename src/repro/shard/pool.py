"""The coordinator-side worker pool of the sharded runtime.

:class:`ShardPool` spawns ``num_shards`` persistent worker processes
(:func:`repro.shard.worker.worker_main`), each owning an independent
shard :class:`~repro.bdd.manager.BddManager`, and talks to them over
pipes.  The pool is deliberately low-level — submit a command, collect a
reply — so callers can pipeline: sending a command to every shard and
*then* collecting the replies is what lets the workers compute
concurrently.

The pool is a context manager; :meth:`close` (or ``__exit__``) shuts the
workers down and reaps the processes.  Workers are daemonic, so an
abandoned pool can never outlive the coordinator.
"""

from __future__ import annotations

import multiprocessing as mp
from collections import Counter
from collections.abc import Sequence
from multiprocessing.connection import wait as _conn_wait

from repro.errors import ReproError
from repro.obs.trace import current_tracer
from repro.shard.worker import worker_main


class ShardError(ReproError):
    """A shard worker failed or died mid-command."""


class ShardPool:
    """A set of persistent shard workers, addressed by index.

    Parameters
    ----------
    num_shards:
        Number of worker processes (≥ 1).
    var_names:
        Variable order declared in every shard manager, top to bottom —
        normally the coordinator's ``mgr.var_order()``.  Snapshots travel
        by variable *name*, so shard-local reordering never desyncs the
        wire format.
    gc, reorder, max_nodes:
        Per-shard manager policies (every worker gets its own
        :class:`~repro.bdd.policy.GcPolicy` /
        :class:`~repro.bdd.policy.ReorderPolicy` instance).
    resident_budget, spill_dir:
        Bounded-memory residency for the workers' resident ψ registries
        (see :mod:`repro.shard.worker`): with a node-count budget set,
        each worker spills least-recently-touched resident entries to a
        content-addressed store — ``spill_dir`` when given (shared
        across workers; content addressing makes concurrent writers
        idempotent), a private temporary directory otherwise — and
        reloads them transparently on the next touch.
    backend:
        BDD backend every shard manager is constructed on
        (:func:`repro.bdd.backends.create_manager`): a native backend
        multiplies its speedup by the worker count, and since workers
        fall back to pure Python independently (with the same one-shot
        warning), a heterogeneous install still computes identical
        results.
    start_method:
        ``multiprocessing`` start method; the default ``"fork"`` (cheap,
        no re-import) falls back to the platform default where fork is
        unavailable.
    """

    def __init__(
        self,
        num_shards: int,
        var_names: Sequence[str],
        *,
        gc: str = "static",
        reorder: str = "off",
        max_nodes: int | None = None,
        backend: str = "python",
        resident_budget: int | None = None,
        spill_dir: str | None = None,
        start_method: str = "fork",
    ) -> None:
        if num_shards < 1:
            raise ShardError(f"ShardPool needs at least one shard, got {num_shards}")
        try:
            ctx = mp.get_context(start_method)
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context()
        config = {
            "gc": gc,
            "reorder": reorder,
            "max_nodes": max_nodes,
            "backend": backend,
            "resident_budget": resident_budget,
            "spill_dir": spill_dir,
        }
        self._conns = []
        self._procs = []
        self._pending = [0] * num_shards
        self._next_handle = 0
        self._closed = False
        #: Per-shard order profiles recorded by :meth:`sift_profiles`
        #: (shard index -> variable order, top to bottom).  ``reset(...,
        #: reuse_profiles=True)`` re-declares each worker's variables in
        #: its recorded order.
        self.profiles: dict[int, list[str]] = {}
        #: Commands submitted so far, keyed by op name.  The transfer
        #: accounting of the batched subset engine asserts on these
        #: (e.g. one ``retain`` per shard per subset state and not one
        #: snapshot per expansion).
        self.op_counts: Counter = Counter()
        try:
            for _ in range(num_shards):
                parent, child = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=worker_main, args=(child, config), daemon=True
                )
                proc.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(proc)
            self.broadcast(("vars", list(var_names)))
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ #

    @property
    def num_shards(self) -> int:
        return len(self._procs)

    def new_handle(self) -> int:
        """Allocate a fresh registry handle (unique across all shards)."""
        self._next_handle += 1
        return self._next_handle

    def submit(self, shard: int, msg: tuple) -> None:
        """Send a command to ``shard`` without waiting for the reply."""
        if self._closed:
            raise ShardError("ShardPool is closed")
        try:
            self._conns[shard].send(msg)
        except (OSError, BrokenPipeError) as exc:
            raise ShardError(f"shard {shard} is gone: {exc}") from exc
        self._pending[shard] += 1
        self.op_counts[msg[0]] += 1

    def collect(self, shard: int):
        """Receive one pending reply from ``shard`` (FIFO order).

        When a tracer is installed (:func:`repro.obs.trace.install_tracer`)
        the worker's per-command timing stamp — the third reply element —
        is merged into the coordinator trace as a span on that worker's
        pid-tagged track; stamp-less two-element replies stay accepted.
        """
        if self._pending[shard] <= 0:
            raise ShardError(f"shard {shard} has no pending reply")
        try:
            reply = self._conns[shard].recv()
        except (EOFError, OSError) as exc:
            self._pending[shard] = 0
            raise ShardError(f"shard {shard} died mid-command: {exc}") from exc
        self._pending[shard] -= 1
        status, payload = reply[0], reply[1]
        if len(reply) > 2 and reply[2] is not None:
            tracer = current_tracer()
            if tracer is not None:
                meta = dict(reply[2])
                meta["shard"] = shard
                tracer.add_worker_event(meta)
        if status != "ok":
            raise ShardError(f"shard {shard} failed:\n{payload}")
        return payload

    def call(self, shard: int, msg: tuple):
        """Send one command and wait for its reply."""
        self.submit(shard, msg)
        return self.collect(shard)

    def broadcast(self, msg: tuple) -> list:
        """Send ``msg`` to every shard, then gather all replies.

        Submitting everything before collecting anything is the pool's
        concurrency primitive: all workers run the command in parallel.
        """
        for shard in range(self.num_shards):
            self.submit(shard, msg)
        return [self.collect(shard) for shard in range(self.num_shards)]

    def wait_any(self, shards: Sequence[int]) -> list[int]:
        """Block until at least one of ``shards`` has a reply ready.

        Returns the subset of ``shards`` whose pipes are readable, in
        shard order.  Only shards with pending replies are watched; if
        none of the given shards has pending traffic, raises
        :class:`ShardError` (the caller's bookkeeping is off).  This is
        the work-stealing dispatcher's primitive: instead of collecting
        in submission order, collect from whichever worker finishes
        first and route its next slice dynamically.
        """
        watched = {
            self._conns[s]: s for s in shards if self._pending[s] > 0
        }
        if not watched:
            raise ShardError("wait_any: no watched shard has a pending reply")
        ready = _conn_wait(list(watched))
        return sorted(watched[conn] for conn in ready)

    def stats(self) -> list[dict]:
        """Per-shard manager statistics (live nodes, GC runs, ...)."""
        return self.broadcast(("stats",))

    def sift_profiles(self) -> list[dict]:
        """Ask every worker to sift independently and record its order.

        Broadcasts ``("sift_profile",)`` — each worker runs one in-place
        sifting pass over whatever it currently holds (its resident
        partition, plans and handles all keep their edges) and reports
        the resulting variable order.  The per-shard orders are stored
        in :attr:`profiles` for reuse by ``reset(...,
        reuse_profiles=True)``.  Returns the per-shard reply dicts
        (``swaps`` / ``size_before`` / ``size_after`` / ``order``).
        """
        replies = self.broadcast(("sift_profile",))
        for shard, reply in enumerate(replies):
            self.profiles[shard] = list(reply["order"])
        return replies

    def reset(
        self,
        var_names: Sequence[str],
        *,
        reuse_profiles: bool = False,
        **config,
    ) -> None:
        """Reset every worker for a new job without restarting processes.

        Each worker rebuilds its manager from its spawn config with
        ``config`` (``gc`` / ``reorder`` / ``max_nodes``) merged on top,
        dropping all handles, resident entries and plans, then declares
        ``var_names`` as the fresh variable order.  Pending replies are
        drained first so a reset after a failed or cancelled job cannot
        interleave with stale traffic.  The op counters keep
        accumulating across jobs (callers snapshot-and-diff them).

        With ``reuse_profiles=True`` a shard whose recorded
        :attr:`profiles` entry is a permutation of ``var_names`` (same
        problem shape, e.g. a re-solve or resume) is re-declared in its
        own sifted order instead of the coordinator's — carrying each
        worker's order autonomy across jobs.  Profiles that do not match
        the new variable set are ignored and dropped.
        """
        if self._closed:
            raise ShardError("ShardPool is closed")
        for shard in range(self.num_shards):
            while self._pending[shard] > 0:
                try:
                    self._conns[shard].recv()
                except (EOFError, OSError) as exc:
                    raise ShardError(
                        f"shard {shard} died before reset: {exc}"
                    ) from exc
                self._pending[shard] -= 1
        self.broadcast(("reset", dict(config)))
        names = list(var_names)
        name_set = set(names)
        orders: list[list[str]] = []
        for shard in range(self.num_shards):
            profile = self.profiles.get(shard) if reuse_profiles else None
            if profile is not None and (
                len(profile) != len(names) or set(profile) != name_set
            ):
                self.profiles.pop(shard, None)
                profile = None
            orders.append(profile if profile is not None else names)
        if all(order is names for order in orders):
            self.broadcast(("vars", names))
        else:
            for shard, order in enumerate(orders):
                self.submit(shard, ("vars", list(order)))
            for shard in range(self.num_shards):
                self.collect(shard)

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut every worker down and reap the processes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shard, conn in enumerate(self._conns):
            try:
                # Drain pending replies so the shutdown ack is unambiguous.
                while self._pending[shard] > 0:
                    conn.recv()
                    self._pending[shard] -= 1
                conn.send(("shutdown",))
                conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                pass
            finally:
                conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<ShardPool shards={self.num_shards} {state}>"
