"""Multi-level sequential networks (Figure 2 of the paper).

A :class:`Network` is the paper's "multi-level network with latches":
primary inputs ``i``, primary outputs ``o``, latches with current-state
variables ``cs`` (the latch output signals) and next-state variables
``ns`` (the latch driver signals), and a DAG of combinational nodes.
Each combinational node computes a Boolean expression of other signals.

The network is the *source representation* from which both the
partitioned BDDs ``{T_k(i,cs)}, {O_j(i,cs)}`` and the explicit automaton
(STG) are derived.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.errors import NetworkError
from repro.expr.ast import Const, Expr, Var, substitute


@dataclass(frozen=True)
class Latch:
    """A D-latch: ``output`` holds the state, ``driver`` is the NS function.

    ``output`` is the current-state signal readable by the logic; the
    next state is the value of signal ``driver`` at the end of the cycle.
    """

    output: str
    driver: str
    init: int = 0

    def __post_init__(self) -> None:
        if self.init not in (0, 1):
            raise NetworkError(f"latch {self.output!r}: init must be 0 or 1")


@dataclass
class Node:
    """A combinational node: signal ``name`` computes ``expr``."""

    name: str
    expr: Expr


@dataclass
class Network:
    """A multi-level sequential network.

    Use :meth:`add_input`, :meth:`add_output`, :meth:`add_latch` and
    :meth:`add_node` to build a network, then :meth:`validate` (called
    automatically by the consumers of networks).

    Signals are strings; a signal is *driven* by being an input, a latch
    output, or a node.  Outputs name driven signals.
    """

    name: str = "network"
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    latches: dict[str, Latch] = field(default_factory=dict)
    nodes: dict[str, Node] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_input(self, name: str) -> str:
        """Declare a primary input signal."""
        self._check_fresh(name)
        self.inputs.append(name)
        return name

    def add_output(self, name: str) -> str:
        """Declare a primary output (must name a driven signal by validate time)."""
        if name in self.outputs:
            raise NetworkError(f"duplicate output {name!r}")
        self.outputs.append(name)
        return name

    def add_latch(self, output: str, driver: str, init: int = 0) -> Latch:
        """Add a latch whose state appears on signal ``output``."""
        self._check_fresh(output)
        latch = Latch(output=output, driver=driver, init=init)
        self.latches[output] = latch
        return latch

    def add_node(self, name: str, expr: Expr | str) -> Node:
        """Add a combinational node; ``expr`` may be AST or parseable text."""
        from repro.expr.parser import parse_expr  # local import to avoid cycle

        self._check_fresh(name)
        if isinstance(expr, str):
            expr = parse_expr(expr)
        node = Node(name=name, expr=expr)
        self.nodes[name] = node
        return node

    def _check_fresh(self, name: str) -> None:
        if name in self.nodes or name in self.latches or name in self.inputs:
            raise NetworkError(f"signal {name!r} already driven")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def latch_names(self) -> list[str]:
        """Latch output signal names, in insertion order."""
        return list(self.latches)

    def driven_signals(self) -> set[str]:
        """All signals that have a driver."""
        return set(self.inputs) | set(self.latches) | set(self.nodes)

    def initial_state(self) -> dict[str, int]:
        """Latch output -> initial value."""
        return {name: latch.init for name, latch in self.latches.items()}

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    @property
    def num_latches(self) -> int:
        return len(self.latches)

    def stats(self) -> str:
        """The paper's ``i/o/cs`` summary string."""
        return f"{self.num_inputs}/{self.num_outputs}/{self.num_latches}"

    # ------------------------------------------------------------------ #
    # Validation and topological order
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check structural sanity; raises :class:`NetworkError`."""
        driven = self.driven_signals()
        for out in self.outputs:
            if out not in driven:
                raise NetworkError(f"output {out!r} is not driven")
        for latch in self.latches.values():
            if latch.driver not in driven:
                raise NetworkError(
                    f"latch {latch.output!r} driver {latch.driver!r} is not driven"
                )
        for node in self.nodes.values():
            for dep in node.expr.variables():
                if dep not in driven:
                    raise NetworkError(f"node {node.name!r} reads undriven {dep!r}")
        self.topo_order()  # raises on combinational cycles

    def topo_order(self) -> list[str]:
        """Topological order of combinational nodes (latches break cycles)."""
        order: list[str] = []
        state: dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(name: str, chain: list[str]) -> None:
            if name not in self.nodes:
                return  # inputs and latch outputs are sources
            mark = state.get(name)
            if mark == 1:
                return
            if mark == 0:
                cycle = " -> ".join(chain + [name])
                raise NetworkError(f"combinational cycle: {cycle}")
            state[name] = 0
            for dep in sorted(self.nodes[name].expr.variables()):
                visit(dep, chain + [name])
            state[name] = 1
            order.append(name)

        for name in self.nodes:
            visit(name, [])
        return order

    # ------------------------------------------------------------------ #
    # Evaluation / simulation
    # ------------------------------------------------------------------ #

    def eval_comb(self, env: Mapping[str, int]) -> dict[str, int]:
        """Evaluate all combinational nodes given inputs and latch states.

        ``env`` must assign every primary input and every latch output.
        Returns a full signal valuation (inputs, states and nodes).
        """
        values: dict[str, int] = {}
        for name in self.inputs:
            values[name] = int(bool(env[name]))
        for name in self.latches:
            values[name] = int(bool(env[name]))
        for name in self.topo_order():
            values[name] = int(self.nodes[name].expr.evaluate(values))
        return values

    def step(
        self, state: Mapping[str, int], inputs: Mapping[str, int]
    ) -> tuple[dict[str, int], dict[str, int]]:
        """One synchronous step: returns ``(outputs, next_state)``."""
        values = self.eval_comb({**inputs, **state})
        outputs = {o: values[o] for o in self.outputs}
        next_state = {
            name: values[latch.driver] for name, latch in self.latches.items()
        }
        return outputs, next_state

    def simulate(
        self,
        input_sequence: Sequence[Mapping[str, int]],
        *,
        state: Mapping[str, int] | None = None,
    ) -> list[dict[str, int]]:
        """Run a cycle-accurate simulation; returns the output per cycle."""
        current = dict(self.initial_state() if state is None else state)
        trace: list[dict[str, int]] = []
        for step_inputs in input_sequence:
            outputs, current = self.step(current, step_inputs)
            trace.append(outputs)
        return trace

    # ------------------------------------------------------------------ #
    # Surgery
    # ------------------------------------------------------------------ #

    def copy(self, *, name: str | None = None) -> "Network":
        """Deep-enough copy (expressions are immutable)."""
        return Network(
            name=name or self.name,
            inputs=list(self.inputs),
            outputs=list(self.outputs),
            latches=dict(self.latches),
            nodes={k: Node(v.name, v.expr) for k, v in self.nodes.items()},
        )

    def rename_signals(self, mapping: Mapping[str, str]) -> "Network":
        """Return a copy with signals renamed everywhere (drivers and uses)."""

        def ren(s: str) -> str:
            return mapping.get(s, s)

        net = Network(name=self.name)
        net.inputs = [ren(s) for s in self.inputs]
        net.outputs = [ren(s) for s in self.outputs]
        net.latches = {
            ren(l.output): Latch(ren(l.output), ren(l.driver), l.init)
            for l in self.latches.values()
        }
        net.nodes = {
            ren(n.name): Node(ren(n.name), substitute(n.expr, dict(mapping)))
            for n in self.nodes.values()
        }
        return net

    def node_function(self, signal: str) -> Expr:
        """Expression of a signal: Var for inputs/latches, expr for nodes."""
        if signal in self.nodes:
            return self.nodes[signal].expr
        if signal in self.inputs or signal in self.latches:
            return Var(signal)
        raise NetworkError(f"signal {signal!r} is not driven")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Network {self.name!r} i/o/cs={self.stats()} "
            f"nodes={len(self.nodes)}>"
        )


def buffer_expr(signal: str) -> Expr:
    """A buffer (identity) expression for ``signal``."""
    return Var(signal)


def const_expr(value: bool) -> Expr:
    """A constant expression."""
    return Const(bool(value))


def flatten_expr(net: Network, signal: str, stop: Iterable[str]) -> Expr:
    """Expression of ``signal`` flattened down to the ``stop`` signals.

    Recursively inlines node expressions until only signals in ``stop``
    (typically inputs and latch outputs) remain.  Used to express latch
    next-state and output functions directly over ``(i, cs)``.
    """
    stop_set = set(stop)
    memo: dict[str, Expr] = {}

    def rec(name: str) -> Expr:
        if name in stop_set:
            return Var(name)
        cached = memo.get(name)
        if cached is not None:
            return cached
        if name in self_nodes:
            expr = self_nodes[name].expr
            mapping = {dep: rec(dep) for dep in expr.variables()}
            result = _substitute_exprs(expr, mapping)
        elif name in net.inputs or name in net.latches:
            result = Var(name)
        else:
            raise NetworkError(f"signal {name!r} is not driven")
        memo[name] = result
        return result

    self_nodes = net.nodes
    return rec(signal)


def _substitute_exprs(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Substitute whole expressions for variables."""
    from repro.expr.ast import And, Not, Or, Xor

    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Var):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Not):
        return Not(_substitute_exprs(expr.arg, mapping))
    if isinstance(expr, And):
        return And(tuple(_substitute_exprs(a, mapping) for a in expr.args))
    if isinstance(expr, Or):
        return Or(tuple(_substitute_exprs(a, mapping) for a in expr.args))
    if isinstance(expr, Xor):
        return Xor(tuple(_substitute_exprs(a, mapping) for a in expr.args))
    raise TypeError(f"unknown expression node: {expr!r}")
