"""Interleaved product orders: structure properties and result identity.

The interleaved order is a pure *ordering* policy: the same variables,
the same equations, a different declaration order (each specification
latch grouped with its fixed-component twin instead of all F latches
stacked above all S latches).  These tests pin the two contracts that
make it safe:

* **structure** — the interleaved order is a permutation of the stacked
  order that keeps the letters-above-states reorder block boundary and
  the order-preserving ``ns -> cs`` rename fast path (for both the F and
  the S rename maps);
* **identity** — solves are byte-identical (KISS text) between the two
  orders across the whole Table 1 suite, including the sharded runtime
  with independent per-worker sifting enabled.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.kiss import write_kiss
from repro.bdd.reorder import interleaved_state_order, pair_state_latches
from repro.bench import circuits
from repro.bench.suite import TABLE1_CASES
from repro.eqn import build_latch_split_problem, solve_equation
from repro.errors import BddError, EquationError


class TestPairingHelpers:
    def test_pairs_follow_specification_order(self) -> None:
        pairs = pair_state_latches(["a", "b", "c"], ["c", "a"])
        assert pairs == [("a", "a"), (None, "b"), ("c", "c")]

    def test_orphan_fixed_latch_raises(self) -> None:
        with pytest.raises(BddError, match="without specification twin"):
            pair_state_latches(["a"], ["a", "z"])

    def test_interleaved_order_groups_twins(self) -> None:
        order = interleaved_state_order([("a", "a"), (None, "b")])
        assert order == ["F.a", "F.a'", "S.a", "S.a'", "S.b", "S.b'"]

    def test_unknown_product_order_rejected(self) -> None:
        net = circuits.counter(3)
        with pytest.raises(EquationError, match="product_order"):
            build_latch_split_problem(net, ["b1"], product_order="diagonal")


@st.composite
def split_instances(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n_inputs = draw(st.integers(min_value=1, max_value=3))
    n_latches = draw(st.integers(min_value=2, max_value=6))
    net = circuits.random_network(n_inputs, n_latches, 1, seed=seed)
    latches = net.latch_names()
    k = draw(st.integers(min_value=1, max_value=len(latches)))
    x = draw(
        st.lists(st.sampled_from(latches), min_size=k, max_size=k, unique=True)
    )
    return net, x


def _rename_is_monotone(order: list[str], cs: list[str], ns: list[str]) -> bool:
    """Sources sorted by level must map to targets in the same order."""
    level = {name: i for i, name in enumerate(order)}
    by_source = sorted(zip(ns, cs), key=lambda pair: level[pair[0]])
    target_levels = [level[c] for _, c in by_source]
    return target_levels == sorted(target_levels)


@given(split_instances())
@settings(max_examples=15, deadline=None)
def test_interleaved_is_a_boundary_preserving_permutation(instance) -> None:
    net, x = instance
    stacked = build_latch_split_problem(net, x, product_order="stacked")
    inter = build_latch_split_problem(net, x, product_order="interleaved")
    so = stacked.manager.var_order()
    io = inter.manager.var_order()
    # Same variables, different order.
    assert sorted(so) == sorted(io)
    # The letter block (everything above the reorder boundary) is
    # untouched: same names, same order, same boundary position.
    n_letters = len(
        stacked.i_names + stacked.o_names + stacked.u_names + stacked.v_names
    )
    assert so[:n_letters] == io[:n_letters]
    assert all(not name.startswith(("F.", "S.")) for name in so[:n_letters])
    assert all(name.startswith(("F.", "S.")) for name in io[n_letters:])
    # Both rename maps stay order-preserving in both orders.
    for problem in (stacked, inter):
        order = problem.manager.var_order()
        s_cs = ["S.dc"] + [f"S.{n}" for n in problem.split.original.latches]
        s_ns = ["S.dc'"] + [f"S.{n}'" for n in problem.split.original.latches]
        f_cs = [f"F.{n}" for n in problem.split.fixed.latches]
        f_ns = [f"F.{n}'" for n in problem.split.fixed.latches]
        assert _rename_is_monotone(order, s_cs, s_ns)
        assert _rename_is_monotone(order, f_cs, f_ns)


def _solve_kiss(case, product_order: str, **kwargs) -> str:
    problem = build_latch_split_problem(
        case.network(), list(case.x_latches), product_order=product_order
    )
    kwargs.setdefault("frontier", "bfs")
    kwargs.setdefault("batch", 8)
    result = solve_equation(problem, method="partitioned", **kwargs)
    return write_kiss(result.csf)


@pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
def test_interleaved_matches_stacked_across_the_suite(case) -> None:
    """Byte-identical KISS for every Table 1 case under both orders."""
    assert _solve_kiss(case, "stacked") == _solve_kiss(case, "interleaved")


@pytest.mark.parametrize("name", ["count6", "johnson8"])
def test_interleaved_matches_stacked_sharded_with_sifting(name) -> None:
    """Sharded runs with independent per-worker sifting stay identical."""
    case = next(c for c in TABLE1_CASES if c.name == name)
    reference = _solve_kiss(case, "stacked")
    for order in ("stacked", "interleaved"):
        sharded = _solve_kiss(
            case,
            order,
            shards=2,
            frontier="size",
            shard_opts={"sift_parts": True},
        )
        assert sharded == reference
