"""Compositional solves: component decomposition of decoupled splits.

The gate (:func:`repro.eqn.compose.plan_components` +
:func:`~repro.eqn.compose.conforming_component`) only opens when the
split's support graph decomposes into a letterful component plus
letter-free components that provably conform on every reachable state;
then solving the letterful sub-equation alone has exactly the language
of the direct solve.  These tests pin both sides: where the gate opens
(twin rings with a restricted U alphabet), the languages coincide and
the skipped work is real; where it must not (default split — every
wire in U couples everything to X), the planner declines and the
solver falls back to the direct flow.
"""

from __future__ import annotations

import pytest

from repro.automata import equivalent
from repro.bench import circuits
from repro.eqn.compose import (
    conforming_component,
    conjoin_solutions,
    plan_components,
    solve_compositional,
    subproblem,
)
from repro.eqn.problem import build_latch_split_problem
from repro.eqn.solver import solve_equation
from repro.eqn.verify import verify_solution
from repro.errors import EquationError

#: Twin decoupled rings with X = two latches of the b-ring and the U
#: alphabet restricted to the b-side — the a-ring never meets X's
#: alphabet, so it forms a letter-free component.
TWIN = dict(x_latches=["b1", "b3"], u_signals=["enb", "b0", "b2"])


def _twin_problem(na=4, nb=4, **kwargs):
    opts = dict(TWIN)
    opts.update(kwargs)
    return build_latch_split_problem(
        circuits.twin_rings(na, nb), opts.pop("x_latches"), **opts
    )


class TestPlan:
    def test_restricted_split_decomposes(self) -> None:
        plan = plan_components(_twin_problem())
        assert plan is not None
        assert len(plan.components) == 2
        assert plan.letterful.letterful
        (free,) = plan.letterfree
        assert not free.letterful
        # The untouched a-ring (F and S copies) is the skipped part.
        assert {n for n in free.f_latches} == {f"a{i}" for i in range(4)}
        assert free.num_latches > 0

    def test_default_split_stays_coupled(self) -> None:
        """All inputs + kept latches in U ⇒ everything touches X."""
        prob = build_latch_split_problem(
            circuits.twin_rings(4, 4), ["b1", "b3"]
        )
        assert plan_components(prob) is None

    def test_no_stateful_letterfree_component_declines(self) -> None:
        """A split whose every latch couples to X has nothing to skip."""
        net = circuits.johnson(8)
        prob = build_latch_split_problem(net, ["j1", "j3", "j5", "j7"])
        assert plan_components(prob) is None

    def test_conforming_component_accepts_the_a_ring(self) -> None:
        prob = _twin_problem()
        plan = plan_components(prob)
        (free,) = plan.letterfree
        assert conforming_component(prob, free)

    def test_subproblem_keeps_only_component_latches(self) -> None:
        prob = _twin_problem()
        plan = plan_components(prob)
        sub = subproblem(prob, plan.letterful)
        assert sub.manager is prob.manager
        assert set(sub.f_next) < set(prob.f_next)
        assert not any(name.startswith("a") for name in sub.f_next)
        assert not any(name.startswith("a") for name in sub.s_next)
        # The alphabet (i/u/v) is the full one: the sub-language lives
        # over the same letters as the original equation.
        assert sub.i_vars == prob.i_vars
        assert sub.u_vars == prob.u_vars
        assert sub.v_vars == prob.v_vars


class TestSolve:
    def test_language_identical_to_direct(self) -> None:
        prob = _twin_problem()
        direct = solve_equation(prob, method="partitioned")
        composed = solve_equation(prob, method="partitioned", compose=True)
        assert composed.options["compose"] is True
        # State counts differ (that is the point); the language must not.
        assert composed.csf_states < direct.csf_states
        assert equivalent(composed.csf, direct.csf)

    def test_composed_solution_verifies(self) -> None:
        prob = _twin_problem()
        composed = solve_equation(prob, method="partitioned", compose=True)
        assert verify_solution(composed).ok

    def test_extra_records_component_stats(self) -> None:
        prob = _twin_problem()
        composed = solve_equation(prob, method="partitioned", compose=True)
        extra = composed.stats.extra
        assert extra["compose_components"] == 2
        assert extra["compose_verified_components"] == 1
        assert extra["compose_solved_latches"] > 0
        assert extra["compose_skipped_latches"] > 0

    def test_solve_compositional_declines_coupled_split(self) -> None:
        prob = build_latch_split_problem(
            circuits.twin_rings(4, 4), ["b1", "b3"]
        )
        assert solve_compositional(prob) is None

    def test_solver_falls_back_to_direct(self) -> None:
        """``compose=True`` on a coupled split is the direct solve."""
        prob = build_latch_split_problem(
            circuits.twin_rings(4, 4), ["b1", "b3"]
        )
        direct = solve_equation(prob, method="partitioned")
        requested = solve_equation(prob, method="partitioned", compose=True)
        assert requested.options["compose"] is False
        assert requested.csf_states == direct.csf_states
        assert requested.solution.state_names == direct.solution.state_names

    def test_compose_composes_with_residency_and_shards(self) -> None:
        prob = _twin_problem(na=6, nb=4)
        direct = solve_equation(prob, method="partitioned")
        composed = solve_equation(
            prob,
            method="partitioned",
            compose=True,
            shards=2,
            frontier="bfs",
            batch=4,
            resident_budget=64,
        )
        assert composed.options["compose"] is True
        assert equivalent(composed.csf, direct.csf)

    def test_compose_requires_partitioned_trimmed_flow(self) -> None:
        prob = _twin_problem()
        with pytest.raises(EquationError):
            solve_equation(prob, method="monolithic", compose=True)
        with pytest.raises(EquationError):
            solve_equation(prob, method="partitioned", compose=True, trim=False)


class TestConjoin:
    def test_single_solution_is_identity(self) -> None:
        prob = _twin_problem()
        result = solve_equation(prob, method="partitioned")
        assert conjoin_solutions([result.csf]) is result.csf

    def test_conjoin_is_product_language(self) -> None:
        prob = _twin_problem()
        result = solve_equation(prob, method="partitioned")
        squared = conjoin_solutions([result.csf, result.csf])
        # L ∩ L = L, delivered through the generic automaton product.
        assert equivalent(squared, result.csf)
