"""The Table 1 experiment suite (Experiment E1).

Six latch-splitting cases of growing size mirroring the paper's rows
(s510 → s526); see DESIGN.md §5 for the circuit substitution argument.
Expected qualitative shape (matching the paper):

* the smallest cases favour the *monolithic* method slightly (the paper's
  s510 had ratio 0.7);
* the ratio grows with instance size (s208: 2.0, s298: 3.0, s349: 21.5);
* the largest instances are CNC ("could not complete") for the
  monolithic method within the resource budget, while the partitioned
  method still finishes.

Budgets are deliberate parts of each case so the CNC outcomes are
deterministic and testable.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.bench import circuits
from repro.bench.iscas import s27
from repro.network.netlist import Network


@dataclass
class SplitCase:
    """One Table 1 row: a circuit, a latch split and resource budgets."""

    name: str
    make: Callable[[], Network]
    x_latches: Sequence[str]
    paper_row: str  # the paper row this case mirrors
    max_seconds: float = 60.0
    max_nodes: int = 2_000_000
    expect_mono_cnc: bool = False
    notes: str = ""
    #: Restricted ``U`` alphabet for the latch split.  ``None`` keeps the
    #: default (every input and kept latch is visible to X); a compose
    #: case must restrict it, or every component couples to X through
    #: the shared ``(u, v)`` wires and no decomposition exists.
    u_signals: Sequence[str] | None = None

    def network(self) -> Network:
        return self.make()

    def describe(self) -> str:
        net = self.network()
        return f"{self.name} ({net.stats()}, {net.num_latches - len(self.x_latches)}/{len(self.x_latches)})"


#: The six Table 1 rows.  Ordered by increasing difficulty, like the paper.
TABLE1_CASES: list[SplitCase] = [
    SplitCase(
        name="s27",
        make=s27,
        x_latches=("G6",),
        paper_row="s510 (19/7/6, 3/3)",
        notes="tiny instance; monolithic may win (paper ratio 0.7)",
    ),
    SplitCase(
        name="count6",
        make=lambda: circuits.counter(6),
        x_latches=("b1", "b3", "b5"),
        paper_row="s208 (10/1/8, 4/4)",
        notes="counter, like s208's structure",
    ),
    SplitCase(
        name="johnson8",
        make=lambda: circuits.johnson(8),
        x_latches=("j1", "j3", "j5", "j7"),
        paper_row="s298 (3/6/14, 7/7)",
    ),
    SplitCase(
        name="rand10",
        make=lambda: circuits.random_network(3, 10, 3, seed=11, n_nodes=60),
        x_latches=("l1", "l4", "l7"),
        paper_row="s349 (9/11/15, 5/10)",
        notes="random multi-level logic; monolithic hiding gets expensive",
    ),
    SplitCase(
        name="lfsr8",
        make=lambda: circuits.lfsr(8),
        x_latches=("r2", "r4", "r6"),
        paper_row="extra row (large-ratio regime between s349 and s444)",
        max_seconds=60.0,
        notes="xor feedback; both complete but the ratio is large",
    ),
    SplitCase(
        name="johnson12",
        make=lambda: circuits.johnson(12),
        x_latches=("j1", "j3", "j5", "j7", "j9", "j11"),
        paper_row="extra row (larger interleaved-order instance)",
        max_seconds=60.0,
        notes=(
            "12 latches under the builder's interleaved cs/ns order; both "
            "flows complete but monolithic hiding is ~10x slower — the "
            "largest both-complete instance in the suite"
        ),
    ),
    SplitCase(
        name="rand14",
        make=lambda: circuits.random_network(3, 14, 4, seed=9, n_nodes=80),
        x_latches=("l2", "l5", "l8", "l11"),
        paper_row="s444 (3/6/21, 5/16)",
        max_seconds=20.0,
        max_nodes=1_500_000,
        expect_mono_cnc=True,
    ),
    SplitCase(
        name="rand15",
        make=lambda: circuits.random_network(2, 15, 3, seed=33, n_nodes=75),
        x_latches=("l1", "l6", "l11"),
        paper_row="s526 (3/6/21, 5/16)",
        max_seconds=20.0,
        max_nodes=1_500_000,
        expect_mono_cnc=True,
    ),
    SplitCase(
        name="rand20",
        make=lambda: circuits.random_network(2, 20, 2, seed=9, n_nodes=70),
        x_latches=("l1", "l9"),
        paper_row="s444/s526-class, 20 latches (ROADMAP 'bigger rows')",
        max_seconds=30.0,
        max_nodes=1_500_000,
        expect_mono_cnc=True,
        notes=(
            "first ≥20-latch row: the monolithic flow blows its node "
            "budget building the product relation within seconds, the "
            "partitioned flow completes — with ~50% of its per-output "
            "completion images served from the incremental memo"
        ),
    ),
]

#: Bench-only Table 1 rows: recorded by the full ``repro bench`` run but
#: deliberately **not** part of :data:`TABLE1_CASES` (and therefore not
#: of the per-case identity tests) because their partitioned solves take
#: tens of seconds.  ``twin16x4`` is the incremental-completion
#: showcase: two decoupled Johnson rings where most of each output's
#: ``Q_ψ`` images collapse onto shared cofactor classes — out of reach
#: for the pre-batching engine within the same budget.  ``twin12_8``
#: stresses the coupled-split regime instead: extracting four latches
#: from the smaller ring yields thousands of subset states whose F/S
#: product BDDs are what ``--product-order interleaved`` reshapes.
TABLE1_BENCH_ONLY_CASES: list[SplitCase] = [
    SplitCase(
        name="twin16x4",
        make=lambda: circuits.twin_rings(16, 4),
        x_latches=("b1", "b3"),
        paper_row="memo showcase, 20 latches (2 decoupled rings)",
        max_seconds=75.0,
        max_nodes=1_500_000,
        expect_mono_cnc=True,
        notes=(
            "run with frontier=bfs batch=8: sibling subsets share one "
            "Q image per cofactor class (memo hit rate >60%)"
        ),
    ),
    SplitCase(
        name="twin12_8",
        make=lambda: circuits.twin_rings(12, 8),
        x_latches=("b1", "b3", "b5", "b7"),
        paper_row="coupled-split regime, 20 latches (12+8 rings)",
        max_seconds=240.0,
        expect_mono_cnc=True,
        notes=(
            "run with frontier=bfs batch=8: four extracted latches from "
            "the 8-ring leave 3072 subset states; completes under the "
            "default 2M-node budget with either --product-order, the "
            "regime the interleaved order targets"
        ),
    ),
]


#: Compositional-solve rows: like the bench-only cases these are
#: recorded by the full run but excluded from :data:`TABLE1_CASES` (and
#: from the bench-only ``@batch8`` variant machinery — a direct solve of
#: ``twin20_4`` at this size is exactly what composition avoids paying
#: for).  The restricted ``u_signals`` keeps the untouched ``a``-ring
#: out of X's alphabet, so :func:`repro.eqn.compose.plan_components`
#: finds it as a conforming letter-free component and the solver only
#: subset-constructs the 4-latch ``b``-ring sub-equation.
TABLE1_COMPOSE_CASES: list[SplitCase] = [
    SplitCase(
        name="twin20_4",
        make=lambda: circuits.twin_rings(20, 4),
        x_latches=("b1", "b3"),
        u_signals=("enb", "b0", "b2"),
        paper_row="compositional regime, 24 latches (20+4 rings)",
        max_seconds=120.0,
        expect_mono_cnc=True,
        notes=(
            "recorded twice: @compose solves only the b-ring "
            "sub-equation after verifying the 20-latch a-ring conforms; "
            "the direct row pays for the full 24-latch product"
        ),
    ),
]


def case_by_name(name: str) -> SplitCase:
    """Look up a Table 1 case by row name."""
    for case in TABLE1_CASES:
        if case.name == name:
            return case
    raise KeyError(f"no Table 1 case named {name!r}")
