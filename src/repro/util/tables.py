"""Minimal fixed-width table formatting for the benchmark harness output."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    align_left: Sequence[int] = (0,),
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width text table.

    Columns listed in ``align_left`` (by index) are left-aligned; all other
    columns are right-aligned, which matches the look of the paper's Table 1.

    >>> print(format_table(["Name", "n"], [["s27", 3]]))
    Name  n
    ----  -
    s27   3
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    left = set(align_left)

    def fmt_row(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            parts.append(cell.ljust(widths[i]) if i in left else cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = [fmt_row(cells[0])]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in cells[1:])
    return "\n".join(lines)
