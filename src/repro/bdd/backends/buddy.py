"""ctypes adapter to the native BuDDy BDD library.

:class:`BuddyManager` implements the
:class:`~repro.bdd.backends.protocol.BddBackend` protocol on top of
BuDDy 2.x (``libbdd.so``), the C kernel the reproduced paper's own
toolchain family (VIS/MVSIS) descends from.  The solver stack runs on
it unchanged — and, because every backend must produce canonical BDDs,
it must produce *identical* languages, automata and KISS bytes; the
conformance kit (:mod:`repro.bdd.backends.conformance`) and the
solver-level differential tests enforce that edge for edge.

Differences from the pure-Python reference, hidden behind the protocol:

* **No complement edges.**  Handles are BuDDy node indices; negation is
  ``bdd_not`` (a table operation), not a bit flip.  Terminals are the
  same ``0``/``1``.
* **Reference counting is explicit in C.**  Every operator result is
  immediately ``bdd_addref``'d and tracked by the adapter, mirroring
  the reference kernel's "everything lives until a collection" model;
  :meth:`BuddyManager.collect_garbage` drops the adapter's holds
  (except pins and the given roots) and runs ``bdd_gbc``.
* **One instance per process.**  BuDDy is a global-state library:
  constructing a second live :class:`BuddyManager` in the same process
  raises, :meth:`BuddyManager.close` tears the state down
  (``bdd_done``), and a ``fork``'d shard worker transparently re-owns
  the inherited state by re-initialising it.

Library discovery (:func:`find_buddy_library`) honours the
``REPRO_BUDDY_LIB`` environment variable, then the system linker path
(``libbdd`` / ``libbuddy``).  When nothing is found the registry probe
fails and :func:`repro.bdd.backends.create_manager` falls back to pure
Python with a single warning; nothing in the default install path ever
requires the native library.

Tuning at ``bdd_init`` follows the adapter lineage for solver
workloads: a generous initial node table, ``bdd_setminfreenodes(33)``
(grow when less than a third of the table frees per collection) and a
bounded ``bdd_setmaxincrease`` so growth stays incremental.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import os
import warnings
from array import array
from collections.abc import Iterable, Iterator, Mapping, Sequence
from contextlib import contextmanager

from repro.bdd.io import NODES_FORMAT
from repro.bdd.policy import GcPolicy, ReorderPolicy
from repro.errors import BddError, BddNodeLimit

#: BuDDy ``bdd_apply`` operator codes (bdd.h).
_OP_AND = 0
_OP_XOR = 1
_OP_OR = 2
_OP_IMP = 5
_OP_BIIMP = 6
_OP_DIFF = 7

#: ``bdd_reorder`` method: move each variable to its locally best level.
_REORDER_SIFT = 3

#: BuDDy error codes mapped to :class:`~repro.errors.BddNodeLimit`
#: (out of memory / node table cannot grow / max node count reached).
_LIMIT_ERRORS = frozenset({-1, -11, -17})

_ERR_HOOK_T = ctypes.CFUNCTYPE(None, ctypes.c_int)
_VOID_HOOK_T = ctypes.c_void_p

#: Loaded-and-typed CDLL per library path (a CDLL is process-global
#: state; loading it twice would not give independent managers anyway).
_LIBS: dict[str, ctypes.CDLL] = {}

#: The single live manager of this process: ``[manager, pid]``.  The
#: pid detects ``fork``'d shard workers, which inherit initialised
#: BuDDy state they must tear down before re-initialising their own.
_ACTIVE: list = [None, 0]


def find_buddy_library() -> str | None:
    """Locate the BuDDy shared library, or ``None``.

    ``REPRO_BUDDY_LIB`` (an explicit path or loader-resolvable name)
    wins; otherwise the system linker path is searched for ``bdd`` and
    ``buddy``.  This doubles as the registry availability probe, so it
    must stay cheap and never raise.
    """
    env = os.environ.get("REPRO_BUDDY_LIB", "").strip()
    if env:
        return env
    for name in ("bdd", "buddy"):
        try:
            path = ctypes.util.find_library(name)
        except Exception:  # pragma: no cover - platform-specific failure
            path = None
        if path:
            return path
    return None


def _load_library(path: str) -> ctypes.CDLL:
    lib = _LIBS.get(path)
    if lib is not None:
        return lib
    from repro.bdd.backends import BackendUnavailable

    try:
        lib = ctypes.CDLL(path)
    except OSError as exc:
        raise BackendUnavailable(
            f"could not load BuDDy shared library {path!r}: {exc}"
        ) from exc
    _declare(lib)
    _LIBS[path] = lib
    return lib


def _declare(lib: ctypes.CDLL) -> None:
    """Pin argument/result types for every entry point the adapter uses."""
    c_int, c_void_p = ctypes.c_int, ctypes.c_void_p
    int_p = ctypes.POINTER(c_int)
    sigs: dict[str, tuple[list, object]] = {
        "bdd_init": ([c_int, c_int], c_int),
        "bdd_done": ([], None),
        "bdd_isrunning": ([], c_int),
        "bdd_setvarnum": ([c_int], c_int),
        "bdd_extvarnum": ([c_int], c_int),
        "bdd_varnum": ([], c_int),
        "bdd_setminfreenodes": ([c_int], c_int),
        "bdd_setmaxincrease": ([c_int], c_int),
        "bdd_setmaxnodenum": ([c_int], c_int),
        "bdd_setcacheratio": ([c_int], c_int),
        "bdd_getnodenum": ([], c_int),
        "bdd_ithvar": ([c_int], c_int),
        "bdd_nithvar": ([c_int], c_int),
        "bdd_var": ([c_int], c_int),
        "bdd_low": ([c_int], c_int),
        "bdd_high": ([c_int], c_int),
        "bdd_not": ([c_int], c_int),
        "bdd_apply": ([c_int, c_int, c_int], c_int),
        "bdd_ite": ([c_int, c_int, c_int], c_int),
        "bdd_restrict": ([c_int, c_int], c_int),
        "bdd_constrain": ([c_int, c_int], c_int),
        "bdd_compose": ([c_int, c_int, c_int], c_int),
        "bdd_veccompose": ([c_int, c_void_p], c_int),
        "bdd_replace": ([c_int, c_void_p], c_int),
        "bdd_newpair": ([], c_void_p),
        "bdd_setpair": ([c_void_p, c_int, c_int], c_int),
        "bdd_setbddpair": ([c_void_p, c_int, c_int], c_int),
        "bdd_freepair": ([c_void_p], None),
        "bdd_exist": ([c_int, c_int], c_int),
        "bdd_forall": ([c_int, c_int], c_int),
        "bdd_appex": ([c_int, c_int, c_int, c_int], c_int),
        "bdd_makeset": ([int_p, c_int], c_int),
        "bdd_support": ([c_int], c_int),
        "bdd_satcount": ([c_int], ctypes.c_double),
        "bdd_addref": ([c_int], c_int),
        "bdd_delref": ([c_int], c_int),
        "bdd_gbc": ([], None),
        "bdd_nodecount": ([c_int], c_int),
        "bdd_anodecount": ([int_p, c_int], c_int),
        "bdd_level2var": ([c_int], c_int),
        "bdd_var2level": ([c_int], c_int),
        "bdd_setvarorder": ([int_p], None),
        "bdd_reorder": ([c_int], None),
        "bdd_autoreorder": ([c_int], c_int),
        "bdd_intaddvarblock": ([c_int, c_int, c_int], c_int),
        "bdd_clrvarblocks": ([], None),
        "bdd_error_hook": ([_ERR_HOOK_T], _VOID_HOOK_T),
        "bdd_gbc_hook": ([_VOID_HOOK_T], _VOID_HOOK_T),
        "bdd_reorder_hook": ([_VOID_HOOK_T], _VOID_HOOK_T),
        "bdd_resize_hook": ([_VOID_HOOK_T], _VOID_HOOK_T),
    }
    for name, (argtypes, restype) in sigs.items():
        try:
            fn = getattr(lib, name)
        except AttributeError:
            continue  # optional entry points may be absent in old builds
        fn.argtypes = argtypes
        fn.restype = restype


class BuddyQuantSet:
    """Pre-built quantification cube (the BuDDy analogue of
    :class:`~repro.bdd.manager.QuantSet`): the positive cube of the
    variable set, built once with ``bdd_makeset`` and pinned."""

    __slots__ = ("cube", "vars")

    def __init__(self, mgr: "BuddyManager", variables: Iterable[int]) -> None:
        self.vars = tuple(dict.fromkeys(int(v) for v in variables))
        self.cube = mgr._makeset(self.vars)

    def __iter__(self) -> Iterator[int]:
        return iter(self.vars)

    def __len__(self) -> int:
        return len(self.vars)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BuddyQuantSet vars={self.vars}>"


class BuddyManager:
    """BuDDy-backed implementation of the :class:`BddBackend` protocol.

    Constructor keywords mirror :class:`~repro.bdd.manager.BddManager`
    so :func:`~repro.bdd.backends.create_manager` can pass one kwargs
    surface to either backend; ``apply_core`` is accepted and ignored
    (the native kernel has one core).  ``nodesize``/``cachesize`` seed
    ``bdd_init`` and only matter for performance, never results.
    """

    backend_name = "buddy"

    def __init__(
        self,
        max_nodes: int | None = None,
        *,
        gc_min_live: int = 100_000,
        gc_growth: float = 2.0,
        gc_policy: GcPolicy | None = None,
        reorder_policy: ReorderPolicy | None = None,
        apply_core: str = "auto",
        nodesize: int = 1_000_000,
        cachesize: int = 100_000,
        lib_path: str | None = None,
    ) -> None:
        path = lib_path or find_buddy_library()
        if path is None:
            from repro.bdd.backends import BackendUnavailable

            raise BackendUnavailable(
                "BuDDy shared library not found "
                "(set REPRO_BUDDY_LIB or install libbdd)"
            )
        lib = _load_library(path)
        active, active_pid = _ACTIVE
        if active is not None:
            if active_pid == os.getpid():
                raise BddError(
                    "BuDDy holds process-global state; close() the "
                    "existing BuddyManager before creating another"
                )
            # A fork()'d worker inherited the parent's initialised
            # library state: tear it down before claiming our own.
            if lib.bdd_isrunning():
                lib.bdd_done()
            _ACTIVE[0] = None
        if lib.bdd_isrunning():
            lib.bdd_done()
        if lib.bdd_init(nodesize, cachesize) < 0:
            raise BddError("bdd_init failed")
        self._lib = lib
        self._closed = False
        # Silence the default stderr chatter and replace the default
        # error handler (which calls abort()) with a latch the adapter
        # checks after every operation.
        self._err_code: int | None = None

        def _on_error(code: int) -> None:
            self._err_code = code

        self._err_hook = _ERR_HOOK_T(_on_error)  # keep the callback alive
        lib.bdd_error_hook(self._err_hook)
        lib.bdd_gbc_hook(None)
        lib.bdd_reorder_hook(None)
        lib.bdd_resize_hook(None)
        lib.bdd_setminfreenodes(33)
        lib.bdd_setmaxincrease(max(nodesize, 100_000))
        self._max_nodes = max_nodes
        if max_nodes is not None:
            lib.bdd_setmaxnodenum(max(int(max_nodes), nodesize))
        self.gc_policy = (
            gc_policy
            if gc_policy is not None
            else GcPolicy(min_live=gc_min_live, growth=gc_growth)
        )
        self.reorder_policy = (
            reorder_policy if reorder_policy is not None else ReorderPolicy()
        )
        if self.reorder_policy.mode != "off":
            # GC-coupled dynamic reordering maps onto BuDDy's native
            # autoreorder (sifting on table growth, block-aware).
            lib.bdd_autoreorder(_REORDER_SIFT)
        self._var_names: list[str] = []
        self._name_to_var: dict[str, int] = {}
        self._owned: dict[int, int] = {}
        self._extref: dict[int, int] = {}
        self._quant_cubes: dict[tuple[int, ...], int] = {}
        self._boundaries: set[int] = set()
        self._gc_baseline = 1
        self._gc_runs = 0
        self._gc_reclaimed = 0
        self._gc_ratio_sum = 0.0
        self._reorder_runs = 0
        self._peak_live = 0
        _ACTIVE[0] = self
        _ACTIVE[1] = os.getpid()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Tear down the process-global BuDDy state (``bdd_done``)."""
        if self._closed:
            return
        self._closed = True
        if _ACTIVE[0] is self:
            _ACTIVE[0] = None
            if self._lib.bdd_isrunning():
                self._lib.bdd_done()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"vars={self.num_vars}"
        return f"<BuddyManager {state}>"

    # ------------------------------------------------------------------ #
    # Error latch
    # ------------------------------------------------------------------ #

    def _check(self, r: int) -> int:
        code = self._err_code
        if code is not None:
            self._err_code = None
            if code in _LIMIT_ERRORS:
                raise BddNodeLimit(
                    f"BuDDy node/memory limit reached (error {code})"
                )
            raise BddError(f"BuDDy error {code}")
        return r

    def _own(self, r: int) -> int:
        """addref an operator result and track the hold for GC."""
        r = self._check(r)
        self._lib.bdd_addref(r)
        owned = self._owned
        owned[r] = owned.get(r, 0) + 1
        return r

    # ------------------------------------------------------------------ #
    # Variables and the order
    # ------------------------------------------------------------------ #

    def add_var(self, name: str) -> int:
        if name in self._name_to_var:
            raise BddError(f"variable {name!r} already declared")
        var = len(self._var_names)
        lib = self._lib
        if var == 0:
            self._check(lib.bdd_setvarnum(1))
        else:
            self._check(lib.bdd_extvarnum(1))
        self._var_names.append(name)
        self._name_to_var[name] = var
        return var

    def add_vars(self, names: Iterable[str]) -> list[int]:
        return [self.add_var(n) for n in names]

    @property
    def num_vars(self) -> int:
        return len(self._var_names)

    def has_var(self, name: str) -> bool:
        return name in self._name_to_var

    def var_name(self, var: int) -> str:
        return self._var_names[var]

    def var_index(self, name: str) -> int:
        return self._name_to_var[name]

    def var_level(self, var: int) -> int:
        return self._check(self._lib.bdd_var2level(var))

    def var_at_level(self, level: int) -> int:
        return self._check(self._lib.bdd_level2var(level))

    def var_order(self) -> list[str]:
        return [
            self._var_names[self.var_at_level(level)]
            for level in range(len(self._var_names))
        ]

    def set_order(self, names: Sequence[str]) -> None:
        if sorted(names) != sorted(self._var_names):
            raise BddError("set_order must mention every declared variable once")
        level_of = {self._name_to_var[n]: lv for lv, n in enumerate(names)}
        arr = (ctypes.c_int * len(names))(
            *[level_of[v] for v in range(len(names))]
        )
        self._lib.bdd_setvarorder(arr)
        self._check(0)

    def set_reorder_boundaries(self, levels: Iterable[int]) -> None:
        """Freeze reorder blocks at the given levels.

        Mapped onto BuDDy variable blocks.  The solver sets boundaries
        immediately after declaring variables (while level == index), so
        the level ranges translate directly to variable ranges.
        """
        self._boundaries = {int(lv) for lv in levels if lv > 0}
        lib = self._lib
        lib.bdd_clrvarblocks()
        nvars = len(self._var_names)
        cuts = sorted(b for b in self._boundaries if b < nvars)
        for start, end in zip([0, *cuts], [*cuts, nvars]):
            if end - start >= 1:
                self._check(lib.bdd_intaddvarblock(start, end - 1, 0))

    @property
    def reorder_boundaries(self) -> set[int]:
        return set(self._boundaries)

    # ------------------------------------------------------------------ #
    # Edge handles
    # ------------------------------------------------------------------ #

    def var_node(self, var: int) -> int:
        return self._check(self._lib.bdd_ithvar(var))

    def nvar_node(self, var: int) -> int:
        return self._check(self._lib.bdd_nithvar(var))

    def node_var(self, f: int) -> int:
        return self._check(self._lib.bdd_var(f))

    def node_lo(self, f: int) -> int:
        return self._check(self._lib.bdd_low(f))

    def node_hi(self, f: int) -> int:
        return self._check(self._lib.bdd_high(f))

    def level(self, f: int) -> int:
        if f < 2:
            return 1 << 60  # terminals sit below every variable level
        return self.var_level(self.node_var(f))

    # ------------------------------------------------------------------ #
    # Operators
    # ------------------------------------------------------------------ #

    def apply_not(self, f: int) -> int:
        return self._own(self._lib.bdd_not(f))

    def apply_and(self, f: int, g: int) -> int:
        return self._own(self._lib.bdd_apply(f, g, _OP_AND))

    def apply_or(self, f: int, g: int) -> int:
        return self._own(self._lib.bdd_apply(f, g, _OP_OR))

    def apply_xor(self, f: int, g: int) -> int:
        return self._own(self._lib.bdd_apply(f, g, _OP_XOR))

    def apply_iff(self, f: int, g: int) -> int:
        return self._own(self._lib.bdd_apply(f, g, _OP_BIIMP))

    def apply_implies(self, f: int, g: int) -> int:
        return self._own(self._lib.bdd_apply(f, g, _OP_IMP))

    def apply_diff(self, f: int, g: int) -> int:
        return self._own(self._lib.bdd_apply(f, g, _OP_DIFF))

    def ite(self, f: int, g: int, h: int) -> int:
        return self._own(self._lib.bdd_ite(f, g, h))

    # ------------------------------------------------------------------ #
    # Quantification and substitution
    # ------------------------------------------------------------------ #

    def _makeset(self, variables: tuple[int, ...]) -> int:
        cube = self._quant_cubes.get(variables)
        if cube is None:
            arr = (ctypes.c_int * max(len(variables), 1))(*variables)
            cube = self._check(self._lib.bdd_makeset(arr, len(variables)))
            self._lib.bdd_addref(cube)  # interned: pinned for the lifetime
            self._quant_cubes[variables] = cube
        return cube

    def quant_set(self, variables: Iterable[int]) -> BuddyQuantSet:
        return BuddyQuantSet(self, variables)

    def _cube_of(self, variables) -> int:
        if isinstance(variables, BuddyQuantSet):
            return variables.cube
        return self._makeset(tuple(dict.fromkeys(int(v) for v in variables)))

    def exists(self, f: int, variables) -> int:
        cube = self._cube_of(variables)
        if cube == 1:
            return f
        return self._own(self._lib.bdd_exist(f, cube))

    def forall(self, f: int, variables) -> int:
        cube = self._cube_of(variables)
        if cube == 1:
            return f
        return self._own(self._lib.bdd_forall(f, cube))

    def and_exists(self, f: int, g: int, variables) -> int:
        cube = self._cube_of(variables)
        if cube == 1:
            return self.apply_and(f, g)
        return self._own(self._lib.bdd_appex(f, g, _OP_AND, cube))

    def restrict(self, f: int, var: int, value: bool | int) -> int:
        lit = self.var_node(var) if value else self.nvar_node(var)
        return self._own(self._lib.bdd_restrict(f, lit))

    def cofactor_cube(self, f: int, assignment: Mapping[int, bool | int]) -> int:
        for var, val in sorted(assignment.items()):
            f = self.restrict(f, var, val)
        return f

    def constrain(self, f: int, c: int) -> int:
        if c == 0:
            raise BddError("constrain by FALSE is undefined")
        return self._own(self._lib.bdd_constrain(f, c))

    def compose(self, f: int, var: int, g: int) -> int:
        return self._own(self._lib.bdd_compose(f, g, var))

    def vector_compose(self, f: int, substitution: Mapping[int, int]) -> int:
        sub_vars = set(substitution)
        for g in substitution.values():
            if self.support(g) & sub_vars:
                raise BddError(
                    "vector_compose requires substitutions independent "
                    "of substituted vars"
                )
        lib = self._lib
        pair = lib.bdd_newpair()
        try:
            for var, g in substitution.items():
                self._check(lib.bdd_setbddpair(pair, var, g))
            return self._own(lib.bdd_veccompose(f, pair))
        finally:
            lib.bdd_freepair(pair)

    def rename(self, f: int, var_map: Mapping[int, int]) -> int:
        relevant = {o: n for o, n in var_map.items() if o != n}
        if not relevant or f < 2:
            return f
        lib = self._lib
        pair = lib.bdd_newpair()
        try:
            for old, new in relevant.items():
                self._check(lib.bdd_setpair(pair, old, new))
            return self._own(lib.bdd_replace(f, pair))
        finally:
            lib.bdd_freepair(pair)

    # ------------------------------------------------------------------ #
    # Lifetime
    # ------------------------------------------------------------------ #

    def ref(self, f: int) -> int:
        if f >= 2:
            self._lib.bdd_addref(f)
            self._extref[f] = self._extref.get(f, 0) + 1
        return f

    def deref(self, f: int) -> None:
        if f >= 2 and self._extref.get(f, 0) > 0:
            self._lib.bdd_delref(f)
            count = self._extref[f]
            if count <= 1:
                del self._extref[f]
            else:
                self._extref[f] = count - 1

    @contextmanager
    def protect(self, *roots: int) -> Iterator["BuddyManager"]:
        for f in roots:
            self.ref(f)
        try:
            yield self
        finally:
            for f in roots:
                self.deref(f)

    def should_collect(self) -> bool:
        return self.gc_policy.should_collect(
            self._lib.bdd_getnodenum(), self._gc_baseline
        )

    def collect_garbage(self, roots: Iterable[int] = ()) -> int:
        """Drop the adapter's operator-result holds and run ``bdd_gbc``.

        Mirrors the reference contract: externally :meth:`ref`'d edges,
        the given ``roots`` and variable literals survive; everything
        else becomes reclaimable.  Returns the number of nodes freed.
        """
        lib = self._lib
        live_before = lib.bdd_getnodenum()
        if live_before > self._peak_live:
            self._peak_live = live_before
        keep: dict[int, int] = {}
        for f in roots:
            if f >= 2:
                lib.bdd_addref(f)
                keep[f] = keep.get(f, 0) + 1
        for node, count in self._owned.items():
            for _ in range(count):
                lib.bdd_delref(node)
        self._owned = keep
        lib.bdd_gbc()
        live_after = lib.bdd_getnodenum()
        reclaimed = max(live_before - live_after, 0)
        self._gc_runs += 1
        self._gc_reclaimed += reclaimed
        self._gc_ratio_sum += self.gc_policy.record(live_before, reclaimed)
        self._gc_baseline = max(live_after, 1)
        return reclaimed

    def maybe_collect_garbage(self, roots: Iterable[int] = ()) -> int:
        if self.should_collect():
            return self.collect_garbage(roots)
        return 0

    # ------------------------------------------------------------------ #
    # Reordering
    # ------------------------------------------------------------------ #

    def sift_now(
        self,
        roots: Iterable[int] = (),
        *,
        max_growth: float = 1.2,
        max_vars: int | None = None,
    ):
        """One native sifting pass (``bdd_reorder``), block-aware.

        ``max_growth``/``max_vars`` have no BuDDy equivalents and are
        accepted for signature parity.  Returns a
        :class:`~repro.bdd.reorder.SiftResult` (``swaps`` is not
        reported by BuDDy and reads 0).
        """
        from repro.bdd.reorder import SiftResult

        lib = self._lib
        size_before = lib.bdd_getnodenum()
        lib.bdd_reorder(_REORDER_SIFT)
        self._check(0)
        self._reorder_runs += 1
        return SiftResult(
            swaps=0,
            size_before=size_before,
            size_after=lib.bdd_getnodenum(),
            vars_sifted=len(self._var_names),
        )

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def support(self, f: int) -> set[int]:
        if f < 2:
            return set()
        cube = self._own(self._lib.bdd_support(f))
        result: set[int] = set()
        while cube >= 2:
            result.add(self.node_var(cube))
            cube = self.node_hi(cube)
        return result

    def size(self, f: int) -> int:
        return self._check(self._lib.bdd_nodecount(f))

    def size_many(self, roots: Iterable[int]) -> int:
        roots = list(roots)
        if not roots:
            return 0
        arr = (ctypes.c_int * len(roots))(*roots)
        return self._check(self._lib.bdd_anodecount(arr, len(roots)))

    def eval(self, f: int, assignment: Mapping[str, bool | int]) -> bool:
        node = f
        while node >= 2:
            name = self._var_names[self.node_var(node)]
            node = self.node_hi(node) if assignment[name] else self.node_lo(node)
        return node == 1

    def eval_vars(self, f: int, assignment: Mapping[int, bool | int]) -> bool:
        node = f
        while node >= 2:
            node = (
                self.node_hi(node)
                if assignment[self.node_var(node)]
                else self.node_lo(node)
            )
        return node == 1

    def cube(self, assignment: Mapping[int, bool | int]) -> int:
        f = 1
        for var, val in sorted(assignment.items(), reverse=True):
            lit = self.var_node(var) if val else self.nvar_node(var)
            f = self.apply_and(lit, f)
        return f

    @property
    def stats(self) -> dict[str, object]:
        """Reference-shaped counter snapshot.

        BuDDy does not expose the per-operator counters the reference
        kernel tracks; untracked entries read 0 (never ``None``, so
        downstream arithmetic works unchanged).
        """
        live = self._lib.bdd_getnodenum() if not self._closed else 0
        gc_runs = self._gc_runs
        nvars = len(self._var_names)
        return {
            "unique_hits": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "recursive_calls": 0,
            "gc_runs": gc_runs,
            "gc_reclaimed": self._gc_reclaimed,
            "reclaim_ratio_avg": (
                self._gc_ratio_sum / gc_runs if gc_runs else 1.0
            ),
            "reorder_runs": self._reorder_runs,
            "reorder_swaps": 0,
            "peak_live_nodes": max(self._peak_live, live),
            "live_nodes": live,
            "nodes_per_level": [0] * nvars,
            "subtable_count": nvars,
        }

    @property
    def max_nodes(self) -> int | None:
        return self._max_nodes

    def nodes_at_level(self, level: int) -> int:
        return 0  # not tracked per level by the adapter

    def cache_hit_rate(self) -> float:
        return 0.0

    def reset_stats(self) -> None:
        self._gc_runs = 0
        self._gc_reclaimed = 0
        self._gc_ratio_sum = 0.0
        self._reorder_runs = 0
        self._peak_live = self._lib.bdd_getnodenum()

    def clear_caches(self) -> None:
        """No-op: BuDDy manages its operator caches internally."""

    def check(self) -> None:
        """No structural invariants to verify from outside the C kernel.

        The reference kernel walks its own subtables; BuDDy's node table
        is not introspectable at that granularity, so this explicitly
        no-ops with a :class:`~repro.bdd.backends.BackendCheckWarning`
        (once per process, per the default warning filter) instead of
        pretending to have checked something.
        """
        from repro.bdd.backends import BackendCheckWarning

        warnings.warn(
            "BuddyManager.check(): structural invariants are internal to "
            "the native kernel; nothing was verified",
            BackendCheckWarning,
            stacklevel=2,
        )

    # ------------------------------------------------------------------ #
    # Transfer
    # ------------------------------------------------------------------ #

    def dump_nodes(self, roots: Sequence[int]) -> dict:
        """Snapshot ``roots`` in the ``repro-bdd-nodes/1`` wire format.

        BuDDy has no complement edges, so every packed ref carries sign
        bit 0; the loader (any backend's) recombines children with ITE
        and recovers its own canonical form.  Children-first and fully
        iterative, exactly like the reference implementation.
        """
        index: dict[int, int] = {}
        var_col = array("q")
        lo_col = array("q")
        hi_col = array("q")
        name_ids: dict[int, int] = {}
        names: list[str] = []

        def pack(n: int) -> int:
            if n < 2:
                return n
            return (index[n] + 1) << 1

        for root in roots:
            stack = [root]
            while stack:
                node = stack.pop()
                if node < 2 or node in index:
                    continue
                lo = self.node_lo(node)
                hi = self.node_hi(node)
                if (lo < 2 or lo in index) and (hi < 2 or hi in index):
                    var = self.node_var(node)
                    vid = name_ids.get(var)
                    if vid is None:
                        vid = len(names)
                        name_ids[var] = vid
                        names.append(self._var_names[var])
                    index[node] = len(var_col)
                    var_col.append(vid)
                    lo_col.append(pack(lo))
                    hi_col.append(pack(hi))
                else:
                    stack.append(node)  # revisit once children are placed
                    if hi >= 2 and hi not in index:
                        stack.append(hi)
                    if lo >= 2 and lo not in index:
                        stack.append(lo)
        return {
            "format": NODES_FORMAT,
            "names": names,
            "var": var_col,
            "lo": lo_col,
            "hi": hi_col,
            "roots": array("q", [pack(r) for r in roots]),
        }

    def load_nodes(self, data: Mapping) -> list[int]:
        from repro.bdd.backends.protocol import generic_load_nodes

        return generic_load_nodes(self, data)
