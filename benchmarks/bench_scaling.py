"""Supplementary scaling series: solver cost vs unknown-component size.

The paper's Table 1 varies whole benchmarks; this series varies the
*split* on one circuit family.  One benchmark point per split size, for
both flows.  Note the direction: on these families, *smaller* unknowns
are harder — keeping more latches in ``F`` exposes more of the product
state space to the subset construction, so the flexibility automaton
(and with it both flows) grows; the partitioned/monolithic gap persists
across the series.
"""

from __future__ import annotations

import pytest

from repro.bench import circuits
from repro.eqn import build_latch_split_problem, solve_equation

COUNTER_SPLITS = {
    1: ["b1"],
    2: ["b1", "b3"],
    3: ["b1", "b3", "b5"],
}

LFSR_SPLITS = {
    1: ["r2"],
    2: ["r2", "r4"],
    3: ["r2", "r4", "r5"],
}


@pytest.mark.parametrize("k", COUNTER_SPLITS, ids=lambda k: f"xcs{k}")
@pytest.mark.parametrize("method", ["partitioned", "monolithic"])
def test_counter6_split_scaling(benchmark, k, method) -> None:
    def run():
        problem = build_latch_split_problem(circuits.counter(6), COUNTER_SPLITS[k])
        return solve_equation(problem, method=method)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.csf_states > 0


@pytest.mark.parametrize("k", LFSR_SPLITS, ids=lambda k: f"xcs{k}")
@pytest.mark.parametrize("method", ["partitioned", "monolithic"])
def test_lfsr6_split_scaling(benchmark, k, method) -> None:
    def run():
        problem = build_latch_split_problem(circuits.lfsr(6), LFSR_SPLITS[k])
        return solve_equation(problem, method=method)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.csf_states > 0
