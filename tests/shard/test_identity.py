"""Result-identity of the sharded runtime (the CI shard-smoke suite).

``--shards N`` must change *nothing* but the process topology: the
sharded image computations are exact decompositions and BDDs are
canonical, so reached sets, iteration counts and CSFs coincide with the
in-process path.  These tests assert that over reachability workloads
and the full Table 1 solver suite.
"""

from __future__ import annotations

import pytest

from repro.automata import equivalent
from repro.bdd.manager import BddManager
from repro.bench import circuits
from repro.bench.suite import TABLE1_CASES
from repro.eqn.problem import build_latch_split_problem
from repro.eqn.solver import solve_equation
from repro.errors import EquationError
from repro.network.bddbuild import build_network_bdds
from repro.symb.reach import network_reachable_states


def _reach(net, shards):
    mgr = BddManager()
    input_vars = {name: mgr.add_var(name) for name in net.inputs}
    cs = {name: mgr.add_var(name) for name in net.latches}
    ns = {name: mgr.add_var(f"{name}'") for name in net.latches}
    bdds = build_network_bdds(net, mgr, input_vars, cs)
    return network_reachable_states(bdds, ns_vars=ns, shards=shards)


REACH_NETS = [
    ("counter6", lambda: circuits.counter(6)),
    ("gray5", lambda: circuits.gray_counter(5)),
    ("rand12", lambda: circuits.random_network(3, 12, 3, seed=7, n_nodes=70)),
]


@pytest.mark.parametrize("name,make", REACH_NETS, ids=[n for n, _ in REACH_NETS])
@pytest.mark.parametrize("shards", [2, 3])
def test_sharded_reach_identical(name, make, shards) -> None:
    base = _reach(make(), 1)
    sharded = _reach(make(), shards)
    assert sharded.state_count == base.state_count
    assert sharded.iterations == base.iterations


def test_sharded_reach_same_manager_same_edge() -> None:
    """Within one manager, the sharded fixpoint lands on the same BDD."""
    net = circuits.counter(5)
    mgr = BddManager()
    input_vars = {name: mgr.add_var(name) for name in net.inputs}
    cs = {name: mgr.add_var(name) for name in net.latches}
    ns = {name: mgr.add_var(f"{name}'") for name in net.latches}
    bdds = build_network_bdds(net, mgr, input_vars, cs)
    base = network_reachable_states(bdds, ns_vars=ns, shards=1)
    sharded = network_reachable_states(bdds, ns_vars=ns, shards=2)
    assert sharded.states == base.states  # identical edge, not just count


@pytest.mark.parametrize("case", TABLE1_CASES, ids=[c.name for c in TABLE1_CASES])
def test_sharded_solve_full_table1_identical(case) -> None:
    """CSF identity over the *full* Table 1 suite, ``--shards 2`` vs 1.

    The two solves share one problem (and manager), so structural
    identity is meaningful: same subset states discovered in the same
    order, same edge-label BDD edges, same CSF.
    """
    prob = build_latch_split_problem(
        case.network(), list(case.x_latches), max_nodes=case.max_nodes
    )
    base = solve_equation(prob, method="partitioned")
    sharded = solve_equation(prob, method="partitioned", shards=2)
    assert sharded.csf_states == base.csf_states
    assert sharded.stats.subsets == base.stats.subsets
    assert sharded.stats.edges == base.stats.edges
    # Deterministic expansion ⇒ structurally identical solutions.
    assert sharded.solution.state_names == base.solution.state_names
    assert sharded.solution.edges == base.solution.edges
    # ψ-handle accounting: each subset state crossed the wire exactly
    # once (one serialization, one retain per shard, one release each).
    extra = sharded.stats.extra
    assert extra["psi_serializations_max"] == 1
    assert extra["psi_serializations"] == sharded.stats.subsets
    ops = extra["pool_op_counts"]
    assert ops["retain"] == sharded.stats.subsets * 2
    assert ops["release"] >= sharded.stats.batches
    assert ops.get("image", 0) == 0  # no snapshot-shipping expansions
    assert ops.get("dump", 0) == 0


@pytest.mark.parametrize("case", TABLE1_CASES, ids=[c.name for c in TABLE1_CASES])
def test_sharded_batched_full_table1_identical(case) -> None:
    """The batched sharded flow vs ``--shards 1`` over the full suite.

    At matched frontier settings the two runs are structurally
    identical; against the classic dfs@1 run the counts and the
    language still coincide (only state numbering may differ).
    """
    prob = build_latch_split_problem(
        case.network(), list(case.x_latches), max_nodes=case.max_nodes
    )
    classic = solve_equation(prob, method="partitioned")
    base = solve_equation(prob, method="partitioned", frontier="bfs", batch=4)
    sharded = solve_equation(
        prob, method="partitioned", shards=2, frontier="bfs", batch=4
    )
    assert sharded.stats.subsets == base.stats.subsets == classic.stats.subsets
    assert sharded.stats.edges == base.stats.edges == classic.stats.edges
    assert sharded.csf_states == base.csf_states == classic.csf_states
    assert sharded.solution.state_names == base.solution.state_names
    assert sharded.solution.edges == base.solution.edges
    # Transfer accounting again, now with real batches in flight.
    extra = sharded.stats.extra
    assert extra["psi_serializations_max"] == 1
    assert extra["psi_serializations"] == sharded.stats.subsets
    assert extra["pool_op_counts"]["retain"] == sharded.stats.subsets * 2
    # Batching packs the same subsets into fewer oracle round trips.
    assert sharded.stats.batches <= base.stats.subsets


@pytest.mark.parametrize(
    "case", TABLE1_CASES[:3], ids=[c.name for c in TABLE1_CASES[:3]]
)
def test_sharded_solve_language_equivalent(case) -> None:
    prob = build_latch_split_problem(case.network(), list(case.x_latches))
    base = solve_equation(prob, method="partitioned")
    sharded = solve_equation(prob, method="partitioned", shards=3)
    assert equivalent(sharded.csf, base.csf)


def test_shards_require_partitioned_flow() -> None:
    case = TABLE1_CASES[0]
    prob = build_latch_split_problem(case.network(), list(case.x_latches))
    with pytest.raises(EquationError, match="partitioned"):
        solve_equation(prob, method="monolithic", shards=2)
    with pytest.raises(EquationError, match="partitioned"):
        solve_equation(prob, method="explicit", shards=2)


def test_shard_workers_inherit_node_budget() -> None:
    """Workers must enforce the problem's max_nodes (the CNC mechanism):
    an exploding conjunction inside a shard manager is bounded too."""
    case = TABLE1_CASES[0]
    prob = build_latch_split_problem(
        case.network(), list(case.x_latches), max_nodes=123_456
    )
    from repro.eqn.partitioned import PartitionedOracle

    oracle = PartitionedOracle(prob, shards=2)
    try:
        for stats in oracle._pool.stats():
            assert stats["max_nodes"] == 123_456
    finally:
        oracle.close()


def test_shard_worker_budget_raises_as_repro_error() -> None:
    """A worker blowing its budget surfaces as ShardError (a ReproError),
    so the Table 1 harness records CNC exactly as in-process."""
    from repro.bdd import BddManager, dump_nodes
    from repro.errors import ReproError
    from repro.shard import ShardError, ShardPool

    names = [f"x{i}" for i in range(8)] + [f"y{i}" for i in range(8)]
    mgr = BddManager()
    vs = mgr.add_vars(names)
    # Σ x_i·y_i under the blocked order: needs far more than 20 nodes.
    f = 0
    for x, y in zip(vs[:8], vs[8:]):
        f = mgr.apply_or(f, mgr.apply_and(mgr.var_node(x), mgr.var_node(y)))
    with ShardPool(1, names, max_nodes=20) as pool:
        with pytest.raises(ShardError, match="BddNodeLimit"):
            pool.call(0, ("load", 1, dump_nodes(mgr, [f])))
    assert issubclass(ShardError, ReproError)


def test_shards_one_is_the_inprocess_path() -> None:
    """``shards=1`` must not even construct a pool."""
    case = TABLE1_CASES[0]
    prob = build_latch_split_problem(case.network(), list(case.x_latches))
    from repro.eqn.partitioned import PartitionedOracle

    oracle = PartitionedOracle(prob, shards=1)
    assert oracle._pool is None
    assert oracle.p_plan is not None  # the usual in-process plans exist
    oracle.close()  # no-op
