"""Tests for language union (and its interplay with the other ops)."""

from __future__ import annotations

import pytest

from repro.bdd.reorder import transfer
from repro.errors import AutomatonError
from repro.automata import (
    Automaton,
    accepts,
    contained_in,
    empty_automaton,
    enumerate_language,
    equivalent,
    union,
)
from tests.automata.conftest import ALPHABET, random_automaton

WORD_LEN = 3


def rebuild_in(manager, variables, src):
    dst = Automaton(manager, variables)
    for sid in range(src.num_states):
        dst.add_state(src.state_names[sid], accepting=sid in src.accepting)
    for s, bucket in enumerate(src.edges):
        for d, label in bucket.items():
            dst.add_edge(s, d, transfer(label, src.manager, manager))
    dst.initial = src.initial
    return dst


@pytest.mark.parametrize("seed", range(12))
def test_union_is_language_union(seed) -> None:
    a = random_automaton(seed)
    b = rebuild_in(a.manager, a.variables, random_automaton(seed + 77))
    u = union(a, b)
    assert enumerate_language(u, WORD_LEN) == (
        enumerate_language(a, WORD_LEN) | enumerate_language(b, WORD_LEN)
    )


@pytest.mark.parametrize("seed", range(8))
def test_union_contains_both_operands(seed) -> None:
    a = random_automaton(seed)
    b = rebuild_in(a.manager, a.variables, random_automaton(seed + 31))
    u = union(a, b)
    assert contained_in(a, u).holds
    assert contained_in(b, u).holds


def test_union_with_empty_is_identity(mgr) -> None:
    a = Automaton(mgr, ALPHABET)
    s = a.add_state()
    a.add_letter_edge(s, s, {"x": 1})
    e = empty_automaton(mgr, ALPHABET)
    assert equivalent(union(a, e), a)
    assert equivalent(union(e, a), a)


def test_union_of_empties_is_empty(mgr) -> None:
    e1 = empty_automaton(mgr, ALPHABET)
    e2 = empty_automaton(mgr, ALPHABET)
    u = union(e1, e2)
    assert not accepts(u, [])
    assert enumerate_language(u, 2) == set()


def test_union_epsilon_membership(mgr) -> None:
    # ε ∈ L(a) ∪ L(b) iff either initial is accepting.
    a = Automaton(mgr, ALPHABET)
    a.add_state(accepting=False)
    b = Automaton(mgr, ALPHABET)
    b.add_state(accepting=True)
    assert accepts(union(a, b), [])
    assert accepts(union(b, a), [])
    assert not accepts(union(a, a.copy()), [])


def test_union_requires_shared_manager() -> None:
    a = random_automaton(1)
    b = random_automaton(2)
    with pytest.raises(AutomatonError):
        union(a, b)


def test_union_alphabet_mismatch_rejected(mgr) -> None:
    a = Automaton(mgr, ALPHABET)
    a.add_state()
    mgr.add_var("w")
    b = Automaton(mgr, ("w",))
    b.add_state()
    with pytest.raises(AutomatonError):
        union(a, b)


@pytest.mark.parametrize("seed", range(6))
def test_de_morgan_for_languages(seed) -> None:
    # comp(det(a ∪ b)) ≡ comp(det a) ∩ comp(det b) on full-word level.
    from repro.automata import complement, complete, determinize, product

    a = random_automaton(seed, n_states=3)
    b = rebuild_in(a.manager, a.variables, random_automaton(seed + 5, n_states=3))
    lhs = complement(complete(determinize(union(a, b))))
    rhs = product(
        complement(complete(determinize(a))),
        complement(complete(determinize(b))),
    )
    assert equivalent(lhs, rhs)
