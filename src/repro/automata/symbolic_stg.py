"""Symbolic STG extraction: automaton of a component from its BDDs.

Given the partitioned functions of a component — letter-variable bindings
``{x_j ≡ f_j(letters, cs)}`` and next-state bindings ``{ns_k ≡
T_k(letters, cs)}`` — enumerate the reachable states explicitly and build
the (deterministic, all-accepting) automaton whose edge labels are BDDs
over the letter variables.

This replaces :func:`repro.automata.stg.network_to_automaton` when the
component's functions already live in a solver manager: it avoids input
enumeration (symbolic cofactor splitting instead) and lets several
components (``F``, ``S``, ``X_P``, the solved ``X``) share one manager so
they can be composed and compared.

Requirement (checked downstream): all letter variables sit above all
``cs``/``ns`` variables in the manager order.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.bdd.cube import iter_minterms, split_by_vars
from repro.bdd.manager import TRUE, BddManager
from repro.errors import AutomatonError
from repro.automata.automaton import Automaton


def functions_to_automaton(
    mgr: BddManager,
    *,
    alphabet: Sequence[str],
    letter_bindings: Mapping[int, int],
    next_state: Mapping[int, int],
    ns_of_cs: Mapping[int, int],
    init: Mapping[int, int],
    max_states: int | None = None,
    state_namer=None,
) -> Automaton:
    """Build the automaton of a component held as function BDDs.

    Parameters
    ----------
    alphabet:
        Letter variable names, in display order.
    letter_bindings:
        ``letter_var -> function`` pairs asserting ``letter ≡ f(...)``
        (e.g. output and ``u``-wire functions).  Letter variables without
        a binding (the component's free inputs) are unconstrained.
    next_state:
        ``ns_var -> T(letters, cs)`` next-state bindings.
    ns_of_cs:
        ``cs_var -> ns_var`` correspondence (defines the state vector).
    init:
        ``cs_var -> 0/1`` initial state.
    """
    cs_vars = list(ns_of_cs)
    ns_vars = [ns_of_cs[v] for v in cs_vars]
    letter_vars = [mgr.var_index(name) for name in alphabet]
    aut = Automaton(mgr, tuple(alphabet))

    def default_namer(state: tuple[int, ...]) -> str:
        return "".join(str(b) for b in state)

    namer = state_namer or default_namer
    init_key = tuple(init[v] for v in cs_vars)
    ids: dict[tuple[int, ...], int] = {}
    queue: list[tuple[int, ...]] = []

    def state_id(key: tuple[int, ...]) -> int:
        sid = ids.get(key)
        if sid is None:
            if max_states is not None and len(ids) >= max_states:
                raise AutomatonError(f"more than {max_states} reachable states")
            sid = aut.add_state(namer(key), accepting=True)
            ids[key] = sid
            queue.append(key)
        return sid

    state_id(init_key)
    while queue:
        key = queue.pop(0)
        src = ids[key]
        assignment = dict(zip(cs_vars, key))
        relation = TRUE
        for letter_var, function in letter_bindings.items():
            bound = mgr.cofactor_cube(function, assignment)
            relation = mgr.apply_and(
                relation, mgr.apply_iff(mgr.var_node(letter_var), bound)
            )
        for ns_var, function in next_state.items():
            bound = mgr.cofactor_cube(function, assignment)
            relation = mgr.apply_and(
                relation, mgr.apply_iff(mgr.var_node(ns_var), bound)
            )
        for leaf, cond in split_by_vars(mgr, relation, letter_vars).items():
            # Deterministic components: each leaf is one ns minterm.
            for minterm in iter_minterms(mgr, leaf, ns_vars):
                dest = [0] * len(cs_vars)
                for pos, value in enumerate(minterm):
                    dest[pos] = value
                aut.add_edge(src, state_id(tuple(dest)), cond)
    return aut
