"""Bench-driver surface tests: --list, run metadata, the shim warning."""

from __future__ import annotations

import importlib.util
import json
import warnings

import pytest

from repro.bench import driver


class TestListWorkloads:
    def test_lists_kernel_and_table1(self) -> None:
        listing = driver.list_workloads()
        for name, _fn, _full, _smoke in driver.KERNEL_WORKLOADS:
            assert name in listing
        assert "table1/s27" in listing
        assert "table1/johnson12" in listing

    def test_lists_variants_without_running(self) -> None:
        listing = driver.list_workloads()
        assert "rand14@auto" in listing
        assert "johnson12@shards2" in listing
        assert "reach@shards2" in listing
        assert "johnson12@batch8" in listing
        assert "rand20@batch8" in listing
        assert "solve@batch8" in listing
        assert "twin16x4@batch8" in listing
        assert "[bench-only row]" in listing

    def test_cli_flag_runs_nothing(self, tmp_path, capsys) -> None:
        rc = driver.main(["--list", "--out-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernel workloads" in out
        assert "indep_images@shards1" in out
        assert list(tmp_path.iterdir()) == []  # nothing written, nothing run

    def test_repro_bench_list_via_console_entry(self, capsys) -> None:
        from repro.cli import main

        assert main(["bench", "--list"]) == 0
        assert "table1 cases" in capsys.readouterr().out


class TestWorkloadFilter:
    def test_no_patterns_accepts_everything(self) -> None:
        accept = driver.make_workload_filter(None, None)
        assert accept("kernel", "rename")
        assert accept("table1", "rand20")

    def test_only_suite_name_keeps_whole_suite(self) -> None:
        accept = driver.make_workload_filter("kernel", None)
        assert accept("kernel", "rename")
        assert not accept("table1", "s27")

    def test_only_full_path_glob(self) -> None:
        accept = driver.make_workload_filter("table1/rand*", None)
        assert accept("table1", "rand14")
        assert accept("table1", "rand20")
        assert not accept("table1", "s27")
        assert not accept("kernel", "rename")

    def test_bare_name_glob_matches_across_suites(self) -> None:
        accept = driver.make_workload_filter("*@shards*", None)
        assert accept("kernel", "reach@shards2")
        assert accept("table1", "johnson12@shards2")
        assert not accept("kernel", "rename")

    def test_skip_wins_over_only(self) -> None:
        accept = driver.make_workload_filter("kernel", "kernel/rename")
        assert accept("kernel", "xor_parity")
        assert not accept("kernel", "rename")

    def test_comma_separated_patterns(self) -> None:
        accept = driver.make_workload_filter("rename,xor_parity", None)
        assert accept("kernel", "rename")
        assert accept("kernel", "xor_parity")
        assert not accept("kernel", "and_or_chain")

    def test_skip_only(self) -> None:
        accept = driver.make_workload_filter(None, "table1")
        assert accept("kernel", "rename")
        assert not accept("table1", "s27")


class TestFilteredRuns:
    def test_only_runs_single_kernel_workload(self, tmp_path, capsys) -> None:
        rc = driver.main(
            [
                "--smoke",
                "--only",
                "kernel/rename",
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert rc == 0
        payload = json.loads((tmp_path / "BENCH_kernel.json").read_text())
        assert [r["name"] for r in payload["results"]] == ["rename"]
        assert payload["meta"]["filtered"] is True
        # The table1 suite was skipped entirely: no file written.
        assert not (tmp_path / "BENCH_table1.json").exists()

    def test_skip_can_drop_table1(self, tmp_path) -> None:
        rc = driver.main(
            [
                "--smoke",
                "--only",
                "kernel/rename,kernel/xor_parity",
                "--skip",
                "*parity*",
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert rc == 0
        payload = json.loads((tmp_path / "BENCH_kernel.json").read_text())
        assert [r["name"] for r in payload["results"]] == ["rename"]

    def test_nothing_matching_is_an_error(self, tmp_path, capsys) -> None:
        rc = driver.main(
            ["--smoke", "--only", "no-such-workload", "--out-dir", str(tmp_path)]
        )
        assert rc == 2
        assert "nothing run" in capsys.readouterr().err
        assert list(tmp_path.iterdir()) == []

    def test_smoke_suppressed_variant_rows_are_not_selectable(
        self, tmp_path, capsys
    ) -> None:
        """A smoke run never emits @batch8/@auto/@shards2 rows, so
        selecting only one of them must error instead of writing an
        empty artifact with exit 0."""
        rc = driver.main(
            ["--smoke", "--only", "rand20@batch8", "--out-dir", str(tmp_path)]
        )
        assert rc == 2
        assert list(tmp_path.iterdir()) == []
        # The same selection in full mode *is* a planned row.
        assert "rand20@batch8" in driver.table1_row_names(False)
        assert "rand20@batch8" not in driver.table1_row_names(True)

    def test_reorder_run_suppresses_auto_variants(self) -> None:
        names_off = driver.table1_row_names(False, reorder="off")
        names_auto = driver.table1_row_names(False, reorder="auto")
        assert "rand14@auto" in names_off
        assert "rand14@auto" not in names_auto

    def test_row_names_match_listing(self) -> None:
        """Every planned full-run row appears in the --list output."""
        listing = driver.list_workloads()
        for name in driver.table1_row_names(False):
            base = name.split("@")[0]
            assert base in listing

    def test_list_respects_filters(self, capsys) -> None:
        assert driver.main(["--list", "--only", "table1/rand*"]) == 0
        out = capsys.readouterr().out
        assert "rand14" in out
        assert "s27" not in out
        assert "and_or_chain" not in out


class TestProductOrderVariants:
    def test_listing_shows_interleave_variants(self) -> None:
        listing = driver.list_workloads()
        assert "solve@interleave" in listing
        assert "johnson12@interleave" in listing
        assert "twin16x4@interleave+batch8" in listing
        assert "twin12_8@interleave+batch8" in listing
        assert "twin12_8@batch8" in listing

    def test_interleave_rows_gated_on_stacked_runs(self) -> None:
        """An interleaved *run* compares whole-suite orders; only the
        default stacked run emits the paired @interleave variant rows."""
        stacked = driver.table1_row_names(False, product_order="stacked")
        inter = driver.table1_row_names(False, product_order="interleaved")
        assert "johnson12@interleave" in stacked
        assert "twin12_8@interleave+batch8" in stacked
        assert "johnson12@interleave" not in inter
        assert "twin12_8@interleave+batch8" not in inter
        # Base rows survive under either product order.
        assert "johnson12" in inter
        assert "twin12_8@batch8" in inter

    def test_smoke_suppresses_interleave_variants(self) -> None:
        assert "johnson12@interleave" not in driver.table1_row_names(True)


class TestResidencyAndComposeVariants:
    def test_listing_shows_budget_and_compose_rows(self) -> None:
        listing = driver.list_workloads()
        assert "twin16x4@budget" in listing
        assert "twin20_4@compose" in listing
        assert "[compose row]" in listing

    def test_rows_planned_only_in_full_runs(self) -> None:
        full = driver.table1_row_names(False)
        assert "twin16x4@budget" in full
        assert "twin20_4@compose" in full
        smoke = driver.table1_row_names(True)
        assert "twin16x4@budget" not in smoke
        assert "twin20_4@compose" not in smoke

    def test_compose_case_restricts_u_signals(self) -> None:
        """The compose case must carry a restricted U alphabet — the
        default split couples every component to X and the planner
        would (correctly) decline, leaving a misleading direct row."""
        from repro.bench.suite import TABLE1_COMPOSE_CASES

        for case in TABLE1_COMPOSE_CASES:
            assert case.u_signals, case.name


class TestEnvLimitedStatus:
    def _rows(self):
        return [
            {"name": "indep_images@shards2", "size": 12, "wall_s": 0.4,
             "peak_live_nodes": 100},
            {"name": "rename", "size": 12, "wall_s": 0.1,
             "peak_live_nodes": 100},
        ]

    def test_shard_rows_env_limited_across_core_counts(
        self, monkeypatch
    ) -> None:
        monkeypatch.setattr(driver.os, "cpu_count", lambda: 1)
        baseline = {"meta": {"cpu_count": 64}, "results": self._rows()}
        rows = driver.compare_to_baseline(self._rows(), baseline)
        by_name = {r["name"]: r for r in rows}
        shard = by_name["indep_images@shards2"]
        assert shard["status"] == "env-limited"
        assert shard["ratio"] is None and shard["norm_ratio"] is None
        # Non-shard rows on the same machine still compare normally.
        assert by_name["rename"]["status"] == "compared"

    def test_same_multicore_counts_compare_normally(self, monkeypatch) -> None:
        monkeypatch.setattr(driver.os, "cpu_count", lambda: 64)
        baseline = {"meta": {"cpu_count": 64}, "results": self._rows()}
        rows = driver.compare_to_baseline(self._rows(), baseline)
        assert all(r["status"] == "compared" for r in rows)

    def test_markdown_renders_env_limited(self, monkeypatch, tmp_path) -> None:
        monkeypatch.setattr(driver.os, "cpu_count", lambda: 1)
        path = tmp_path / "base.json"
        path.write_text(
            json.dumps({"meta": {"cpu_count": 64}, "results": self._rows()})
        )
        md = driver.format_markdown_diff(self._rows(), path, 1.5)
        line = next(
            ln for ln in md.splitlines() if "| indep_images@shards2 |" in ln
        )
        assert "environment-limited (cpus 64 → 1)" in line


class TestMeta:
    def test_records_environment(self) -> None:
        meta = driver.meta(False)
        assert isinstance(meta["cpu_count"], int) and meta["cpu_count"] >= 1
        assert meta["python"].count(".") == 2
        assert meta["platform"]
        assert meta["smoke"] is False

    def test_extra_knobs_merge(self) -> None:
        meta = driver.meta(True, reorder="auto", gc="adaptive")
        assert meta["reorder"] == "auto"
        assert meta["gc"] == "adaptive"


class TestDiffEnvironmentLine:
    def test_markdown_diff_surfaces_cpu_counts(self, tmp_path) -> None:
        results = [
            {"name": "w", "size": 5, "wall_s": 0.01, "peak_live_nodes": 1}
        ]
        baseline = {
            "meta": {"cpu_count": 64, "python": "3.99.0", "git_rev": "abc"},
            "results": [
                {"name": "w", "size": 5, "wall_s": 0.01, "peak_live_nodes": 1}
            ],
        }
        path = tmp_path / "base.json"
        path.write_text(json.dumps(baseline))
        md = driver.format_markdown_diff(results, path, 1.5)
        assert "cpus=64" in md  # the baseline environment
        assert "Environment: cpus=" in md  # the current one
        assert "python=3.99.0" in md

    def test_diff_tolerates_missing_baseline_meta(self, tmp_path) -> None:
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"results": []}))
        md = driver.format_markdown_diff([], path, 1.5)
        assert "cpus=?" in md
        assert "environment mismatch" not in md

    def test_diff_warns_on_environment_mismatch(self, tmp_path) -> None:
        """cpu_count / python drift earns an explicit warning line, so
        shard-variant deltas are never misread across machines."""
        baseline = {
            "meta": {"cpu_count": 64, "python": "3.99.0"},
            "results": [],
        }
        path = tmp_path / "base.json"
        path.write_text(json.dumps(baseline))
        md = driver.format_markdown_diff([], path, 1.5)
        assert "⚠️" in md
        assert "environment mismatch" in md
        assert "cpu_count differs (baseline 64" in md
        assert "python differs (baseline 3.99.0" in md
        assert "@shardsN" in md

    def test_diff_no_warning_when_environment_matches(self, tmp_path) -> None:
        import os
        import platform

        baseline = {
            "meta": {
                "cpu_count": os.cpu_count(),
                "python": platform.python_version(),
            },
            "results": [],
        }
        path = tmp_path / "base.json"
        path.write_text(json.dumps(baseline))
        md = driver.format_markdown_diff([], path, 1.5)
        assert "environment mismatch" not in md


class TestShimDeprecation:
    def _load_shim(self):
        import pathlib

        repo = pathlib.Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "bench_run_all_depr", repo / "benchmarks" / "run_all.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_shim_warns_and_points_at_repro_bench(self) -> None:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            module = self._load_shim()
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert deprecations, "shim must emit a DeprecationWarning"
        assert "repro bench" in str(deprecations[0].message)
        # The shim still re-exports the driver surface.
        assert module.main is driver.main

    def test_package_driver_does_not_warn(self) -> None:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.reload(driver)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]


@pytest.mark.parametrize("name", ["reach@shards1", "reach@shards2",
                                  "indep_images@shards1", "indep_images@shards2"])
def test_shard_workloads_registered_in_pairs(name) -> None:
    names = [n for n, *_ in driver.KERNEL_WORKLOADS]
    assert name in names
    base, variant = name.split("@")
    # Every @shardsN row has its @shards1 twin at the same size.
    sizes = {
        n: (full, smoke) for n, _f, full, smoke in driver.KERNEL_WORKLOADS
    }
    assert sizes[f"{base}@shards1"] == sizes[name]
