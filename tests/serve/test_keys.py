"""Cache-key semantics: what collides, what must not.

The content-addressed cache is only sound if the key is exactly the
problem: textually different but structurally identical submissions
must collide, and any flag that can change the produced automaton, its
state numbering or its stats must separate.
"""

from __future__ import annotations

import pytest

from repro.bench import S27_BLIF
from repro.errors import ServeError
from repro.network.blif import parse_blif
from repro.serve.keys import (
    FLAG_DEFAULTS,
    cache_key,
    canonical_blif,
    job_spec,
    solve_cache_key,
)

X = ["G6", "G7"]


def test_key_is_stable_hex_digest() -> None:
    key = solve_cache_key(S27_BLIF, X)
    assert len(key) == 64
    assert set(key) <= set("0123456789abcdef")
    assert key == solve_cache_key(S27_BLIF, X)


def test_whitespace_and_comments_do_not_change_the_key() -> None:
    noisy = "# a comment\n" + S27_BLIF.replace("\n", "\n\n") + "\n# trailing\n"
    assert solve_cache_key(noisy, X) == solve_cache_key(S27_BLIF, X)


def test_network_object_and_text_agree() -> None:
    net = parse_blif(S27_BLIF)
    assert solve_cache_key(net, X) == solve_cache_key(S27_BLIF, X)
    assert canonical_blif(net) == canonical_blif(S27_BLIF)


def test_latch_selection_order_does_not_matter() -> None:
    assert solve_cache_key(S27_BLIF, ["G6", "G7"]) == solve_cache_key(
        S27_BLIF, ["G7", "G6"]
    )


def test_different_split_separates() -> None:
    assert solve_cache_key(S27_BLIF, ["G6"]) != solve_cache_key(S27_BLIF, X)


@pytest.mark.parametrize(
    "flag,value",
    [
        ("method", "monolithic"),
        ("schedule", False),
        ("trim", False),
        ("reorder", "auto"),
        ("gc", "adaptive"),
        ("shards", 2),
        ("frontier", "bfs"),
        ("batch", 8),
        ("product_order", "interleaved"),
    ],
)
def test_every_solver_flag_separates(flag: str, value) -> None:
    assert solve_cache_key(S27_BLIF, X, **{flag: value}) != solve_cache_key(
        S27_BLIF, X
    )


def test_defaults_are_explicit_in_the_spec() -> None:
    spec = job_spec(S27_BLIF, X)
    for name, default in FLAG_DEFAULTS.items():
        assert spec[name] == default
    assert spec["u_signals"] is None
    # An explicitly-defaulted flag hashes like an omitted one.
    assert cache_key(job_spec(S27_BLIF, X, batch=1)) == cache_key(spec)


def test_unknown_flag_is_rejected_not_silently_defaulted() -> None:
    with pytest.raises(ServeError, match="unknown solver flags"):
        job_spec(S27_BLIF, X, bach=8)  # typo must not alias onto batch=1


def test_budgets_are_not_part_of_the_spec() -> None:
    # max_seconds / max_nodes bound completion, not the result; job_spec
    # has no such fields at all, so they cannot leak into the key.
    with pytest.raises(ServeError):
        job_spec(S27_BLIF, X, max_seconds=5)


class TestBackendExclusion:
    """The BDD backend is validated but never hashed: backends are
    byte-identical by the conformance contract, so two submissions
    differing only in backend are the same problem and must collide."""

    def test_backend_does_not_change_the_key(self) -> None:
        base = solve_cache_key(S27_BLIF, X)
        assert solve_cache_key(S27_BLIF, X, backend="python") == base
        assert solve_cache_key(S27_BLIF, X, backend="buddy") == base

    def test_backend_never_enters_the_spec(self) -> None:
        spec = job_spec(S27_BLIF, X, backend="buddy")
        assert "backend" not in spec
        assert spec == job_spec(S27_BLIF, X)

    def test_excluded_flags_are_declared(self) -> None:
        from repro.serve.keys import EXCLUDED_FLAGS

        assert "backend" in EXCLUDED_FLAGS
        assert not set(EXCLUDED_FLAGS) & set(FLAG_DEFAULTS)

    def test_misspelled_backend_is_rejected(self) -> None:
        with pytest.raises(ServeError, match="unknown BDD backend"):
            job_spec(S27_BLIF, X, backend="cudd")
