"""Tests for the metrics registry and the Prometheus exposition format."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    parse_exposition,
)


class TestCounter:
    def test_inc_and_labels(self) -> None:
        reg = MetricsRegistry()
        c = reg.counter("repro_solves_total", "Completed solves.")
        c.inc()
        c.inc(2, backend="python")
        assert c.value() == 1
        assert c.value(backend="python") == 2

    def test_counters_never_decrease(self) -> None:
        c = MetricsRegistry().counter("x_total", "x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_set_to_federates_cumulative_sources(self) -> None:
        c = MetricsRegistry().counter("x_total", "x")
        c.set_to(10)
        c.set_to(7)  # a stale snapshot never moves it backwards
        assert c.value() == 10

    def test_get_or_create_is_idempotent(self) -> None:
        reg = MetricsRegistry()
        a = reg.counter("x_total", "x")
        assert reg.counter("x_total", "ignored") is a
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total", "now a gauge?")

    def test_bad_names_rejected(self) -> None:
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name", "x")
        c = reg.counter("ok_total", "x")
        with pytest.raises(ValueError):
            c.inc(**{"0bad": "v"})


class TestGauge:
    def test_set_inc_dec(self) -> None:
        g = MetricsRegistry().gauge("repro_queue_depth", "Queue depth.")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4


class TestHistogram:
    def test_buckets_are_cumulative(self) -> None:
        reg = MetricsRegistry()
        h = reg.histogram("repro_solve_seconds", "Solve time.", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(50.0)  # beyond the last bound: +Inf only
        samples = {
            (name, dict(key).get("le")): value
            for name, key, value in h.samples()
            if name.endswith("_bucket")
        }
        assert samples[("repro_solve_seconds_bucket", "0.1")] == 1
        assert samples[("repro_solve_seconds_bucket", "1")] == 2
        assert samples[("repro_solve_seconds_bucket", "+Inf")] == 3
        count = [v for n, _, v in h.samples() if n.endswith("_count")]
        total = [v for n, _, v in h.samples() if n.endswith("_sum")]
        assert count == [3.0]
        assert total == [pytest.approx(50.55)]

    def test_default_buckets_sorted(self) -> None:
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRenderRoundTrip:
    def make_registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        c = reg.counter("repro_solves_total", "Completed solves.")
        c.inc(3, status="done")
        c.inc(1, status="failed")
        reg.gauge("repro_queue_depth", "Jobs waiting.").set(2)
        h = reg.histogram("repro_solve_seconds", "Solve time.", buckets=(0.1, 1.0))
        h.observe(0.25)
        reg.counter(
            "repro_escapes_total", 'Weird "label" values.'
        ).inc(1, path='a"b\\c\nd')
        return reg

    def test_round_trip_through_parser(self) -> None:
        reg = self.make_registry()
        text = reg.render()
        families = parse_exposition(text)  # raises on any grammar violation
        assert families["repro_solves_total"]["type"] == "counter"
        assert families["repro_solves_total"]["help"] == "Completed solves."
        solves = {
            labels.get("status"): value
            for _, labels, value in families["repro_solves_total"]["samples"]
        }
        assert solves == {"done": 3.0, "failed": 1.0}
        assert families["repro_queue_depth"]["type"] == "gauge"
        hist = families["repro_solve_seconds"]
        bucket_values = [
            value
            for name, labels, value in hist["samples"]
            if name.endswith("_bucket")
        ]
        assert bucket_values == [0.0, 1.0, 1.0]  # cumulative over (0.1, 1, +Inf)
        # Escaped label values survive the round trip byte-for-byte.
        (sample,) = families["repro_escapes_total"]["samples"]
        assert sample[1]["path"] == 'a"b\\c\nd'

    def test_unseen_families_render_at_zero(self) -> None:
        reg = MetricsRegistry()
        reg.counter("repro_cache_hits_total", "Cache hits.")
        families = parse_exposition(reg.render())
        (sample,) = families["repro_cache_hits_total"]["samples"]
        assert sample[2] == 0.0

    def test_parser_rejects_bad_grammar(self) -> None:
        with pytest.raises(ValueError, match="bad sample line"):
            parse_exposition("this is { not a metric\n")
        with pytest.raises(ValueError, match="unknown type"):
            parse_exposition("# TYPE x summary\n")
        with pytest.raises(ValueError, match="bad value"):
            parse_exposition("x_total twelve\n")

    def test_inf_rendering(self) -> None:
        reg = MetricsRegistry()
        reg.gauge("x", "x").set(math.inf)
        assert "x +Inf" in reg.render()
        parse_exposition(reg.render())


class TestSnapshot:
    def test_snapshot_shapes(self) -> None:
        reg = MetricsRegistry()
        reg.counter("plain_total", "x").inc(2)
        labelled = reg.counter("labelled_total", "x")
        labelled.inc(1, op="load")
        labelled.inc(4, op="plan")
        h = reg.histogram("h_seconds", "x")
        h.observe(1.5)
        h.observe(2.5)
        snap = reg.snapshot()
        assert snap["plain_total"] == 2.0
        assert snap["labelled_total"] == {"op=load": 1.0, "op=plan": 4.0}
        assert snap["h_seconds"] == {"count": 2.0, "sum": 4.0}
