"""Export and (de)serialisation of BDDs.

* :func:`to_dot` renders one or more functions as a Graphviz digraph
  (solid = then-edge, dashed = else-edge), handy for debugging and docs.
  Complement edges are rendered expanded: both polarities of a shared
  node appear as separate graph vertices, so the drawing always shows the
  plain (complement-free) ROBDD of each root.
* :func:`dump_function` / :func:`load_function` round-trip a function
  through a plain JSON-able structure, used by the test suite and by the
  CLI's ``--save`` option.
* :func:`dump_nodes` / :func:`load_nodes` round-trip a *set* of functions
  through a packed-array snapshot — flat ``array('q')`` columns of
  ``(var, lo, hi)`` records preserving complement bits and shared
  structure.  This is the wire format of the sharded runtime
  (:mod:`repro.shard`): snapshots pickle to a few bytes per node (vs
  tens for the nested-list JSON form), variables travel by *name* so
  managers with different orders and indices interoperate, and loading
  recombines children with ITE, so it is safe under any destination
  order and at any BDD depth (no recursion on either side).
"""

from __future__ import annotations

import struct
import sys
from array import array
from collections.abc import Mapping, Sequence

from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.errors import BddError

#: Version tag of the packed-array snapshot format.
NODES_FORMAT = "repro-bdd-nodes/1"

#: Magic prefix of the single-function binary blob format.
FUNCTION_MAGIC = b"repro-bdd-fn/1\n"


def to_dot(
    mgr: BddManager,
    roots: Mapping[str, int] | Sequence[int],
    *,
    graph_name: str = "bdd",
) -> str:
    """Render the shared DAG of ``roots`` in Graphviz dot format."""
    if isinstance(roots, Mapping):
        named = dict(roots)
    else:
        named = {f"f{i}": node for i, node in enumerate(roots)}
    lines = [f"digraph {graph_name} {{", "  rankdir=TB;"]
    lines.append('  node0 [label="0", shape=box];')
    lines.append('  node1 [label="1", shape=box];')
    seen: set[int] = set()
    stack = list(named.values())
    while stack:
        node = stack.pop()
        if node < 2 or node in seen:
            continue
        seen.add(node)
        name = mgr.var_name(mgr.node_var(node))
        lines.append(f'  node{node} [label="{name}", shape=circle];')
        lo, hi = mgr.node_lo(node), mgr.node_hi(node)
        lines.append(f"  node{node} -> node{lo} [style=dashed];")
        lines.append(f"  node{node} -> node{hi} [style=solid];")
        stack.append(lo)
        stack.append(hi)
    for label, node in sorted(named.items()):
        lines.append(f'  root_{label} [label="{label}", shape=plaintext];')
        lines.append(f"  root_{label} -> node{node};")
    lines.append("}")
    return "\n".join(lines)


def dump_function(mgr: BddManager, f: int) -> dict:
    """Serialise ``f`` into a JSON-able dict.

    Nodes are listed children-first as ``[var_name, lo_ref, hi_ref]``
    where refs are ``"F"``, ``"T"`` or an index into the node list.
    """
    order: list[int] = []
    seen: set[int] = set()

    def visit(node: int) -> None:
        if node < 2 or node in seen:
            return
        seen.add(node)
        visit(mgr.node_lo(node))
        visit(mgr.node_hi(node))
        order.append(node)

    visit(f)
    index = {FALSE: "F", TRUE: "T"}
    nodes = []
    for pos, node in enumerate(order):
        index[node] = pos
        nodes.append(
            [
                mgr.var_name(mgr.node_var(node)),
                index[mgr.node_lo(node)],
                index[mgr.node_hi(node)],
            ]
        )
    return {"nodes": nodes, "root": index[f]}


def load_function(mgr: BddManager, data: dict) -> int:
    """Rebuild a function serialised by :func:`dump_function`.

    Variables are matched by name and must already exist in ``mgr``
    (declared on demand otherwise).
    """
    built: list[int] = []

    def ref(token: object) -> int:
        if token == "F":
            return FALSE
        if token == "T":
            return TRUE
        if isinstance(token, int):
            return built[token]
        raise BddError(f"malformed BDD dump reference: {token!r}")

    for name, lo_ref, hi_ref in data["nodes"]:
        try:
            var = mgr.var_index(name)
        except KeyError:
            var = mgr.add_var(name)
        lo, hi = ref(lo_ref), ref(hi_ref)
        built.append(mgr.ite(mgr.var_node(var), hi, lo))
    return ref(data["root"])


def dump_nodes(mgr: BddManager, roots: Sequence[int]) -> dict:
    """Serialise the shared DAG of ``roots`` as a packed-array snapshot.

    The snapshot is a dict of flat ``array('q')`` columns::

        {"format": NODES_FORMAT,
         "names":  [var name, ...],          # snapshot-local var table
         "var":    array('q', [...]),        # index into ``names`` per node
         "lo":     array('q', [...]),        # packed child refs
         "hi":     array('q', [...]),
         "roots":  array('q', [...])}        # packed root refs

    Nodes are listed children-first over the *regular* (uncomplemented)
    DAG, so shared structure is stored exactly once regardless of how
    many roots (or polarities) reach it.  A packed ref is ``0`` (FALSE),
    ``1`` (TRUE) or ``((pos + 1) << 1) | sign`` where ``pos`` indexes the
    node columns — the complement bit of every edge survives verbatim.
    The traversal is iterative, so snapshots of BDDs deeper than the
    Python recursion limit work.

    This is the wire format the sharded runtime ships across process
    boundaries; it is also several times denser than
    :func:`dump_function` when pickled.
    """
    index: dict[int, int] = {}
    var_col = array("q")
    lo_col = array("q")
    hi_col = array("q")
    name_ids: dict[int, int] = {}
    names: list[str] = []

    def pack(edge: int) -> int:
        reg = edge & -2
        if reg == 0:
            return edge  # FALSE/TRUE survive as-is
        return (index[reg] + 1) << 1 | (edge & 1)

    for root in roots:
        stack: list[int] = [root & -2]
        while stack:
            node = stack.pop()
            if node == 0 or node in index:
                continue
            lo = mgr.node_lo(node) & -2
            hi = mgr.node_hi(node) & -2
            if (lo == 0 or lo in index) and (hi == 0 or hi in index):
                var = mgr.node_var(node)
                vid = name_ids.get(var)
                if vid is None:
                    vid = len(names)
                    name_ids[var] = vid
                    names.append(mgr.var_name(var))
                index[node] = len(var_col)
                var_col.append(vid)
                lo_col.append(pack(mgr.node_lo(node)))
                hi_col.append(pack(mgr.node_hi(node)))
            else:
                stack.append(node)  # revisit once the children are placed
                if hi != 0 and hi not in index:
                    stack.append(hi)
                if lo != 0 and lo not in index:
                    stack.append(lo)
    return {
        "format": NODES_FORMAT,
        "names": names,
        "var": var_col,
        "lo": lo_col,
        "hi": hi_col,
        "roots": array("q", [pack(r) for r in roots]),
    }


def dump_function_packed(mgr: BddManager, f: int) -> bytes:
    """Serialise one function as a compact self-describing binary blob.

    This is the spill format of the bounded-memory runtime
    (:mod:`repro.eqn.residency`): one evicted ψ costs exactly one blob,
    not a registry snapshot.  The layout is::

        FUNCTION_MAGIC
        <QQQ little-endian: names length, node count, packed root ref>
        names, NUL-separated, UTF-8
        var column   (node count × int64, little-endian)
        lo column    (node count × int64, little-endian)
        hi column    (node count × int64, little-endian)

    Columns and packed refs are exactly those of :func:`dump_nodes`
    restricted to a single root.  The children-first traversal order is
    determined by the *structure* of ``f`` alone (never by node
    addresses), so two managers holding the same function under the same
    variable order produce byte-identical blobs — which is what makes
    the spill store content-addressable: identical sibling ψ share one
    blob on disk.

    ``mgr`` may be any :class:`~repro.bdd.backends.protocol.BddBackend`
    — the snapshot is taken through the protocol's ``dump_nodes``
    method, so native shard workers spill the same way the reference
    kernel does.
    """
    snap = mgr.dump_nodes([f])
    names_blob = "\x00".join(snap["names"]).encode("utf-8")
    cols = [
        col if isinstance(col, array) else array("q", col)
        for col in (snap["var"], snap["lo"], snap["hi"])
    ]
    if sys.byteorder != "little":  # pragma: no cover - exotic platforms
        cols = [array("q", col) for col in cols]
        for col in cols:
            col.byteswap()
    header = struct.pack(
        "<QQQ", len(names_blob), len(snap["var"]), snap["roots"][0]
    )
    return b"".join(
        [FUNCTION_MAGIC, header, names_blob] + [col.tobytes() for col in cols]
    )


def load_function_packed(mgr: BddManager, blob: bytes) -> int:
    """Rebuild a function serialised by :func:`dump_function_packed`.

    Like :func:`load_nodes`, children are recombined with ITE, so the
    destination manager may hold any variable order; with a preserved
    order the rebuild degenerates to pure unique-table lookups.
    """
    if not blob.startswith(FUNCTION_MAGIC):
        raise BddError("unknown packed-function blob (bad magic)")
    offset = len(FUNCTION_MAGIC)
    names_len, n_nodes, root = struct.unpack_from("<QQQ", blob, offset)
    offset += struct.calcsize("<QQQ")
    names_blob = blob[offset : offset + names_len]
    names = names_blob.decode("utf-8").split("\x00") if names_len else []
    offset += names_len
    cols = []
    for _ in range(3):
        col = array("q")
        col.frombytes(blob[offset : offset + n_nodes * col.itemsize])
        if sys.byteorder != "little":  # pragma: no cover - exotic platforms
            col.byteswap()
        cols.append(col)
        offset += n_nodes * col.itemsize
    data = {
        "format": NODES_FORMAT,
        "names": names,
        "var": cols[0],
        "lo": cols[1],
        "hi": cols[2],
        "roots": array("q", [root]),
    }
    return mgr.load_nodes(data)[0]


def load_nodes(mgr: BddManager, data: Mapping) -> list[int]:
    """Rebuild the functions serialised by :func:`dump_nodes`.

    Variables are matched by name (declared on demand when absent).
    Children are recombined with ITE, so the destination order may
    differ arbitrarily from the order the snapshot was taken under; with
    a preserved order the rebuild degenerates to pure unique-table
    lookups.  Returns the root edges aligned with the dumped roots.
    """
    if data.get("format") != NODES_FORMAT:
        raise BddError(f"unknown BDD snapshot format: {data.get('format')!r}")
    vars_local: list[int] = []
    for name in data["names"]:
        try:
            vars_local.append(mgr.var_index(name))
        except KeyError:
            vars_local.append(mgr.add_var(name))
    built = array("q")
    ite = mgr.ite

    def unpack(ref: int) -> int:
        if ref < 2:
            return ref
        return built[(ref >> 1) - 1] ^ (ref & 1)

    for vid, lo_ref, hi_ref in zip(data["var"], data["lo"], data["hi"]):
        built.append(
            ite(mgr.var_node(vars_local[vid]), unpack(hi_ref), unpack(lo_ref))
        )
    return [unpack(r) for r in data["roots"]]
