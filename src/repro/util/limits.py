"""Deterministic resource budgets for solver runs.

The paper reports "CNC" (could not complete) for the monolithic flow on its
two largest benchmarks.  To reproduce that failure mode deterministically,
solver flows accept a :class:`ResourceLimit` combining a wall-clock budget
and a BDD-node budget; exceeding either raises a library exception that the
Table 1 harness converts into a "CNC" table entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TimeLimit
from repro.util.timer import Stopwatch


@dataclass
class ResourceLimit:
    """A combined wall-clock / BDD-node budget.

    Parameters
    ----------
    max_seconds:
        Wall-clock budget in seconds; ``None`` means unlimited.
    max_nodes:
        BDD node budget (enforced by the BDD manager); ``None`` means
        unlimited.
    """

    max_seconds: float | None = None
    max_nodes: int | None = None
    _clock: Stopwatch = field(default_factory=Stopwatch, repr=False, compare=False)

    def restart(self) -> None:
        """Restart the wall-clock budget."""
        self._clock.restart()

    def elapsed(self) -> float:
        """Seconds since construction or :meth:`restart`."""
        return self._clock.elapsed()

    def check_time(self) -> None:
        """Raise :class:`~repro.errors.TimeLimit` when over budget."""
        if self.max_seconds is not None and self.elapsed() > self.max_seconds:
            raise TimeLimit(self.max_seconds)

    @staticmethod
    def unlimited() -> "ResourceLimit":
        """A limit object that never fires."""
        return ResourceLimit(max_seconds=None, max_nodes=None)
