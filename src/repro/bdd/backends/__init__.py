"""Pluggable BDD backends behind one construction point.

The solver stack never constructs :class:`~repro.bdd.manager.BddManager`
directly any more — it asks :func:`create_manager` for a manager
implementing the :class:`~repro.bdd.backends.protocol.BddBackend`
protocol.  Backends register themselves here:

* ``"python"`` — the pure-Python reference kernel (always available);
* ``"buddy"`` — a ctypes adapter to the native BuDDy library
  (:mod:`repro.bdd.backends.buddy`), available when the shared library
  is installed (``REPRO_BUDDY_LIB`` or the system linker path).

Degradation is graceful by design: requesting an unavailable backend
falls back to the pure-Python one with a single
:class:`BackendFallbackWarning` per backend per process — a ``--backend
buddy`` run on a box without the library still solves, identically,
just slower.  Requesting an *unknown* backend raises
(:class:`~repro.errors.BddError`): a typo must not silently alias onto
the default.

Third-party adapters call :func:`register_backend` and can validate
themselves with :func:`~repro.bdd.backends.protocol.missing_ops` plus
the conformance kit in :mod:`repro.bdd.backends.conformance`.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable

from repro.bdd.backends.protocol import (
    BddBackend,
    generic_load_nodes,
    missing_ops,
)
from repro.errors import BddError

#: The backend names the CLI surfaces (``--backend {python,buddy}``).
BACKEND_CHOICES = ("python", "buddy")

#: Name of the always-available reference backend.
DEFAULT_BACKEND = "python"


class BackendFallbackWarning(UserWarning):
    """A requested native backend is unavailable; pure Python is used.

    Emitted exactly once per backend per process by
    :func:`create_manager`.  Results are unaffected — every backend must
    produce identical BDDs — only speed differs, which is why this is a
    warning and not an error.
    """


class BackendCheckWarning(UserWarning):
    """``check()`` has no structural invariants to verify on this backend."""


class BackendUnavailable(BddError):
    """A backend factory could not come up (missing/unloadable library).

    Raised by adapter constructors; :func:`create_manager` turns it into
    the graceful pure-Python fallback.
    """


class _Backend:
    """Registry entry: a factory plus a cheap availability probe."""

    __slots__ = ("factory", "name", "probe")

    def __init__(
        self,
        name: str,
        factory: Callable[..., BddBackend],
        probe: Callable[[], bool],
    ) -> None:
        self.name = name
        self.factory = factory
        self.probe = probe


_REGISTRY: dict[str, _Backend] = {}
_FALLBACK_WARNED: set[str] = set()


def register_backend(
    name: str,
    factory: Callable[..., BddBackend],
    *,
    probe: Callable[[], bool] | None = None,
) -> None:
    """Register (or replace) a backend factory under ``name``.

    ``factory`` must accept the reference constructor's keyword surface
    (``max_nodes``, ``gc_policy``, ``reorder_policy``, ``apply_core``)
    and return a :class:`~repro.bdd.backends.protocol.BddBackend`.
    ``probe`` is a cheap availability check (e.g. "can the shared
    library be found?"); it defaults to always-available.
    """
    _REGISTRY[name] = _Backend(name, factory, probe or (lambda: True))


def registered_backends() -> list[str]:
    """Every registered backend name, available or not."""
    return sorted(_REGISTRY)


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered and its availability probe passes."""
    entry = _REGISTRY.get(name)
    return entry is not None and bool(entry.probe())


def available_backends() -> list[str]:
    """Names of registered backends whose probes pass right now."""
    return [name for name in sorted(_REGISTRY) if backend_available(name)]


def create_manager(backend: str = DEFAULT_BACKEND, **kwargs) -> BddBackend:
    """Construct a manager on ``backend``, falling back gracefully.

    * unknown name → :class:`~repro.errors.BddError` (typos must not
      silently solve on the default backend);
    * known but unavailable (probe fails, or construction raises an
      availability error) → the pure-Python reference manager, with one
      :class:`BackendFallbackWarning` per backend per process;
    * ``kwargs`` are the reference constructor's keywords and are passed
      through unchanged — a fallback therefore behaves bit-identically
      to asking for ``"python"`` in the first place.
    """
    entry = _REGISTRY.get(backend)
    if entry is None:
        raise BddError(
            f"unknown BDD backend {backend!r}; "
            f"registered: {', '.join(registered_backends())}"
        )
    if entry.name != DEFAULT_BACKEND:
        if not entry.probe():
            _warn_fallback(entry.name)
            entry = _REGISTRY[DEFAULT_BACKEND]
        else:
            try:
                return entry.factory(**kwargs)
            except BackendUnavailable:
                # The probe passed but the library would not load (e.g. a
                # stale REPRO_BUDDY_LIB path): same graceful fallback.
                _warn_fallback(entry.name)
                entry = _REGISTRY[DEFAULT_BACKEND]
    return entry.factory(**kwargs)


def _warn_fallback(name: str) -> None:
    if name in _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED.add(name)
    warnings.warn(
        f"BDD backend {name!r} is unavailable (shared library not found); "
        f"falling back to the pure-Python reference backend. Results are "
        f"identical; only speed differs. Set REPRO_BUDDY_LIB or install "
        f"the library to enable it.",
        BackendFallbackWarning,
        stacklevel=3,
    )


def _reset_fallback_warnings() -> None:
    """Re-arm the warn-once latch (test helper)."""
    _FALLBACK_WARNED.clear()


def _register_builtin_backends() -> None:
    # The reference backend registers eagerly (it is the fallback target
    # and must always exist); the native adapters register lazily — the
    # factory import happens per call, the probe only touches the
    # filesystem/linker.
    from repro.bdd.manager import BddManager

    register_backend("python", BddManager)

    def _buddy_probe() -> bool:
        from repro.bdd.backends.buddy import find_buddy_library

        return find_buddy_library() is not None

    def _buddy_factory(**kwargs) -> BddBackend:
        from repro.bdd.backends.buddy import BuddyManager

        return BuddyManager(**kwargs)

    register_backend("buddy", _buddy_factory, probe=_buddy_probe)


_register_builtin_backends()

__all__ = [
    "BACKEND_CHOICES",
    "DEFAULT_BACKEND",
    "BackendCheckWarning",
    "BackendFallbackWarning",
    "BackendUnavailable",
    "BddBackend",
    "available_backends",
    "backend_available",
    "create_manager",
    "generic_load_nodes",
    "missing_ops",
    "register_backend",
    "registered_backends",
]
