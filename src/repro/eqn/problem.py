"""Language-equation problem instances (Section 2, Figure 1 topology).

An :class:`EquationProblem` packages everything both solver flows need:
one BDD manager with a deliberate global variable order, the partitioned
functions of the fixed component ``F`` — ``{T^F_j(i,v,cs1)}``,
``{U_j(i,v,cs1)}``, ``{O^F_j(i,v,cs1)}`` — and of the specification ``S``
— ``{T^S_j(i,cs2)}``, ``{O^S_j(i,cs2)}`` — plus the DC-completion flag
variable pair the monolithic flow needs.

Variable order (top to bottom), ``product_order="stacked"`` (default)::

    i..., o..., u..., v...,        # letter variables
    (F.cs_k, F.ns_k)*,             # fixed component latches, interleaved
    (S.dc, S.dc'),                 # completion flag (monolithic flow)
    (S.cs_k, S.ns_k)*              # specification latches, interleaved

``product_order="interleaved"`` pairs each specification latch with its
fixed-component twin by name and interleaves the two machines per latch::

    i..., o..., u..., v...,        # letter variables
    (S.dc, S.dc'),                 # completion flag (monolithic flow)
    (F.cs_k, F.ns_k, S.cs_k, S.ns_k)*   # per kept latch, in S latch order
    (S.cs_x, S.ns_x)*                   # extracted latches (no F twin)

For tightly coupled splits the stacked order must remember every F-latch
valuation before correlating it with its S twin (exponential node
counts); interleaving the copies keeps the correlation local.

Letter variables above all state variables is a *requirement* of the
cofactor-splitting step of the subset construction (both orders keep the
reorder block boundary there); cs directly above its ns twin keeps the
ns->cs rename order-preserving (fast path) in both orders.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bdd.backends.protocol import BddBackend
from repro.bdd.policy import GcPolicy, ReorderPolicy
from repro.errors import EquationError
from repro.network.bddbuild import build_network_bdds
from repro.network.transform import LatchSplit, latch_split
from repro.network.netlist import Network


@dataclass
class EquationProblem:
    """All solver inputs for one ``F ∘ X ⊆ S`` instance."""

    manager: BddBackend
    split: LatchSplit
    # Letter variable names (alphabet groups), in declaration order.
    i_names: list[str]
    o_names: list[str]
    u_names: list[str]
    v_names: list[str]
    # Letter variable indices by name.
    i_vars: dict[str, int]
    o_vars: dict[str, int]
    u_vars: dict[str, int]
    v_vars: dict[str, int]
    # Fixed component F.
    f_cs_vars: dict[str, int]
    f_ns_vars: dict[str, int]
    f_next: dict[str, int] = field(default_factory=dict)  # latch -> T^F
    f_u: dict[str, int] = field(default_factory=dict)  # u wire -> U_j
    f_o: dict[str, int] = field(default_factory=dict)  # output -> O^F_j
    # Specification S.
    s_cs_vars: dict[str, int] = field(default_factory=dict)
    s_ns_vars: dict[str, int] = field(default_factory=dict)
    s_next: dict[str, int] = field(default_factory=dict)  # latch -> T^S
    s_o: dict[str, int] = field(default_factory=dict)  # output -> O^S_j
    # DC completion flag pair (monolithic flow).
    dc_var: int = -1
    dc_ns_var: int = -1
    # Initial product state cube over (F.cs, S.cs).
    init_cube: int = 1
    # Product variable order policy ("stacked" or "interleaved").
    product_order: str = "stacked"

    # -- derived helpers -------------------------------------------------- #

    def uv_names(self) -> list[str]:
        """Alphabet of the unknown component: u wires then v wires."""
        return self.u_names + self.v_names

    def uv_vars(self) -> list[int]:
        return [self.u_vars[n] for n in self.u_names] + [
            self.v_vars[n] for n in self.v_names
        ]

    def all_cs_vars(self) -> list[int]:
        """Product current-state variables (F then S), excluding DC."""
        return list(self.f_cs_vars.values()) + list(self.s_cs_vars.values())

    def all_ns_vars(self) -> list[int]:
        """Product next-state variables (F then S), excluding DC."""
        return list(self.f_ns_vars.values()) + list(self.s_ns_vars.values())

    def ns_to_cs(self) -> dict[int, int]:
        """Rename map ns -> cs over the product state space."""
        out = {
            self.f_ns_vars[name]: self.f_cs_vars[name] for name in self.f_ns_vars
        }
        out.update(
            {self.s_ns_vars[name]: self.s_cs_vars[name] for name in self.s_ns_vars}
        )
        return out

    def quantify_vars(self) -> list[int]:
        """Variables hidden by the subset-construction image: i and cs."""
        return [self.i_vars[n] for n in self.i_names] + self.all_cs_vars()

    def live_bdds(self) -> list[int]:
        """Every BDD the problem owns for its whole lifetime.

        These are pinned (``manager.ref``) by :func:`build_problem` so
        solver-driven garbage collections can never reclaim them: a
        problem is typically solved more than once (both flows, the
        verifier, implementation extraction), and each pass must find the
        function BDDs intact.
        """
        return (
            list(self.f_next.values())
            + list(self.f_u.values())
            + list(self.f_o.values())
            + list(self.s_next.values())
            + list(self.s_o.values())
            + [self.init_cube]
        )

    def conformance_parts(self) -> list[tuple[str, int]]:
        """Per-output conformance conditions C_j = [O^F_j ≡ O^S_j].

        Returned as (output name, BDD over (i, v, cs1, cs2)) pairs; the
        partitioned flow uses their complements one at a time
        ("the computation of Q can be done one output at a time").
        """
        mgr = self.manager
        out = []
        for name in self.o_names:
            out.append((name, mgr.apply_iff(self.f_o[name], self.s_o[name])))
        return out


def build_problem(
    split: LatchSplit,
    *,
    max_nodes: int | None = None,
    reorder: str = "off",
    gc: str = "static",
    backend: str = "python",
    product_order: str = "stacked",
) -> EquationProblem:
    """Build an :class:`EquationProblem` from a latch split.

    ``reorder`` (``"off"`` / ``"auto"`` / ``"sift"``) and ``gc``
    (``"static"`` / ``"adaptive"``) configure the manager's adaptive
    runtime (:mod:`repro.bdd.policy`): with reordering enabled, garbage
    collections whose reclaim ratio stays low trigger an in-place sift
    mid-solve.  A reorder block boundary is frozen between the letter
    variables and the state variables, so sifting can never violate the
    letters-above-states requirement of the subset construction's
    cofactor splitting (state variables still reorder freely).

    ``backend`` selects the BDD kernel through
    :func:`repro.bdd.backends.create_manager` (``"python"`` — the
    reference — or a native adapter such as ``"buddy"``); every backend
    produces identical results, so this is purely a speed knob, and an
    unavailable native backend falls back to pure Python with a warning.

    ``product_order`` selects the state-block layout (see the module
    docstring): ``"stacked"`` keeps all F latch pairs above all S pairs;
    ``"interleaved"`` groups each kept latch's four copies together.
    Both orders produce identical solver results — this is purely a
    node-count/speed knob for coupled splits.
    """
    from repro.bdd.backends import create_manager

    if product_order not in ("stacked", "interleaved"):
        raise EquationError(
            f"unknown product_order: {product_order!r} "
            "(expected 'stacked' or 'interleaved')"
        )
    original = split.original
    fixed = split.fixed
    mgr = create_manager(
        backend,
        max_nodes=max_nodes,
        gc_policy=GcPolicy(mode=gc),
        reorder_policy=ReorderPolicy(mode=reorder),
    )

    # ---- declare letter variables (top of the order) ---- #
    i_names = list(original.inputs)
    o_names = list(original.outputs)
    u_names = list(split.u_names)
    v_names = list(split.v_names)
    seen: set[str] = set()
    for name in i_names + o_names + u_names + v_names:
        if name in seen:
            raise EquationError(f"letter variable collision: {name!r}")
        seen.add(name)
    i_vars = {n: mgr.add_var(n) for n in i_names}
    o_vars = {n: mgr.add_var(n) for n in o_names}
    u_vars = {n: mgr.add_var(n) for n in u_names}
    v_vars = {n: mgr.add_var(n) for n in v_names}
    # Letter variables must stay above all state variables (required by
    # split_by_vars); dynamic reordering may not cross this boundary.
    mgr.set_reorder_boundaries([mgr.num_vars])

    # ---- state variables, interleaved cs/ns ---- #
    f_cs_vars: dict[str, int] = {}
    f_ns_vars: dict[str, int] = {}
    s_cs_vars: dict[str, int] = {}
    s_ns_vars: dict[str, int] = {}
    if product_order == "stacked":
        for name in fixed.latches:
            f_cs_vars[name] = mgr.add_var(f"F.{name}")
            f_ns_vars[name] = mgr.add_var(f"F.{name}'")
        dc_var = mgr.add_var("S.dc")
        dc_ns_var = mgr.add_var("S.dc'")
        for name in original.latches:
            s_cs_vars[name] = mgr.add_var(f"S.{name}")
            s_ns_vars[name] = mgr.add_var(f"S.{name}'")
    else:
        # Interleaved: DC flag pair first (keeps the ns->cs rename
        # monotone: S.dc' is the topmost source, S.dc the topmost
        # target), then each kept latch's four copies grouped together.
        from repro.bdd.reorder import interleaved_state_order, pair_state_latches

        dc_var = mgr.add_var("S.dc")
        dc_ns_var = mgr.add_var("S.dc'")
        pairs = pair_state_latches(list(original.latches), list(fixed.latches))
        for var_name in interleaved_state_order(pairs):
            idx = mgr.add_var(var_name)
            base = var_name[2:]  # strip "F." / "S." prefix
            if var_name.startswith("F."):
                if base.endswith("'"):
                    f_ns_vars[base[:-1]] = idx
                else:
                    f_cs_vars[base] = idx
            else:
                if base.endswith("'"):
                    s_ns_vars[base[:-1]] = idx
                else:
                    s_cs_vars[base] = idx
        # Restore declaration-order iteration (F latches in fixed order,
        # S latches in original order) — downstream code zips these dicts
        # against net.latches.
        f_cs_vars = {name: f_cs_vars[name] for name in fixed.latches}
        f_ns_vars = {name: f_ns_vars[name] for name in fixed.latches}
        s_cs_vars = {name: s_cs_vars[name] for name in original.latches}
        s_ns_vars = {name: s_ns_vars[name] for name in original.latches}

    # ---- F functions over (i, v, cs1) ---- #
    f_inputs = {n: i_vars[n] for n in original.inputs}
    f_inputs.update({n: v_vars[n] for n in v_names})
    f_bdds = build_network_bdds(fixed, mgr, f_inputs, f_cs_vars)
    problem = EquationProblem(
        manager=mgr,
        split=split,
        i_names=i_names,
        o_names=o_names,
        u_names=u_names,
        v_names=v_names,
        i_vars=i_vars,
        o_vars=o_vars,
        u_vars=u_vars,
        v_vars=v_vars,
        f_cs_vars=f_cs_vars,
        f_ns_vars=f_ns_vars,
        s_cs_vars=s_cs_vars,
        s_ns_vars=s_ns_vars,
        dc_var=dc_var,
        dc_ns_var=dc_ns_var,
        product_order=product_order,
    )
    problem.f_next = dict(f_bdds.next_state)
    for wire in u_names:
        problem.f_u[wire] = f_bdds.outputs[wire]
    from repro.network.transform import v_wire  # local to avoid cycle

    for out in original.outputs:
        fixed_name = v_wire(out) if out in split.x_latches else out
        problem.f_o[out] = f_bdds.outputs[fixed_name]

    # ---- S functions over (i, cs2) ---- #
    s_bdds = build_network_bdds(original, mgr, dict(i_vars), s_cs_vars)
    problem.s_next = dict(s_bdds.next_state)
    problem.s_o = {out: s_bdds.outputs[out] for out in original.outputs}

    # ---- initial product state ---- #
    bindings = {
        f_cs_vars[name]: latch.init for name, latch in fixed.latches.items()
    }
    bindings.update(
        {s_cs_vars[name]: latch.init for name, latch in original.latches.items()}
    )
    problem.init_cube = mgr.cube(bindings)
    for bdd in problem.live_bdds():
        mgr.ref(bdd)
    return problem


def build_latch_split_problem(
    net: Network,
    x_latches,
    *,
    u_signals=None,
    max_nodes: int | None = None,
    reorder: str = "off",
    gc: str = "static",
    backend: str = "python",
    product_order: str = "stacked",
) -> EquationProblem:
    """Latch-split ``net`` and build the equation problem in one call."""
    split = latch_split(net, x_latches, u_signals=u_signals)
    return build_problem(
        split,
        max_nodes=max_nodes,
        reorder=reorder,
        gc=gc,
        backend=backend,
        product_order=product_order,
    )
