"""Tests for the small utility layer (timers, limits, tables)."""

from __future__ import annotations

import time

import pytest

from repro.errors import TimeLimit
from repro.util import ResourceLimit, Stopwatch, format_table


class TestStopwatch:
    def test_elapsed_monotone(self) -> None:
        sw = Stopwatch()
        t1 = sw.elapsed()
        t2 = sw.elapsed()
        assert 0 <= t1 <= t2

    def test_restart_resets(self) -> None:
        sw = Stopwatch()
        time.sleep(0.01)
        before = sw.elapsed()
        sw.restart()
        assert sw.elapsed() < before


class TestResourceLimit:
    def test_unlimited_never_fires(self) -> None:
        limit = ResourceLimit.unlimited()
        limit.check_time()  # no exception

    def test_time_budget_fires(self) -> None:
        limit = ResourceLimit(max_seconds=0.0)
        time.sleep(0.005)
        with pytest.raises(TimeLimit):
            limit.check_time()

    def test_restart_extends_budget(self) -> None:
        limit = ResourceLimit(max_seconds=10.0)
        limit.restart()
        limit.check_time()

    def test_reports_budget(self) -> None:
        limit = ResourceLimit(max_seconds=0.0)
        time.sleep(0.002)
        with pytest.raises(TimeLimit) as excinfo:
            limit.check_time()
        assert excinfo.value.seconds == 0.0


class TestFormatTable:
    def test_alignment(self) -> None:
        text = format_table(["Name", "n"], [["abc", 1], ["x", 1234]])
        lines = text.splitlines()
        assert lines[0].startswith("Name")
        assert lines[1].startswith("----")
        assert lines[2].startswith("abc")
        # Numbers are right-aligned.
        assert lines[3].endswith("1234")

    def test_left_columns_configurable(self) -> None:
        text = format_table(
            ["a", "b"], [["x", "y"]], align_left=(0, 1)
        )
        assert "x" in text and "y" in text

    def test_empty_rows(self) -> None:
        text = format_table(["h1", "h2"], [])
        assert len(text.splitlines()) == 2
