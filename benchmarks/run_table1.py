#!/usr/bin/env python
"""Standalone Table 1 printer: the paper-style reproduction table.

Usage::

    python benchmarks/run_table1.py            # all six rows
    python benchmarks/run_table1.py s27 rand10 # selected rows
    python benchmarks/run_table1.py --paper    # also print the paper's table

Prints the measured columns (Name, i/o/cs, Fcs/Xcs, States(X), Part,s,
Mono,s, Ratio) with "CNC" where a flow exceeded its budget, followed by
the row-by-row mapping to the paper's benchmarks.
"""

from __future__ import annotations

import sys

from repro.bench.suite import TABLE1_CASES, case_by_name
from repro.eqn.table1 import PAPER_TABLE1, render_table1, run_table1


def main(argv: list[str]) -> int:
    show_paper = "--paper" in argv
    names = [a for a in argv if not a.startswith("-")]
    cases = [case_by_name(n) for n in names] if names else TABLE1_CASES
    rows = run_table1(cases, verbose=True)
    print()
    print("Measured (this machine, pure-Python BDD engine):")
    print(render_table1(rows))
    print()
    print("Row mapping to the paper:")
    for case, row in zip(cases, rows):
        print(f"  {case.name:9s} mirrors {case.paper_row}")
    if show_paper:
        print()
        print(PAPER_TABLE1)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
