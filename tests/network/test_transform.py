"""Tests for latch splitting and recomposition (the Table 1 generator)."""

from __future__ import annotations

import random

import pytest

from repro.bench import circuits, figure3_network, s27
from repro.errors import NetworkError
from repro.network import latch_split, prune_dangling, recompose, u_wire, v_wire


def random_stimulus(input_names, cycles=24, seed=5):
    rng = random.Random(seed)
    return [{n: rng.randint(0, 1) for n in input_names} for _ in range(cycles)]


class TestLatchSplit:
    def test_split_shapes(self) -> None:
        net = s27()
        split = latch_split(net, ["G6"])
        assert split.fixed.num_latches == 2
        assert split.unknown.num_latches == 1
        assert split.describe() == "2/1"
        # F gained the v input and the u outputs.
        assert v_wire("G6") in split.fixed.inputs
        assert u_wire("G0") in split.fixed.outputs
        assert u_wire("G5") in split.fixed.outputs
        # X_P sees only u wires.
        assert split.unknown.inputs == [u_wire(s) for s in split.u_signals]
        assert split.unknown.outputs == [v_wire("G6")]

    def test_requires_nonempty_subset(self) -> None:
        with pytest.raises(NetworkError):
            latch_split(s27(), [])

    def test_requires_existing_latches(self) -> None:
        with pytest.raises(NetworkError):
            latch_split(s27(), ["nope"])

    def test_rejects_unexposed_dependency(self) -> None:
        net = s27()
        # G6's next state needs G5 and G9 logic; expose only one input.
        with pytest.raises(NetworkError, match="unexposed"):
            latch_split(net, ["G6"], u_signals=["G0"])

    def test_duplicate_latches_deduped(self) -> None:
        split = latch_split(s27(), ["G6", "G6"])
        assert split.x_latches == ["G6"]

    @pytest.mark.parametrize(
        "make,x",
        [
            (lambda: s27(), ["G5"]),
            (lambda: s27(), ["G6", "G7"]),
            (lambda: figure3_network(), ["cs1"]),
            (lambda: figure3_network(), ["cs2"]),
            (lambda: circuits.counter(4), ["b1", "b3"]),
            (lambda: circuits.johnson(4), ["j0"]),
            (lambda: circuits.lfsr(5), ["r2", "r3"]),
            (lambda: circuits.traffic_light(), ["p0"]),
            (lambda: circuits.token_arbiter(3), ["t1"]),
            (lambda: circuits.random_network(3, 5, 2, seed=2), ["l0", "l3"]),
        ],
    )
    def test_recompose_equals_original(self, make, x) -> None:
        net = make()
        split = latch_split(net, x)
        merged = recompose(split)
        stimulus = random_stimulus(net.inputs)
        assert _outputs_match(net, merged, split, stimulus)

    def test_full_split_leaves_f_combinational(self) -> None:
        net = figure3_network()
        split = latch_split(net, ["cs1", "cs2"])
        assert split.fixed.num_latches == 0
        merged = recompose(split)
        stimulus = random_stimulus(net.inputs)
        assert _outputs_match(net, merged, split, stimulus)

    def test_unknown_reproduces_moved_state(self) -> None:
        # Drive X_P with the u values produced by simulating the original
        # network; its state must track the original moved latches.
        net = circuits.counter(4)
        split = latch_split(net, ["b2"])
        state = net.initial_state()
        xp_state = split.unknown.initial_state()
        rng = random.Random(9)
        for _ in range(20):
            inputs = {"en": rng.randint(0, 1)}
            assert xp_state["b2"] == state["b2"]
            u_values = {
                u_wire(s): (inputs[s] if s in inputs else state[s])
                for s in split.u_signals
            }
            _, xp_state = split.unknown.step(xp_state, u_values)
            _, state = net.step(state, inputs)


def _outputs_match(net, merged, split, stimulus) -> bool:
    got = merged.simulate(stimulus)
    want = net.simulate(stimulus)
    for g, w in zip(got, want):
        for name in net.outputs:
            merged_name = v_wire(name) if name in split.x_latches else name
            if g[merged_name] != w[name]:
                return False
    return True


class TestPrune:
    def test_prune_removes_dead_nodes(self) -> None:
        net = circuits.counter(3)
        net.add_node("dead", "b0 & b1")
        pruned = prune_dangling(net)
        assert "dead" not in pruned.nodes
        assert pruned.outputs == net.outputs

    def test_prune_keeps_latch_cones(self) -> None:
        net = circuits.counter(3)
        pruned = prune_dangling(net)
        stimulus = random_stimulus(net.inputs)
        assert pruned.simulate(stimulus) == net.simulate(stimulus)
