"""Experiment E4 (Corollary 1) and general cross-flow validation.

The partitioned flow never completes ``F`` or ``S`` (completions are
deferred into the subset construction); the monolithic flow completes
``S`` up front; the explicit flow completes both (Algorithm 1 line 05).
Corollary 1 says all of these produce the same language — which is
exactly what these tests check, circuit by circuit, split by split,
together with the scheduling and trimming ablations.
"""

from __future__ import annotations

import pytest

from repro.bench import circuits, s27
from repro.automata import equivalent
from repro.eqn import build_latch_split_problem, solve_equation, verify_solution

CASES = [
    (lambda: s27(), ["G5"]),
    (lambda: s27(), ["G6"]),
    (lambda: s27(), ["G7"]),
    (lambda: s27(), ["G5", "G6"]),
    (lambda: s27(), ["G5", "G6", "G7"]),
    (lambda: circuits.counter(3), ["b0"]),
    (lambda: circuits.counter(4), ["b1", "b2"]),
    (lambda: circuits.johnson(4), ["j0", "j3"]),
    (lambda: circuits.lfsr(4), ["r1", "r2"]),
    (lambda: circuits.shift_register(4), ["s1", "s2"]),
    (lambda: circuits.sequence_detector("1011"), ["h0", "h2"]),
    (lambda: circuits.traffic_light(), ["p1"]),
    (lambda: circuits.token_arbiter(3), ["t0", "t2"]),
    (lambda: circuits.random_network(2, 5, 2, seed=21), ["l0", "l2"]),
    (lambda: circuits.random_network(3, 6, 3, seed=22), ["l1", "l4"]),
]


@pytest.mark.parametrize("make,x", CASES)
def test_partitioned_equals_monolithic(make, x) -> None:
    prob = build_latch_split_problem(make(), x)
    rp = solve_equation(prob, method="partitioned")
    rm = solve_equation(prob, method="monolithic")
    assert rp.csf_states == rm.csf_states
    assert equivalent(rp.csf, rm.csf)


@pytest.mark.parametrize("make,x", CASES[:10])
def test_partitioned_equals_explicit(make, x) -> None:
    prob = build_latch_split_problem(make(), x)
    rp = solve_equation(prob, method="partitioned")
    re = solve_equation(prob, method="explicit")
    assert equivalent(rp.csf, re.csf)


@pytest.mark.parametrize("make,x", CASES[:8])
def test_scheduling_ablation_preserves_language(make, x) -> None:
    prob = build_latch_split_problem(make(), x)
    fast = solve_equation(prob, method="partitioned", schedule=True)
    slow = solve_equation(prob, method="partitioned", schedule=False)
    assert fast.csf_states == slow.csf_states
    assert equivalent(fast.csf, slow.csf)


@pytest.mark.parametrize("make,x", CASES[:8])
def test_trimming_ablation_preserves_language(make, x) -> None:
    prob = build_latch_split_problem(make(), x)
    trimmed = solve_equation(prob, method="partitioned", trim=True)
    untrimmed = solve_equation(prob, method="partitioned", trim=False)
    assert equivalent(trimmed.csf, untrimmed.csf)
    mono_untrimmed = solve_equation(prob, method="monolithic", trim=False)
    assert equivalent(trimmed.csf, mono_untrimmed.csf)


@pytest.mark.parametrize("make,x", CASES[:6])
def test_solutions_verify(make, x) -> None:
    prob = build_latch_split_problem(make(), x)
    result = solve_equation(prob, method="partitioned")
    report = verify_solution(result)
    assert report.ok, report.summary()


def test_trimming_explores_fewer_or_equal_subsets() -> None:
    # Footnote 9: the DCN shortcut trims the subset construction.
    prob = build_latch_split_problem(circuits.counter(4), ["b1", "b2"])
    trimmed = solve_equation(prob, method="partitioned", trim=True)
    untrimmed = solve_equation(prob, method="partitioned", trim=False)
    assert trimmed.stats.subsets <= untrimmed.stats.subsets


def test_most_general_solution_is_deterministic_and_prefix_closed() -> None:
    prob = build_latch_split_problem(s27(), ["G6"])
    result = solve_equation(prob, method="partitioned")
    assert result.solution.is_deterministic()
    # Trim mode: every state accepting (prefix-closed by construction).
    assert result.solution.accepting == set(range(result.solution.num_states))


def test_csf_is_input_progressive() -> None:
    from repro.bdd.manager import FALSE

    prob = build_latch_split_problem(s27(), ["G6"])
    result = solve_equation(prob, method="partitioned")
    csf = result.csf
    mgr = csf.manager
    other = [mgr.var_index(v) for v in csf.variables if v not in prob.u_names]
    for sid in range(csf.num_states):
        defined = FALSE
        for label in csf.edges[sid].values():
            defined = mgr.apply_or(defined, label)
        assert mgr.exists(defined, other) == 1, f"state {sid} not u-progressive"


def test_explicit_trace_records_algorithm1_steps() -> None:
    prob = build_latch_split_problem(circuits.counter(3), ["b1"])
    result = solve_equation(prob, method="explicit")
    steps = [name for name, _ in result.explicit_trace.steps]
    assert steps[:2] == ["S", "F"]
    assert "Complement" in steps
    assert steps[-1] == "Progressive(u)"


def test_unknown_method_rejected() -> None:
    from repro.errors import EquationError

    prob = build_latch_split_problem(circuits.counter(3), ["b1"])
    with pytest.raises(EquationError):
        solve_equation(prob, method="quantum")
