"""Tests for the Table 1 suite definition and harness plumbing."""

from __future__ import annotations

import pytest

from repro.bench.suite import TABLE1_CASES, case_by_name
from repro.eqn.table1 import (
    HEADERS,
    PAPER_TABLE1,
    Table1Row,
    render_table1,
    run_case,
)


class TestSuiteDefinition:
    def test_has_at_least_six_rows_like_the_paper(self) -> None:
        assert len(TABLE1_CASES) >= 6

    def test_every_case_builds_and_splits(self) -> None:
        for case in TABLE1_CASES:
            net = case.network()
            net.validate()
            missing = set(case.x_latches) - set(net.latches)
            assert not missing, f"{case.name}: unknown latches {missing}"
            assert 0 < len(case.x_latches) < net.num_latches + 1

    def test_case_names_unique(self) -> None:
        names = [case.name for case in TABLE1_CASES]
        assert len(names) == len(set(names))

    def test_case_lookup(self) -> None:
        assert case_by_name("s27").name == "s27"
        with pytest.raises(KeyError):
            case_by_name("nope")

    def test_the_large_rows_expect_cnc(self) -> None:
        # The paper's shape: the largest instances are CNC for monolithic.
        cnc = [case.name for case in TABLE1_CASES if case.expect_mono_cnc]
        assert len(cnc) >= 2

    def test_describe_mentions_split(self) -> None:
        text = case_by_name("s27").describe()
        assert "s27" in text and "2/1" in text


class TestHarness:
    def test_run_case_smallest_row(self) -> None:
        row = run_case(case_by_name("s27"))
        assert row.states == 7
        assert row.part_seconds is not None
        assert row.mono_seconds is not None
        assert row.ratio is not None and row.ratio > 0

    def test_run_case_partitioned_only(self) -> None:
        row = run_case(case_by_name("s27"), methods=("partitioned",))
        assert row.mono_seconds is None
        assert row.ratio is None
        assert row.cells()[5] == "CNC"

    def test_render_shapes_like_the_paper(self) -> None:
        rows = [
            Table1Row(
                name="demo",
                io_cs="1/1/2",
                split="1/1",
                states=54,
                part_seconds=0.3,
                mono_seconds=0.2,
                paper_row="s510",
            ),
            Table1Row(
                name="big",
                io_cs="3/6/21",
                split="5/16",
                states=17730,
                part_seconds=25.9,
                mono_seconds=None,
                paper_row="s444",
            ),
        ]
        text = render_table1(rows)
        assert text.splitlines()[0].split() == HEADERS
        assert "CNC" in text
        assert "0.7" in text  # ratio of the first row

    def test_paper_reference_table_is_complete(self) -> None:
        for name in ("s510", "s208", "s298", "s349", "s444", "s526"):
            assert name in PAPER_TABLE1
        assert PAPER_TABLE1.count("CNC") == 2


class TestBiggerRows:
    def test_rand20_is_a_twenty_latch_row(self) -> None:
        case = case_by_name("rand20")
        net = case.network()
        assert net.num_latches >= 20
        assert case.expect_mono_cnc

    def test_bench_only_cases_are_not_in_the_identity_suite(self) -> None:
        from repro.bench.suite import TABLE1_BENCH_ONLY_CASES

        suite_names = {case.name for case in TABLE1_CASES}
        for case in TABLE1_BENCH_ONLY_CASES:
            assert case.name not in suite_names
            net = case.network()
            net.validate()
            assert net.num_latches >= 20
            missing = set(case.x_latches) - set(net.latches)
            assert not missing
