"""Tests for automaton operations against brute-force language semantics."""

from __future__ import annotations

import pytest

from repro.bdd.manager import FALSE, TRUE
from repro.errors import AutomatonError
from repro.automata import (
    Automaton,
    accepts,
    complement,
    complete,
    determinize,
    enumerate_language,
    minimize,
    prefix_close,
    product,
    progressive,
    split_regions,
    support,
)
from tests.automata.conftest import ALPHABET, random_automaton

WORD_LEN = 3
SEEDS = range(12)


class TestComplete:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_complete_is_complete_and_preserves_language(self, seed) -> None:
        aut = random_automaton(seed)
        completed = complete(aut)
        assert completed.is_complete()
        assert enumerate_language(aut, WORD_LEN) == enumerate_language(
            completed, WORD_LEN
        )

    def test_complete_adds_nonaccepting_sink_with_self_loop(self, mgr) -> None:
        aut = Automaton(mgr, ALPHABET)
        s0 = aut.add_state("s")
        aut.add_letter_edge(s0, s0, {"x": 1, "y": 1})
        completed = complete(aut)
        dc = completed.num_states - 1
        assert completed.state_names[dc] == "DC"
        assert dc not in completed.accepting
        assert completed.edges[dc] == {dc: TRUE}

    def test_complete_on_complete_automaton_adds_nothing(self, mgr) -> None:
        aut = Automaton(mgr, ALPHABET)
        s0 = aut.add_state()
        aut.add_edge(s0, s0, TRUE)
        assert complete(aut).num_states == 1


class TestDeterminize:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_determinize_preserves_language(self, seed) -> None:
        aut = random_automaton(seed)
        det = determinize(aut)
        assert det.is_deterministic()
        assert enumerate_language(aut, WORD_LEN) == enumerate_language(det, WORD_LEN)

    def test_determinize_merges_nondeterministic_branches(self, mgr) -> None:
        aut = Automaton(mgr, ALPHABET)
        s0 = aut.add_state("a", accepting=False)
        s1 = aut.add_state("b", accepting=False)
        s2 = aut.add_state("c", accepting=True)
        aut.add_letter_edge(s0, s1, {"x": 1})
        aut.add_letter_edge(s0, s2, {"x": 1})
        det = determinize(aut)
        assert det.num_states == 2  # {a}, {b,c}
        assert det.is_deterministic()

    def test_subset_accepting_iff_member_accepting(self, mgr) -> None:
        aut = Automaton(mgr, ALPHABET)
        s0 = aut.add_state("a", accepting=False)
        s1 = aut.add_state("b", accepting=True)
        aut.add_letter_edge(s0, s0, {"x": 0})
        aut.add_letter_edge(s0, s1, {"x": 0})
        det = determinize(aut)
        labels = dict(zip(det.state_names, range(det.num_states)))
        assert labels["{a}"] not in det.accepting
        assert labels["{a,b}"] in det.accepting


class TestComplement:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_complement_flips_membership(self, seed) -> None:
        aut = random_automaton(seed)
        comp = complement(complete(determinize(aut)))
        lang = enumerate_language(aut, WORD_LEN)
        comp_lang = enumerate_language(comp, WORD_LEN)
        letters = list(aut.letters())
        total = sum(len(letters) ** k for k in range(WORD_LEN + 1))
        assert len(lang) + len(comp_lang) == total
        assert not (lang & comp_lang)

    def test_complement_requires_complete(self, mgr) -> None:
        aut = Automaton(mgr, ALPHABET)
        s0 = aut.add_state()
        aut.add_letter_edge(s0, s0, {"x": 1})
        with pytest.raises(AutomatonError):
            complement(aut)

    def test_complement_requires_deterministic(self, mgr) -> None:
        aut = Automaton(mgr, ALPHABET)
        s0, s1 = aut.add_state(), aut.add_state()
        aut.add_edge(s0, s0, TRUE)
        aut.add_edge(s0, s1, TRUE)
        aut.add_edge(s1, s1, TRUE)
        with pytest.raises(AutomatonError):
            complement(aut)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_double_complement_is_identity(self, seed) -> None:
        aut = complete(determinize(random_automaton(seed)))
        twice = complement(complement(aut))
        assert enumerate_language(aut, WORD_LEN) == enumerate_language(twice, WORD_LEN)


class TestProduct:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_product_is_language_intersection(self, seed) -> None:
        a = random_automaton(seed)
        b_raw = random_automaton(seed + 100)
        # Rebuild b in a's manager to share variables.
        b = Automaton(a.manager, a.variables)
        for sid in range(b_raw.num_states):
            b.add_state(b_raw.state_names[sid], accepting=sid in b_raw.accepting)
        for src, bucket in enumerate(b_raw.edges):
            for dst, label in bucket.items():
                from repro.bdd.reorder import transfer

                b.add_edge(src, dst, transfer(label, b_raw.manager, a.manager))
        prod = product(a, b)
        assert enumerate_language(prod, WORD_LEN) == (
            enumerate_language(a, WORD_LEN) & enumerate_language(b, WORD_LEN)
        )

    def test_product_over_different_supports(self, mgr) -> None:
        # a constrains x, b constrains y; the product constrains both.
        a = Automaton(mgr, ("x",))
        sa = a.add_state()
        a.add_letter_edge(sa, sa, {"x": 1})
        b = Automaton(mgr, ("y",))
        sb = b.add_state()
        b.add_letter_edge(sb, sb, {"y": 0})
        prod = product(a, b)
        assert prod.variables == ("x", "y")
        assert accepts(prod, [{"x": 1, "y": 0}])
        assert not accepts(prod, [{"x": 1, "y": 1}])
        assert not accepts(prod, [{"x": 0, "y": 0}])

    def test_product_requires_shared_manager(self) -> None:
        a = random_automaton(1)
        b = random_automaton(2)
        with pytest.raises(AutomatonError):
            product(a, b)


class TestSupport:
    def test_hiding_quantifies_labels(self, mgr) -> None:
        aut = Automaton(mgr, ALPHABET)
        s0, s1 = aut.add_state(), aut.add_state()
        aut.add_letter_edge(s0, s1, {"x": 1, "y": 0})
        hidden = support(aut, ("y",))
        assert hidden.variables == ("y",)
        assert accepts(hidden, [{"y": 0}])
        assert not accepts(hidden, [{"y": 1}])

    def test_hiding_can_create_nondeterminism(self, mgr) -> None:
        aut = Automaton(mgr, ALPHABET)
        s0, s1, s2 = aut.add_state(), aut.add_state(), aut.add_state()
        aut.add_letter_edge(s0, s1, {"x": 0, "y": 0})
        aut.add_letter_edge(s0, s2, {"x": 1, "y": 0})
        assert aut.is_deterministic()
        hidden = support(aut, ("y",))
        assert not hidden.is_deterministic()

    def test_expansion_leaves_labels_unconstrained(self, mgr) -> None:
        aut = Automaton(mgr, ("x",))
        s0 = aut.add_state()
        aut.add_letter_edge(s0, s0, {"x": 1})
        expanded = support(aut, ("x", "y"))
        assert accepts(expanded, [{"x": 1, "y": 0}])
        assert accepts(expanded, [{"x": 1, "y": 1}])
        assert not accepts(expanded, [{"x": 0, "y": 0}])

    def test_expand_then_restrict_is_identity(self, mgr) -> None:
        aut = random_automaton(3)
        m = aut.manager
        m.add_var("z")
        expanded = support(aut, aut.variables + ("z",))
        back = support(expanded, aut.variables)
        assert enumerate_language(aut, WORD_LEN) == enumerate_language(back, WORD_LEN)

    def test_undeclared_variable_rejected(self, mgr) -> None:
        aut = Automaton(mgr, ALPHABET)
        aut.add_state()
        with pytest.raises(AutomatonError):
            support(aut, ("nope",))


class TestPrefixClose:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_prefix_closed_language(self, seed) -> None:
        aut = random_automaton(seed)
        closed = prefix_close(aut)
        lang = enumerate_language(closed, WORD_LEN)
        for word in lang:
            for k in range(len(word)):
                assert word[:k] in lang

    @pytest.mark.parametrize("seed", SEEDS)
    def test_prefix_close_keeps_only_always_accepting_runs(self, seed) -> None:
        aut = random_automaton(seed)
        closed = prefix_close(aut)
        # Every word of the closed language is in the original language.
        assert enumerate_language(closed, WORD_LEN) <= enumerate_language(
            aut, WORD_LEN
        )
        if closed.accepting:
            # All surviving states accepting.
            assert closed.accepting == set(range(closed.num_states))
        else:
            # Empty-language automaton (initial state was non-accepting).
            assert closed.num_states == 1 and closed.num_edges() == 0

    def test_nonaccepting_initial_gives_empty(self, mgr) -> None:
        aut = Automaton(mgr, ALPHABET)
        aut.add_state(accepting=False)
        closed = prefix_close(aut)
        assert closed.accepting == set()


class TestProgressive:
    def test_removes_states_missing_inputs(self, mgr) -> None:
        # State q1 has no transition under x=1: not input-progressive.
        aut = Automaton(mgr, ALPHABET)
        q0, q1 = aut.add_state("q0"), aut.add_state("q1")
        aut.add_edge(q0, q0, TRUE)
        aut.add_letter_edge(q0, q1, {"x": 0})
        aut.add_letter_edge(q1, q1, {"x": 0, "y": 0})
        result = progressive(aut, ["x"])
        assert result.state_names == ["q0"]

    def test_removal_cascades(self, mgr) -> None:
        # q2 dies (missing x=1), then q1 dies (its only x=1 edge went to q2).
        aut = Automaton(mgr, ALPHABET)
        q0, q1, q2 = aut.add_state("q0"), aut.add_state("q1"), aut.add_state("q2")
        aut.add_edge(q0, q0, TRUE)
        aut.add_letter_edge(q1, q0, {"x": 0})
        aut.add_letter_edge(q1, q2, {"x": 1})
        aut.add_letter_edge(q2, q2, {"x": 0})
        aut.add_letter_edge(q0, q1, {"x": 0})
        result = progressive(aut, ["x"])
        assert result.state_names == ["q0"]

    def test_initial_removed_gives_empty(self, mgr) -> None:
        aut = Automaton(mgr, ALPHABET)
        q0 = aut.add_state("q0")
        aut.add_letter_edge(q0, q0, {"x": 0})
        result = progressive(aut, ["x"])
        assert result.accepting == set()
        assert result.num_states == 1

    def test_output_choice_satisfies_progressiveness(self, mgr) -> None:
        # For input x there must EXIST an output y edge; y=0-only is fine.
        aut = Automaton(mgr, ALPHABET)
        q0 = aut.add_state("q0")
        aut.add_letter_edge(q0, q0, {"y": 0})  # defined for all x with y=0
        result = progressive(aut, ["x"])
        assert result.num_states == 1
        assert result.accepting == {0}

    def test_foreign_input_variable_rejected(self, mgr) -> None:
        aut = Automaton(mgr, ALPHABET)
        aut.add_state()
        with pytest.raises(AutomatonError):
            progressive(aut, ["nope"])


class TestMinimize:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_minimize_preserves_language(self, seed) -> None:
        aut = random_automaton(seed)
        small = minimize(aut)
        assert enumerate_language(aut, WORD_LEN) == enumerate_language(
            small, WORD_LEN
        )
        assert small.num_states <= max(aut.trim().num_states, 1)

    def test_minimize_merges_equivalent_states(self, mgr) -> None:
        # q1 and q2 behave identically and must merge; q0 differs by
        # acceptance and must stay separate.
        aut = Automaton(mgr, ALPHABET)
        q0 = aut.add_state(accepting=False)
        q1 = aut.add_state(accepting=True)
        q2 = aut.add_state(accepting=True)
        aut.add_letter_edge(q0, q1, {"x": 0})
        aut.add_letter_edge(q0, q2, {"x": 1})
        aut.add_edge(q1, q1, TRUE)
        aut.add_edge(q2, q2, TRUE)
        small = minimize(aut)
        assert small.num_states == 2

    def test_minimized_dfa_is_canonical_size(self, mgr) -> None:
        # Language: words over x where every letter has x=1 (y free).
        aut = Automaton(mgr, ALPHABET)
        q0, q1 = aut.add_state(), aut.add_state()
        x = mgr.var_node(mgr.var_index("x"))
        aut.add_edge(q0, q0, x)
        aut.add_edge(q1, q1, TRUE)  # redundant unreachable state
        small = minimize(aut)
        assert small.num_states == 1


class TestSplitRegions:
    def test_regions_partition_the_defined_space(self, mgr) -> None:
        x = mgr.var_node(mgr.var_index("x"))
        y = mgr.var_node(mgr.var_index("y"))
        targets = [(0, x), (1, mgr.apply_or(x, y))]
        regions = list(split_regions(mgr, targets))
        # x=1 -> {0,1}; x=0,y=1 -> {1}; x=0,y=0 -> nothing.
        as_dict = {dests: cond for dests, cond in regions}
        assert set(as_dict) == {frozenset({0, 1}), frozenset({1})}
        assert as_dict[frozenset({0, 1})] == x
        union = FALSE
        for cond in as_dict.values():
            assert mgr.apply_and(union, cond) == FALSE  # disjoint
            union = mgr.apply_or(union, cond)
        assert union == mgr.apply_or(x, y)
