"""Long-lived job service over the language-equation solver.

``repro serve`` turns the one-shot CLI into a persistent service: jobs
(netlist + split + flags) arrive over HTTP, run through
:func:`repro.eqn.solver.solve_equation` on a single solver thread with
a warm :class:`~repro.shard.pool.ShardPool`, and land in a
content-addressed result cache — a repeat submission answers from the
cache without touching a BDD manager or a shard worker.

The pieces (each its own module, composable without the HTTP layer):

:mod:`repro.serve.keys`
    Canonical job specs and the SHA-256 cache key.
:mod:`repro.serve.payload`
    Cached result payloads (automata in the packed ``dump_nodes`` wire
    format).
:mod:`repro.serve.store`
    The content-addressed store (atomic writes, LRU eviction) plus the
    checkpoint side-store.
:mod:`repro.serve.jobs`
    Job lifecycle and the thread-safe registry with per-job event
    streams.
:mod:`repro.serve.executor`
    The single solver thread and the warm-pool management.
:mod:`repro.serve.server`
    The stdlib HTTP server and its JSON API.
:mod:`repro.serve.client`
    The ``urllib`` client used by ``repro submit`` / ``repro jobs``.
"""

from repro.serve.client import ServeClient
from repro.serve.executor import SolveExecutor
from repro.serve.jobs import Job, JobRegistry
from repro.serve.keys import cache_key, job_spec, solve_cache_key
from repro.serve.payload import (
    dump_automaton,
    dump_result,
    load_automaton,
    load_result,
)
from repro.serve.server import ServeApp, make_server, serve
from repro.serve.store import ResultStore

__all__ = [
    "Job",
    "JobRegistry",
    "ResultStore",
    "ServeApp",
    "ServeClient",
    "SolveExecutor",
    "cache_key",
    "dump_automaton",
    "dump_result",
    "job_spec",
    "load_automaton",
    "load_result",
    "make_server",
    "serve",
    "solve_cache_key",
]
