"""Build partitioned BDD representations from sequential networks.

This derives exactly the objects the paper computes on: "the latch
next-state functions, {T_k(i, cs)}, and the primary-output functions,
{O_j(i, cs)}, can be computed and stored as BDDs in terms of the primary
inputs and the current state variables."

Variables are declared by the caller (so a solver can interleave the
variable groups of several networks into one global order);
:func:`declare_network_vars` offers a sensible default.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.bdd.manager import BddManager
from repro.errors import NetworkError
from repro.network.netlist import Network


@dataclass
class NetworkBdds:
    """Partitioned BDD view of a network.

    Attributes
    ----------
    manager:
        The BDD manager all functions live in.
    net:
        The source network.
    input_vars:
        Input signal -> manager variable index.
    state_vars:
        Latch output signal -> manager variable index (the ``cs`` vars).
    next_state:
        Latch output signal -> BDD of its next-state function ``T_k(i,cs)``.
    outputs:
        Output signal -> BDD of its output function ``O_j(i,cs)``.
    init_cube:
        BDD of the initial state (a full cube over the ``cs`` vars).
    """

    manager: BddManager
    net: Network
    input_vars: dict[str, int]
    state_vars: dict[str, int]
    next_state: dict[str, int] = field(default_factory=dict)
    outputs: dict[str, int] = field(default_factory=dict)
    init_cube: int = 1

    def all_input_vars(self) -> list[int]:
        """Input variable indices, in network input order."""
        return [self.input_vars[name] for name in self.net.inputs]

    def all_state_vars(self) -> list[int]:
        """State variable indices, in latch order."""
        return [self.state_vars[name] for name in self.net.latches]

    def state_cube(self, state: Mapping[str, int]) -> int:
        """Characteristic cube of one concrete latch valuation."""
        return self.manager.cube(
            {self.state_vars[name]: value for name, value in state.items()}
        )


def declare_network_vars(
    mgr: BddManager,
    net: Network,
    *,
    prefix: str = "",
) -> tuple[dict[str, int], dict[str, int]]:
    """Declare one variable per input and per latch of ``net``.

    Returns ``(input_vars, state_vars)`` keyed by signal name.  Variable
    names are ``prefix + signal``.
    """
    input_vars = {name: mgr.add_var(prefix + name) for name in net.inputs}
    state_vars = {name: mgr.add_var(prefix + name) for name in net.latches}
    return input_vars, state_vars


def build_network_bdds(
    net: Network,
    mgr: BddManager,
    input_vars: Mapping[str, int],
    state_vars: Mapping[str, int],
) -> NetworkBdds:
    """Build ``{T_k}`` and ``{O_j}`` BDDs for ``net`` in ``mgr``.

    ``input_vars`` / ``state_vars`` map the network's input and latch
    signals to already-declared manager variables.
    """
    net.validate()
    missing_inputs = set(net.inputs) - set(input_vars)
    if missing_inputs:
        raise NetworkError(f"missing input vars: {sorted(missing_inputs)}")
    missing_states = set(net.latches) - set(state_vars)
    if missing_states:
        raise NetworkError(f"missing state vars: {sorted(missing_states)}")

    values: dict[str, int] = {}
    for name in net.inputs:
        values[name] = mgr.var_node(input_vars[name])
    for name in net.latches:
        values[name] = mgr.var_node(state_vars[name])
    for name in net.topo_order():
        expr = net.nodes[name].expr
        values[name] = _expr_bdd(expr, values, mgr)

    result = NetworkBdds(
        manager=mgr,
        net=net,
        input_vars=dict(input_vars),
        state_vars=dict(state_vars),
    )
    for name, latch in net.latches.items():
        result.next_state[name] = values[latch.driver]
    for name in net.outputs:
        result.outputs[name] = values[name]
    result.init_cube = mgr.cube(
        {state_vars[name]: latch.init for name, latch in net.latches.items()}
    )
    return result


def _expr_bdd(expr, values: Mapping[str, int], mgr: BddManager) -> int:
    """Evaluate an expression tree to a BDD over pre-computed signal BDDs."""
    from repro.expr.ast import And, Const, Not, Or, Var, Xor

    if isinstance(expr, Const):
        return 1 if expr.value else 0
    if isinstance(expr, Var):
        try:
            return values[expr.name]
        except KeyError:
            raise NetworkError(f"signal {expr.name!r} has no BDD value")
    if isinstance(expr, Not):
        return mgr.apply_not(_expr_bdd(expr.arg, values, mgr))
    if isinstance(expr, And):
        result = 1
        for arg in expr.args:
            result = mgr.apply_and(result, _expr_bdd(arg, values, mgr))
            if result == 0:
                break
        return result
    if isinstance(expr, Or):
        result = 0
        for arg in expr.args:
            result = mgr.apply_or(result, _expr_bdd(arg, values, mgr))
            if result == 1:
                break
        return result
    if isinstance(expr, Xor):
        result = 0
        for arg in expr.args:
            result = mgr.apply_xor(result, _expr_bdd(arg, values, mgr))
        return result
    raise TypeError(f"unknown expression node: {expr!r}")
