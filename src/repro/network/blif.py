"""BLIF reader and writer for sequential networks.

Supports the subset of Berkeley Logic Interchange Format used by the
ISCAS/MCNC sequential benchmarks: ``.model``, ``.inputs``, ``.outputs``,
``.latch`` (with optional type/control and init value), ``.names``
single-output SOP covers, and ``.end``.  Continuation lines (``\\``) and
``#`` comments are handled.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.bdd import BddManager, iter_cubes
from repro.errors import BlifError
from repro.expr.ast import And, Const, Expr, Not, Or, Var
from repro.network.netlist import Network


def _logical_lines(text: str) -> Iterable[str]:
    """Yield non-empty logical lines with comments and continuations folded."""
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line:
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        yield (pending + line).strip()
        pending = ""
    if pending.strip():
        yield pending.strip()


def _cover_to_expr(inputs: list[str], rows: list[tuple[str, str]]) -> Expr:
    """Convert a .names SOP cover to an expression.

    ``rows`` are (cube, value) pairs.  A cover must be uniformly on-set
    ("1") or off-set ("0"); the off-set form is complemented.
    """
    if not rows:
        return Const(False)
    values = {value for _, value in rows}
    if len(values) != 1 or values - {"0", "1"}:
        raise BlifError(f"mixed or invalid cover values: {sorted(values)}")
    value = values.pop()
    terms: list[Expr] = []
    for cube, _ in rows:
        if len(cube) != len(inputs):
            raise BlifError(
                f"cube {cube!r} length {len(cube)} != {len(inputs)} inputs"
            )
        literals: list[Expr] = []
        for bit, name in zip(cube, inputs):
            if bit == "1":
                literals.append(Var(name))
            elif bit == "0":
                literals.append(Not(Var(name)))
            elif bit != "-":
                raise BlifError(f"invalid cube character {bit!r} in {cube!r}")
        if literals:
            terms.append(literals[0] if len(literals) == 1 else And(tuple(literals)))
        else:
            terms.append(Const(True))
    expr: Expr = terms[0] if len(terms) == 1 else Or(tuple(terms))
    if value == "0":
        expr = Not(expr)
    return expr


def parse_blif(text: str) -> Network:
    """Parse BLIF text into a :class:`~repro.network.netlist.Network`."""
    net = Network()
    current_names: list[str] | None = None
    current_rows: list[tuple[str, str]] = []
    saw_model = False

    def flush_names() -> None:
        nonlocal current_names, current_rows
        if current_names is None:
            return
        *fanins, output = current_names
        if not fanins:
            # Constant node: a single row "1" means TRUE, none means FALSE.
            if not current_rows:
                expr: Expr = Const(False)
            elif len(current_rows) == 1 and current_rows[0] == ("", "1"):
                expr = Const(True)
            elif len(current_rows) == 1 and current_rows[0] == ("", "0"):
                expr = Const(False)
            else:
                raise BlifError(f"malformed constant cover for {output!r}")
        else:
            expr = _cover_to_expr(fanins, current_rows)
        net.add_node(output, expr)
        current_names = None
        current_rows = []

    for line in _logical_lines(text):
        tokens = line.split()
        keyword = tokens[0]
        if keyword.startswith("."):
            flush_names()
        if keyword == ".model":
            if saw_model:
                raise BlifError("multiple .model sections are not supported")
            saw_model = True
            net.name = tokens[1] if len(tokens) > 1 else "network"
        elif keyword == ".inputs":
            for name in tokens[1:]:
                net.add_input(name)
        elif keyword == ".outputs":
            for name in tokens[1:]:
                net.add_output(name)
        elif keyword == ".latch":
            if len(tokens) < 3:
                raise BlifError(f"malformed .latch line: {line!r}")
            driver, output = tokens[1], tokens[2]
            init = 0
            extra = tokens[3:]
            if extra:
                # Optional [<type> <control>] then optional init value.
                if extra[-1] in ("0", "1", "2", "3"):
                    init_token = extra[-1]
                    init = 0 if init_token in ("0", "2", "3") else 1
            net.add_latch(output, driver, init)
        elif keyword == ".names":
            current_names = tokens[1:]
            if not current_names:
                raise BlifError("empty .names line")
        elif keyword == ".end":
            break
        elif keyword.startswith("."):
            raise BlifError(f"unsupported BLIF directive {keyword!r}")
        else:
            if current_names is None:
                raise BlifError(f"cover row outside .names: {line!r}")
            if len(tokens) == 1:
                if len(current_names) == 1:
                    cube, value = "", tokens[0]  # constant node row
                else:
                    raise BlifError(f"malformed cover row: {line!r}")
            elif len(tokens) == 2:
                cube, value = tokens
            else:
                raise BlifError(f"malformed cover row: {line!r}")
            current_rows.append((cube, value))
    flush_names()
    net.validate()
    return net


def read_blif(path: str) -> Network:
    """Read a network from a BLIF file."""
    with open(path, encoding="utf-8") as handle:
        return parse_blif(handle.read())


def _expr_to_cover(expr: Expr) -> tuple[list[str], list[str]]:
    """SOP cover (inputs, rows) of an expression via its BDD cubes."""
    variables = sorted(expr.variables())
    mgr = BddManager()
    mgr.add_vars(variables)
    node = expr.to_bdd(mgr)
    if node == 0:
        return [], []  # FALSE: empty cover
    if node == 1:
        return [], ["1"]  # TRUE: single empty cube
    rows = []
    for cube in iter_cubes(mgr, node):
        bits = []
        for name in variables:
            value = cube.get(mgr.var_index(name))
            bits.append("-" if value is None else str(value))
        rows.append("".join(bits) + " 1")
    return variables, rows


def write_blif(net: Network) -> str:
    """Render a network as BLIF text (SOP covers derived via BDDs)."""
    net.validate()
    lines = [f".model {net.name}"]
    if net.inputs:
        lines.append(".inputs " + " ".join(net.inputs))
    if net.outputs:
        lines.append(".outputs " + " ".join(net.outputs))
    for latch in net.latches.values():
        lines.append(f".latch {latch.driver} {latch.output} {latch.init}")
    for node in net.nodes.values():
        fanins, rows = _expr_to_cover(node.expr)
        lines.append(".names " + " ".join(fanins + [node.name]))
        lines.extend(rows)
    lines.append(".end")
    return "\n".join(lines) + "\n"


def save_blif(net: Network, path: str) -> None:
    """Write a network to a BLIF file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_blif(net))
