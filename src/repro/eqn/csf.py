"""Complete Sequential Flexibility extraction.

"The CSF is the largest prefix-closed, input-progressive automaton
contained in X (and thus an FSM)."  Given the most general solution
produced by the subset construction, this is ``Progressive_u ∘
PrefixClose`` — with trimming, the solution is already prefix-closed
(all states accepting), so only the progressive trimming remains.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.automata.automaton import Automaton
from repro.automata.ops import prefix_close, progressive


def extract_csf(solution: Automaton, u_names: Sequence[str]) -> Automaton:
    """CSF = largest prefix-closed input-progressive sub-automaton.

    ``u_names`` are the input variables of the unknown component (the
    ``u`` wires); progressiveness demands an outgoing transition for
    every ``u`` assignment in every state.
    """
    closed = prefix_close(solution)
    return progressive(closed, list(u_names))


def csf_state_count(csf: Automaton) -> int:
    """Number of states of the CSF (the paper's ``States(X)`` column)."""
    return csf.num_states if csf.accepting else 0
