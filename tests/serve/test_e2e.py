"""End-to-end serve tests over a real HTTP server.

The server runs in-process (``ThreadingHTTPServer`` on an ephemeral
port) with the real executor thread and, for the sharded tests, a real
fork-based :class:`~repro.shard.pool.ShardPool` — so the acceptance
claim is tested literally: a repeated solve answers from the
content-addressed cache with **zero** shard image operations, asserted
on ``ShardPool.op_counts``.
"""

from __future__ import annotations

import threading

import pytest

from repro.bench import S27_BLIF
from repro.errors import ServeError
from repro.serve import ServeApp, ServeClient
from repro.serve.server import make_server

X = ["G6", "G7"]
SHARDED = {"blif": S27_BLIF, "x_latches": X, "shards": 2, "batch": 4}


class ServerFixture:
    def __init__(self, tmp_path, **app_kwargs):
        self.app = ServeApp(str(tmp_path / "cache"), **app_kwargs)
        self.server = make_server("127.0.0.1", 0, app=self.app)
        host, port = self.server.server_address[:2]
        self.client = ServeClient(f"http://{host}:{port}", timeout=30)
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.app.close()
        self.thread.join(timeout=10)


@pytest.fixture()
def served(tmp_path):
    fixture = ServerFixture(tmp_path)
    yield fixture
    fixture.close()


class TestSubmitToResult:
    def test_submit_progress_events_result(self, served) -> None:
        job = served.client.submit(SHARDED)
        assert job["status"] in ("queued", "running", "done")
        assert job["cached"] is False
        done = served.client.wait(job["id"], timeout=60)
        assert done["status"] == "done"
        events = served.client.events(job["id"])["events"]
        kinds = [e["type"] for e in events]
        assert "progress" in kinds
        progress = [e for e in events if e["type"] == "progress"]
        # The stream carries the run's live counters, monotonically.
        assert [e["seq"] for e in events] == list(range(1, len(events) + 1))
        assert progress[-1]["frontier"] == 0
        assert progress[-1]["subsets"] >= progress[0]["subsets"]
        assert "live_nodes" in progress[0] and "memo_hits" in progress[0]
        result = served.client.result(job["id"])
        assert result["csf_states"] == 7  # s27's known CSF size
        assert result["cached"] is False
        assert result["kiss"].startswith(".i")

    def test_events_cursor_pagination(self, served) -> None:
        job = served.client.submit(SHARDED)
        served.client.wait(job["id"], timeout=60)
        first = served.client.events(job["id"], since=0)
        assert first["next"] == len(first["events"])
        rest = served.client.events(job["id"], since=first["next"])
        assert rest["events"] == []
        tail = served.client.events(job["id"], since=first["next"] - 2)
        assert len(tail["events"]) == 2

    def test_bad_split_fails_cleanly(self, served) -> None:
        job = served.client.submit({"blif": S27_BLIF, "x_latches": ["nope"]})
        done = served.client.wait(job["id"], timeout=60)
        assert done["status"] == "failed"
        assert "nope" in done["error"]
        # The server survives a failed job.
        assert served.client.health()["ok"] is True

    def test_malformed_submit_is_a_client_error(self, served) -> None:
        with pytest.raises(ServeError, match="missing 'x_latches'"):
            served.client.submit({"blif": S27_BLIF})
        with pytest.raises(ServeError, match="unknown solver flags"):
            served.client.submit(
                {"blif": S27_BLIF, "x_latches": X, "bach": 8}
            )


class TestCacheHit:
    def test_repeat_solve_hits_cache_with_zero_shard_ops(self, served) -> None:
        first = served.client.submit(SHARDED)
        served.client.wait(first["id"], timeout=60)
        pool = served.app.executor.pool
        assert pool is not None  # the sharded solve forked the pool
        ops_before = dict(pool.op_counts)
        assert ops_before.get("expand_batch", 0) > 0  # cold solve used it
        second = served.client.submit(SHARDED)
        # Born done: the cache answered in the submit path.
        assert second["status"] == "done"
        assert second["cached"] is True
        assert dict(pool.op_counts) == ops_before  # ZERO new shard ops
        r1 = served.client.result(first["id"])
        r2 = served.client.result(second["id"])
        assert r2["kiss"] == r1["kiss"]  # identical CSF, byte for byte
        assert r2["cached"] is True

    def test_different_flags_do_not_hit(self, served) -> None:
        first = served.client.submit(SHARDED)
        served.client.wait(first["id"], timeout=60)
        other = served.client.submit({**SHARDED, "frontier": "bfs"})
        assert other["cached"] is False
        done = served.client.wait(other["id"], timeout=60)
        assert done["status"] == "done"
        # Same language even though the key differs.
        assert (
            served.client.result(other["id"])["csf_states"]
            == served.client.result(first["id"])["csf_states"]
        )

    def test_cache_survives_server_restart(self, tmp_path) -> None:
        one = ServerFixture(tmp_path)
        try:
            job = one.client.submit(SHARDED)
            one.client.wait(job["id"], timeout=60)
            kiss = one.client.result(job["id"])["kiss"]
        finally:
            one.close()
        two = ServerFixture(tmp_path)
        try:
            job2 = two.client.submit(SHARDED)
            assert job2["cached"] is True
            assert two.client.result(job2["id"])["kiss"] == kiss
            assert two.app.executor.pool is None  # never touched a worker
        finally:
            two.close()


class TestCancellation:
    def test_cancel_mid_solve_leaves_pool_reusable(self, tmp_path) -> None:
        paused = threading.Event()
        release = threading.Event()
        state = {"armed": True}

        def hook(job, event):
            if state["armed"]:
                paused.set()
                release.wait(timeout=30)

        fixture = ServerFixture(tmp_path, batch_hook=hook)
        try:
            client, app = fixture.client, fixture.app
            job = client.submit({**SHARDED, "batch": 1})
            assert paused.wait(timeout=30)  # solver is mid-run, blocked
            client.cancel(job["id"])
            state["armed"] = False
            release.set()
            done = client.wait(job["id"], timeout=60)
            assert done["status"] == "cancelled"
            assert job["cache_key"] not in app.store  # no result cached
            # The warm pool survived the unwound solve and serves the
            # next job through a reset, not a re-fork.
            pool = app.executor.pool
            assert pool is not None
            procs_before = [p.pid for p in pool._procs]
            job2 = client.submit(SHARDED)
            done2 = client.wait(job2["id"], timeout=60)
            assert done2["status"] == "done"
            assert [p.pid for p in app.executor.pool._procs] == procs_before
        finally:
            release.set()
            fixture.close()

    def test_cancel_queued_job_never_runs(self, tmp_path) -> None:
        paused = threading.Event()
        release = threading.Event()

        def hook(job, event):
            paused.set()
            release.wait(timeout=30)

        fixture = ServerFixture(tmp_path, batch_hook=hook)
        try:
            blocker = fixture.client.submit({**SHARDED, "batch": 1})
            assert paused.wait(timeout=30)
            queued = fixture.client.submit(
                {"blif": S27_BLIF, "x_latches": ["G5"]}
            )
            fixture.client.cancel(queued["id"])
            release.set()
            fixture.client.wait(blocker["id"], timeout=60)
            done = fixture.client.wait(queued["id"], timeout=60)
            assert done["status"] == "cancelled"
            assert done["started_at"] is None  # it never reached the solver
        finally:
            release.set()
            fixture.close()


class TestObservability:
    def test_healthz_is_enriched(self, served) -> None:
        health = served.client.health()
        assert health["ok"] is True
        assert "jobs" in health  # CI polls these two keys
        assert health["version"]
        assert health["uptime_seconds"] >= 0
        assert health["queue_depth"] == 0
        assert health["cache_entries"] == 0
        served.client.wait(served.client.submit(SHARDED)["id"], timeout=60)
        assert served.client.health()["cache_entries"] == 1

    def test_metrics_exposition_counts_solves_hits_and_steals(
        self, served
    ) -> None:
        from repro.obs.metrics import parse_exposition

        # A fresh scrape already exposes the acceptance families, at 0.
        families = parse_exposition(served.client.metrics())
        for family in (
            "repro_solves_total",
            "repro_cache_hits_total",
            "repro_steals_total",
            "repro_psi_spills_total",
            "repro_psi_reloads_total",
            "repro_resident_evictions_total",
        ):
            assert family in families, family

        served.client.wait(served.client.submit(SHARDED)["id"], timeout=60)
        assert served.client.submit(SHARDED)["cached"] is True  # born done
        families = parse_exposition(served.client.metrics())

        def total(name: str) -> float:
            return sum(v for _, _, v in families[name]["samples"])

        solves = {
            labels.get("status"): value
            for _, labels, value in families["repro_solves_total"]["samples"]
        }
        assert solves.get("done") == 1.0
        assert total("repro_cache_hits_total") == 1.0
        assert total("repro_cache_misses_total") == 1.0
        assert total("repro_steals_total") >= 0.0
        # The sharded solve's relayed command counts land per-op.
        shard_ops = {
            labels["op"]: value
            for _, labels, value in families["repro_shard_commands_total"][
                "samples"
            ]
        }
        assert shard_ops.get("expand_batch", 0) > 0
        # Histogram observed exactly the one uncached solve.
        hist = families["repro_solve_seconds"]["samples"]
        (count,) = [v for n, _, v in hist if n.endswith("_count")]
        assert count == 1.0
        assert families["repro_uptime_seconds"]["type"] == "gauge"

    def test_job_status_carries_metrics_snapshot(self, served) -> None:
        job = served.client.submit(SHARDED)
        done = served.client.wait(job["id"], timeout=60)
        metrics = done["metrics"]
        assert metrics["solve_seconds"] > 0
        assert metrics["subsets"] > 0
        assert metrics["batches"] > 0
        # Pending jobs carry none; the listing includes the snapshot too.
        listed = {j["id"]: j for j in served.client.jobs()}
        assert listed[job["id"]]["metrics"] == metrics

    def test_events_carry_wall_and_monotonic_stamps(self, served) -> None:
        job = served.client.submit(SHARDED)
        served.client.wait(job["id"], timeout=60)
        events = served.client.events(job["id"])["events"]
        assert events
        for event in events:
            assert event["ts"] > 1e9  # wall clock (epoch seconds)
            assert 0 < event["mono"] < 1e9  # perf_counter seconds
        # Monotonic stamps are ordered even if wall time steps.
        monos = [e["mono"] for e in events]
        assert monos == sorted(monos)


class TestBackendOption:
    def test_backend_submission_hits_the_backendless_cache(self, served) -> None:
        """``backend`` is a runtime option: it reaches the executor but
        never the cache key, so a python-backend resubmission of a
        previously solved problem is born done."""
        body = {"blif": S27_BLIF, "x_latches": X}
        first = served.client.submit(body)
        served.client.wait(first["id"], timeout=60)
        second = served.client.submit({**body, "backend": "python"})
        assert second["cached"] is True
        assert second["cache_key"] == first["cache_key"]
        r1 = served.client.result(first["id"])
        r2 = served.client.result(second["id"])
        assert r2["kiss"] == r1["kiss"]

    def test_unknown_backend_is_a_client_error(self, served) -> None:
        with pytest.raises(ServeError, match="unknown BDD backend"):
            served.client.submit(
                {"blif": S27_BLIF, "x_latches": X, "backend": "cudd"}
            )


class TestResidencyOptions:
    def test_budgeted_solve_feeds_the_spill_metrics(self, served) -> None:
        """A submission under a resident budget spills for real, and the
        counters surface in ``/metrics`` and in the job summary."""
        from repro.obs.metrics import parse_exposition

        body = {"blif": S27_BLIF, "x_latches": X, "resident_budget": 1}
        job = served.client.submit(body)
        served.client.wait(job["id"], timeout=60)
        summary = served.client.job(job["id"])
        assert summary["status"] == "done"
        families = parse_exposition(served.client.metrics())

        def total(name: str) -> float:
            return sum(v for _, _, v in families[name]["samples"])

        assert total("repro_psi_spills_total") > 0
        assert total("repro_resident_evictions_total") > 0

    def test_residency_options_do_not_change_the_key(self, served) -> None:
        """``resident_budget``/``checkpoint_seconds`` bound the runtime,
        not the result — a budgeted resubmission is born done."""
        first = served.client.submit(SHARDED)
        served.client.wait(first["id"], timeout=60)
        second = served.client.submit(
            {**SHARDED, "resident_budget": 40, "checkpoint_seconds": 30.0}
        )
        assert second["cached"] is True
        assert second["cache_key"] == first["cache_key"]
