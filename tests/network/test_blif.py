"""Tests for the BLIF reader/writer."""

from __future__ import annotations

import itertools

import pytest

from repro.bench import circuits, s27
from repro.errors import BlifError
from repro.network import parse_blif, write_blif


class TestParser:
    def test_s27_shape(self) -> None:
        net = s27()
        assert net.name == "s27"
        assert net.inputs == ["G0", "G1", "G2", "G3"]
        assert net.outputs == ["G17"]
        assert net.latch_names() == ["G5", "G6", "G7"]
        assert all(l.init == 0 for l in net.latches.values())

    def test_comments_and_continuations(self) -> None:
        text = """
        # a comment
        .model demo
        .inputs a \\
                b
        .outputs f
        .names a b f  # trailing comment
        11 1
        .end
        """
        net = parse_blif(text)
        assert net.inputs == ["a", "b"]
        outs, _ = net.step({}, {"a": 1, "b": 1})
        assert outs == {"f": 1}

    def test_dont_care_cubes(self) -> None:
        net = parse_blif(
            ".model m\n.inputs a b c\n.outputs f\n.names a b c f\n1-- 1\n-11 1\n.end"
        )
        for a, b, c in itertools.product((0, 1), repeat=3):
            outs, _ = net.step({}, {"a": a, "b": b, "c": c})
            assert outs["f"] == int(a or (b and c))

    def test_offset_cover(self) -> None:
        # .names with value 0 rows defines the complement.
        net = parse_blif(".model m\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end")
        truth = {}
        for a, b in itertools.product((0, 1), repeat=2):
            outs, _ = net.step({}, {"a": a, "b": b})
            truth[(a, b)] = outs["f"]
        assert truth == {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0}

    def test_constant_nodes(self) -> None:
        net = parse_blif(
            ".model m\n.inputs a\n.outputs one zero\n.names one\n1\n.names zero\n.end"
        )
        outs, _ = net.step({}, {"a": 0})
        assert outs == {"one": 1, "zero": 0}

    def test_latch_init_variants(self) -> None:
        net = parse_blif(
            ".model m\n.inputs d\n.outputs q\n"
            ".latch d q0 1\n.latch d q1 re clk 0\n.latch d q2\n"
            ".names q0 q\n1 1\n.end"
        )
        assert net.latches["q0"].init == 1
        assert net.latches["q1"].init == 0
        assert net.latches["q2"].init == 0

    @pytest.mark.parametrize(
        "bad",
        [
            ".model m\n.latch d\n.end",
            ".model m\n.inputs a\n.names a f\n2 1\n.end",
            ".model m\n.inputs a\n.names a f\n11 1\n.end",
            ".model m\n.inputs a\n.names a f\n1 1\n0 0\n.end",
            ".model m\n.inputs a\n.outputs f\n.names\n.end",
            ".model m\n.unsupported\n.end",
            ".model m\n.inputs a\n1 1\n.end",
            ".model m\n.model m2\n.end",
        ],
    )
    def test_malformed_blif_rejected(self, bad: str) -> None:
        with pytest.raises(BlifError):
            parse_blif(bad)


class TestWriterRoundtrip:
    def simulate_pair(self, net1, net2, input_names, cycles=16, seed=3) -> None:
        import random

        rng = random.Random(seed)
        stimulus = [
            {name: rng.randint(0, 1) for name in input_names} for _ in range(cycles)
        ]
        assert net1.simulate(stimulus) == net2.simulate(stimulus)

    def test_s27_roundtrip(self) -> None:
        net = s27()
        back = parse_blif(write_blif(net))
        assert back.stats() == net.stats()
        self.simulate_pair(net, back, net.inputs)

    @pytest.mark.parametrize(
        "make",
        [
            lambda: circuits.counter(3),
            lambda: circuits.johnson(3),
            lambda: circuits.lfsr(4),
            lambda: circuits.sequence_detector("1011"),
            lambda: circuits.traffic_light(),
            lambda: circuits.token_arbiter(3),
            lambda: circuits.random_network(2, 3, 2, seed=11),
        ],
    )
    def test_generator_roundtrips(self, make) -> None:
        net = make()
        back = parse_blif(write_blif(net))
        assert back.stats() == net.stats()
        self.simulate_pair(net, back, net.inputs)

    def test_writer_emits_expected_sections(self) -> None:
        text = write_blif(circuits.counter(2))
        assert text.startswith(".model count2")
        assert ".inputs en" in text
        assert ".latch" in text
        assert text.rstrip().endswith(".end")


from hypothesis import given, settings
from hypothesis import strategies as st


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_inputs=st.integers(min_value=1, max_value=3),
    n_latches=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_blif_roundtrip_property(seed, n_inputs, n_latches) -> None:
    """Any generated network survives a BLIF write/parse round trip."""
    import random

    net = circuits.random_network(n_inputs, n_latches, 2, seed=seed)
    back = parse_blif(write_blif(net))
    assert back.stats() == net.stats()
    rng = random.Random(seed)
    stim = [
        {name: rng.randint(0, 1) for name in net.inputs} for _ in range(12)
    ]
    assert back.simulate(stim) == net.simulate(stim)
