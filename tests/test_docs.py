"""Documentation-site sanity: the nav and the docs tree stay in sync.

CI builds the site with ``mkdocs build --strict`` (which fails on broken
nav entries and dead internal links); these tests keep the config and
sources consistent in environments without mkdocs installed, and run the
real build when it is available.
"""

from __future__ import annotations

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
MKDOCS_YML = REPO / "mkdocs.yml"


def nav_pages() -> list[str]:
    """Page paths referenced by mkdocs.yml's nav (cheap YAML-less parse)."""
    pages = []
    in_nav = False
    for line in MKDOCS_YML.read_text().splitlines():
        if line.startswith("nav:"):
            in_nav = True
            continue
        if in_nav:
            if line and not line.startswith(" "):
                break
            m = re.search(r":\s*(\S+\.md)\s*$", line)
            if m:
                pages.append(m.group(1))
    return pages


def test_mkdocs_config_exists() -> None:
    assert MKDOCS_YML.is_file()
    assert "docs_dir: docs" in MKDOCS_YML.read_text()


def test_nav_entries_exist_on_disk() -> None:
    pages = nav_pages()
    assert "index.md" in pages
    assert len(pages) >= 5
    for page in pages:
        assert (DOCS / page).is_file(), f"nav references missing page {page}"


def test_docs_pages_are_all_in_nav() -> None:
    # Nav entries may live in subdirectories (the api/ reference pages),
    # so compare docs-relative paths, not bare file names.
    on_disk = {
        p.relative_to(DOCS).as_posix() for p in DOCS.rglob("*.md")
    }
    assert on_disk == set(nav_pages())


def test_api_reference_pages_cover_bdd_and_shard() -> None:
    """The mkdocstrings pages must reference the live module paths."""
    bdd = (DOCS / "api" / "bdd.md").read_text()
    shard = (DOCS / "api" / "shard.md").read_text()
    for directive in ("::: repro.bdd.manager", "::: repro.bdd.io"):
        assert directive in bdd
    for directive in (
        "::: repro.shard.plan",
        "::: repro.shard.pool",
        "::: repro.shard.worker",
    ):
        assert directive in shard
    assert "mkdocstrings" in MKDOCS_YML.read_text()


def test_api_reference_pages_cover_automata_and_eqn() -> None:
    """The automata / eqn layer pages (the remaining ROADMAP docs item)."""
    automata = (DOCS / "api" / "automata.md").read_text()
    eqn = (DOCS / "api" / "eqn.md").read_text()
    for directive in (
        "::: repro.automata.automaton",
        "::: repro.automata.ops",
        "::: repro.automata.language",
    ):
        assert directive in automata
    for directive in (
        "::: repro.eqn.problem",
        "::: repro.eqn.solver",
        "::: repro.eqn.subset",
        "::: repro.eqn.partitioned",
        "::: repro.eqn.monolithic",
    ):
        assert directive in eqn


def test_api_reference_page_covers_serve() -> None:
    """The serve layer's mkdocstrings page (the service PR's docs item)."""
    serve = (DOCS / "api" / "serve.md").read_text()
    for directive in (
        "::: repro.serve.keys",
        "::: repro.serve.payload",
        "::: repro.serve.store",
        "::: repro.serve.jobs",
        "::: repro.serve.executor",
        "::: repro.serve.server",
        "::: repro.serve.client",
    ):
        assert directive in serve


def test_api_reference_page_covers_backends() -> None:
    """The pluggable-backend layer's mkdocstrings page."""
    backends = (DOCS / "api" / "backends.md").read_text()
    for directive in (
        "::: repro.bdd.backends",
        "::: repro.bdd.backends.protocol",
        "::: repro.bdd.backends.buddy",
        "::: repro.bdd.backends.conformance",
    ):
        assert directive in backends


def test_backends_docs_cover_the_contract() -> None:
    """The prose page must document the protocol, adapter and kit."""
    backends = (DOCS / "backends.md").read_text()
    for token in (
        "create_manager",
        "BddBackend",
        "--backend",
        "REPRO_BUDDY_LIB",
        "BackendFallbackWarning",
        "register_backend",
        "missing_ops",
        "run_conformance_case",
        "cache key",
    ):
        assert token in backends, f"backends.md is missing {token!r}"


def test_serving_docs_cover_the_operational_surface() -> None:
    """The prose pages must document what the service actually promises."""
    serving = (DOCS / "serving.md").read_text()
    for token in (
        "cache key",
        "--reorder",
        "progress",
        "checkpoint",
        "resume",
        "/jobs",
        "since=",
        "repro submit",
    ):
        assert token in serving, f"serving.md is missing {token!r}"
    operations = (DOCS / "operations.md").read_text()
    for token in (
        "--cache-dir",
        "--max-entries",
        "--shards",
        "systemd",
        "LRU",
        "Troubleshooting",
        "/healthz",
    ):
        assert token in operations, f"operations.md is missing {token!r}"


def test_api_reference_page_covers_obs() -> None:
    """The observability layer's mkdocstrings page."""
    obs = (DOCS / "api" / "obs.md").read_text()
    for directive in (
        "::: repro.obs.trace",
        "::: repro.obs.metrics",
        "::: repro.obs.log",
    ):
        assert directive in obs


def test_observability_docs_cover_the_surface() -> None:
    """The prose page must document the flags and the span catalogue."""
    page = (DOCS / "observability.md").read_text()
    for token in (
        "--trace",
        "--log-level",
        "--log-json",
        "chrome://tracing",
        "shard-worker-",
        "frontier_batch",
        "gc_sweep",
        "validate_trace",
        "--require-workers",
        "/metrics",
        "phases",
        "MetricsRegistry",
    ):
        assert token in page, f"observability.md is missing {token!r}"
    # The operations page owns the scrape config and family table.
    operations = (DOCS / "operations.md").read_text()
    for token in (
        "/metrics",
        "scrape_configs",
        "repro_solves_total",
        "repro_cache_hits_total",
        "repro_steals_total",
    ):
        assert token in operations, f"operations.md is missing {token!r}"


def test_api_reference_modules_exist() -> None:
    """Every ``::: module`` directive must point at an importable module.

    ``mkdocs --strict`` would catch this in CI; this keeps the check in
    plain test environments without the docs toolchain.
    """
    import importlib

    for page in (DOCS / "api").glob("*.md"):
        for module in re.findall(
            r"^::: ([\w.]+)$", page.read_text(), flags=re.MULTILINE
        ):
            importlib.import_module(module)


def test_api_reference_page_covers_residency_and_compose() -> None:
    """The bounded-memory layer's mkdocstrings page."""
    streaming = (DOCS / "api" / "streaming.md").read_text()
    for directive in (
        "::: repro.eqn.residency",
        "::: repro.eqn.compose",
    ):
        assert directive in streaming


def test_streaming_docs_cover_the_surface() -> None:
    """The prose page must document the flags and the invariants."""
    page = (DOCS / "streaming.md").read_text()
    for token in (
        "--resident-budget",
        "--spill-dir",
        "--checkpoint-seconds",
        "--compose",
        "--u-signals",
        "content-addressed",
        "psi_spill",
        "psi_reload",
        "repro_psi_spills_total",
        "spill_rehashes",
        "plan_components",
        "twin16x4@budget",
        "twin20_4@compose",
    ):
        assert token in page, f"streaming.md is missing {token!r}"


def test_internal_links_resolve() -> None:
    """Relative .md links between docs pages must point at real files."""
    for page in DOCS.rglob("*.md"):
        for target in re.findall(
            r"\]\(((?:\.\./)?\w[\w/-]*\.md)\)", page.read_text()
        ):
            resolved = (page.parent / target).resolve()
            assert resolved.is_file(), f"{page.name} links to missing {target}"


def test_docs_mention_the_tuning_flags() -> None:
    tuning = (DOCS / "tuning.md").read_text()
    for token in ("--reorder", "--gc", "adaptive", "sift", "reclaim"):
        assert token in tuning


def test_mkdocs_build_when_available(tmp_path) -> None:
    mkdocs = pytest.importorskip("mkdocs")  # noqa: F841  (CI installs it)
    from mkdocs.commands.build import build as mkdocs_build
    from mkdocs.config import load_config

    config = load_config(str(MKDOCS_YML), site_dir=str(tmp_path / "site"))
    mkdocs_build(config)
    assert (tmp_path / "site" / "index.html").is_file()
