"""The content-addressed store: round-trips, atomicity, LRU eviction.

Hypothesis drives full result payloads (random automata through
``dump_result``-shaped dicts with packed-array columns) through
put/get to pin that pickling the wire format is lossless; the rest
covers the operational contract the docs promise (atomic writes, LRU
eviction order, checkpoint side-store).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.payload import dump_automaton, load_automaton
from repro.serve.store import ResultStore
from tests.serve.test_payload import VARS, random_automaton
from tests.strategies import bdd_minterms, expressions


def fake_key(n: int) -> str:
    return f"{n:064x}"


class TestRoundTrip:
    @given(
        exprs=st.lists(expressions(VARS, max_leaves=8), min_size=1, max_size=5),
        accepting=st.lists(st.booleans(), min_size=2, max_size=4),
        seed=st.integers(min_value=0, max_value=2**62),
    )
    @settings(max_examples=30, deadline=None)
    def test_payload_survives_put_get(self, tmp_path_factory, exprs, accepting, seed) -> None:
        store = ResultStore(tmp_path_factory.mktemp("cache"))
        aut = random_automaton(exprs, accepting)
        payload = {
            "format": "repro-serve-result/1",
            "csf": dump_automaton(aut),
            "seconds": 0.25,
            "stats": {"subsets": len(accepting)},
        }
        key = fake_key(seed)
        store.put(key, payload)
        loaded = store.get(key)
        assert loaded["seconds"] == payload["seconds"]
        assert loaded["stats"] == payload["stats"]
        clone = load_automaton(loaded["csf"])
        for src in range(aut.num_states):
            for dst, label in aut.edges[src].items():
                assert bdd_minterms(
                    clone.manager, clone.edges[src][dst], VARS
                ) == bdd_minterms(aut.manager, label, VARS)

    def test_get_miss_returns_none(self, tmp_path) -> None:
        store = ResultStore(tmp_path)
        assert store.get(fake_key(1)) is None
        assert fake_key(1) not in store

    def test_malformed_key_is_rejected(self, tmp_path) -> None:
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="malformed cache key"):
            store.get("../../etc/passwd")


class TestOperational:
    def test_layout_shards_by_key_prefix(self, tmp_path) -> None:
        store = ResultStore(tmp_path)
        key = fake_key(0xAB12)
        store.put(key, {"x": 1})
        assert (tmp_path / "results" / key[:2] / f"{key}.pkl").is_file()

    def test_writes_are_atomic_no_temp_debris(self, tmp_path) -> None:
        store = ResultStore(tmp_path)
        for n in range(5):
            store.put(fake_key(n), {"n": n})
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_lru_eviction_keeps_recently_used(self, tmp_path) -> None:
        store = ResultStore(tmp_path, max_entries=2)
        store.put(fake_key(1), {"n": 1})
        os.utime(store.path_for(fake_key(1)), (1, 1))
        store.put(fake_key(2), {"n": 2})
        os.utime(store.path_for(fake_key(2)), (2, 2))
        store.put(fake_key(3), {"n": 3})  # evicts the stalest (key 1)
        assert store.get(fake_key(1)) is None
        assert store.get(fake_key(2)) is not None
        assert store.get(fake_key(3)) is not None

    def test_get_refreshes_lru_position(self, tmp_path) -> None:
        store = ResultStore(tmp_path, max_entries=2)
        store.put(fake_key(1), {"n": 1})
        os.utime(store.path_for(fake_key(1)), (1, 1))
        store.put(fake_key(2), {"n": 2})
        os.utime(store.path_for(fake_key(2)), (2, 2))
        store.get(fake_key(1))  # touch: key 2 is now the stalest
        store.put(fake_key(3), {"n": 3})
        assert store.get(fake_key(1)) is not None
        assert store.get(fake_key(2)) is None

    def test_stats_counts_entries_and_bytes(self, tmp_path) -> None:
        store = ResultStore(tmp_path, max_entries=10)
        store.put(fake_key(1), {"n": 1})
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["max_entries"] == 10


class TestCheckpoints:
    def test_checkpoint_round_trip_and_drop(self, tmp_path) -> None:
        store = ResultStore(tmp_path)
        key = fake_key(7)
        assert store.get_checkpoint(key) is None
        store.put_checkpoint(key, {"stats": {"batches": 3}})
        assert store.get_checkpoint(key)["stats"]["batches"] == 3
        store.drop_checkpoint(key)
        assert store.get_checkpoint(key) is None
        store.drop_checkpoint(key)  # idempotent

    def test_checkpoints_do_not_count_as_results(self, tmp_path) -> None:
        store = ResultStore(tmp_path)
        store.put_checkpoint(fake_key(7), {"a": 1})
        assert store.stats()["entries"] == 0
        assert store.stats()["checkpoints"] == 1
        assert store.keys() == []
