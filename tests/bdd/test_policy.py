"""Adaptive runtime policies: GcPolicy back-off and ReorderPolicy triggers."""

from __future__ import annotations

import pytest

from repro.bdd import BddManager
from repro.bdd.policy import GcPolicy, ReorderPolicy


# --------------------------------------------------------------------- #
# GcPolicy
# --------------------------------------------------------------------- #


class TestGcPolicyStatic:
    def test_reproduces_legacy_trigger(self) -> None:
        p = GcPolicy(mode="static", min_live=100, growth=2.0)
        assert not p.should_collect(live=99, baseline=10)
        assert not p.should_collect(live=150, baseline=100)
        assert p.should_collect(live=200, baseline=100)

    def test_record_never_moves_the_floor(self) -> None:
        p = GcPolicy(mode="static", min_live=100, growth=2.0)
        for _ in range(10):
            p.record(live_before=1000, reclaimed=0)
        assert p.floor == 100

    def test_unknown_mode_rejected(self) -> None:
        with pytest.raises(ValueError):
            GcPolicy(mode="aggressive")


class TestGcPolicyAdaptive:
    def test_never_collects_after_window_unprofitable_sweeps(self) -> None:
        """The acceptance property: after ``window`` consecutive sweeps
        whose reclaim ratio is below threshold, no collection triggers at
        the heap size those sweeps failed to shrink."""
        p = GcPolicy(
            mode="adaptive",
            min_live=100,
            growth=1.0,
            reclaim_threshold=0.2,
            window=3,
            backoff=2.0,
        )
        live = 1000
        assert p.should_collect(live, baseline=100)
        for _ in range(p.window):
            p.record(live_before=live, reclaimed=10)  # ratio 0.01
        assert not p.should_collect(live, baseline=100)
        # ... and not until the heap genuinely outgrows the back-off
        # (the floor jumped to backoff × the post-sweep live count).
        assert p.floor >= p.backoff * (live - 10)
        assert not p.should_collect(p.floor - 1, baseline=100)
        assert p.should_collect(p.floor, baseline=100)

    def test_profitable_sweeps_reset_the_streak(self) -> None:
        p = GcPolicy(mode="adaptive", min_live=10, growth=1.0, window=2)
        p.record(1000, reclaimed=10)  # bad
        p.record(1000, reclaimed=900)  # good: resets
        p.record(1000, reclaimed=10)  # bad again — streak is 1, not 3
        assert p.backoffs == 0
        assert p.should_collect(1000, baseline=10)

    def test_floor_recovers_after_profitable_sweep(self) -> None:
        p = GcPolicy(
            mode="adaptive", min_live=100, growth=1.0, window=1, backoff=4.0
        )
        p.record(1000, reclaimed=0)
        backed_off = p.floor
        assert backed_off >= 4000
        p.record(8000, reclaimed=7000)  # very profitable
        assert p.floor < backed_off
        for _ in range(10):
            p.record(8000, reclaimed=7000)
        assert p.floor == p.min_live

    def test_ratio_reported(self) -> None:
        p = GcPolicy(mode="adaptive", min_live=0, growth=1.0)
        assert p.record(200, reclaimed=50) == pytest.approx(0.25)
        assert p.last_ratio == pytest.approx(0.25)


class TestManagerAdaptiveGc:
    def _pinned_manager(self, n: int = 200) -> BddManager:
        """A manager whose nodes are all pinned (sweeps reclaim nothing)."""
        mgr = BddManager(
            gc_policy=GcPolicy(
                mode="adaptive", min_live=8, growth=1.0, window=2, backoff=2.0
            )
        )
        mgr.add_vars([f"x{i}" for i in range(8)])
        f = 1
        for i in range(8):
            f = mgr.apply_and(f, mgr.var_node(i) ^ (i & 1))
            mgr.ref(f)
        return mgr

    def test_unprofitable_sweeps_back_off_the_manager(self) -> None:
        mgr = self._pinned_manager()
        assert mgr.should_collect()
        assert mgr.collect_garbage() == 0
        assert mgr.collect_garbage() == 0  # second bad sweep: window hit
        assert not mgr.should_collect()
        assert mgr.maybe_collect_garbage() == 0
        assert mgr.stats["gc_runs"] == 2  # the suppressed call never swept

    def test_static_manager_keeps_collecting(self) -> None:
        mgr = BddManager(gc_min_live=8, gc_growth=1.0)
        mgr.add_vars([f"x{i}" for i in range(8)])
        f = 1
        for i in range(8):
            f = mgr.ref(mgr.apply_and(f, mgr.var_node(i)))
        for _ in range(5):
            mgr.collect_garbage()
        assert mgr.should_collect()

    def test_legacy_knob_properties(self) -> None:
        mgr = BddManager(gc_min_live=123, gc_growth=3.5)
        assert mgr.gc_min_live == 123
        assert mgr.gc_growth == 3.5
        mgr.gc_min_live = 50
        mgr.gc_growth = 1.5
        assert mgr.gc_policy.floor == 50
        assert mgr.gc_policy.growth == 1.5


# --------------------------------------------------------------------- #
# ReorderPolicy
# --------------------------------------------------------------------- #


class TestReorderPolicy:
    def test_off_never_fires(self) -> None:
        p = ReorderPolicy(mode="off")
        for _ in range(10):
            assert not p.should_reorder(live=10**6, reclaim_ratio=0.0)

    def test_auto_fires_after_window_unprofitable_sweeps(self) -> None:
        p = ReorderPolicy(mode="auto", window=2, min_live=0)
        assert not p.should_reorder(live=5000, reclaim_ratio=0.05)
        assert p.should_reorder(live=5000, reclaim_ratio=0.05)

    def test_profitable_sweep_resets_streak(self) -> None:
        p = ReorderPolicy(mode="auto", window=2, min_live=0)
        assert not p.should_reorder(live=5000, reclaim_ratio=0.05)
        assert not p.should_reorder(live=5000, reclaim_ratio=0.9)
        assert not p.should_reorder(live=5000, reclaim_ratio=0.05)

    def test_sift_mode_fires_on_every_unprofitable_sweep(self) -> None:
        p = ReorderPolicy(mode="sift", min_live=0)
        assert p.should_reorder(live=5000, reclaim_ratio=0.05)

    def test_min_live_gate(self) -> None:
        p = ReorderPolicy(mode="sift", min_live=10_000)
        assert not p.should_reorder(live=500, reclaim_ratio=0.0)

    def test_cooldown(self) -> None:
        p = ReorderPolicy(mode="sift", min_live=0, cooldown_growth=2.0)
        assert p.should_reorder(live=1000, reclaim_ratio=0.0)
        p.record_reorder(live_after=800)
        assert not p.should_reorder(live=1000, reclaim_ratio=0.0)
        assert p.should_reorder(live=1601, reclaim_ratio=0.0)

    def test_unknown_mode_rejected(self) -> None:
        with pytest.raises(ValueError):
            ReorderPolicy(mode="always")


class TestManagerGcTriggeredReorder:
    def test_unprofitable_collections_trigger_inplace_sift(self) -> None:
        """End to end: pinned misordered function, low floor, auto
        reorder — collections stop paying, the manager sifts in place,
        the pinned edge keeps its function, and the live count drops."""
        mgr = BddManager(
            gc_policy=GcPolicy(mode="adaptive", min_live=8, growth=1.0, window=99),
            reorder_policy=ReorderPolicy(
                mode="auto", window=2, min_live=0, reclaim_threshold=0.2
            ),
        )
        n = 5
        xs = mgr.add_vars([f"x{i}" for i in range(n)])
        ys = mgr.add_vars([f"y{i}" for i in range(n)])
        f = 0
        for x, y in zip(xs, ys):
            f = mgr.apply_or(f, mgr.apply_and(mgr.var_node(x), mgr.var_node(y)))
        mgr.ref(f)
        mgr.collect_garbage()
        size_blocked = mgr.size(f)
        import itertools

        table = {
            bits: mgr.eval_vars(f, dict(zip(xs + ys, bits)))
            for bits in itertools.product((0, 1), repeat=2 * n)
        }
        mgr.collect_garbage()  # unprofitable sweep #1 (everything pinned)
        mgr.collect_garbage()  # unprofitable sweep #2: reorder fires
        assert mgr.stats["reorder_runs"] == 1
        assert mgr.stats["reorder_swaps"] > 0
        assert mgr.size(f) < size_blocked
        mgr.check()
        for bits, want in table.items():
            assert mgr.eval_vars(f, dict(zip(xs + ys, bits))) == want

    def test_off_mode_never_reorders(self) -> None:
        mgr = BddManager(gc_min_live=0, gc_growth=1.0)
        mgr.add_vars("abc")
        mgr.ref(mgr.apply_and(mgr.var_node(0), mgr.var_node(1)))
        for _ in range(5):
            mgr.collect_garbage()
        assert mgr.stats["reorder_runs"] == 0

    def test_stats_expose_reclaim_ratio(self) -> None:
        mgr = BddManager(gc_min_live=0, gc_growth=1.0)
        mgr.add_vars("ab")
        g = mgr.apply_and(mgr.var_node(0), mgr.var_node(1))
        assert g >= 2
        mgr.collect_garbage()  # g unpinned: reclaimed
        stats = mgr.stats
        assert stats["gc_runs"] == 1
        assert 0.0 < stats["reclaim_ratio_avg"] <= 1.0
