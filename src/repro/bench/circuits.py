"""Synthetic sequential benchmark circuits.

The paper evaluates on ISCAS'89 netlists (s208...s526), which are not
redistributable here; these generators produce deterministic multi-level
sequential circuits of comparable shape (inputs/outputs/latches) so the
latch-splitting experiment of Section 4 can be reproduced.  See DESIGN.md
§5 for the substitution argument.

Every function returns a validated :class:`~repro.network.netlist.Network`.
"""

from __future__ import annotations

import random

from repro.errors import NetworkError
from repro.expr.ast import And, Not, Or, Var, Xor
from repro.network.netlist import Network


def counter(n_bits: int, *, name: str | None = None) -> Network:
    """An ``n``-bit binary up-counter with enable and terminal count.

    Inputs: ``en``.  Outputs: ``tc`` (terminal count).  Latches
    ``b0..b{n-1}`` (LSB first), all initialised to 0.
    """
    if n_bits < 1:
        raise NetworkError("counter needs at least one bit")
    net = Network(name=name or f"count{n_bits}")
    net.add_input("en")
    bits = [f"b{k}" for k in range(n_bits)]
    carry: list[str] = ["en"]
    for k, bit in enumerate(bits):
        if k > 0:
            net.add_node(f"c{k}", And((Var(carry[-1]), Var(bits[k - 1]))))
            carry.append(f"c{k}")
        net.add_node(f"n{k}", Xor((Var(bit), Var(carry[-1]))))
        net.add_latch(bit, f"n{k}", 0)
    net.add_node("tc", And(tuple(Var(b) for b in bits) + (Var("en"),)))
    net.add_output("tc")
    net.validate()
    return net


def johnson(n_bits: int, *, name: str | None = None) -> Network:
    """A Johnson (twisted-ring) counter with enable; 2n reachable states.

    Inputs: ``en``.  Outputs: ``q`` (MSB).  Latches ``j0..j{n-1}``.
    """
    if n_bits < 2:
        raise NetworkError("johnson needs at least two bits")
    net = Network(name=name or f"johnson{n_bits}")
    net.add_input("en")
    bits = [f"j{k}" for k in range(n_bits)]
    net.add_node("fb", Not(Var(bits[-1])))
    for k, bit in enumerate(bits):
        source = "fb" if k == 0 else bits[k - 1]
        # hold when enable low
        net.add_node(
            f"n{k}",
            Or((And((Var("en"), Var(source))), And((Not(Var("en")), Var(bit))))),
        )
        net.add_latch(bit, f"n{k}", 0)
    net.add_node("q", Var(bits[-1]))
    net.add_output("q")
    net.validate()
    return net


def twin_rings(na: int, nb: int, *, name: str | None = None) -> Network:
    """Two independent Johnson rings sharing nothing but the clock.

    Inputs: ``ena``, ``enb`` (one enable per ring).  Outputs: ``qa``,
    ``qb`` (each ring's MSB).  Latches ``a0..a{na-1}``, ``b0..b{nb-1}``.

    The rings are completely decoupled: each output observes one ring
    only, so state variables of the *other* ring are irrelevant to its
    conformance condition.  This is the ≥20-latch shape (``na + nb``)
    where the subset construction's incremental completion step pays:
    sibling subsets differing only in the hidden ring share one
    ``Q^j_ψ`` image per output, while the monolithic flow still has to
    build the full product relation over every latch pair — the paper's
    CNC regime.
    """
    if na < 2 or nb < 2:
        raise NetworkError("twin_rings needs at least two bits per ring")
    net = Network(name=name or f"twin{na}_{nb}")
    for prefix, n_bits, enable in (("a", na, "ena"), ("b", nb, "enb")):
        net.add_input(enable)
        bits = [f"{prefix}{k}" for k in range(n_bits)]
        net.add_node(f"fb_{prefix}", Not(Var(bits[-1])))
        for k, bit in enumerate(bits):
            source = f"fb_{prefix}" if k == 0 else bits[k - 1]
            net.add_node(
                f"n_{prefix}{k}",
                Or(
                    (
                        And((Var(enable), Var(source))),
                        And((Not(Var(enable)), Var(bit))),
                    )
                ),
            )
            net.add_latch(bit, f"n_{prefix}{k}", 0)
        net.add_node(f"q{prefix}", Var(bits[-1]))
        net.add_output(f"q{prefix}")
    net.validate()
    return net


def lfsr(
    n_bits: int,
    taps: tuple[int, ...] = (),
    *,
    name: str | None = None,
) -> Network:
    """A Fibonacci LFSR with a serial scan input.

    Inputs: ``sin``.  Outputs: ``sout``.  Latches ``r0..r{n-1}``; the
    feedback is ``sin XOR r[t] for t in taps`` (default taps:
    ``(n-1, 0)``).
    """
    if n_bits < 2:
        raise NetworkError("lfsr needs at least two bits")
    tap_list = taps or (n_bits - 1, 0)
    if any(t < 0 or t >= n_bits for t in tap_list):
        raise NetworkError(f"lfsr taps out of range: {tap_list}")
    net = Network(name=name or f"lfsr{n_bits}")
    net.add_input("sin")
    bits = [f"r{k}" for k in range(n_bits)]
    net.add_node("fb", Xor(tuple(Var(bits[t]) for t in tap_list) + (Var("sin"),)))
    for k, bit in enumerate(bits):
        source = "fb" if k == 0 else bits[k - 1]
        net.add_node(f"n{k}", Var(source))
        net.add_latch(bit, f"n{k}", 0)
    net.add_node("sout", Var(bits[-1]))
    net.add_output("sout")
    net.validate()
    return net


def shift_register(n_bits: int, *, name: str | None = None) -> Network:
    """A serial-in serial-out shift register.

    Inputs: ``d``.  Outputs: ``q``.  Latches ``s0..s{n-1}``.
    """
    if n_bits < 1:
        raise NetworkError("shift_register needs at least one bit")
    net = Network(name=name or f"shift{n_bits}")
    net.add_input("d")
    bits = [f"s{k}" for k in range(n_bits)]
    for k, bit in enumerate(bits):
        source = "d" if k == 0 else bits[k - 1]
        net.add_node(f"n{k}", Var(source))
        net.add_latch(bit, f"n{k}", 0)
    net.add_node("q", Var(bits[-1]))
    net.add_output("q")
    net.validate()
    return net


def sequence_detector(pattern: str, *, name: str | None = None) -> Network:
    """A Mealy detector that raises ``hit`` when ``pattern`` just arrived.

    Inputs: ``x``.  Outputs: ``hit``.  Stores the last ``len(pattern)-1``
    input bits in a shift register (overlapping matches allowed).
    """
    if not pattern or set(pattern) - {"0", "1"}:
        raise NetworkError(f"pattern must be non-empty binary, got {pattern!r}")
    history = len(pattern) - 1
    net = Network(name=name or f"det{pattern}")
    net.add_input("x")
    bits = [f"h{k}" for k in range(history)]  # h0 = most recent past bit
    for k, bit in enumerate(bits):
        source = "x" if k == 0 else bits[k - 1]
        net.add_node(f"n{k}", Var(source))
        net.add_latch(bit, f"n{k}", 0)
    literals = []
    # pattern[-1] is the current input; pattern[-1-k-1] sits in h{k}.
    current = Var("x") if pattern[-1] == "1" else Not(Var("x"))
    literals.append(current)
    for k in range(history):
        want = pattern[-2 - k]
        literals.append(Var(bits[k]) if want == "1" else Not(Var(bits[k])))
    net.add_node("hit", And(tuple(literals)))
    net.add_output("hit")
    net.validate()
    return net


def traffic_light(*, name: str | None = None) -> Network:
    """A two-phase traffic-light controller (classic textbook FSM).

    Inputs: ``car`` (car waiting on the minor road).  Outputs:
    ``green_major``, ``green_minor``.  Two latches encode the phase:
    00 = major green, 01 = major yellow, 11 = minor green, 10 = minor
    yellow.
    """
    net = Network(name=name or "traffic")
    net.add_input("car")
    # Phase encoding (p1, p0): 00 -> 01 on car; 01 -> 11; 11 -> 10 when no
    # car; 10 -> 00.  next_p1 simplifies to p0; next_p0 is given below.
    net.add_node(
        "n0",
        Or(
            (
                And((Not(Var("p1")), Not(Var("p0")), Var("car"))),
                And((Not(Var("p1")), Var("p0"))),
                And((Var("p1"), Var("p0"), Var("car"))),
            )
        ),
    )
    net.add_node("n1", Var("p0"))
    net.add_latch("p0", "n0", 0)
    net.add_latch("p1", "n1", 0)
    net.add_node("green_major", And((Not(Var("p1")), Not(Var("p0")))))
    net.add_node("green_minor", And((Var("p1"), Var("p0"))))
    net.add_output("green_major")
    net.add_output("green_minor")
    net.validate()
    return net


def token_arbiter(n_clients: int, *, name: str | None = None) -> Network:
    """A one-hot rotating-token arbiter.

    Inputs: ``req0..req{n-1}``.  Outputs: ``gnt0..gnt{n-1}``.  One latch
    per client holds the token (initially client 0); the token advances
    when the holder is not requesting.
    """
    if n_clients < 2:
        raise NetworkError("token_arbiter needs at least two clients")
    net = Network(name=name or f"arb{n_clients}")
    toks = [f"t{k}" for k in range(n_clients)]
    for k in range(n_clients):
        net.add_input(f"req{k}")
    net.add_node(
        "hold", Or(tuple(And((Var(t), Var(f"req{k}"))) for k, t in enumerate(toks)))
    )
    for k, tok in enumerate(toks):
        prev = toks[(k - 1) % n_clients]
        net.add_node(
            f"n{k}",
            Or((And((Var("hold"), Var(tok))), And((Not(Var("hold")), Var(prev))))),
        )
        net.add_latch(tok, f"n{k}", 1 if k == 0 else 0)
        net.add_node(f"gnt{k}", And((Var(tok), Var(f"req{k}"))))
        net.add_output(f"gnt{k}")
    net.validate()
    return net


def gray_counter(n_bits: int, *, name: str | None = None) -> Network:
    """A Gray-code counter with enable (adjacent states differ in 1 bit).

    Inputs: ``en``.  Outputs: ``msb``.  Implemented as a binary counter
    core with Gray-coded state outputs folded into the next-state logic:
    ``g_k' = b_k' XOR b_{k+1}'`` computed over the binary core.
    """
    if n_bits < 2:
        raise NetworkError("gray_counter needs at least two bits")
    net = Network(name=name or f"gray{n_bits}")
    net.add_input("en")
    bits = [f"g{k}" for k in range(n_bits)]
    # Decode Gray state back to binary: b_k = XOR of g_k..g_{n-1}.
    for k in range(n_bits):
        net.add_node(
            f"bin{k}", Xor(tuple(Var(bits[j]) for j in range(k, n_bits)))
        )
    # Binary increment with enable.
    carry = ["en"]
    for k in range(n_bits):
        if k > 0:
            net.add_node(f"c{k}", And((Var(carry[-1]), Var(f"bin{k-1}"))))
            carry.append(f"c{k}")
        net.add_node(f"binn{k}", Xor((Var(f"bin{k}"), Var(carry[-1]))))
    # Re-encode to Gray: g_k' = b_k' XOR b_{k+1}'.
    for k, bit in enumerate(bits):
        if k + 1 < n_bits:
            net.add_node(f"n{k}", Xor((Var(f"binn{k}"), Var(f"binn{k+1}"))))
        else:
            net.add_node(f"n{k}", Var(f"binn{k}"))
        net.add_latch(bit, f"n{k}", 0)
    net.add_node("msb", Var(bits[-1]))
    net.add_output("msb")
    net.validate()
    return net


def updown_counter(n_bits: int, *, name: str | None = None) -> Network:
    """An up/down binary counter.

    Inputs: ``en``, ``up``.  Outputs: ``zero`` (all bits clear).  When
    enabled, counts up if ``up`` else down (two's-complement wraparound).
    """
    if n_bits < 1:
        raise NetworkError("updown_counter needs at least one bit")
    net = Network(name=name or f"updown{n_bits}")
    net.add_input("en")
    net.add_input("up")
    bits = [f"b{k}" for k in range(n_bits)]
    # Propagate signal: up counts on trailing 1s...0? Increment propagates
    # through 1-bits when up, through 0-bits when down.
    prop = ["en"]
    for k, bit in enumerate(bits):
        if k > 0:
            prev = bits[k - 1]
            net.add_node(
                f"p{k}",
                And(
                    (
                        Var(prop[-1]),
                        Or((And((Var("up"), Var(prev))), And((Not(Var("up")), Not(Var(prev)))))),
                    )
                ),
            )
            prop.append(f"p{k}")
        net.add_node(f"n{k}", Xor((Var(bit), Var(prop[-1]))))
        net.add_latch(bit, f"n{k}", 0)
    net.add_node("zero", And(tuple(Not(Var(b)) for b in bits)))
    net.add_output("zero")
    net.validate()
    return net


def fifo_controller(depth_bits: int, *, name: str | None = None) -> Network:
    """A FIFO controller: read/write pointers plus a fullness counter.

    Inputs: ``push``, ``pop``.  Outputs: ``full``, ``empty``.  Three
    groups of latches: write pointer, read pointer and an occupancy
    counter, each ``depth_bits`` wide — a typical control-dominated
    benchmark shape.  Pushes into a full FIFO and pops from an empty one
    are ignored.
    """
    if depth_bits < 1:
        raise NetworkError("fifo_controller needs at least one pointer bit")
    net = Network(name=name or f"fifo{depth_bits}")
    net.add_input("push")
    net.add_input("pop")
    cnt = [f"cnt{k}" for k in range(depth_bits + 1)]
    wp = [f"wp{k}" for k in range(depth_bits)]
    rp = [f"rp{k}" for k in range(depth_bits)]
    net.add_node("empty", And(tuple(Not(Var(c)) for c in cnt)))
    net.add_node(
        "full",
        And((Var(cnt[-1]),) + tuple(Not(Var(c)) for c in cnt[:-1])),
    )
    net.add_node("do_push", And((Var("push"), Not(Var("full")))))
    net.add_node("do_pop", And((Var("pop"), Not(Var("empty")))))
    net.add_node("inc", And((Var("do_push"), Not(Var("do_pop")))))
    net.add_node("dec", And((Var("do_pop"), Not(Var("do_push")))))

    def ripple(bits: list[str], enable: str, prefix: str) -> None:
        carry = [enable]
        for k, bit in enumerate(bits):
            if k > 0:
                net.add_node(
                    f"{prefix}c{k}", And((Var(carry[-1]), Var(bits[k - 1])))
                )
                carry.append(f"{prefix}c{k}")
            net.add_node(f"{prefix}n{k}", Xor((Var(bit), Var(carry[-1]))))

    ripple(wp, "do_push", "w")
    ripple(rp, "do_pop", "r")
    for k, bit in enumerate(wp):
        net.add_latch(bit, f"wn{k}", 0)
    for k, bit in enumerate(rp):
        net.add_latch(bit, f"rn{k}", 0)
    # Occupancy counter: +1 on inc, -1 on dec (borrow ripple).
    borrow = ["dec"]
    carry = ["inc"]
    for k, bit in enumerate(cnt):
        if k > 0:
            net.add_node(f"uc{k}", And((Var(carry[-1]), Var(cnt[k - 1]))))
            net.add_node(f"ub{k}", And((Var(borrow[-1]), Not(Var(cnt[k - 1])))))
            carry.append(f"uc{k}")
            borrow.append(f"ub{k}")
        net.add_node(
            f"un{k}", Xor((Var(bit), Var(carry[-1]), Var(borrow[-1])))
        )
        net.add_latch(bit, f"un{k}", 0)
    net.add_output("full")
    net.add_output("empty")
    net.validate()
    return net


def random_network(
    n_inputs: int,
    n_latches: int,
    n_outputs: int,
    *,
    n_nodes: int | None = None,
    seed: int = 0,
    name: str | None = None,
) -> Network:
    """A seeded random multi-level sequential network.

    The combinational part is a random DAG of 2-input AND/OR/XOR gates
    with random input negations, mimicking mapped multi-level logic.
    Deterministic for a given ``seed``.
    """
    if n_inputs < 1 or n_latches < 1 or n_outputs < 1:
        raise NetworkError("random_network needs >=1 input, latch and output")
    rng = random.Random(seed)
    net = Network(name=name or f"rand_i{n_inputs}l{n_latches}s{seed}")
    pool: list[str] = []
    for k in range(n_inputs):
        pool.append(net.add_input(f"x{k}"))
    states = [f"l{k}" for k in range(n_latches)]
    pool.extend(states)
    total_nodes = n_nodes if n_nodes is not None else 3 * (n_inputs + n_latches)
    gate_names: list[str] = []
    for k in range(total_nodes):
        a, b = rng.sample(pool, 2) if len(pool) >= 2 else (pool[0], pool[0])
        fa: Var | Not = Var(a) if rng.random() < 0.7 else Not(Var(a))
        fb: Var | Not = Var(b) if rng.random() < 0.7 else Not(Var(b))
        op = rng.choice(["and", "or", "xor"])
        if op == "and":
            expr = And((fa, fb))
        elif op == "or":
            expr = Or((fa, fb))
        else:
            expr = Xor((fa, fb))
        gate = f"g{k}"
        net.add_node(gate, expr)
        gate_names.append(gate)
        pool.append(gate)
    for k, state in enumerate(states):
        driver = rng.choice(gate_names)
        net.add_latch(state, driver, rng.randint(0, 1))
    for k in range(n_outputs):
        net.add_node(f"y{k}", Var(rng.choice(gate_names)))
        net.add_output(f"y{k}")
    net.validate()
    return net
