"""Bounded-memory residency: LRU spill of resident subset states.

The subset driver pins every discovered ψ for the whole solve (the
``ids`` table is how successor candidates deduplicate against already
seen subsets), so peak memory — not time — is what caps latch counts.
This module bounds that working set:

* :class:`SpillStore` is a content-addressed blob store over the
  single-function spill format
  (:func:`~repro.bdd.io.dump_function_packed`): blobs are keyed by
  their SHA-256, so identical sibling ψ — common exactly where the
  completion memo already shows >60 % sharing — cost one file, and
  concurrent writers (shard workers sharing one spill directory) are
  naturally idempotent.
* :class:`ResidencyManager` is the coordinator-side policy object: an
  LRU over *expanded* subset states with a node-count budget.  States
  still in the frontier are never evicted (their raw edge identity is
  what the frontier holds), so eviction can never invalidate pending
  work.  Evicting a ψ dumps it to the store, forgets its pin and drops
  it from the driver's table; deduplication against evicted states then
  runs by content key instead of by edge identity — sound because the
  packed blob is canonical per (function, variable order).

Variable-order epochs
---------------------

A packed blob depends on the variable order it was dumped under, so an
in-place sift (``--reorder auto``) silently invalidates every stored
content key.  The manager tracks an *order token* (the kernel's
``_order_epoch`` where available, the literal variable order otherwise)
and transparently re-keys all evicted entries when it changes — reload
under the new order is always sound (children recombine with ITE), only
the dedup hashes need refreshing.

Shard workers run the same discipline over their resident registries
(:mod:`repro.shard.worker`): a worker whose pinned ψ estimate exceeds
its ``resident_budget`` spills least-recently-touched entries and
reloads transparently on the next ``expand_batch``/``dump`` touch.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile

from repro.bdd.io import dump_function_packed, load_function_packed
from repro.errors import EquationError
from repro.obs.trace import span as obs_span


def content_key(mgr, f: int) -> tuple[str, bytes]:
    """``(sha256 hex, blob)`` of ``f`` under the manager's current order."""
    blob = dump_function_packed(mgr, f)
    return hashlib.sha256(blob).hexdigest(), blob


class SpillStore:
    """A content-addressed directory of packed-function blobs.

    Layout is ``root/<key[:2]>/<key>.bin`` with atomic ``os.replace``
    writes, so any number of processes may share one store: a second
    writer of the same content either finds the file already present or
    replaces it with identical bytes.  A store constructed without a
    ``root`` owns a fresh temporary directory and removes it on
    :meth:`close`; a store pointed at a caller-provided directory never
    deletes anything.
    """

    def __init__(self, root: str | None = None) -> None:
        if root is None:
            self.root = tempfile.mkdtemp(prefix="repro-spill-")
            self._owned = True
        else:
            os.makedirs(root, exist_ok=True)
            self.root = root
            self._owned = False
        #: Blobs actually written (content-dedup hits do not count).
        self.puts = 0
        #: Bytes actually written.
        self.put_bytes = 0
        #: Writes skipped because the content was already present.
        self.dedup_hits = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key[2:] + ".bin")

    def put(self, blob: bytes) -> tuple[str, bool]:
        """Store ``blob``; returns ``(key, written)``."""
        key = hashlib.sha256(blob).hexdigest()
        path = self._path(key)
        if os.path.exists(path):
            self.dedup_hits += 1
            return key, False
        parent = os.path.dirname(path)
        os.makedirs(parent, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - cleanup best effort
                pass
            raise
        self.puts += 1
        self.put_bytes += len(blob)
        return key, True

    def get(self, key: str) -> bytes:
        """Read a blob back by its content key."""
        with open(self._path(key), "rb") as fh:
            return fh.read()

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def close(self) -> None:
        """Remove the store directory if this instance owns it."""
        if self._owned:
            shutil.rmtree(self.root, ignore_errors=True)
            self._owned = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SpillStore root={self.root!r} puts={self.puts}>"


def _order_token(mgr) -> object:
    """A value that changes whenever the manager's variable order does."""
    epoch = getattr(mgr, "_order_epoch", None)
    if epoch is not None:
        return epoch
    return tuple(mgr.var_order())


class ResidencyManager:
    """LRU spill policy over the subset driver's resident ψ table.

    The driver owns the actual table (``ids``) and the GC pins; this
    object decides *which* states stay materialized.  Protocol, in the
    order the driver calls it:

    * :meth:`admit` — a new subset state was created (it enters the
      frontier, so it is not yet evictable).
    * :meth:`touch` — a successor candidate deduplicated against a
      resident state (moves it to the MRU end).
    * :meth:`lookup` — a candidate missed the resident table; check the
      evicted states by content key.
    * :meth:`mark_expanded` — a state left the frontier; it is now
      eviction-eligible.
    * :meth:`enforce` — batch boundary: evict least-recently-touched
      expanded states until the resident node estimate fits the budget.
      Returns the evicted edges so the driver can drop its pins.
    * :meth:`restore_all` — reload every evicted ψ (a checkpoint
      snapshot needs the full table); the driver re-admits them.

    The budget is an *estimate*: per-ψ node counts are measured at admit
    time and summed, so shared structure between subsets is counted once
    per subset.  That is deliberate — the estimate is what the unbounded
    run would also report as its per-ψ footprint, and a stable
    overestimate makes eviction behaviour reproducible.
    """

    def __init__(
        self,
        mgr,
        budget: int,
        *,
        store: SpillStore | None = None,
        spill_dir: str | None = None,
    ) -> None:
        if budget < 1:
            raise EquationError(
                f"resident budget must be a positive node count, got {budget}"
            )
        self.mgr = mgr
        self.budget = budget
        self.store = store if store is not None else SpillStore(spill_dir)
        self._owns_store = store is None
        # Eviction-eligible resident states, LRU first (dict order).
        self._lru: dict[int, int] = {}  # ψ edge -> sid
        self._sid: dict[int, int] = {}  # every resident ψ edge -> sid
        self._sizes: dict[int, int] = {}  # ψ edge -> admit-time node count
        self._resident_nodes = 0
        self._evicted: dict[int, str] = {}  # sid -> content key
        self._evicted_by_key: dict[str, int] = {}
        self._token = _order_token(mgr)
        self.spills = 0
        self.reloads = 0
        self.evictions = 0
        self.rehashes = 0
        self.resident_nodes_peak = 0
        self.evicted_peak = 0

    # -- bookkeeping ---------------------------------------------------- #

    def admit(self, psi: int, sid: int) -> None:
        """Track a newly created (frontier) subset state."""
        size = self.mgr.size(psi)
        self._sid[psi] = sid
        self._sizes[psi] = size
        self._resident_nodes += size
        self.resident_nodes_peak = max(
            self.resident_nodes_peak, self._resident_nodes
        )

    def touch(self, psi: int) -> None:
        """A dedup hit on a resident state: move it to the MRU end."""
        sid = self._lru.pop(psi, None)
        if sid is not None:
            self._lru[psi] = sid

    def mark_expanded(self, psi: int) -> None:
        """A state left the frontier; it becomes eviction-eligible."""
        sid = self._sid.get(psi)
        if sid is not None and psi not in self._lru:
            self._lru[psi] = sid

    @property
    def resident_nodes(self) -> int:
        """Current resident-ψ node estimate."""
        return self._resident_nodes

    @property
    def evicted_count(self) -> int:
        return len(self._evicted)

    # -- dedup against evicted states ----------------------------------- #

    def lookup(self, psi: int) -> int | None:
        """The sid of an evicted state equal to ``psi``, if any.

        Resident dedup is the caller's edge-keyed table; this only
        answers for states that were spilled out of it.  Costs one
        ``dump_function_packed`` of the candidate — skipped entirely
        while nothing is evicted.
        """
        if not self._evicted_by_key:
            return None
        self._sync_order()
        key, _ = content_key(self.mgr, psi)
        return self._evicted_by_key.get(key)

    def _sync_order(self) -> None:
        """Re-key evicted blobs after an in-place reorder (see module doc)."""
        token = _order_token(self.mgr)
        if token == self._token:
            return
        self._token = token
        if not self._evicted:
            return
        mgr = self.mgr
        remap: dict[int, str] = {}
        for sid, key in self._evicted.items():
            psi = load_function_packed(mgr, self.store.get(key))
            mgr.ref(psi)
            try:
                new_key, blob = content_key(mgr, psi)
                self.store.put(blob)
            finally:
                mgr.deref(psi)
            remap[sid] = new_key
            self.rehashes += 1
        self._evicted = remap
        self._evicted_by_key = {key: sid for sid, key in remap.items()}

    # -- the policy ----------------------------------------------------- #

    def enforce(self) -> list[int]:
        """Evict cold expanded ψ until the estimate fits the budget.

        Returns the evicted ψ edges; the caller drops its table entries
        and GC pins for them (the blobs are already on disk when this
        returns, so the next collection may reclaim the nodes).
        """
        if self._resident_nodes <= self.budget or not self._lru:
            return []
        self._sync_order()
        mgr = self.mgr
        evicted: list[int] = []
        while self._resident_nodes > self.budget and self._lru:
            psi = next(iter(self._lru))
            sid = self._lru.pop(psi)
            with obs_span("psi_spill", sid=sid) as spill_span:
                key, blob = content_key(mgr, psi)
                _, written = self.store.put(blob)
                spill_span.set(bytes=len(blob), written=written)
            if written:
                self.spills += 1
            self._evicted[sid] = key
            self._evicted_by_key[key] = sid
            self._resident_nodes -= self._sizes.pop(psi)
            del self._sid[psi]
            evicted.append(psi)
        self.evictions += len(evicted)
        self.evicted_peak = max(self.evicted_peak, len(self._evicted))
        return evicted

    def restore_all(self) -> list[tuple[int, int]]:
        """Reload every evicted ψ; returns ``(psi, sid)`` pairs.

        Used before a checkpoint snapshot (which must carry the full
        subset table).  The caller re-admits the pairs — they come back
        eviction-eligible, so the next :meth:`enforce` re-bounds the
        working set.
        """
        out: list[tuple[int, int]] = []
        mgr = self.mgr
        for sid, key in self._evicted.items():
            with obs_span("psi_reload", sid=sid):
                psi = load_function_packed(mgr, self.store.get(key))
            self.reloads += 1
            out.append((psi, sid))
        self._evicted.clear()
        self._evicted_by_key.clear()
        return out

    def stats(self) -> dict:
        """Counters merged into ``SubsetStats.extra`` by the driver."""
        return {
            "resident_budget": self.budget,
            "psi_spills": self.spills,
            "psi_reloads": self.reloads,
            "resident_evictions": self.evictions,
            "resident_nodes_peak": self.resident_nodes_peak,
            "evicted_peak": self.evicted_peak,
            "spill_bytes": self.store.put_bytes,
            "spill_rehashes": self.rehashes,
        }

    def close(self) -> None:
        """Drop the spill store if this manager owns it (idempotent)."""
        if self._owns_store:
            self.store.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResidencyManager budget={self.budget} "
            f"resident={self._resident_nodes} evicted={len(self._evicted)}>"
        )
