"""Quantification scheduling for partitioned image computation.

The enabler the paper leans on: "the image computation can be performed
using the partitioned representation by scheduling those cs variables,
which do not appear in some parts, to be quantified earlier [4][5]".

:func:`schedule_parts` orders the relation parts greedily so that
quantified variables fall out of scope as early as possible, and
annotates each step with the variables that may be quantified right after
conjoining that part (because no later part mentions them).  This is an
IWLS'95-style heuristic driven purely by support sets.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.bdd.manager import BddManager


def schedule_supports(
    supports: Sequence[set[int]],
    quantify: Iterable[int],
    *,
    constraint_support: Iterable[int] = (),
) -> list[tuple[int, list[int]]]:
    """Support-set core of :func:`schedule_parts`.

    Takes the per-part support sets directly (no manager, no BDDs) and
    returns ``[(part_index, vars_quantifiable_after_it), ...]``.  The
    sharded runtime (:mod:`repro.shard.plan`) reuses this as its
    *affinity* heuristic: parts adjacent in the returned order share
    support and retire variables together, so contiguous chunks of it
    make good per-shard clusters.

    The greedy metric picks, at each step, the part minimising the
    estimated live support of the accumulated product:
    ``|(current ∪ part_support) − newly_quantifiable|``, breaking ties by
    preferring parts that retire more quantified variables, then by
    original position (deterministic).
    """
    qset = set(quantify)
    remaining = list(range(len(supports)))
    current: set[int] = set(constraint_support)
    ordered: list[tuple[int, list[int]]] = []

    while remaining:
        # Variables mentioned by each still-unprocessed part.
        best = None
        best_key = None
        for idx in remaining:
            future = set()
            for other in remaining:
                if other != idx:
                    future |= supports[other]
            live = current | supports[idx]
            retirable = (live & qset) - future
            key = (len(live - retirable), -len(retirable), idx)
            if best_key is None or key < best_key:
                best_key = key
                best = idx
        assert best is not None
        future = set()
        for other in remaining:
            if other != best:
                future |= supports[other]
        live = current | supports[best]
        retirable = sorted((live & qset) - future)
        ordered.append((best, retirable))
        current = live - set(retirable)
        remaining.remove(best)
    return ordered


def schedule_parts(
    mgr: BddManager,
    parts: Sequence[int],
    quantify: Iterable[int],
    *,
    constraint_support: Iterable[int] = (),
) -> list[tuple[int, list[int]]]:
    """Order ``parts`` and attach early-quantification sets.

    Returns ``[(part, vars_quantifiable_after_it), ...]`` such that
    processing parts in the returned order and existentially quantifying
    the attached variables right after conjoining each part is equivalent
    to quantifying everything at the end.  The ordering heuristic is
    :func:`schedule_supports` over the parts' support sets.
    """
    ordered = schedule_supports(
        [mgr.support(p) for p in parts],
        quantify,
        constraint_support=constraint_support,
    )
    return [(parts[idx], retire) for idx, retire in ordered]


def cluster_parts(
    mgr: BddManager,
    parts: Sequence[int],
    *,
    max_nodes: int = 2000,
) -> list[int]:
    """Greedy clustering: conjoin adjacent parts while the BDD stays small.

    A lightweight version of the cluster-size threshold used by
    partitioned image computation packages: merging tiny parts reduces
    scheduling overhead without materialising the monolithic relation.
    """
    clusters: list[int] = []
    for part in parts:
        if clusters:
            candidate = mgr.apply_and(clusters[-1], part)
            if mgr.size(candidate) <= max_nodes:
                clusters[-1] = candidate
                continue
        clusters.append(part)
    return clusters
