"""A shared, reduced, ordered BDD manager with complement edges (pure Python).

This module replaces the CUDD package the paper relies on.  It implements
the classic shared-ROBDD data structure, upgraded with the features that
separate production kernels from toys:

* **complement edges** — an *edge* is an integer ``(node_index << 1) | sign``
  where the sign bit marks negation.  Then-edges are stored uncomplemented,
  which keeps the representation canonical, makes :meth:`~BddManager.apply_not`
  O(1) (``f ^ 1``) and lets AND/OR share computed-table entries through
  De Morgan's law.  There is a single terminal node (index 0): edge ``0`` is
  the constant FALSE and edge ``1`` its complement TRUE, so the classic
  ``f < 2`` terminal test still works on edges;
* **per-level subtables** — the unique table is a list of per-variable
  dicts (``_subtables[var]: packed(lo, hi) -> regular edge``), CUDD-style.
  Reordering gets its per-level candidate buckets for free, garbage
  collection sweeps level-locally (live entries only, never dead slots),
  and ``stats``/``check()`` report per-level occupancy.  Keys are
  **packed machine integers** (``lo << 38 | hi``) rather than tuples —
  int keys hash and compare several times faster than tuple keys, which
  is the single biggest constant-factor lever available to a pure-Python
  kernel;
* a unified, operator-tagged *computed table* (operation cache) for all
  Boolean connectives, quantification, the fused relational product
  ``and_exists`` (the workhorse of image computation), composition and
  renaming.  Keys are packed integers with the operator tag in the low
  4 bits and edge/operand fields in 38-bit lanes above it; commutative
  operators order their arguments so both orientations share one entry;
* a **dual execution core**.  Every hot operator exists in two forms:
  closure-bound *recursive fast paths* (the quickest way to run shallow
  managers — recursion depth is bounded by the number of levels, never
  by BDD size) and an *iterative explicit-frame core* (manual stack,
  op-tagged frames, computed-table probes hoisted to push time) that
  runs BDDs of any depth without touching the Python recursion limit.
  The manager auto-selects per :meth:`set_apply_core`: ``"auto"``
  switches to the iterative core once ``3 × num_vars`` approaches
  ``sys.getrecursionlimit()``.  The recursive family is retained both as
  the shallow-manager fast path and as the reference implementation the
  iterative core is property-tested against;
* *reference-counted garbage collection* — callers pin the functions they
  hold with :meth:`~BddManager.ref` / :meth:`~BddManager.deref` or the
  ``with mgr.protect(...)`` context manager, and
  :meth:`~BddManager.collect_garbage` reclaims everything unreachable,
  sweeping dead entries out of the subtables and computed table.  Freed
  slots are recycled through a free list, so long fixpoint computations
  (image, reachability, subset construction) no longer grow without bound.

The node attribute arrays are **edge-indexed**: slot ``2n`` holds node
``n``'s children as stored, slot ``2n+1`` holds them with the complement
bit propagated.  Cofactor extraction in the hot operators is then a bare
list index — no shift/mask arithmetic on the hot path — at the cost of
one extra (pointer-sized) slot per node.

Variable *levels* are separate from variable *indices*, so the order can
be changed (see :mod:`repro.bdd.reorder`).  Repeated quantifications over
the same variable set should go through :meth:`~BddManager.quant_set`,
which interns the level tuple once and revalidates it lazily when the
order changes (``_order_epoch``).

All manager methods consume and produce int edges, which keeps the inner
loops fast; :class:`repro.bdd.function.Function` offers an
operator-overloaded wrapper for user-facing code.

The manager optionally enforces a node budget (``max_nodes``, counted over
*live* nodes), raising :class:`~repro.errors.BddNodeLimit` when exceeded.
The Table 1 harness uses this to emulate the paper's "CNC" (could not
complete) entries.
"""

from __future__ import annotations

import sys
from collections.abc import Iterable, Iterator, Mapping, Sequence
from contextlib import contextmanager

from repro.bdd.policy import GcPolicy, ReorderPolicy
from repro.errors import BddError, BddNodeLimit, BddOrderError
from repro.obs.trace import span as obs_span

#: Edge of the constant FALSE function (terminal node, positive polarity).
FALSE = 0
#: Edge of the constant TRUE function (terminal node, complemented).
TRUE = 1

#: Sentinel level assigned to the terminal node; compares above all real
#: variable levels.
_TERMINAL_LEVEL = 1 << 60

#: ``_var`` sentinel marking a reclaimed node slot awaiting reuse.
_FREE = -2

#: Width of one packed key lane.  Edges, variable indices and interned
#: quantification-suffix ids must stay below ``2**38`` — that is ~137
#: billion edges, far beyond anything a pure-Python kernel can hold.
_EDGE_SHIFT = 38
_EDGE_MASK = (1 << _EDGE_SHIFT) - 1

# Operator tags for the unified computed table.  Every cache key is a
# packed integer whose LOW 4 bits are one of these tags; operand fields
# sit in 38-bit lanes above the tag, first operand highest.  Commutative
# operators store their edge arguments in sorted order so both
# orientations hit the same entry, and complement-edge normalisation lets
# all four polarities of XOR, both AND/OR orientations, etc. share
# entries.  Key layouts (``S`` = 38):
#
# =========  ====================================================
# AND, XOR   ``((f << S | g) << 4) | tag``            (f < g)
# ITE        ``(((f << S | g) << S | h) << 4) | tag``
# EXISTS     ``((f << S | sid) << 4) | tag``
# ANDEX      ``(((f << S | g) << S | sid) << 4) | tag``  (f < g)
# COMPOSE    ``(((f << S | g) << S | var) << 4) | tag``
# RENAME     ``((f << S | map_id) << 4) | tag``
# RESTRICT   ``(((f << S | var) << 1 | val) << 4) | tag``
# CONSTRAIN  ``((f << S | c) << 4) | tag``
# =========  ====================================================
_OP_AND = 0
_OP_XOR = 1
_OP_ITE = 2
_OP_EXISTS = 3
_OP_ANDEX = 4
_OP_COMPOSE = 5
_OP_RENAME = 6
_OP_RESTRICT = 7
_OP_CONSTRAIN = 8


def _key_mentions_dead(key: int, marked: bytearray) -> bool:
    """Whether a computed-table key references a reclaimed node.

    The garbage collector uses this to sweep entries that mention a dead
    edge (stale entries must go before slots are reused, or a recycled
    index could produce false cache hits).  Non-edge fields (suffix ids,
    variable indices, rename-map ids, restrict values) are skipped.
    """
    op = key & 15
    key >>= 4
    if op <= _OP_XOR or op == _OP_CONSTRAIN:  # AND, XOR, CONSTRAIN: (f, g)
        return not marked[key >> _EDGE_SHIFT] or not marked[key & _EDGE_MASK]
    if op == _OP_ITE:
        if not marked[key & _EDGE_MASK]:
            return True
        key >>= _EDGE_SHIFT
        return not marked[key >> _EDGE_SHIFT] or not marked[key & _EDGE_MASK]
    if op == _OP_EXISTS or op == _OP_RENAME:  # (f, non-edge)
        return not marked[key >> _EDGE_SHIFT]
    if op == _OP_ANDEX or op == _OP_COMPOSE:  # (f, g, non-edge)
        key >>= _EDGE_SHIFT
        return not marked[key >> _EDGE_SHIFT] or not marked[key & _EDGE_MASK]
    # RESTRICT: (f, var, val) with val in an extra low bit.
    return not marked[key >> (_EDGE_SHIFT + 1)]


class QuantSet:
    """A pre-interned quantification variable set.

    Repeated quantifications over the same variables (every image step of
    a fixpoint, every fold step of a reusable image plan) pay a
    sort/dedup/intern pass per call when handed a plain variable list.
    A ``QuantSet`` performs that pass once and caches the level tuple and
    suffix ids; the cache revalidates itself lazily against the
    manager's ``_order_epoch``, so it stays correct across in-place
    reordering (levels move; the variable *indices* held here do not).

    Obtain instances through :meth:`BddManager.quant_set`; pass them
    anywhere :meth:`~BddManager.exists`, :meth:`~BddManager.forall` or
    :meth:`~BddManager.and_exists` accepts a variable collection.
    """

    __slots__ = ("_epoch", "_levels", "_mgr", "_sids", "vars")

    def __init__(self, mgr: "BddManager", variables: Iterable[int]) -> None:
        self._mgr = mgr
        self.vars = tuple(dict.fromkeys(int(v) for v in variables))
        self._epoch = -1
        self._levels: tuple[int, ...] = ()
        self._sids: list[int] = []

    def _resolve(self) -> tuple[tuple[int, ...], list[int]]:
        mgr = self._mgr
        if self._epoch != mgr._order_epoch:
            self._levels = mgr._levels_key(self.vars)
            self._sids = mgr._suffix_ids(self._levels) if self._levels else []
            self._epoch = mgr._order_epoch
        return self._levels, self._sids

    def __iter__(self) -> Iterator[int]:
        return iter(self.vars)

    def __len__(self) -> int:
        return len(self.vars)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<QuantSet vars={self.vars}>"


class BddManager:
    """A shared ROBDD manager with complement edges.

    Parameters
    ----------
    max_nodes:
        Optional budget on *live* nodes.  When the number of live nodes
        would exceed this, :class:`~repro.errors.BddNodeLimit` is raised.
    gc_min_live:
        Live-node floor below which :meth:`should_collect` never triggers
        (shorthand for a static :class:`~repro.bdd.policy.GcPolicy`).
    gc_growth:
        Growth factor over the live count after the previous collection
        that arms :meth:`should_collect`.
    gc_policy:
        Full :class:`~repro.bdd.policy.GcPolicy`; overrides the two
        shorthand knobs.  An ``"adaptive"`` policy tracks per-sweep
        reclaim ratios and backs the collection floor off when sweeps
        stop paying.
    reorder_policy:
        :class:`~repro.bdd.policy.ReorderPolicy` deciding when
        :meth:`collect_garbage` should follow an unprofitable sweep with
        an in-place sift (:func:`repro.bdd.reorder.sift`).  Defaults to
        ``"off"``.
    apply_core:
        ``"auto"`` (default), ``"recursive"`` or ``"iterative"`` — which
        execution core runs the hot operators.  ``"auto"`` uses the
        closure-bound recursive fast paths while ``3 × num_vars`` stays
        clear of ``sys.getrecursionlimit()`` and switches to the
        explicit-frame iterative core beyond that, so deep managers
        never raise ``RecursionError``.  See :meth:`set_apply_core`.

    Examples
    --------
    >>> m = BddManager()
    >>> a, b = m.add_var("a"), m.add_var("b")
    >>> f = m.apply_and(m.var_node(a), m.var_node(b))
    >>> m.eval(f, {"a": True, "b": True})
    True
    """

    __slots__ = (
        "apply_and",
        "apply_xor",
        "ite",
        "_active_core",
        "_andex_core",
        "_apply_core",
        "_cores",
        "_counters",
        "_computed",
        "_exists_core",
        "_extref",
        "_free",
        "_gc_baseline",
        "_gc_ratio_sum",
        "_gc_reclaimed",
        "_gc_runs",
        "_hi",
        "_level2var",
        "_levels_intern",
        "_lo",
        "_name_to_var",
        "_nb",
        "_order_epoch",
        "_peak_live",
        "_rename_intern",
        "_reorder_boundaries",
        "_reorder_runs",
        "_reorder_swaps",
        "_subtables",
        "_suffix_cache",
        "_var",
        "_var2level",
        "_var_names",
        "gc_policy",
        "reorder_policy",
    )

    #: Sentinel budget meaning "unlimited" (kept as an int so the hot
    #: allocation path is a single compare).
    _NO_BUDGET = 1 << 62

    #: Recursion-frame margin reserved for the caller's own stack when
    #: the ``"auto"`` core decides between recursive and iterative.
    _DEEP_MARGIN = 250

    #: Registry name of this backend (see :mod:`repro.bdd.backends`).
    #: The pure-Python kernel is the reference implementation of the
    #: :class:`~repro.bdd.backends.protocol.BddBackend` protocol.
    backend_name = "python"

    def __init__(
        self,
        max_nodes: int | None = None,
        *,
        gc_min_live: int = 100_000,
        gc_growth: float = 2.0,
        gc_policy: GcPolicy | None = None,
        reorder_policy: ReorderPolicy | None = None,
        apply_core: str = "auto",
    ) -> None:
        if apply_core not in ("auto", "recursive", "iterative"):
            raise BddError(
                f"unknown apply core {apply_core!r}; "
                "choose from 'auto', 'recursive', 'iterative'"
            )
        self.gc_policy = (
            gc_policy
            if gc_policy is not None
            else GcPolicy(min_live=gc_min_live, growth=gc_growth)
        )
        self.reorder_policy = (
            reorder_policy if reorder_policy is not None else ReorderPolicy()
        )
        # Edge-indexed node attribute arrays; slots 0/1 are the two
        # polarities of the terminal (var sentinel -1).  Slot 2n holds the
        # children of node n as stored (then-edge regular), slot 2n+1 holds
        # them with the complement bit propagated.
        self._var: list[int] = [-1, -1]
        self._lo: list[int] = [0, 1]
        self._hi: list[int] = [0, 1]
        # Per-variable subtables: _subtables[var] maps the packed child
        # pair ``lo << 38 | hi`` to the node's regular (even) edge.  The
        # level view is reached through _level2var.
        self._subtables: list[dict[int, int]] = []
        # Reclaimed regular edges available for reuse.
        self._free: list[int] = []
        # External reference counts: regular (even) edge -> count.
        self._extref: dict[int, int] = {}
        # Shared allocation cell [live_count, node_budget]: the hot
        # closures bump/compare through this list so the allocation path
        # never touches an attribute.
        self._nb: list[int] = [
            1,
            self._NO_BUDGET if max_nodes is None else max_nodes,
        ]
        self._gc_baseline = 1
        # Unified computed table: packed op-tagged int key -> result edge.
        self._computed: dict[int, int] = {}
        # Interning tables for quantification level-suffixes and rename
        # maps (packed computed keys need small-int operands).
        self._levels_intern: dict[tuple[int, ...], int] = {}
        self._suffix_cache: dict[tuple[int, ...], list[int]] = {}
        self._rename_intern: dict[tuple[tuple[int, int], ...], int] = {}
        # Variable bookkeeping.
        self._var_names: list[str] = []
        self._name_to_var: dict[str, int] = {}
        self._var2level: list[int] = []
        self._level2var: list[int] = []
        # Bumped on every order change; QuantSet caches revalidate on it.
        self._order_epoch = 0
        # Statistics counters (exposed through the ``stats`` property).
        # The hot closures count into ``_counters`` (a list is a cheap
        # shared cell): [cache_hits, miss_compensation, unique_hits].
        # Cache misses are *derived* — every miss stores exactly one
        # computed-table entry, so ``misses = compensation +
        # len(_computed)`` with the compensation cell absorbing sweeps,
        # flushes and stat resets.  That keeps one list-increment off the
        # hot miss path.
        self._counters = [0, 0, 0]
        self._gc_runs = 0
        self._gc_reclaimed = 0
        self._gc_ratio_sum = 0.0
        self._peak_live = 1
        # Levels that start a new reorder block (sifting never swaps a
        # variable across a block boundary).
        self._reorder_boundaries: set[int] = set()
        self._reorder_runs = 0
        self._reorder_swaps = 0
        self._apply_core = apply_core
        self._active_core: str | None = None
        self._bind_hot_ops()
        self._select_core()

    # -- back-compat shorthands for the static GC knobs ----------------- #

    @property
    def gc_min_live(self) -> int:
        """Current live-node collection floor (see :class:`GcPolicy`)."""
        return self.gc_policy.floor

    @gc_min_live.setter
    def gc_min_live(self, value: int) -> None:
        self.gc_policy.min_live = value
        self.gc_policy.floor = value

    @property
    def gc_growth(self) -> float:
        """Growth factor arming :meth:`should_collect`."""
        return self.gc_policy.growth

    @gc_growth.setter
    def gc_growth(self, value: float) -> None:
        self.gc_policy.growth = value

    @property
    def max_nodes(self) -> int | None:
        """Live-node budget (``None`` = unlimited)."""
        budget = self._nb[1]
        return None if budget == self._NO_BUDGET else budget

    @max_nodes.setter
    def max_nodes(self, value: int | None) -> None:
        self._nb[1] = self._NO_BUDGET if value is None else value

    @property
    def _live(self) -> int:
        """Live node count (cold-path view of the allocation cell)."""
        return self._nb[0]

    @_live.setter
    def _live(self, value: int) -> None:
        self._nb[0] = value

    @property
    def _node_budget(self) -> int:
        return self._nb[1]

    # ------------------------------------------------------------------ #
    # Variables
    # ------------------------------------------------------------------ #

    def add_var(self, name: str) -> int:
        """Declare a new variable at the bottom of the order.

        Returns the variable *index* (not an edge).  Use :meth:`var_node`
        to obtain the BDD of the variable itself.
        """
        if name in self._name_to_var:
            raise BddError(f"variable {name!r} already declared")
        var = len(self._var_names)
        self._var_names.append(name)
        self._name_to_var[name] = var
        self._var2level.append(len(self._level2var))
        self._level2var.append(var)
        self._subtables.append({})
        if self._apply_core == "auto":
            self._select_core()
        return var

    def add_vars(self, names: Iterable[str]) -> list[int]:
        """Declare several variables; returns their indices in order."""
        return [self.add_var(name) for name in names]

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    def var_name(self, var: int) -> str:
        """Name of variable index ``var``."""
        return self._var_names[var]

    def var_index(self, name: str) -> int:
        """Variable index of ``name``; raises ``KeyError`` if undeclared."""
        return self._name_to_var[name]

    def has_var(self, name: str) -> bool:
        """Whether a variable called ``name`` has been declared."""
        return name in self._name_to_var

    def var_level(self, var: int) -> int:
        """Current level (position in the order) of variable ``var``."""
        return self._var2level[var]

    def var_at_level(self, level: int) -> int:
        """Variable index currently sitting at ``level``."""
        return self._level2var[level]

    def var_order(self) -> list[str]:
        """Variable names from the top of the order to the bottom."""
        return [self._var_names[v] for v in self._level2var]

    def set_order(self, names: Sequence[str]) -> None:
        """Set a complete variable order by name (top to bottom).

        All declared variables must be listed exactly once.  Only valid
        while the manager holds no internal nodes (use
        :func:`repro.bdd.reorder.reorder` afterwards).
        """
        if self._nb[0] > 1:
            raise BddError("set_order requires an empty manager; use reorder()")
        if sorted(names) != sorted(self._var_names):
            raise BddError("set_order must mention every declared variable once")
        self._level2var = [self._name_to_var[n] for n in names]
        for level, var in enumerate(self._level2var):
            self._var2level[var] = level
        self._order_epoch += 1

    def set_reorder_boundaries(self, levels: Iterable[int]) -> None:
        """Freeze reorder-block boundaries at the given levels.

        Each level in ``levels`` starts a new *block*: dynamic reordering
        (:func:`repro.bdd.reorder.sift`) only ever swaps adjacent levels
        inside one block, so variables never migrate across a boundary.
        The solver flows use this to keep the letter variables above all
        state variables — a hard requirement of the cofactor-splitting
        step (:func:`repro.bdd.cube.split_by_vars`) — while still letting
        the state block reorder freely mid-run.
        """
        self._reorder_boundaries = {int(lv) for lv in levels if lv > 0}

    @property
    def reorder_boundaries(self) -> set[int]:
        """Levels starting a new reorder block (empty = one big block)."""
        return set(self._reorder_boundaries)

    def var_node(self, var: int) -> int:
        """Edge for the positive literal of variable index ``var``."""
        return self._mk(var, FALSE, TRUE)

    def nvar_node(self, var: int) -> int:
        """Edge for the negative literal of variable index ``var``."""
        return self._mk(var, TRUE, FALSE)

    def node_var(self, f: int) -> int:
        """Top variable index of edge ``f`` (undefined for terminals)."""
        return self._var[f]

    def node_lo(self, f: int) -> int:
        """Low (else) child edge of ``f`` (complement bit propagated)."""
        return self._lo[f]

    def node_hi(self, f: int) -> int:
        """High (then) child edge of ``f`` (complement bit propagated)."""
        return self._hi[f]

    def level(self, f: int) -> int:
        """Level of the top variable of ``f`` (terminals compare last)."""
        if f < 2:
            return _TERMINAL_LEVEL
        return self._var2level[self._var[f]]

    # ------------------------------------------------------------------ #
    # Node construction
    # ------------------------------------------------------------------ #

    def _mk(self, var: int, lo: int, hi: int) -> int:
        """Find-or-create the edge for ``(var, lo, hi)`` (reduction applied).

        Canonical form: the then-edge is stored uncomplemented; when ``hi``
        carries the sign bit the node is stored with both children flipped
        and the complement moves onto the returned edge.
        """
        if lo == hi:
            return lo
        negate = hi & 1
        if negate:
            lo ^= 1
            hi ^= 1
        sub = self._subtables[var]
        ukey = lo << _EDGE_SHIFT | hi
        edge = sub.get(ukey)
        if edge is not None:
            self._counters[2] += 1
            return edge | negate
        return self._mk_new(var, sub, ukey, lo, hi) | negate

    def _mk_new(
        self, var: int, sub: dict[int, int], ukey: int, lo: int, hi: int
    ) -> int:
        """Allocate the (canonical, not yet present) node; returns its
        regular edge.

        The live count only ever drops at collection points, so peak-live
        tracking happens there (and in the ``stats`` property), keeping
        this path to a bare budget compare.
        """
        nb = self._nb
        live = nb[0]
        if live >= nb[1]:
            raise BddNodeLimit(self.max_nodes)
        free = self._free
        if free:
            edge = free.pop()
            arr = self._var
            arr[edge] = var
            arr[edge + 1] = var
            arr = self._lo
            arr[edge] = lo
            arr[edge + 1] = lo ^ 1
            arr = self._hi
            arr[edge] = hi
            arr[edge + 1] = hi ^ 1
        else:
            arr = self._var
            edge = len(arr)
            arr.append(var)
            arr.append(var)
            arr = self._lo
            arr.append(lo)
            arr.append(lo ^ 1)
            arr = self._hi
            arr.append(hi)
            arr.append(hi ^ 1)
        sub[ukey] = edge
        nb[0] = live + 1
        return edge

    def __len__(self) -> int:
        """Number of live nodes in the manager (including the terminal)."""
        return self._nb[0]

    @property
    def num_nodes(self) -> int:
        """Number of live nodes in the manager (including the terminal)."""
        return self._nb[0]

    @property
    def allocated_nodes(self) -> int:
        """Number of node slots ever allocated (live + reusable free)."""
        return len(self._var) // 2

    # ------------------------------------------------------------------ #
    # The execution cores
    # ------------------------------------------------------------------ #

    def apply_not(self, f: int) -> int:
        """Negation — O(1) with complement edges."""
        return f ^ 1

    def set_apply_core(self, mode: str) -> None:
        """Select the execution core for the hot operators.

        ``"recursive"`` binds the closure-bound recursive fast paths
        (fastest; recursion depth is bounded by ``3 × num_vars``, so it
        is safe whenever that stays below ``sys.getrecursionlimit()``).
        ``"iterative"`` binds the explicit-frame core (safe at any depth,
        a few percent slower on shallow managers).  ``"auto"`` re-decides
        after every :meth:`add_var` against the current recursion limit.
        """
        if mode not in ("auto", "recursive", "iterative"):
            raise BddError(
                f"unknown apply core {mode!r}; "
                "choose from 'auto', 'recursive', 'iterative'"
            )
        self._apply_core = mode
        self._active_core = None
        self._select_core()

    @property
    def apply_core(self) -> str:
        """The currently bound execution core (``recursive``/``iterative``)."""
        return self._active_core or "recursive"

    def _select_core(self) -> None:
        mode = self._apply_core
        if mode == "auto":
            deep = (
                3 * len(self._var_names) + self._DEEP_MARGIN
                >= sys.getrecursionlimit()
            )
            mode = "iterative" if deep else "recursive"
        if mode == self._active_core:
            return
        ops = self._cores[mode]
        self.apply_and = ops[0]
        self.apply_xor = ops[1]
        self._exists_core = ops[2]
        self._andex_core = ops[3]
        self._active_core = mode

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction — De Morgan over AND, sharing its cache entries."""
        return self.apply_and(f ^ 1, g ^ 1) ^ 1

    def apply_iff(self, f: int, g: int) -> int:
        """Biconditional (XNOR) — used to form ``ns_k ≡ T_k`` partitions."""
        return self.apply_xor(f, g) ^ 1

    def apply_implies(self, f: int, g: int) -> int:
        """Implication ``f → g``."""
        return self.apply_and(f, g ^ 1) ^ 1

    def apply_diff(self, f: int, g: int) -> int:
        """Difference ``f ∧ ¬g``."""
        return self.apply_and(f, g ^ 1)

    def _bind_hot_ops(self) -> None:
        """Build both op families as per-instance closures.

        The hot recursions run tens of thousands of times per image
        step; closing over the kernel state (node arrays, subtables,
        computed table, counter and allocation cells) replaces every
        ``self._x`` attribute load with a cell access and every method
        dispatch with a plain call.  All captured containers are only
        ever mutated *in place* (``clear_caches``, ``collect_garbage``,
        ``compact`` and ``add_var`` update them with
        ``clear``/``update``/``append``/indexed stores), so the closures
        can never go stale.

        Two families are built and stashed in ``self._cores``:

        * ``recursive`` — direct recursion with inlined terminal
          resolution, a three-way top-level split and an inlined
          allocation path.  Recursion depth is bounded by the *level*
          count (every recursive call strictly descends the order), not
          by BDD size.
        * ``iterative`` — explicit-frame loops.  Expand frames are the
          packed computed-table keys themselves; computed-table probes
          are hoisted to push time, so frames are only pushed for cache
          misses; combine frames are small tuples.  No Python recursion
          at any depth.

        :meth:`_select_core` binds the chosen family to ``apply_and`` /
        ``apply_xor`` / ``_exists_core`` / ``_andex_core``.  ``ite`` has
        a single iterative implementation (it is far colder than the
        monotone ops) bound unconditionally.
        """
        computed = self._computed
        subtables = self._subtables
        var_arr = self._var
        lo_arr = self._lo
        hi_arr = self._hi
        var2level = self._var2level
        level2var = self._level2var
        free = self._free
        counters = self._counters
        nb = self._nb
        computed_get = computed.get
        mgr = self
        mk = self._mk  # bound once; self._mk is never rebound
        S = _EDGE_SHIFT
        M = _EDGE_MASK

        # ------------------------------------------------------------- #
        # Recursive fast paths
        # ------------------------------------------------------------- #

        def _and_rec(f: int, g: int) -> int:
            """Conjunction core.  Preconditions: ``f, g >= 2``, ``f != g``,
            ``f ^ g != 1`` (callers resolve those inline)."""
            if f > g:
                f, g = g, f
            key = (f << S | g) << 4
            r = computed_get(key)
            if r is not None:
                counters[0] += 1
                return r
            lf = var2level[var_arr[f]]
            lg = var2level[var_arr[g]]
            # Three-way top-level split: each branch only performs the
            # terminal checks its cofactor shapes can actually produce.
            if lf < lg:
                var = var_arr[f]
                f0, f1 = lo_arr[f], hi_arr[f]
                if f0 == g:
                    lo = f0
                elif f0 == 1:
                    lo = g
                elif f0 == 0 or f0 ^ g == 1:
                    lo = 0
                else:
                    lo = _and_rec(f0, g)
                if f1 == g:
                    hi = f1
                elif f1 == 1:
                    hi = g
                elif f1 == 0 or f1 ^ g == 1:
                    hi = 0
                else:
                    hi = _and_rec(f1, g)
            elif lg < lf:
                var = var_arr[g]
                g0, g1 = lo_arr[g], hi_arr[g]
                if g0 == f or g0 == 1:
                    lo = f if g0 == 1 else g0
                elif g0 == 0 or g0 ^ f == 1:
                    lo = 0
                else:
                    lo = _and_rec(f, g0)
                if g1 == f or g1 == 1:
                    hi = f if g1 == 1 else g1
                elif g1 == 0 or g1 ^ f == 1:
                    hi = 0
                else:
                    hi = _and_rec(f, g1)
            else:
                var = var_arr[f]
                f0, f1 = lo_arr[f], hi_arr[f]
                g0, g1 = lo_arr[g], hi_arr[g]
                if f0 == g0 or g0 == 1:
                    lo = f0
                elif f0 == 1:
                    lo = g0
                elif f0 == 0 or g0 == 0 or f0 ^ g0 == 1:
                    lo = 0
                else:
                    lo = _and_rec(f0, g0)
                if f1 == g1 or g1 == 1:
                    hi = f1
                elif f1 == 1:
                    hi = g1
                elif f1 == 0 or g1 == 0 or f1 ^ g1 == 1:
                    hi = 0
                else:
                    hi = _and_rec(f1, g1)
            # Inlined _mk (this is the hottest path in the kernel).
            if lo == hi:
                r = lo
            else:
                negate = hi & 1
                if negate:
                    lo ^= 1
                    hi ^= 1
                sub = subtables[var]
                ukey = lo << S | hi
                edge = sub.get(ukey)
                if edge is not None:
                    counters[2] += 1
                    r = edge | negate
                elif free:
                    # Freed slots exist: take the full (recycling) path.
                    r = mgr._mk_new(var, sub, ukey, lo, hi) | negate
                else:
                    live = nb[0]
                    if live >= nb[1]:
                        raise BddNodeLimit(mgr.max_nodes)
                    edge = len(var_arr)
                    var_arr.append(var)
                    var_arr.append(var)
                    lo_arr.append(lo)
                    lo_arr.append(lo ^ 1)
                    hi_arr.append(hi)
                    hi_arr.append(hi ^ 1)
                    sub[ukey] = edge
                    nb[0] = live + 1
                    r = edge | negate
            computed[key] = r
            return r

        def apply_and_rec(f: int, g: int) -> int:
            """Conjunction (recursive fast path; see ``_bind_hot_ops``)."""
            if f == g:
                return f
            if f < 2 or g < 2:
                if f == 0 or g == 0:
                    return 0
                return g if f == 1 else f
            if f ^ g == 1:
                return 0
            return _and_rec(f, g)

        def _xor_rec(f: int, g: int) -> int:
            """XOR core.  Preconditions: both regular, distinct,
            non-terminal, ``f < g``."""
            key = (f << S | g) << 4 | 1
            r = computed_get(key)
            if r is not None:
                counters[0] += 1
                return r
            lf = var2level[var_arr[f]]
            lg = var2level[var_arr[g]]
            if lf <= lg:
                var = var_arr[f]
                f0, f1 = lo_arr[f], hi_arr[f]
            else:
                var = var_arr[g]
                f0 = f1 = f
            if lg <= lf:
                g0, g1 = lo_arr[g], hi_arr[g]
            else:
                g0 = g1 = g
            # Complement bits are factored out at the call sites, so all
            # four polarities of a pair share one computed-table entry.
            s0 = (f0 ^ g0) & 1
            a = f0 & -2
            b = g0 & -2
            if a == b:
                lo = s0
            elif a == 0:
                lo = b ^ s0
            elif b == 0:
                lo = a ^ s0
            elif a < b:
                lo = _xor_rec(a, b) ^ s0
            else:
                lo = _xor_rec(b, a) ^ s0
            s1 = (f1 ^ g1) & 1
            a = f1 & -2
            b = g1 & -2
            if a == b:
                hi = s1
            elif a == 0:
                hi = b ^ s1
            elif b == 0:
                hi = a ^ s1
            elif a < b:
                hi = _xor_rec(a, b) ^ s1
            else:
                hi = _xor_rec(b, a) ^ s1
            # Inlined _mk (same shape as the AND core's allocation path).
            if lo == hi:
                r = lo
            else:
                negate = hi & 1
                if negate:
                    lo ^= 1
                    hi ^= 1
                sub = subtables[var]
                ukey = lo << S | hi
                edge = sub.get(ukey)
                if edge is not None:
                    counters[2] += 1
                    r = edge | negate
                elif free:
                    r = mgr._mk_new(var, sub, ukey, lo, hi) | negate
                else:
                    live = nb[0]
                    if live >= nb[1]:
                        raise BddNodeLimit(mgr.max_nodes)
                    edge = len(var_arr)
                    var_arr.append(var)
                    var_arr.append(var)
                    lo_arr.append(lo)
                    lo_arr.append(lo ^ 1)
                    hi_arr.append(hi)
                    hi_arr.append(hi ^ 1)
                    sub[ukey] = edge
                    nb[0] = live + 1
                    r = edge | negate
            computed[key] = r
            return r

        def apply_xor_rec(f: int, g: int) -> int:
            """Exclusive or (recursive fast path)."""
            sign = (f ^ g) & 1
            f &= -2
            g &= -2
            if f == g:
                return sign
            if f == 0:
                return g ^ sign
            if g == 0:
                return f ^ sign
            if f > g:
                f, g = g, f
            return _xor_rec(f, g) ^ sign

        def exists_rec(
            f: int, levels: tuple[int, ...], sids: list[int], li: int
        ) -> int:
            """Existential quantification core (recursive fast path)."""
            if f < 2:
                return f
            top = var2level[var_arr[f]]
            # Drop quantified levels strictly above the top of f.
            n = len(levels)
            while li < n and levels[li] < top:
                li += 1
            if li == n:
                return f
            key = (f << S | sids[li]) << 4 | 3
            r = computed_get(key)
            if r is not None:
                counters[0] += 1
                return r
            lo, hi = lo_arr[f], hi_arr[f]
            if levels[li] == top:
                r0 = exists_rec(lo, levels, sids, li + 1)
                if r0 == 1:
                    r = 1
                else:
                    r1 = exists_rec(hi, levels, sids, li + 1)
                    r = apply_and_rec(r0 ^ 1, r1 ^ 1) ^ 1
            else:
                r = mk(
                    var_arr[f],
                    exists_rec(lo, levels, sids, li),
                    exists_rec(hi, levels, sids, li),
                )
            computed[key] = r
            return r

        def andex_rec(
            f: int, g: int, levels: tuple[int, ...], sids: list[int], li: int
        ) -> int:
            """Fused ``∃ . (f ∧ g)`` core (recursive fast path).

            The conjunction is never materialised above the quantified
            levels, and a TRUE else-branch short-circuits the then-branch
            of every quantified node — the monotone-op short-circuit that
            makes the partitioned image fold cheap.
            """
            if f == g:
                return exists_rec(f, levels, sids, li)
            if f < 2 or g < 2:
                if f == 0 or g == 0:
                    return 0
                return exists_rec(g if f == 1 else f, levels, sids, li)
            if f ^ g == 1:
                return 0
            lf = var2level[var_arr[f]]
            lg = var2level[var_arr[g]]
            top = lf if lf < lg else lg
            n = len(levels)
            while li < n and levels[li] < top:
                li += 1
            if li == n:
                return apply_and_rec(f, g)
            if f > g:
                f, g, lf, lg = g, f, lg, lf
            key = ((f << S | g) << S | sids[li]) << 4 | 4
            r = computed_get(key)
            if r is not None:
                counters[0] += 1
                return r
            if lf <= lg:
                f0, f1 = lo_arr[f], hi_arr[f]
            else:
                f0 = f1 = f
            if lg <= lf:
                g0, g1 = lo_arr[g], hi_arr[g]
            else:
                g0 = g1 = g
            if levels[li] == top:
                r0 = andex_rec(f0, g0, levels, sids, li + 1)
                if r0 == 1:
                    r = 1
                else:
                    r1 = andex_rec(f1, g1, levels, sids, li + 1)
                    r = apply_and_rec(r0 ^ 1, r1 ^ 1) ^ 1
            else:
                r = mk(
                    level2var[top],
                    andex_rec(f0, g0, levels, sids, li),
                    andex_rec(f1, g1, levels, sids, li),
                )
            computed[key] = r
            return r

        # ------------------------------------------------------------- #
        # Iterative explicit-frame core
        # ------------------------------------------------------------- #
        #
        # Frame protocol (shared by the binary ops): the work stack holds
        # either a packed computed-table key (int) — an *expand* frame
        # for a pair that missed the cache at push time — or a tuple
        # *combine* frame.  Results travel on a separate result stack;
        # ``-1`` child slots in a combine frame mean "pop from the result
        # stack" (children are pushed hi-first, so lo completes first and
        # pops last).  Probing at push time keeps cache hits frame-free.

        def apply_and_iter(f: int, g: int) -> int:
            """Conjunction (iterative explicit-frame core)."""
            if f == g:
                return f
            if f < 2 or g < 2:
                if f == 0 or g == 0:
                    return 0
                return g if f == 1 else f
            if f ^ g == 1:
                return 0
            if f > g:
                f, g = g, f
            key = (f << S | g) << 4
            r = computed_get(key)
            if r is not None:
                counters[0] += 1
                return r
            stack = [key]
            pop = stack.pop
            push = stack.append
            rstack: list[int] = []
            rpush = rstack.append
            rpop = rstack.pop
            while stack:
                top = pop()
                if type(top) is int:
                    # Expand frame: the packed key itself.  Re-probe — a
                    # sibling subtree may have computed it meanwhile.
                    r = computed_get(top)
                    if r is not None:
                        counters[0] += 1
                        rpush(r)
                        continue
                    f = top >> (S + 4)
                    g = (top >> 4) & M
                    lf = var2level[var_arr[f]]
                    lg = var2level[var_arr[g]]
                    if lf <= lg:
                        var = var_arr[f]
                        f0, f1 = lo_arr[f], hi_arr[f]
                    else:
                        var = var_arr[g]
                        f0 = f1 = f
                    if lg <= lf:
                        g0, g1 = lo_arr[g], hi_arr[g]
                    else:
                        g0 = g1 = g
                    lkey = hkey = 0
                    if f0 == g0 or g0 == 1:
                        lo = f0
                    elif f0 == 1:
                        lo = g0
                    elif f0 == 0 or g0 == 0 or f0 ^ g0 == 1:
                        lo = 0
                    else:
                        if f0 > g0:
                            lkey = (g0 << S | f0) << 4
                        else:
                            lkey = (f0 << S | g0) << 4
                        lo = computed_get(lkey)
                        if lo is None:
                            lo = -1
                        else:
                            counters[0] += 1
                    if f1 == g1 or g1 == 1:
                        hi = f1
                    elif f1 == 1:
                        hi = g1
                    elif f1 == 0 or g1 == 0 or f1 ^ g1 == 1:
                        hi = 0
                    else:
                        if f1 > g1:
                            hkey = (g1 << S | f1) << 4
                        else:
                            hkey = (f1 << S | g1) << 4
                        hi = computed_get(hkey)
                        if hi is None:
                            hi = -1
                        else:
                            counters[0] += 1
                    if lo >= 0 and hi >= 0:
                        r = mk(var, lo, hi)
                        computed[top] = r
                        rpush(r)
                        continue
                    push((top, var, lo, hi))
                    if hi < 0:
                        push(hkey)
                    if lo < 0:
                        push(lkey)
                else:
                    key, var, lo, hi = top
                    if hi < 0:
                        hi = rpop()
                    if lo < 0:
                        lo = rpop()
                    r = mk(var, lo, hi)
                    computed[key] = r
                    rpush(r)
            return rstack[0]

        def apply_xor_iter(f: int, g: int) -> int:
            """Exclusive or (iterative explicit-frame core)."""
            sign = (f ^ g) & 1
            f &= -2
            g &= -2
            if f == g:
                return sign
            if f == 0:
                return g ^ sign
            if g == 0:
                return f ^ sign
            if f > g:
                f, g = g, f
            key = (f << S | g) << 4 | 1
            r = computed_get(key)
            if r is not None:
                counters[0] += 1
                return r ^ sign
            stack: list = [key]
            pop = stack.pop
            push = stack.append
            rstack: list[int] = []
            rpush = rstack.append
            rpop = rstack.pop
            while stack:
                top = pop()
                if type(top) is int:
                    r = computed_get(top)
                    if r is not None:
                        counters[0] += 1
                        rpush(r)
                        continue
                    f = top >> (S + 4)
                    g = (top >> 4) & M
                    lf = var2level[var_arr[f]]
                    lg = var2level[var_arr[g]]
                    if lf <= lg:
                        var = var_arr[f]
                        f0, f1 = lo_arr[f], hi_arr[f]
                    else:
                        var = var_arr[g]
                        f0 = f1 = f
                    if lg <= lf:
                        g0, g1 = lo_arr[g], hi_arr[g]
                    else:
                        g0 = g1 = g
                    lkey = hkey = 0
                    s0 = (f0 ^ g0) & 1
                    a = f0 & -2
                    b = g0 & -2
                    if a == b:
                        lo = s0
                    elif a == 0:
                        lo = b ^ s0
                    elif b == 0:
                        lo = a ^ s0
                    else:
                        if a > b:
                            a, b = b, a
                        lkey = (a << S | b) << 4 | 1
                        lo = computed_get(lkey)
                        if lo is None:
                            lo = -1
                        else:
                            counters[0] += 1
                            lo ^= s0
                    s1 = (f1 ^ g1) & 1
                    a = f1 & -2
                    b = g1 & -2
                    if a == b:
                        hi = s1
                    elif a == 0:
                        hi = b ^ s1
                    elif b == 0:
                        hi = a ^ s1
                    else:
                        if a > b:
                            a, b = b, a
                        hkey = (a << S | b) << 4 | 1
                        hi = computed_get(hkey)
                        if hi is None:
                            hi = -1
                        else:
                            counters[0] += 1
                            hi ^= s1
                    if lo >= 0 and hi >= 0:
                        r = mk(var, lo, hi)
                        computed[top] = r
                        rpush(r)
                        continue
                    push((top, var, lo, hi, s0, s1))
                    if hi < 0:
                        push(hkey)
                    if lo < 0:
                        push(lkey)
                else:
                    key, var, lo, hi, s0, s1 = top
                    if hi < 0:
                        hi = rpop() ^ s1
                    if lo < 0:
                        lo = rpop() ^ s0
                    r = mk(var, lo, hi)
                    computed[key] = r
                    rpush(r)
            return rstack[0] ^ sign

        def exists_iter(
            f: int, levels: tuple[int, ...], sids: list[int], li: int
        ) -> int:
            """Existential quantification (iterative core).

            Frames: ``(0, f, li)`` expand; ``(1, key, f1, li)`` inspect
            the else-result and short-circuit on TRUE before the
            then-branch is even pushed; ``(2, key, var)`` rebuild a
            non-quantified node; ``(3, key, r0)`` OR-combine.
            """
            n = len(levels)
            stack: list[tuple] = [(0, f, li)]
            pop = stack.pop
            push = stack.append
            rstack: list[int] = []
            rpush = rstack.append
            rpop = rstack.pop
            while stack:
                fr = pop()
                tag = fr[0]
                if tag == 0:
                    f = fr[1]
                    li = fr[2]
                    if f < 2:
                        rpush(f)
                        continue
                    top = var2level[var_arr[f]]
                    while li < n and levels[li] < top:
                        li += 1
                    if li == n:
                        rpush(f)
                        continue
                    key = (f << S | sids[li]) << 4 | 3
                    r = computed_get(key)
                    if r is not None:
                        counters[0] += 1
                        rpush(r)
                        continue
                    if levels[li] == top:
                        push((1, key, hi_arr[f], li + 1))
                        push((0, lo_arr[f], li + 1))
                    else:
                        push((2, key, var_arr[f]))
                        push((0, hi_arr[f], li))
                        push((0, lo_arr[f], li))
                elif tag == 1:
                    r0 = rpop()
                    if r0 == 1:
                        computed[fr[1]] = 1
                        rpush(1)
                    else:
                        push((3, fr[1], r0))
                        push((0, fr[2], fr[3]))
                elif tag == 2:
                    hi = rpop()
                    lo = rpop()
                    r = mk(fr[2], lo, hi)
                    computed[fr[1]] = r
                    rpush(r)
                else:
                    r1 = rpop()
                    r = apply_and_iter(fr[2] ^ 1, r1 ^ 1) ^ 1
                    computed[fr[1]] = r
                    rpush(r)
            return rstack[0]

        def andex_iter(
            f: int, g: int, levels: tuple[int, ...], sids: list[int], li: int
        ) -> int:
            """Fused ``∃ . (f ∧ g)`` (iterative core); same frame scheme
            as ``exists_iter`` with pairwise expand frames."""
            n = len(levels)
            stack: list[tuple] = [(0, f, g, li)]
            pop = stack.pop
            push = stack.append
            rstack: list[int] = []
            rpush = rstack.append
            rpop = rstack.pop
            while stack:
                fr = pop()
                tag = fr[0]
                if tag == 0:
                    f = fr[1]
                    g = fr[2]
                    li = fr[3]
                    if f == g:
                        rpush(exists_iter(f, levels, sids, li))
                        continue
                    if f < 2 or g < 2:
                        if f == 0 or g == 0:
                            rpush(0)
                        else:
                            rpush(exists_iter(g if f == 1 else f, levels, sids, li))
                        continue
                    if f ^ g == 1:
                        rpush(0)
                        continue
                    lf = var2level[var_arr[f]]
                    lg = var2level[var_arr[g]]
                    top = lf if lf < lg else lg
                    while li < n and levels[li] < top:
                        li += 1
                    if li == n:
                        rpush(apply_and_iter(f, g))
                        continue
                    if f > g:
                        f, g, lf, lg = g, f, lg, lf
                    key = ((f << S | g) << S | sids[li]) << 4 | 4
                    r = computed_get(key)
                    if r is not None:
                        counters[0] += 1
                        rpush(r)
                        continue
                    if lf <= lg:
                        f0, f1 = lo_arr[f], hi_arr[f]
                    else:
                        f0 = f1 = f
                    if lg <= lf:
                        g0, g1 = lo_arr[g], hi_arr[g]
                    else:
                        g0 = g1 = g
                    if levels[li] == top:
                        push((1, key, f1, g1, li + 1))
                        push((0, f0, g0, li + 1))
                    else:
                        push((2, key, level2var[top]))
                        push((0, f1, g1, li))
                        push((0, f0, g0, li))
                elif tag == 1:
                    r0 = rpop()
                    if r0 == 1:
                        computed[fr[1]] = 1
                        rpush(1)
                    else:
                        push((3, fr[1], r0))
                        push((0, fr[2], fr[3], fr[4]))
                elif tag == 2:
                    hi = rpop()
                    lo = rpop()
                    r = mk(fr[2], lo, hi)
                    computed[fr[1]] = r
                    rpush(r)
                else:
                    r1 = rpop()
                    r = apply_and_iter(fr[2] ^ 1, r1 ^ 1) ^ 1
                    computed[fr[1]] = r
                    rpush(r)
            return rstack[0]

        def ite_iter(f: int, g: int, h: int) -> int:
            """If-then-else ``(f ∧ g) ∨ (¬f ∧ h)`` (iterative; the single
            implementation — ite is far colder than the monotone ops).

            Standard complement-edge normalisation at every expand frame:
            the condition and then-branch are made regular and constant
            branches delegate to AND so they share its cache entries.
            """
            stack: list[tuple] = [(0, f, g, h)]
            pop = stack.pop
            push = stack.append
            rstack: list[int] = []
            rpush = rstack.append
            rpop = rstack.pop
            apply_and = mgr.apply_and
            while stack:
                fr = pop()
                if fr[0] == 0:
                    f = fr[1]
                    g = fr[2]
                    h = fr[3]
                    if f == TRUE:
                        rpush(g)
                        continue
                    if f == FALSE:
                        rpush(h)
                        continue
                    if g == f:
                        g = TRUE
                    elif g == f ^ 1:
                        g = FALSE
                    if h == f:
                        h = FALSE
                    elif h == f ^ 1:
                        h = TRUE
                    if g == h:
                        rpush(g)
                        continue
                    if g == TRUE:
                        if h == FALSE:
                            rpush(f)
                        else:
                            rpush(apply_and(f ^ 1, h ^ 1) ^ 1)
                        continue
                    if g == FALSE:
                        if h == TRUE:
                            rpush(f ^ 1)
                        else:
                            rpush(apply_and(f ^ 1, h))
                        continue
                    if h == FALSE:
                        rpush(apply_and(f, g))
                        continue
                    if h == TRUE:
                        rpush(apply_and(f, g ^ 1) ^ 1)
                        continue
                    sign = 0
                    if f & 1:
                        f ^= 1
                        g, h = h, g
                    if g & 1:
                        sign = 1
                        g ^= 1
                        h ^= 1
                    key = ((f << S | g) << S | h) << 4 | 2
                    r = computed_get(key)
                    if r is not None:
                        counters[0] += 1
                        rpush(r ^ sign)
                        continue
                    lf = var2level[var_arr[f]]
                    lg = var2level[var_arr[g]]
                    lh = var2level[var_arr[h]]
                    top = lf if lf < lg else lg
                    if lh < top:
                        top = lh
                    if lf == top:
                        f0, f1 = lo_arr[f], hi_arr[f]
                    else:
                        f0 = f1 = f
                    if lg == top:
                        g0, g1 = lo_arr[g], hi_arr[g]
                    else:
                        g0 = g1 = g
                    if lh == top:
                        h0, h1 = lo_arr[h], hi_arr[h]
                    else:
                        h0 = h1 = h
                    push((1, key, level2var[top], sign))
                    push((0, f1, g1, h1))
                    push((0, f0, g0, h0))
                else:
                    hi = rpop()
                    lo = rpop()
                    r = mk(fr[2], lo, hi)
                    computed[fr[1]] = r
                    rpush(r ^ fr[3])
            return rstack[0]

        self.ite = ite_iter
        self._cores = {
            "recursive": (apply_and_rec, apply_xor_rec, exists_rec, andex_rec),
            "iterative": (apply_and_iter, apply_xor_iter, exists_iter, andex_iter),
        }

    # ------------------------------------------------------------------ #
    # Quantification and the relational product
    # ------------------------------------------------------------------ #

    def quant_set(self, variables: Iterable[int]) -> QuantSet:
        """Intern a quantification variable set for repeated use.

        The returned :class:`QuantSet` caches the sorted level tuple and
        interned suffix ids, revalidating lazily when the variable order
        changes.  Image plans and fixpoint loops that quantify the same
        set thousands of times should build one of these once.
        """
        return QuantSet(self, variables)

    def _levels_key(self, variables: Iterable[int]) -> tuple[int, ...]:
        """Canonical (sorted, deduplicated) level tuple for a var set."""
        return tuple(sorted({self._var2level[v] for v in variables}))

    def _suffix_ids(self, levels: tuple[int, ...]) -> list[int]:
        """Interned ids for every suffix of a quantification level tuple.

        Quantification recursions walk suffixes of the level tuple;
        interning them once per distinct set turns the computed-table keys
        into small ints and removes all per-call tuple slicing.  Suffixes
        are interned (not whole tuples), so ``exists(f, {a, b})`` still
        shares its tail work with ``exists(f, {b})``.
        """
        ids = self._suffix_cache.get(levels)
        if ids is None:
            intern = self._levels_intern
            ids = []
            for i in range(len(levels)):
                suffix = levels[i:]
                sid = intern.get(suffix)
                if sid is None:
                    sid = len(intern)
                    intern[suffix] = sid
                ids.append(sid)
            self._suffix_cache[levels] = ids
        return ids

    def _quant_args(
        self, variables: Iterable[int] | QuantSet
    ) -> tuple[tuple[int, ...], list[int]]:
        """Resolve a variable collection to ``(levels, suffix_ids)``."""
        if type(variables) is QuantSet:
            return variables._resolve()
        levels = self._levels_key(variables)
        if not levels:
            return levels, []
        return levels, self._suffix_ids(levels)

    def exists(self, f: int, variables: Iterable[int] | QuantSet) -> int:
        """Existential quantification of ``variables`` (indices) from ``f``.

        ``variables`` may be any iterable of variable indices or a
        pre-interned :meth:`quant_set`.
        """
        levels, sids = self._quant_args(variables)
        if not levels:
            return f
        return self._exists_core(f, levels, sids, 0)

    def forall(self, f: int, variables: Iterable[int] | QuantSet) -> int:
        """Universal quantification of ``variables`` (indices) from ``f``."""
        return self.exists(f ^ 1, variables) ^ 1

    def and_exists(
        self, f: int, g: int, variables: Iterable[int] | QuantSet
    ) -> int:
        """Fused relational product ``∃ variables . (f ∧ g)``.

        This is the core primitive of image computation: the conjunction is
        never materialised above the quantified variables, which is what
        makes partitioned image computation feasible.  ``variables`` may
        be a plain iterable or a pre-interned :meth:`quant_set`.
        """
        levels, sids = self._quant_args(variables)
        if not levels:
            return self.apply_and(f, g)
        return self._andex_core(f, g, levels, sids, 0)

    # ------------------------------------------------------------------ #
    # Cofactor, composition, renaming
    # ------------------------------------------------------------------ #

    def restrict(self, f: int, var: int, value: bool | int) -> int:
        """Cofactor of ``f`` with respect to ``var = value``.

        Iterative (explicit stack): safe at any BDD depth.  Cofactoring
        commutes with negation, so both polarities of every sub-DAG
        share one cache entry (the sign is stripped per frame).
        """
        val = 1 if value else 0
        target = self._var2level[var]
        computed = self._computed
        counters = self._counters
        var_arr, lo_arr, hi_arr = self._var, self._lo, self._hi
        var2level = self._var2level
        stack: list[tuple] = [(0, f)]
        rstack: list[int] = []
        while stack:
            fr = stack.pop()
            if fr[0] == 0:
                f = fr[1]
                if f < 2 or var2level[var_arr[f]] > target:
                    rstack.append(f)
                    continue
                sign = f & 1
                f ^= sign
                if var_arr[f] == var:
                    rstack.append((hi_arr[f] if val else lo_arr[f]) ^ sign)
                    continue
                key = ((f << _EDGE_SHIFT | var) << 1 | val) << 4 | _OP_RESTRICT
                r = computed.get(key)
                if r is not None:
                    counters[0] += 1
                    rstack.append(r ^ sign)
                    continue
                stack.append((1, key, var_arr[f], sign))
                stack.append((0, hi_arr[f]))
                stack.append((0, lo_arr[f]))
            else:
                hi = rstack.pop()
                lo = rstack.pop()
                r = self._mk(fr[2], lo, hi)
                computed[fr[1]] = r
                rstack.append(r ^ fr[3])
        return rstack[0]

    def cofactor_cube(self, f: int, assignment: Mapping[int, bool | int]) -> int:
        """Cofactor with respect to several ``var -> value`` bindings."""
        for var, val in sorted(assignment.items(), key=lambda kv: self._var2level[kv[0]]):
            f = self.restrict(f, var, val)
        return f

    def constrain(self, f: int, c: int) -> int:
        """Generalised cofactor (Coudert-Madre constrain operator).

        Returns a function that agrees with ``f`` everywhere ``c`` holds
        (``constrain(f,c) ∧ c == f ∧ c``) and is typically smaller than
        ``f`` — the classic image-computation simplification: the
        transition parts can be constrained by the current frontier.
        ``c`` must not be FALSE.  Iterative; safe at any depth.
        """
        if c == FALSE:
            raise BddError("constrain by the FALSE function")
        if c == TRUE or f < 2:
            return f
        computed = self._computed
        counters = self._counters
        var_arr, lo_arr, hi_arr = self._var, self._lo, self._hi
        var2level = self._var2level
        level2var = self._level2var
        stack: list[tuple] = [(0, f, c)]
        rstack: list[int] = []
        while stack:
            fr = stack.pop()
            tag = fr[0]
            if tag == 0:
                f = fr[1]
                c = fr[2]
                if c == TRUE or f < 2:
                    rstack.append(f)
                    continue
                if f == c:
                    rstack.append(TRUE)
                    continue
                if f == c ^ 1:
                    rstack.append(FALSE)
                    continue
                # Constrain commutes with negation of f (it composes f
                # with a mapping that depends only on c).
                sign = f & 1
                f ^= sign
                key = (f << _EDGE_SHIFT | c) << 4 | _OP_CONSTRAIN
                r = computed.get(key)
                if r is not None:
                    counters[0] += 1
                    rstack.append(r ^ sign)
                    continue
                lf = var2level[var_arr[f]]
                lc = var2level[var_arr[c]]
                top = lf if lf < lc else lc
                if lf == top:
                    f0, f1 = lo_arr[f], hi_arr[f]
                else:
                    f0 = f1 = f
                if lc == top:
                    c0, c1 = lo_arr[c], hi_arr[c]
                else:
                    c0 = c1 = c
                if c0 == FALSE:
                    stack.append((2, key, sign))
                    stack.append((0, f1, c1))
                elif c1 == FALSE:
                    stack.append((2, key, sign))
                    stack.append((0, f0, c0))
                else:
                    stack.append((1, key, level2var[top], sign))
                    stack.append((0, f1, c1))
                    stack.append((0, f0, c0))
            elif tag == 1:
                hi = rstack.pop()
                lo = rstack.pop()
                r = self._mk(fr[2], lo, hi)
                computed[fr[1]] = r
                rstack.append(r ^ fr[3])
            else:
                r = rstack.pop()
                computed[fr[1]] = r
                rstack.append(r ^ fr[2])
        return rstack[0]

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` in ``f``.

        Iterative walk of ``f`` down to ``var``'s level; the recombination
        runs through :meth:`ite` (itself iterative), so composition is
        safe at any depth.
        """
        target = self._var2level[var]
        computed = self._computed
        counters = self._counters
        var_arr, lo_arr, hi_arr = self._var, self._lo, self._hi
        var2level = self._var2level
        stack: list[tuple] = [(0, f)]
        rstack: list[int] = []
        while stack:
            fr = stack.pop()
            if fr[0] == 0:
                f = fr[1]
                if f < 2 or var2level[var_arr[f]] > target:
                    rstack.append(f)
                    continue
                sign = f & 1
                f ^= sign
                key = ((f << _EDGE_SHIFT | g) << _EDGE_SHIFT | var) << 4 | _OP_COMPOSE
                r = computed.get(key)
                if r is not None:
                    counters[0] += 1
                    rstack.append(r ^ sign)
                    continue
                if var_arr[f] == var:
                    r = self.ite(g, hi_arr[f], lo_arr[f])
                    computed[key] = r
                    rstack.append(r ^ sign)
                    continue
                stack.append((1, key, var_arr[f], sign))
                stack.append((0, hi_arr[f]))
                stack.append((0, lo_arr[f]))
            else:
                c1 = rstack.pop()
                c0 = rstack.pop()
                r = self.ite(self.var_node(fr[2]), c1, c0)
                computed[fr[1]] = r
                rstack.append(r ^ fr[3])
        return rstack[0]

    def vector_compose(self, f: int, substitution: Mapping[int, int]) -> int:
        """Simultaneously substitute ``substitution[var]`` for each var.

        Implemented by introducing the substitutions bottom-up, which is
        correct because each single :meth:`compose` removes its variable.
        Simultaneity holds when the substituted functions do not mention
        the substituted variables; that is asserted.
        """
        sub_vars = set(substitution)
        for g in substitution.values():
            if self.support(g) & sub_vars:
                raise BddError(
                    "vector_compose requires substitutions independent of substituted vars"
                )
        for var in sorted(sub_vars, key=lambda v: self._var2level[v], reverse=True):
            f = self.compose(f, var, substitution[var])
        return f

    def rename(self, f: int, var_map: Mapping[int, int]) -> int:
        """Rename variables of ``f`` according to ``var_map`` (old -> new).

        Uses a fast structural rebuild when the mapping preserves the
        variable order; otherwise falls back to the quantification-based
        method (which requires the new variables to be absent from the
        support of ``f``).  Both paths are iterative.
        """
        relevant = {old: new for old, new in var_map.items() if old != new}
        if not relevant or f < 2:
            return f
        sign = f & 1
        f ^= sign
        map_key = tuple(sorted(relevant.items()))
        intern = self._rename_intern
        mid = intern.get(map_key)
        if mid is None:
            mid = len(intern)
            intern[map_key] = mid
        key = (f << _EDGE_SHIFT | mid) << 4 | _OP_RENAME
        r = self._computed.get(key)
        if r is not None:
            self._counters[0] += 1
            return r ^ sign
        olds = sorted(relevant, key=lambda v: self._var2level[v])
        news = [relevant[v] for v in olds]
        new_levels = [self._var2level[v] for v in news]
        order_ok = all(new_levels[i] < new_levels[i + 1] for i in range(len(news) - 1))
        if order_ok:
            try:
                r = self._rename_struct(f, relevant)
            except BddOrderError:
                r = self._rename_general(f, relevant)
        else:
            r = self._rename_general(f, relevant)
        self._computed[key] = r
        return r ^ sign

    def _rename_struct(self, f: int, var_map: Mapping[int, int]) -> int:
        """Structural rebuild rename (iterative postorder with memo).

        Raises :class:`~repro.errors.BddOrderError` as soon as a rebuilt
        node would violate the variable order.
        """
        var_arr, lo_arr, hi_arr = self._var, self._lo, self._hi
        var2level = self._var2level
        memo: dict[int, int] = {}
        stack: list[tuple[int, int]] = [(0, f)]
        rstack: list[int] = []
        while stack:
            tag, e = stack.pop()
            if tag == 0:
                if e < 2:
                    rstack.append(e)
                    continue
                r = memo.get(e)
                if r is not None:
                    rstack.append(r)
                    continue
                stack.append((1, e))
                stack.append((0, hi_arr[e]))
                stack.append((0, lo_arr[e]))
            else:
                hi = rstack.pop()
                lo = rstack.pop()
                var = var_map.get(var_arr[e], var_arr[e])
                level = var2level[var]
                if min(self.level(lo), self.level(hi)) <= level:
                    raise BddOrderError("rename does not preserve the variable order")
                r = self._mk(var, lo, hi)
                memo[e] = r
                rstack.append(r)
        return rstack[0]

    def _rename_general(self, f: int, var_map: Mapping[int, int]) -> int:
        support = self.support(f)
        if any(new in support for new in var_map.values()):
            raise BddOrderError(
                "general rename requires target variables absent from the support"
            )
        eq = TRUE
        for old, new in var_map.items():
            eq = self.apply_and(
                eq, self.apply_iff(self.var_node(old), self.var_node(new))
            )
        return self.and_exists(f, eq, list(var_map))

    # ------------------------------------------------------------------ #
    # Garbage collection
    # ------------------------------------------------------------------ #

    def ref(self, f: int) -> int:
        """Pin ``f`` as an external root; returns ``f`` for chaining.

        Referenced edges (and everything reachable from them) survive
        :meth:`collect_garbage`.  Balance with :meth:`deref`, or use the
        :meth:`protect` context manager.
        """
        n = f & -2
        if n:
            extref = self._extref
            extref[n] = extref.get(n, 0) + 1
        return f

    def deref(self, f: int) -> None:
        """Release one external reference to ``f`` (no-op below zero)."""
        n = f & -2
        if n:
            count = self._extref.get(n, 0)
            if count <= 1:
                self._extref.pop(n, None)
            else:
                self._extref[n] = count - 1

    @contextmanager
    def protect(self, *roots: int) -> Iterator["BddManager"]:
        """Context manager pinning ``roots`` for the duration of a block.

        >>> m = BddManager()
        >>> x = m.var_node(m.add_var("x"))
        >>> with m.protect(x):
        ...     _ = m.collect_garbage()
        """
        for f in roots:
            self.ref(f)
        try:
            yield self
        finally:
            for f in roots:
                self.deref(f)

    def should_collect(self) -> bool:
        """Cheap trigger delegating to :attr:`gc_policy`.

        Static policy: live nodes grew past the floor *and* the growth
        factor since the last collection.  Adaptive policy: same test,
        but the floor backs off after consecutive unprofitable sweeps
        (see :class:`~repro.bdd.policy.GcPolicy`).
        """
        return self.gc_policy.should_collect(self._nb[0], self._gc_baseline)

    def collect_garbage(self, roots: Iterable[int] = ()) -> int:
        """Reclaim every node unreachable from refs, ``roots`` or literals.

        Returns the number of reclaimed nodes.  Edges of surviving nodes
        are stable (freed slots are recycled by later ``_mk`` calls), so
        held edges of *live* functions remain valid.  The sweep is
        **level-local**: each per-level subtable is scanned over its live
        entries only (dead slots are never touched), and computed-table
        entries mentioning a dead node are swept before any slot can be
        reused — stale hits are impossible.  Variable literal nodes are
        always kept, so literal edges held by callers can never dangle.

        Every sweep reports its reclaim ratio to :attr:`gc_policy` (which
        may back off the collection floor) and asks :attr:`reorder_policy`
        whether the live structure should be sifted — an unprofitable
        sweep means the *live* BDDs are what is big, and only a better
        variable order shrinks those.  A triggered sift runs in place
        (:func:`repro.bdd.reorder.sift`), so every edge held by a caller
        — including ``roots`` and all pinned references — remains valid.
        """
        with obs_span("gc_sweep", live_before=self._nb[0]) as sweep_span:
            reclaimed = self._collect_garbage(list(roots))
            sweep_span.set(reclaimed=reclaimed, live=self._nb[0])
        return reclaimed

    def _collect_garbage(self, roots: list[int]) -> int:
        nb = self._nb
        live_before = nb[0]
        if live_before > self._peak_live:
            self._peak_live = live_before
        var_arr, lo_arr, hi_arr = self._var, self._lo, self._hi
        marked = bytearray(len(var_arr))
        marked[0] = marked[1] = 1
        stack = list(self._extref)
        stack.extend(roots)
        subtables = self._subtables
        # Literal nodes store canonically as (lo=TRUE, hi=FALSE) — the
        # complement moved onto the returned edge — so their packed
        # subtable key is ``TRUE << _EDGE_SHIFT``.
        lit_key = TRUE << _EDGE_SHIFT
        for sub in subtables:
            lit = sub.get(lit_key)
            if lit is not None:
                stack.append(lit)
        while stack:
            e = stack.pop()
            if marked[e]:
                continue
            e &= -2
            marked[e] = marked[e + 1] = 1
            stack.append(lo_arr[e])
            stack.append(hi_arr[e])
        reclaimed = 0
        free = self._free
        for sub in subtables:
            if not sub:
                continue
            dead = [ukey for ukey, e in sub.items() if not marked[e]]
            if not dead:
                continue
            for ukey in dead:
                e = sub.pop(ukey)
                var_arr[e] = var_arr[e + 1] = _FREE
                free.append(e)
            reclaimed += len(dead)
        if reclaimed:
            nb[0] = live_before - reclaimed
            computed = self._computed
            dead_keys = [
                key
                for key, val in computed.items()
                if not marked[val] or _key_mentions_dead(key, marked)
            ]
            # Swept entries stay counted as past misses (see _counters).
            self._counters[1] += len(dead_keys)
            for key in dead_keys:
                del computed[key]
        self._gc_runs += 1
        self._gc_reclaimed += reclaimed
        self._gc_baseline = nb[0]
        ratio = self.gc_policy.record(live_before, reclaimed)
        self._gc_ratio_sum += ratio
        if self.reorder_policy.should_reorder(nb[0], ratio):
            from repro.bdd.reorder import sift

            policy = self.reorder_policy
            with obs_span("sift", trigger="gc") as sift_span:
                result = sift(
                    self,
                    roots,
                    max_growth=policy.max_growth,
                    max_vars=policy.max_vars,
                )
                sift_span.set(
                    swaps=result.swaps, size_after=result.size_after
                )
            self._reorder_runs += 1
            self._reorder_swaps += result.swaps
            policy.record_reorder(nb[0])
            self._gc_baseline = nb[0]
        return reclaimed

    def maybe_collect_garbage(self, roots: Iterable[int] = ()) -> int:
        """Run :meth:`collect_garbage` iff :meth:`should_collect` is armed."""
        if self.should_collect():
            return self.collect_garbage(roots)
        return 0

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def support(self, f: int) -> set[int]:
        """Set of variable indices ``f`` depends on."""
        seen: set[int] = set()
        result: set[int] = set()
        stack = [f & -2]
        var_arr, lo_arr, hi_arr = self._var, self._lo, self._hi
        while stack:
            n = stack.pop()
            if n == 0 or n in seen:
                continue
            seen.add(n)
            result.add(var_arr[n])
            stack.append(lo_arr[n] & -2)
            stack.append(hi_arr[n] & -2)
        return result

    def size(self, f: int) -> int:
        """Number of internal nodes in the DAG rooted at ``f``.

        With complement edges, a function and its negation share all their
        nodes, so ``size(f) == size(apply_not(f))``.
        """
        return self.size_many([f])

    def size_many(self, roots: Iterable[int]) -> int:
        """Number of distinct internal nodes among several roots."""
        seen: set[int] = set()
        stack = [f & -2 for f in roots]
        lo_arr, hi_arr = self._lo, self._hi
        while stack:
            n = stack.pop()
            if n == 0 or n in seen:
                continue
            seen.add(n)
            stack.append(lo_arr[n] & -2)
            stack.append(hi_arr[n] & -2)
        return len(seen)

    def eval(self, f: int, assignment: Mapping[str, bool | int]) -> bool:
        """Evaluate ``f`` under a name -> value assignment."""
        node = f
        while node >= 2:
            name = self._var_names[self._var[node]]
            node = self._hi[node] if assignment[name] else self._lo[node]
        return node == TRUE

    def eval_vars(self, f: int, assignment: Mapping[int, bool | int]) -> bool:
        """Evaluate ``f`` under a var-index -> value assignment."""
        node = f
        while node >= 2:
            node = self._hi[node] if assignment[self._var[node]] else self._lo[node]
        return node == TRUE

    def cube(self, assignment: Mapping[int, bool | int]) -> int:
        """Build the conjunction of literals given by ``assignment``."""
        f = TRUE
        for var, val in sorted(
            assignment.items(), key=lambda kv: self._var2level[kv[0]], reverse=True
        ):
            lit = self.var_node(var) if val else self.nvar_node(var)
            f = self.apply_and(lit, f)
        return f

    # ------------------------------------------------------------------ #
    # Statistics and maintenance
    # ------------------------------------------------------------------ #

    @property
    def stats(self) -> dict[str, object]:
        """Counter snapshot: table hits/misses, recursion, GC, reordering
        and per-level occupancy.

        ``cache_misses`` (= ``recursive_calls``) is derived: every miss
        stores exactly one computed-table entry, so the count is the
        live entry count plus a compensation cell fed by sweeps, flushes
        and :meth:`reset_stats`.  ``reclaim_ratio_avg`` is the mean
        reclaim ratio over all sweeps so far (1.0 when no sweep has
        run); ``reorder_runs`` / ``reorder_swaps`` count completed sifts
        and the adjacent-level swaps they performed.
        ``nodes_per_level`` lists live node counts from the top of the
        order to the bottom (the terminal is outside all levels);
        ``subtable_count`` is the number of per-level subtables (one per
        declared variable).
        """
        gc_runs = self._gc_runs
        avg_ratio = self._gc_ratio_sum / gc_runs if gc_runs else 1.0
        misses = self._counters[1] + len(self._computed)
        live = self._nb[0]
        return {
            "unique_hits": self._counters[2],
            "cache_hits": self._counters[0],
            # Every cache miss recurses exactly once, so the two coincide.
            "cache_misses": misses,
            "recursive_calls": misses,
            "gc_runs": gc_runs,
            "gc_reclaimed": self._gc_reclaimed,
            "reclaim_ratio_avg": avg_ratio,
            "reorder_runs": self._reorder_runs,
            "reorder_swaps": self._reorder_swaps,
            # The live count only drops at collection points, where the
            # peak is recorded; between them "now" may be the new peak.
            "peak_live_nodes": max(self._peak_live, live),
            "live_nodes": live,
            "nodes_per_level": [
                len(self._subtables[v]) for v in self._level2var
            ],
            "subtable_count": len(self._subtables),
        }

    def nodes_at_level(self, level: int) -> int:
        """Number of live nodes at ``level`` (free with per-level subtables)."""
        return len(self._subtables[self._level2var[level]])

    def cache_hit_rate(self) -> float:
        """Computed-table hit rate over all lookups so far (0.0 when idle)."""
        hits = self._counters[0]
        lookups = hits + self._counters[1] + len(self._computed)
        if not lookups:
            return 0.0
        return hits / lookups

    def reset_stats(self) -> None:
        """Zero all counters (``peak_live_nodes`` restarts at the current
        live count)."""
        self._counters[0] = 0
        # Derived misses restart at zero: compensate away the live entries.
        self._counters[1] = -len(self._computed)
        self._counters[2] = 0
        self._gc_runs = 0
        self._gc_reclaimed = 0
        self._gc_ratio_sum = 0.0
        self._reorder_runs = 0
        self._reorder_swaps = 0
        self._peak_live = self._nb[0]

    def clear_caches(self) -> None:
        """Drop the computed table (the unique subtables are preserved)."""
        self._counters[1] += len(self._computed)
        self._computed.clear()

    def computed_table_size(self) -> int:
        """Number of live computed-table entries."""
        return len(self._computed)

    def sift_now(
        self,
        roots: Iterable[int] = (),
        *,
        max_growth: float = 1.2,
        max_vars: int | None = None,
    ) -> "SiftResult":
        """Run one in-place sifting pass immediately.

        Protocol entry point for explicit reordering (the policy-driven
        path stays inside :meth:`collect_garbage`): delegates to
        :func:`repro.bdd.reorder.sift`, honouring the reorder block
        boundaries and keeping every live edge valid.  Returns the
        :class:`~repro.bdd.reorder.SiftResult`.
        """
        from repro.bdd.reorder import sift

        with obs_span("sift", trigger="explicit") as sift_span:
            result = sift(self, roots, max_growth=max_growth, max_vars=max_vars)
            sift_span.set(swaps=result.swaps, size_after=result.size_after)
        return result

    def dump_nodes(self, roots: Sequence[int]) -> dict:
        """Snapshot the shared DAG of ``roots`` (``repro-bdd-nodes/1``).

        Protocol method delegating to :func:`repro.bdd.io.dump_nodes`;
        every backend emits the same packed-array format, which is what
        makes cross-backend transfer (and the conformance kit's
        edge-for-edge comparison) possible.
        """
        from repro.bdd.io import dump_nodes

        return dump_nodes(self, roots)

    def load_nodes(self, data: Mapping) -> list[int]:
        """Rebuild a snapshot taken by any backend's ``dump_nodes``."""
        from repro.bdd.io import load_nodes

        return load_nodes(self, data)

    def check(self) -> None:
        """Assert the kernel's structural invariants (slow; for tests).

        Verifies, over every live node:

        * canonical form — the stored then-edge is regular (complement
          bits only ever appear on else-edges and external edges);
        * ordering — both children sit at strictly lower levels;
        * reduction — no node has identical children;
        * table consistency — each per-level subtable maps exactly the
          live packed ``(lo, hi)`` pairs of its variable to their edges,
          every live slot appears in its variable's subtable, and the
          mirrored odd slots hold the complement-propagated children;
        * the live count equals the total subtable occupancy + 1.

        Raises :class:`~repro.errors.BddError` on the first violation.
        """
        var_arr, lo_arr, hi_arr = self._var, self._lo, self._hi
        live = 0
        for var, sub in enumerate(self._subtables):
            here = self._var2level[var]
            for ukey, e in sub.items():
                live += 1
                lo = ukey >> _EDGE_SHIFT
                hi = ukey & _EDGE_MASK
                if var_arr[e] != var:
                    raise BddError(f"node {e}: subtable/var mismatch ({var})")
                if hi & 1:
                    raise BddError(f"node {e}: stored then-edge {hi} is complemented")
                if lo == hi:
                    raise BddError(f"node {e}: unreduced (lo == hi == {lo})")
                if lo_arr[e] != lo or hi_arr[e] != hi:
                    raise BddError(f"node {e}: subtable key out of sync")
                for child in (lo, hi):
                    if child >= 2 and self._var2level[var_arr[child & -2]] <= here:
                        raise BddError(f"node {e}: child {child} not below level {here}")
                if var_arr[e + 1] != var or lo_arr[e + 1] != lo ^ 1 or hi_arr[e + 1] != hi ^ 1:
                    raise BddError(f"node {e}: odd-slot mirror out of sync")
        scanned = 0
        for e in range(2, len(var_arr), 2):
            v = var_arr[e]
            if v == _FREE:
                continue
            scanned += 1
            if self._subtables[v].get(lo_arr[e] << _EDGE_SHIFT | hi_arr[e]) != e:
                raise BddError(f"node {e}: missing from its subtable")
        if live != scanned or live + 1 != self._nb[0]:
            raise BddError(
                f"live-count mismatch: subtables {live + 1}, arrays {scanned + 1}, "
                f"tracked {self._nb[0]}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BddManager vars={self.num_vars} nodes={self._nb[0]}>"
