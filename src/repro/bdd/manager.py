"""A shared, reduced, ordered BDD manager (pure Python).

This module replaces the CUDD package the paper relies on.  It implements
the classic shared-ROBDD data structure:

* a *unique table* mapping ``(var, lo, hi)`` triples to node ids, which
  guarantees canonicity (two equivalent functions share one node id);
* *computed tables* (operation caches) for the Boolean connectives,
  quantification, the fused relational product ``and_exists`` (the
  workhorse of image computation), composition and renaming;
* variable *levels* separate from variable *indices*, so the order can be
  changed (see :mod:`repro.bdd.reorder`).

Nodes are plain ``int`` ids; ``0`` is the constant FALSE and ``1`` the
constant TRUE.  All manager methods consume and produce ints, which keeps
the inner loops fast; :class:`repro.bdd.function.Function` offers an
operator-overloaded wrapper for user-facing code.

The manager optionally enforces a node budget (``max_nodes``), raising
:class:`~repro.errors.BddNodeLimit` when exceeded.  The Table 1 harness
uses this to emulate the paper's "CNC" (could not complete) entries.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Mapping, Sequence

from repro.errors import BddError, BddNodeLimit, BddOrderError

#: Node id of the constant FALSE function.
FALSE = 0
#: Node id of the constant TRUE function.
TRUE = 1

#: Sentinel level assigned to the two terminal nodes; compares above all
#: real variable levels.
_TERMINAL_LEVEL = 1 << 60


class BddManager:
    """A shared ROBDD manager.

    Parameters
    ----------
    max_nodes:
        Optional node budget.  When the number of live nodes would exceed
        this, :class:`~repro.errors.BddNodeLimit` is raised.

    Examples
    --------
    >>> m = BddManager()
    >>> a, b = m.add_var("a"), m.add_var("b")
    >>> f = m.apply_and(m.var_node(a), m.var_node(b))
    >>> m.eval(f, {"a": True, "b": True})
    True
    """

    def __init__(self, max_nodes: int | None = None) -> None:
        self.max_nodes = max_nodes
        # Node storage; index 0/1 are the terminals.  Terminal var = -1.
        self._var: list[int] = [-1, -1]
        self._lo: list[int] = [0, 1]
        self._hi: list[int] = [0, 1]
        # Unique table: (var, lo, hi) -> node id.
        self._unique: dict[tuple[int, int, int], int] = {}
        # Variable bookkeeping.
        self._var_names: list[str] = []
        self._name_to_var: dict[str, int] = {}
        self._var2level: list[int] = []
        self._level2var: list[int] = []
        # Computed tables.
        self._not_cache: dict[int, int] = {}
        self._and_cache: dict[tuple[int, int], int] = {}
        self._or_cache: dict[tuple[int, int], int] = {}
        self._xor_cache: dict[tuple[int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._exists_cache: dict[tuple[int, tuple[int, ...]], int] = {}
        self._andex_cache: dict[tuple[int, int, tuple[int, ...]], int] = {}
        self._compose_cache: dict[tuple[int, int, int], int] = {}
        self._rename_cache: dict[tuple[int, tuple[tuple[int, int], ...]], int] = {}
        self._restrict_cache: dict[tuple[int, int, int], int] = {}
        self._constrain_cache: dict[tuple[int, int], int] = {}
        # Statistics.
        self.stats: dict[str, int] = {
            "unique_hits": 0,
            "cache_hits": 0,
            "recursive_calls": 0,
        }

    # ------------------------------------------------------------------ #
    # Variables
    # ------------------------------------------------------------------ #

    def add_var(self, name: str) -> int:
        """Declare a new variable at the bottom of the order.

        Returns the variable *index* (not a node).  Use :meth:`var_node`
        to obtain the BDD of the variable itself.
        """
        if name in self._name_to_var:
            raise BddError(f"variable {name!r} already declared")
        var = len(self._var_names)
        self._var_names.append(name)
        self._name_to_var[name] = var
        self._var2level.append(len(self._level2var))
        self._level2var.append(var)
        return var

    def add_vars(self, names: Iterable[str]) -> list[int]:
        """Declare several variables; returns their indices in order."""
        return [self.add_var(name) for name in names]

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    def var_name(self, var: int) -> str:
        """Name of variable index ``var``."""
        return self._var_names[var]

    def var_index(self, name: str) -> int:
        """Variable index of ``name``; raises ``KeyError`` if undeclared."""
        return self._name_to_var[name]

    def var_level(self, var: int) -> int:
        """Current level (position in the order) of variable ``var``."""
        return self._var2level[var]

    def var_at_level(self, level: int) -> int:
        """Variable index currently sitting at ``level``."""
        return self._level2var[level]

    def var_order(self) -> list[str]:
        """Variable names from the top of the order to the bottom."""
        return [self._var_names[v] for v in self._level2var]

    def set_order(self, names: Sequence[str]) -> None:
        """Set a complete variable order by name (top to bottom).

        All declared variables must be listed exactly once.  Only valid
        while the manager holds no internal nodes (use
        :func:`repro.bdd.reorder.reorder` afterwards).
        """
        if len(self) > 2:
            raise BddError("set_order requires an empty manager; use reorder()")
        if sorted(names) != sorted(self._var_names):
            raise BddError("set_order must mention every declared variable once")
        self._level2var = [self._name_to_var[n] for n in names]
        for level, var in enumerate(self._level2var):
            self._var2level[var] = level

    def var_node(self, var: int) -> int:
        """Node for the positive literal of variable index ``var``."""
        return self._mk(var, FALSE, TRUE)

    def nvar_node(self, var: int) -> int:
        """Node for the negative literal of variable index ``var``."""
        return self._mk(var, TRUE, FALSE)

    def node_var(self, f: int) -> int:
        """Top variable index of node ``f`` (undefined for terminals)."""
        return self._var[f]

    def node_lo(self, f: int) -> int:
        """Low (else) child of node ``f``."""
        return self._lo[f]

    def node_hi(self, f: int) -> int:
        """High (then) child of node ``f``."""
        return self._hi[f]

    def level(self, f: int) -> int:
        """Level of the top variable of ``f`` (terminals compare last)."""
        if f < 2:
            return _TERMINAL_LEVEL
        return self._var2level[self._var[f]]

    # ------------------------------------------------------------------ #
    # Node construction
    # ------------------------------------------------------------------ #

    def _mk(self, var: int, lo: int, hi: int) -> int:
        """Find-or-create the node ``(var, lo, hi)`` (reduction applied)."""
        if lo == hi:
            return lo
        key = (var, lo, hi)
        unique = self._unique
        node = unique.get(key)
        if node is not None:
            self.stats["unique_hits"] += 1
            return node
        if self.max_nodes is not None and len(self._var) >= self.max_nodes:
            raise BddNodeLimit(self.max_nodes)
        node = len(self._var)
        self._var.append(var)
        self._lo.append(lo)
        self._hi.append(hi)
        unique[key] = node
        return node

    def __len__(self) -> int:
        """Total number of nodes ever created (including terminals)."""
        return len(self._var)

    @property
    def num_nodes(self) -> int:
        """Total number of nodes in the manager (including terminals)."""
        return len(self._var)

    # ------------------------------------------------------------------ #
    # Core connectives
    # ------------------------------------------------------------------ #

    def apply_not(self, f: int) -> int:
        """Negation, with a permanent memo table."""
        if f == FALSE:
            return TRUE
        if f == TRUE:
            return FALSE
        cache = self._not_cache
        r = cache.get(f)
        if r is not None:
            return r
        r = self._mk(self._var[f], self.apply_not(self._lo[f]), self.apply_not(self._hi[f]))
        cache[f] = r
        cache[r] = f
        return r

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction."""
        if f == g:
            return f
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE:
            return f
        if f > g:
            f, g = g, f
        key = (f, g)
        r = self._and_cache.get(key)
        if r is not None:
            self.stats["cache_hits"] += 1
            return r
        self.stats["recursive_calls"] += 1
        lf, lg = self.level(f), self.level(g)
        if lf <= lg:
            var = self._var[f]
            f0, f1 = self._lo[f], self._hi[f]
        else:
            var = self._var[g]
            f0 = f1 = f
        if lg <= lf:
            g0, g1 = self._lo[g], self._hi[g]
        else:
            g0 = g1 = g
        r = self._mk(var, self.apply_and(f0, g0), self.apply_and(f1, g1))
        self._and_cache[key] = r
        return r

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction."""
        if f == g:
            return f
        if f == TRUE or g == TRUE:
            return TRUE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f > g:
            f, g = g, f
        key = (f, g)
        r = self._or_cache.get(key)
        if r is not None:
            self.stats["cache_hits"] += 1
            return r
        self.stats["recursive_calls"] += 1
        lf, lg = self.level(f), self.level(g)
        if lf <= lg:
            var = self._var[f]
            f0, f1 = self._lo[f], self._hi[f]
        else:
            var = self._var[g]
            f0 = f1 = f
        if lg <= lf:
            g0, g1 = self._lo[g], self._hi[g]
        else:
            g0 = g1 = g
        r = self._mk(var, self.apply_or(f0, g0), self.apply_or(f1, g1))
        self._or_cache[key] = r
        return r

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        if f == g:
            return FALSE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == TRUE:
            return self.apply_not(g)
        if g == TRUE:
            return self.apply_not(f)
        if f > g:
            f, g = g, f
        key = (f, g)
        r = self._xor_cache.get(key)
        if r is not None:
            self.stats["cache_hits"] += 1
            return r
        self.stats["recursive_calls"] += 1
        lf, lg = self.level(f), self.level(g)
        if lf <= lg:
            var = self._var[f]
            f0, f1 = self._lo[f], self._hi[f]
        else:
            var = self._var[g]
            f0 = f1 = f
        if lg <= lf:
            g0, g1 = self._lo[g], self._hi[g]
        else:
            g0 = g1 = g
        r = self._mk(var, self.apply_xor(f0, g0), self.apply_xor(f1, g1))
        self._xor_cache[key] = r
        return r

    def apply_iff(self, f: int, g: int) -> int:
        """Biconditional (XNOR) — used to form ``ns_k ≡ T_k`` partitions."""
        return self.apply_not(self.apply_xor(f, g))

    def apply_implies(self, f: int, g: int) -> int:
        """Implication ``f → g``."""
        return self.apply_or(self.apply_not(f), g)

    def apply_diff(self, f: int, g: int) -> int:
        """Difference ``f ∧ ¬g``."""
        return self.apply_and(f, self.apply_not(g))

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else ``(f ∧ g) ∨ (¬f ∧ h)``."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return self.apply_not(f)
        key = (f, g, h)
        r = self._ite_cache.get(key)
        if r is not None:
            self.stats["cache_hits"] += 1
            return r
        self.stats["recursive_calls"] += 1
        top = min(self.level(f), self.level(g), self.level(h))
        var = self._level2var[top]
        f0, f1 = self._cofactors_at(f, top)
        g0, g1 = self._cofactors_at(g, top)
        h0, h1 = self._cofactors_at(h, top)
        r = self._mk(var, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._ite_cache[key] = r
        return r

    def _cofactors_at(self, f: int, level: int) -> tuple[int, int]:
        """Shannon cofactors of ``f`` with respect to the var at ``level``."""
        if self.level(f) == level:
            return self._lo[f], self._hi[f]
        return f, f

    # ------------------------------------------------------------------ #
    # Quantification and the relational product
    # ------------------------------------------------------------------ #

    def _levels_key(self, variables: Iterable[int]) -> tuple[int, ...]:
        """Canonical (sorted, deduplicated) level tuple for a var set."""
        return tuple(sorted({self._var2level[v] for v in variables}))

    def exists(self, f: int, variables: Iterable[int]) -> int:
        """Existential quantification of ``variables`` (indices) from ``f``."""
        levels = self._levels_key(variables)
        if not levels:
            return f
        return self._exists_rec(f, levels)

    def forall(self, f: int, variables: Iterable[int]) -> int:
        """Universal quantification of ``variables`` (indices) from ``f``."""
        return self.apply_not(self.exists(self.apply_not(f), variables))

    def _exists_rec(self, f: int, levels: tuple[int, ...]) -> int:
        if f < 2:
            return f
        top = self._var2level[self._var[f]]
        # Drop quantified levels strictly above the top of f.
        i = bisect_left(levels, top)
        if i:
            levels = levels[i:]
        if not levels:
            return f
        key = (f, levels)
        r = self._exists_cache.get(key)
        if r is not None:
            self.stats["cache_hits"] += 1
            return r
        self.stats["recursive_calls"] += 1
        lo, hi = self._lo[f], self._hi[f]
        if levels[0] == top:
            rest = levels[1:]
            r0 = self._exists_rec(lo, rest)
            if r0 == TRUE:
                r = TRUE
            else:
                r = self.apply_or(r0, self._exists_rec(hi, rest))
        else:
            r = self._mk(self._var[f], self._exists_rec(lo, levels), self._exists_rec(hi, levels))
        self._exists_cache[key] = r
        return r

    def and_exists(self, f: int, g: int, variables: Iterable[int]) -> int:
        """Fused relational product ``∃ variables . (f ∧ g)``.

        This is the core primitive of image computation: the conjunction is
        never materialised above the quantified variables, which is what
        makes partitioned image computation feasible.
        """
        levels = self._levels_key(variables)
        if not levels:
            return self.apply_and(f, g)
        return self._andex_rec(f, g, levels)

    def _andex_rec(self, f: int, g: int, levels: tuple[int, ...]) -> int:
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE and g == TRUE:
            return TRUE
        if f == TRUE:
            return self._exists_rec(g, levels)
        if g == TRUE or f == g:
            return self._exists_rec(f, levels)
        top = min(self.level(f), self.level(g))
        i = bisect_left(levels, top)
        if i:
            levels = levels[i:]
        if not levels:
            return self.apply_and(f, g)
        if f > g:
            f, g = g, f
        key = (f, g, levels)
        r = self._andex_cache.get(key)
        if r is not None:
            self.stats["cache_hits"] += 1
            return r
        self.stats["recursive_calls"] += 1
        f0, f1 = self._cofactors_at(f, top)
        g0, g1 = self._cofactors_at(g, top)
        if levels[0] == top:
            rest = levels[1:]
            r0 = self._andex_rec(f0, g0, rest)
            if r0 == TRUE:
                r = TRUE
            else:
                r = self.apply_or(r0, self._andex_rec(f1, g1, rest))
        else:
            var = self._level2var[top]
            r = self._mk(var, self._andex_rec(f0, g0, levels), self._andex_rec(f1, g1, levels))
        self._andex_cache[key] = r
        return r

    # ------------------------------------------------------------------ #
    # Cofactor, composition, renaming
    # ------------------------------------------------------------------ #

    def restrict(self, f: int, var: int, value: bool | int) -> int:
        """Cofactor of ``f`` with respect to ``var = value``."""
        val = 1 if value else 0
        target = self._var2level[var]
        return self._restrict_rec(f, var, val, target)

    def _restrict_rec(self, f: int, var: int, val: int, target: int) -> int:
        if f < 2 or self.level(f) > target:
            return f
        if self._var[f] == var:
            return self._hi[f] if val else self._lo[f]
        key = (f, var, val)
        r = self._restrict_cache.get(key)
        if r is not None:
            return r
        r = self._mk(
            self._var[f],
            self._restrict_rec(self._lo[f], var, val, target),
            self._restrict_rec(self._hi[f], var, val, target),
        )
        self._restrict_cache[key] = r
        return r

    def cofactor_cube(self, f: int, assignment: Mapping[int, bool | int]) -> int:
        """Cofactor with respect to several ``var -> value`` bindings."""
        for var, val in sorted(assignment.items(), key=lambda kv: self._var2level[kv[0]]):
            f = self.restrict(f, var, val)
        return f

    def constrain(self, f: int, c: int) -> int:
        """Generalised cofactor (Coudert-Madre constrain operator).

        Returns a function that agrees with ``f`` everywhere ``c`` holds
        (``constrain(f,c) ∧ c == f ∧ c``) and is typically smaller than
        ``f`` — the classic image-computation simplification: the
        transition parts can be constrained by the current frontier.
        ``c`` must not be FALSE.
        """
        if c == FALSE:
            raise BddError("constrain by the FALSE function")
        if c == TRUE or f == FALSE or f == TRUE:
            return f
        if f == c:
            return TRUE
        key = (f, c)
        r = self._constrain_cache.get(key)
        if r is not None:
            return r
        top = min(self.level(f), self.level(c))
        f0, f1 = self._cofactors_at(f, top)
        c0, c1 = self._cofactors_at(c, top)
        if c0 == FALSE:
            r = self.constrain(f1, c1)
        elif c1 == FALSE:
            r = self.constrain(f0, c0)
        else:
            var = self._level2var[top]
            r = self._mk(var, self.constrain(f0, c0), self.constrain(f1, c1))
        self._constrain_cache[key] = r
        return r

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` in ``f``."""
        target = self._var2level[var]
        return self._compose_rec(f, var, g, target)

    def _compose_rec(self, f: int, var: int, g: int, target: int) -> int:
        if f < 2 or self.level(f) > target:
            return f
        key = (f, var, g)
        r = self._compose_cache.get(key)
        if r is not None:
            return r
        if self._var[f] == var:
            r = self.ite(g, self._hi[f], self._lo[f])
        else:
            c0 = self._compose_rec(self._lo[f], var, g, target)
            c1 = self._compose_rec(self._hi[f], var, g, target)
            r = self.ite(self.var_node(self._var[f]), c1, c0)
        self._compose_cache[key] = r
        return r

    def vector_compose(self, f: int, substitution: Mapping[int, int]) -> int:
        """Simultaneously substitute ``substitution[var]`` for each var.

        Implemented by introducing the substitutions bottom-up, which is
        correct because each single :meth:`compose` removes its variable.
        Simultaneity holds when the substituted functions do not mention
        the substituted variables; that is asserted.
        """
        sub_vars = set(substitution)
        for g in substitution.values():
            if self.support(g) & sub_vars:
                raise BddError("vector_compose requires substitutions independent of substituted vars")
        for var in sorted(sub_vars, key=lambda v: self._var2level[v], reverse=True):
            f = self.compose(f, var, substitution[var])
        return f

    def rename(self, f: int, var_map: Mapping[int, int]) -> int:
        """Rename variables of ``f`` according to ``var_map`` (old -> new).

        Uses a fast structural rebuild when the mapping preserves the
        variable order; otherwise falls back to the quantification-based
        method (which requires the new variables to be absent from the
        support of ``f``).
        """
        relevant = {old: new for old, new in var_map.items() if old != new}
        if not relevant:
            return f
        key = (f, tuple(sorted(relevant.items())))
        r = self._rename_cache.get(key)
        if r is not None:
            return r
        olds = sorted(relevant, key=lambda v: self._var2level[v])
        news = [relevant[v] for v in olds]
        new_levels = [self._var2level[v] for v in news]
        order_ok = all(new_levels[i] < new_levels[i + 1] for i in range(len(news) - 1))
        if order_ok:
            try:
                r = self._rename_rec(f, relevant, {})
            except BddOrderError:
                r = self._rename_general(f, relevant)
        else:
            r = self._rename_general(f, relevant)
        self._rename_cache[key] = r
        return r

    def _rename_rec(self, f: int, var_map: Mapping[int, int], memo: dict[int, int]) -> int:
        if f < 2:
            return f
        r = memo.get(f)
        if r is not None:
            return r
        lo = self._rename_rec(self._lo[f], var_map, memo)
        hi = self._rename_rec(self._hi[f], var_map, memo)
        var = var_map.get(self._var[f], self._var[f])
        level = self._var2level[var]
        if min(self.level(lo), self.level(hi)) <= level:
            raise BddOrderError("rename does not preserve the variable order")
        r = self._mk(var, lo, hi)
        memo[f] = r
        return r

    def _rename_general(self, f: int, var_map: Mapping[int, int]) -> int:
        support = self.support(f)
        if any(new in support for new in var_map.values()):
            raise BddOrderError(
                "general rename requires target variables absent from the support"
            )
        eq = TRUE
        for old, new in var_map.items():
            eq = self.apply_and(
                eq, self.apply_iff(self.var_node(old), self.var_node(new))
            )
        return self.and_exists(f, eq, list(var_map))

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def support(self, f: int) -> set[int]:
        """Set of variable indices ``f`` depends on."""
        seen: set[int] = set()
        result: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node < 2 or node in seen:
                continue
            seen.add(node)
            result.add(self._var[node])
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return result

    def size(self, f: int) -> int:
        """Number of internal nodes in the DAG rooted at ``f``."""
        seen: set[int] = set()
        stack = [f]
        count = 0
        while stack:
            node = stack.pop()
            if node < 2 or node in seen:
                continue
            seen.add(node)
            count += 1
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return count

    def size_many(self, roots: Iterable[int]) -> int:
        """Number of distinct internal nodes among several roots."""
        seen: set[int] = set()
        stack = list(roots)
        count = 0
        while stack:
            node = stack.pop()
            if node < 2 or node in seen:
                continue
            seen.add(node)
            count += 1
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return count

    def eval(self, f: int, assignment: Mapping[str, bool | int]) -> bool:
        """Evaluate ``f`` under a name -> value assignment."""
        node = f
        while node >= 2:
            name = self._var_names[self._var[node]]
            node = self._hi[node] if assignment[name] else self._lo[node]
        return node == TRUE

    def eval_vars(self, f: int, assignment: Mapping[int, bool | int]) -> bool:
        """Evaluate ``f`` under a var-index -> value assignment."""
        node = f
        while node >= 2:
            node = self._hi[node] if assignment[self._var[node]] else self._lo[node]
        return node == TRUE

    def cube(self, assignment: Mapping[int, bool | int]) -> int:
        """Build the conjunction of literals given by ``assignment``."""
        f = TRUE
        for var, val in sorted(
            assignment.items(), key=lambda kv: self._var2level[kv[0]], reverse=True
        ):
            lit = self.var_node(var) if val else self.nvar_node(var)
            f = self.apply_and(lit, f)
        return f

    def clear_caches(self) -> None:
        """Drop all computed tables (the unique table is preserved)."""
        self._and_cache.clear()
        self._or_cache.clear()
        self._xor_cache.clear()
        self._ite_cache.clear()
        self._exists_cache.clear()
        self._andex_cache.clear()
        self._compose_cache.clear()
        self._rename_cache.clear()
        self._restrict_cache.clear()
        self._constrain_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BddManager vars={self.num_vars} nodes={len(self)}>"
