#!/usr/bin/env python
"""Thin repo-root shim for the benchmark driver.

The implementation lives in :mod:`repro.bench.driver` (so the installed
``repro bench`` console subcommand can run it too); this file keeps the
historical ``python benchmarks/run_all.py`` invocation — and the symbols
the bench-gate tests import — working from a source checkout.
"""

from __future__ import annotations

import sys
import warnings
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

# stacklevel=1 attributes the warning to this module itself, which is
# ``__main__`` for script runs — the default warning filters show
# DeprecationWarning in __main__, so the nudge is actually visible.
warnings.warn(
    "benchmarks/run_all.py is a compatibility shim; use the `repro bench` "
    "console subcommand (repro.bench.driver) instead",
    DeprecationWarning,
    stacklevel=1,
)

from repro.bench.driver import (  # noqa: E402
    KERNEL_WORKLOADS,
    SCHEMA_KERNEL,
    SCHEMA_TABLE1,
    check_regression,
    compare_to_baseline,
    format_markdown_diff,
    main,
    meta,
    run_kernel,
    run_table1_bench,
)

#: Re-exported driver surface (tests load this shim by path).
__all__ = [
    "KERNEL_WORKLOADS",
    "SCHEMA_KERNEL",
    "SCHEMA_TABLE1",
    "check_regression",
    "compare_to_baseline",
    "format_markdown_diff",
    "main",
    "meta",
    "run_kernel",
    "run_table1_bench",
]

if __name__ == "__main__":
    sys.exit(main())
