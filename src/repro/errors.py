"""Exception hierarchy for the :mod:`repro` package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class BddError(ReproError):
    """Base class for BDD engine errors."""


class BddNodeLimit(BddError):
    """Raised when a manager exceeds its configured node budget.

    The Table 1 harness uses this (together with :class:`TimeLimit`) to
    emulate the paper's "CNC" (could not complete) outcomes in a
    deterministic, testable way.
    """

    def __init__(self, limit: int) -> None:
        super().__init__(f"BDD node budget exceeded (limit={limit})")
        self.limit = limit


class BddOrderError(BddError):
    """Raised when a variable rename would violate the variable order."""


class TimeLimit(ReproError):
    """Raised when a computation exceeds its wall-clock budget."""

    def __init__(self, seconds: float) -> None:
        super().__init__(f"time budget exceeded ({seconds:.3g}s)")
        self.seconds = seconds


class SolveCancelled(ReproError):
    """Raised when a solve is cancelled through its cancellation hook.

    The job server (:mod:`repro.serve`) sets a per-job cancel flag that
    the subset driver polls at every batch boundary; like the resource
    budgets, cancellation unwinds through the normal exception path so
    ``finally`` blocks (oracle close, pool release) always run.
    """


class ServeError(ReproError):
    """Raised for invalid job specs or server-side failures in :mod:`repro.serve`."""


class NetworkError(ReproError):
    """Raised for malformed or inconsistent sequential networks."""


class BlifError(NetworkError):
    """Raised for syntax or semantic errors in BLIF input."""


class AutomatonError(ReproError):
    """Raised for malformed automata or invalid automaton operations."""


class EquationError(ReproError):
    """Raised for ill-posed language-equation problems."""


class VerificationError(ReproError):
    """Raised when a computed solution fails its formal checks."""
