"""Kernel garbage collection, complement edges and the computed table.

Covers the overhaul features: live roots survive a sweep, computed-table
entries survive or expire correctly, negation is O(1) and involutive
under complement edges, freed slots are recycled, and random expressions
keep reference semantics across collections.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.bdd import FALSE, TRUE, BddManager, Function
from tests.strategies import (
    DEFAULT_VARS,
    all_assignments,
    bdd_minterms,
    expressions,
    reference_minterms,
)


def fresh(gc_min_live: int = 0, gc_growth: float = 1.0) -> BddManager:
    mgr = BddManager(gc_min_live=gc_min_live, gc_growth=gc_growth)
    mgr.add_vars(DEFAULT_VARS)
    return mgr


def make_garbage(mgr: BddManager, node: int) -> None:
    """Create unrooted intermediate junk around ``node``."""
    for name in DEFAULT_VARS:
        v = mgr.var_node(mgr.var_index(name))
        mgr.apply_xor(node, v)
        mgr.apply_and(mgr.apply_or(node, v), mgr.apply_not(v))


class TestCollectGarbage:
    def test_live_roots_survive_a_sweep(self) -> None:
        mgr = fresh()
        a, b, c = (mgr.var_node(i) for i in range(3))
        f = mgr.apply_or(mgr.apply_and(a, b), mgr.apply_not(c))
        make_garbage(mgr, f)
        mgr.ref(f)
        reclaimed = mgr.collect_garbage()
        assert reclaimed > 0
        for env in all_assignments(DEFAULT_VARS):
            want = (env["a"] and env["b"]) or not env["c"]
            assert mgr.eval(f, env) == bool(want)

    def test_roots_argument_pins_without_ref(self) -> None:
        mgr = fresh()
        f = mgr.apply_and(mgr.var_node(0), mgr.var_node(1))
        make_garbage(mgr, f)
        mgr.collect_garbage([f])
        assert mgr.eval(f, {"a": 1, "b": 1, "c": 0, "d": 0, "e": 0})

    def test_unrooted_nodes_are_reclaimed(self) -> None:
        mgr = fresh()
        f = mgr.apply_and(mgr.var_node(0), mgr.var_node(1))
        make_garbage(mgr, f)
        before = mgr.num_nodes
        mgr.collect_garbage()  # nothing pinned but the literals
        # terminal + the pinned literal nodes is all that remains
        assert mgr.num_nodes < before
        assert mgr.num_nodes == 1 + len(DEFAULT_VARS)

    def test_literal_nodes_always_survive(self) -> None:
        mgr = fresh()
        lits = [mgr.var_node(i) for i in range(len(DEFAULT_VARS))]
        mgr.collect_garbage()
        # var_node must return the identical (still valid) edges
        assert [mgr.var_node(i) for i in range(len(DEFAULT_VARS))] == lits
        assert mgr.eval(lits[0], dict.fromkeys(DEFAULT_VARS, 1))

    def test_protect_context_manager(self) -> None:
        mgr = fresh()
        f = mgr.apply_xor(mgr.var_node(0), mgr.var_node(2))
        make_garbage(mgr, f)
        with mgr.protect(f):
            assert mgr.collect_garbage() > 0
            assert mgr.eval(f, {"a": 1, "b": 0, "c": 0, "d": 0, "e": 0})
        # after release f is collectable
        mgr.collect_garbage()
        assert mgr.num_nodes == 1 + len(DEFAULT_VARS)

    def test_ref_deref_nest(self) -> None:
        mgr = fresh()
        f = mgr.apply_and(mgr.var_node(0), mgr.var_node(1))
        mgr.ref(f)
        mgr.ref(f)
        mgr.deref(f)
        mgr.collect_garbage()
        assert mgr.eval(f, {"a": 1, "b": 1, "c": 0, "d": 0, "e": 0})

    def test_freed_slots_are_recycled(self) -> None:
        mgr = fresh()
        f = mgr.apply_and(mgr.var_node(0), mgr.var_node(1))
        make_garbage(mgr, f)
        mgr.collect_garbage()
        allocated = mgr.allocated_nodes
        # rebuilding equivalent junk must reuse the freed slots
        g = mgr.apply_and(mgr.var_node(0), mgr.var_node(1))
        mgr.apply_xor(g, mgr.var_node(2))
        assert mgr.allocated_nodes == allocated
        assert mgr.eval(g, {"a": 1, "b": 1, "c": 0, "d": 0, "e": 0})

    def test_budget_counts_live_not_allocated(self) -> None:
        mgr = BddManager(max_nodes=64)
        mgr.add_vars(DEFAULT_VARS)
        f = mgr.apply_and(mgr.var_node(0), mgr.var_node(1))
        for _ in range(4):
            make_garbage(mgr, f)
            mgr.collect_garbage([f])
        # repeated garbage + collection must not exhaust the budget
        assert mgr.num_nodes <= 64

    def test_maybe_collect_respects_trigger(self) -> None:
        mgr = BddManager(gc_min_live=10**9)
        mgr.add_vars(DEFAULT_VARS)
        make_garbage(mgr, mgr.var_node(0))
        assert not mgr.should_collect()
        assert mgr.maybe_collect_garbage() == 0
        assert mgr.stats["gc_runs"] == 0


class TestComputedTable:
    def test_entries_survive_for_live_nodes(self) -> None:
        mgr = fresh()
        a, b = mgr.var_node(0), mgr.var_node(1)
        f = mgr.ref(mgr.apply_and(a, b))
        hits_before = mgr.stats["cache_hits"]
        assert mgr.apply_and(a, b) == f  # warm entry
        assert mgr.stats["cache_hits"] == hits_before + 1
        mgr.collect_garbage()
        assert mgr.apply_and(a, b) == f  # entry survived the sweep
        assert mgr.stats["cache_hits"] == hits_before + 2

    def test_entries_expire_for_dead_nodes(self) -> None:
        mgr = fresh()
        a, b, c = (mgr.var_node(i) for i in range(3))
        g = mgr.apply_and(mgr.apply_xor(a, b), c)  # unrooted
        entries_before = mgr.computed_table_size()
        assert entries_before > 0
        mgr.collect_garbage()  # g dies
        assert mgr.computed_table_size() < entries_before
        # re-deriving g must recompute (miss), not produce a stale hit
        misses_before = mgr.stats["cache_misses"]
        g2 = mgr.apply_and(mgr.apply_xor(a, b), c)
        assert mgr.stats["cache_misses"] > misses_before
        for env in all_assignments(DEFAULT_VARS):
            want = (env["a"] ^ env["b"]) and env["c"]
            assert mgr.eval(g2, env) == bool(want)

    def test_and_or_share_cache_entries(self) -> None:
        mgr = fresh()
        a, b = mgr.var_node(0), mgr.var_node(1)
        f_or = mgr.apply_or(a, b)
        hits_before = mgr.stats["cache_hits"]
        # De Morgan: or(a, b) == ¬and(¬a, ¬b) — the same table entry
        assert mgr.apply_and(mgr.apply_not(a), mgr.apply_not(b)) == mgr.apply_not(f_or)
        assert mgr.stats["cache_hits"] == hits_before + 1

    def test_hit_rate_reporting(self) -> None:
        mgr = fresh()
        assert mgr.cache_hit_rate() == 0.0
        a, b = mgr.var_node(0), mgr.var_node(1)
        f = mgr.apply_and(a, b)
        assert mgr.apply_and(a, b) == f
        assert 0.0 < mgr.cache_hit_rate() <= 1.0
        stats = mgr.stats
        assert stats["cache_hits"] + stats["cache_misses"] > 0


class TestComplementEdges:
    def test_not_is_involutive(self) -> None:
        mgr = fresh()
        f = mgr.apply_xor(mgr.var_node(0), mgr.var_node(1))
        assert mgr.apply_not(mgr.apply_not(f)) == f
        assert mgr.apply_not(f) != f

    def test_not_allocates_no_nodes(self) -> None:
        mgr = fresh()
        f = mgr.apply_and(mgr.var_node(0), mgr.apply_or(mgr.var_node(1), mgr.var_node(2)))
        live = mgr.num_nodes
        g = mgr.apply_not(f)
        assert mgr.num_nodes == live  # O(1): no new nodes, ever
        assert mgr.size(g) == mgr.size(f)

    def test_terminal_edges(self) -> None:
        mgr = fresh()
        assert mgr.apply_not(FALSE) == TRUE
        assert mgr.apply_not(TRUE) == FALSE

    def test_function_wrapper_double_negation(self) -> None:
        mgr = BddManager()
        a, b = Function.vars(mgr, "a", "b")
        f = (a & ~b) | (~a & b)
        assert ~~f == f
        assert (~f & f).is_false


@given(expressions())
@settings(max_examples=60, deadline=None)
def test_kernel_matches_reference_semantics(expr) -> None:
    """Old vs new kernel on random expressions: both must realise the
    brute-force truth table, and negation must complement it exactly."""
    mgr = BddManager()
    mgr.add_vars(DEFAULT_VARS)
    node = expr.to_bdd(mgr)
    want = reference_minterms(expr, DEFAULT_VARS)
    assert bdd_minterms(mgr, node, DEFAULT_VARS) == want
    n_all = 1 << len(DEFAULT_VARS)
    assert len(bdd_minterms(mgr, mgr.apply_not(node), DEFAULT_VARS)) == n_all - len(want)


@given(expressions(), expressions())
@settings(max_examples=40, deadline=None)
def test_collection_preserves_reference_semantics(expr1, expr2) -> None:
    """Random expressions stay correct across interleaved collections."""
    mgr = BddManager(gc_min_live=0, gc_growth=1.0)
    mgr.add_vars(DEFAULT_VARS)
    f = mgr.ref(expr1.to_bdd(mgr))
    mgr.collect_garbage()
    g = mgr.ref(expr2.to_bdd(mgr))
    mgr.collect_garbage()
    both = mgr.apply_and(f, g)
    want1 = reference_minterms(expr1, DEFAULT_VARS)
    want2 = reference_minterms(expr2, DEFAULT_VARS)
    assert bdd_minterms(mgr, f, DEFAULT_VARS) == want1
    assert bdd_minterms(mgr, g, DEFAULT_VARS) == want2
    assert bdd_minterms(mgr, both, DEFAULT_VARS) == want1 & want2
