"""Work-stealing dispatch and the speculative join race.

The disjunctive split join is placement-independent: OR is commutative
and associative and BDDs are canonical, so however the work-stealing
dispatcher re-routes cofactor slices, the joined image must be
edge-identical to the in-process reference.  These tests force steals
deterministically (by pinning the dispatcher's ``wait_any`` to one
shard) and pin the race-mode contract: both joins agree, the winner is
committed, and the loser's worker-side parts are freed.
"""

from __future__ import annotations

import pytest

from repro.bdd import BddManager, dump_nodes
from repro.shard import ShardPool, ShardedImage
from repro.shard.pool import ShardError
from repro.symb.image import image_partitioned

N_VARS = 8


def relation_manager():
    mgr = BddManager()
    xs, ys = [], []
    for i in range(N_VARS):
        xs.append(mgr.add_var(f"x{i}"))
        ys.append(mgr.add_var(f"y{i}"))
    return mgr, xs, ys


def make_parts(mgr, xs, ys, spec):
    parts = []
    for i, deps in spec:
        f = 1
        for d in deps:
            f = mgr.apply_and(f, mgr.var_node(xs[d]))
        parts.append(mgr.apply_iff(mgr.var_node(ys[i]), f))
    return parts


def split_image(pool, mgr, xs, parts):
    return ShardedImage(
        pool, mgr, parts, xs[:4], set(xs[:4]), mode="split"
    )


def retain_everywhere(pool, mgr, handle, edge):
    blob = dump_nodes(mgr, [edge])
    for shard in range(pool.num_shards):
        pool.submit(shard, ("retain", handle, blob))
    for shard in range(pool.num_shards):
        pool.collect(shard)


def constraints_with_slices(mgr, xs):
    """Constraints whose support spans several split candidates."""
    out = []
    for k in range(3):
        psi = 1
        for v in xs[k : k + 3]:
            psi = mgr.apply_or(mgr.var_node(v), psi ^ 1) ^ (k & 1)
        psi = mgr.apply_or(psi, mgr.var_node(xs[(k + 4) % 4]))
        if psi not in (0, 1):
            out.append(psi)
    assert out
    return out


class TestWorkStealing:
    def test_batch_matches_static_join(self) -> None:
        mgr, xs, ys = relation_manager()
        parts = make_parts(
            mgr, xs, ys, [(0, [0]), (1, [0, 1]), (2, [2, 3]), (3, [3])]
        )
        with ShardPool(2, mgr.var_order()) as pool:
            img = split_image(pool, mgr, xs, parts)
            psis = constraints_with_slices(mgr, xs)
            items = []
            for psi in psis:
                handle = pool.new_handle()
                retain_everywhere(pool, mgr, handle, psi)
                items.append((handle, psi))
            results = img.run_resident_batch(items)
            for psi, got in zip(psis, results):
                assert got == image_partitioned(mgr, parts, psi, xs[:4])

    def test_forced_steals_produce_identical_images(self) -> None:
        """Pin the dispatcher to shard 0: it drains its own queue, then
        must steal shard 1's pending slices — and the OR-join must not
        notice the re-placement."""
        mgr, xs, ys = relation_manager()
        parts = make_parts(
            mgr, xs, ys, [(0, [0]), (1, [0, 1]), (2, [2, 3]), (3, [3])]
        )
        with ShardPool(2, mgr.var_order()) as pool:
            img = split_image(pool, mgr, xs, parts)
            psis = constraints_with_slices(mgr, xs)
            items = []
            for psi in psis:
                handle = pool.new_handle()
                retain_everywhere(pool, mgr, handle, psi)
                items.append((handle, psi))
            # Always service the first busy shard; collect() still
            # blocks on that shard's FIFO, so this only skews routing.
            original = pool.wait_any
            pool.wait_any = lambda shards: [shards[0]]
            try:
                results = img.run_resident_batch(items, window=1)
            finally:
                pool.wait_any = original
            assert img.steals > 0
            for psi, got in zip(psis, results):
                assert got == image_partitioned(mgr, parts, psi, xs[:4])

    def test_steal_counter_starts_at_zero(self) -> None:
        mgr, xs, ys = relation_manager()
        parts = make_parts(mgr, xs, ys, [(0, [0])])
        with ShardPool(1, mgr.var_order()) as pool:
            img = split_image(pool, mgr, xs, parts)
            assert img.steals == 0


class TestSpeculativeRace:
    def _race_setup(self):
        mgr, xs, ys = relation_manager()
        # x0..x2 shared by every part, x3 private to the last: one of
        # four contested variables retires in-shard — the genuinely
        # unsure regime where auto arms the race.
        parts = make_parts(
            mgr, xs, ys, [(0, [0, 1, 2]), (1, [0, 1, 2]), (2, [0, 1, 2, 3])]
        )
        return mgr, xs, parts

    def test_auto_arms_race_when_unsure(self) -> None:
        mgr, xs, parts = self._race_setup()
        with ShardPool(2, mgr.var_order()) as pool:
            img = ShardedImage(pool, mgr, parts, xs[:4], set())
            assert img.mode == "race"

    def test_resolve_race_commits_winner_and_agrees(self) -> None:
        mgr, xs, parts = self._race_setup()
        psi = mgr.apply_or(mgr.var_node(xs[0]), mgr.var_node(xs[3]))
        expected = image_partitioned(mgr, parts, psi, xs[:4])
        with ShardPool(2, mgr.var_order()) as pool:
            img = ShardedImage(pool, mgr, parts, xs[:4], set(), mode="race")
            assert img.run(psi) == expected
            assert img.mode in ("cluster", "split")
            assert img.race_outcome is not None
            assert img.race_outcome["winner"] == img.mode
            assert img.race_outcome["cluster_seconds"] >= 0
            assert img.race_outcome["split_seconds"] >= 0
            # The committed join keeps working after the race.
            assert img.run(psi) == expected

    def test_false_constraint_does_not_resolve(self) -> None:
        mgr, xs, parts = self._race_setup()
        with ShardPool(2, mgr.var_order()) as pool:
            img = ShardedImage(pool, mgr, parts, xs[:4], set(), mode="race")
            assert img.run(0) == 0
            assert img.mode == "race"
            assert img.race_outcome is None

    def test_resolve_race_requires_race_mode(self) -> None:
        mgr, xs, ys = relation_manager()
        parts = make_parts(mgr, xs, ys, [(0, [0])])
        with ShardPool(1, mgr.var_order()) as pool:
            img = ShardedImage(pool, mgr, parts, xs[:1], set(), mode="split")
            with pytest.raises(ShardError, match="resolve_race"):
                img.resolve_race(1)

    def test_submit_resident_commits_cluster(self) -> None:
        mgr, xs, parts = self._race_setup()
        psi = mgr.var_node(xs[0])
        with ShardPool(2, mgr.var_order()) as pool:
            img = ShardedImage(pool, mgr, parts, xs[:4], set(), mode="race")
            handle = pool.new_handle()
            retain_everywhere(pool, mgr, handle, psi)
            collect = img.submit_resident([(handle, psi)])
            assert img.mode == "cluster"
            (result,) = collect()
            assert result == image_partitioned(mgr, parts, psi, xs[:4])
