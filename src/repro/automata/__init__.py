"""Finite automata with symbolic edge labels, and their operations."""

from repro.automata.automaton import Automaton, empty_automaton
from repro.automata.dot import automaton_to_dot
from repro.automata.kiss import parse_kiss, write_kiss
from repro.automata.language import (
    ContainmentResult,
    accepts,
    contained_in,
    enumerate_language,
    equivalent,
    is_empty,
    sample_words,
)
from repro.automata.ops import (
    complement,
    complete,
    determinize,
    minimize,
    prefix_close,
    product,
    progressive,
    split_regions,
    support,
    union,
)
from repro.automata.stg import network_to_automaton, reachable_state_count
from repro.automata.symbolic_stg import functions_to_automaton

__all__ = [
    "Automaton",
    "ContainmentResult",
    "accepts",
    "automaton_to_dot",
    "complement",
    "complete",
    "contained_in",
    "determinize",
    "empty_automaton",
    "enumerate_language",
    "equivalent",
    "functions_to_automaton",
    "is_empty",
    "minimize",
    "network_to_automaton",
    "parse_kiss",
    "prefix_close",
    "product",
    "progressive",
    "reachable_state_count",
    "sample_words",
    "split_regions",
    "support",
    "union",
    "write_kiss",
]
