"""Experiment E1: the paper's Table 1.

One pytest-benchmark entry per (row, flow).  Rows whose monolithic flow
is expected to exceed its budget get a CNC check instead of a timing
(the paper prints "CNC" for those cells).  Run

    pytest benchmarks/bench_table1.py --benchmark-only

for the timings and ``benchmarks/run_table1.py`` for the paper-style
printed table.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.bench.suite import TABLE1_CASES
from repro.eqn.problem import build_latch_split_problem
from repro.eqn.solver import solve_equation
from repro.util.limits import ResourceLimit

#: CSF sizes double-checked against both flows in tests; pinned here so a
#: performance run also acts as a regression check of States(X).
EXPECTED_STATES = {
    "s27": 7,
    "count6": 233,
    "johnson8": 129,
    "rand10": 108,
    "lfsr8": 1025,
    "rand14": 90,
    "rand15": 140,
}

FAST_CASES = [c for c in TABLE1_CASES if not c.expect_mono_cnc]
CNC_CASES = [c for c in TABLE1_CASES if c.expect_mono_cnc]


def solve_case(case, method):
    problem = build_latch_split_problem(
        case.network(), list(case.x_latches), max_nodes=case.max_nodes
    )
    limit = ResourceLimit(max_seconds=case.max_seconds, max_nodes=case.max_nodes)
    return solve_equation(problem, method=method, limit=limit)


@pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
def test_partitioned(benchmark, case) -> None:
    result = benchmark.pedantic(
        solve_case, args=(case, "partitioned"), rounds=1, iterations=1
    )
    assert result.csf_states == EXPECTED_STATES[case.name]


@pytest.mark.parametrize("case", FAST_CASES, ids=lambda c: c.name)
def test_monolithic(benchmark, case) -> None:
    result = benchmark.pedantic(
        solve_case, args=(case, "monolithic"), rounds=1, iterations=1
    )
    assert result.csf_states == EXPECTED_STATES[case.name]


@pytest.mark.parametrize("case", CNC_CASES, ids=lambda c: c.name)
def test_monolithic_cnc(benchmark, case) -> None:
    """The monolithic flow must exceed its budget on the large rows."""

    def run_expect_cnc():
        with pytest.raises(ReproError):
            solve_case(case, "monolithic")
        return True

    assert benchmark.pedantic(run_expect_cnc, rounds=1, iterations=1)
