"""The baseline flow: monolithic transition-output relations.

This is the comparison implementation of the paper's Table 1: "the
completion of S is done first, then the intermediate product is derived,
followed by hiding and determinization, performed in a traditional way."

Concretely the oracle materialises, as single BDDs:

* ``TO^F(i,v,u,o,cs1,ns1) = Π(ns≡T^F) ∧ Π(u≡U) ∧ Π(o≡O^F)``
* ``TO^S(i,o,cs2,ns2)   = Π(ns≡T^S) ∧ Π(o≡O^S)``
* the *completed* ``TO^S'`` with an explicit DC1 state.  As the paper
  notes, an unreachable state code cannot encode DC1 (unreachable states
  still have next states), so a fresh flag variable ``S.dc`` is used.
* the product ``TO^P = TO^F ∧ TO^S'`` and the *hidden* relation
  ``TS(u,v,cs,ns) = ∃i,o TO^P`` — the monolithic quantification that
  dominates the cost of this flow.

Complementation of the (deterministic) completed ``S`` is the acceptance
flip tracked by the subset driver: product states with ``S.dc = 1`` are
the accepting states of ``F × complement(S)``, and subsets containing one
are trimmed to DCN exactly as in the partitioned flow.
"""

from __future__ import annotations

from repro.bdd.cube import split_by_vars
from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.eqn.problem import EquationProblem
from repro.eqn.subset import SubsetEdge, expand_batch_pinned


class MonolithicOracle:
    """Transition oracle computing on monolithic relations."""

    def __init__(self, problem: EquationProblem, *, trim: bool = True) -> None:
        self.problem = problem
        self.trim = trim
        mgr: BddManager = problem.manager
        self.mgr = mgr

        # ---- monolithic TO^F ---- #
        to_f = TRUE
        for name in problem.f_ns_vars:
            to_f = mgr.apply_and(
                to_f,
                mgr.apply_iff(
                    mgr.var_node(problem.f_ns_vars[name]), problem.f_next[name]
                ),
            )
        for name in problem.u_names:
            to_f = mgr.apply_and(
                to_f,
                mgr.apply_iff(mgr.var_node(problem.u_vars[name]), problem.f_u[name]),
            )
        for name in problem.o_names:
            to_f = mgr.apply_and(
                to_f,
                mgr.apply_iff(mgr.var_node(problem.o_vars[name]), problem.f_o[name]),
            )

        # ---- monolithic TO^S ---- #
        to_s = TRUE
        for name in problem.s_ns_vars:
            to_s = mgr.apply_and(
                to_s,
                mgr.apply_iff(
                    mgr.var_node(problem.s_ns_vars[name]), problem.s_next[name]
                ),
            )
        for name in problem.o_names:
            to_s = mgr.apply_and(
                to_s,
                mgr.apply_iff(mgr.var_node(problem.o_vars[name]), problem.s_o[name]),
            )

        # ---- complete S: direct undefined (i,o) to the DC1 state ---- #
        dc = mgr.var_node(problem.dc_var)
        dc_next = mgr.var_node(problem.dc_ns_var)
        s_ns = list(problem.s_ns_vars.values())
        undefined = mgr.apply_not(mgr.exists(to_s, s_ns))  # A(i,o,cs2)
        dc_code = mgr.cube({v: 0 for v in s_ns})  # DC1 = (dc=1, ns2=0…0)
        to_s_completed = mgr.apply_or(
            mgr.apply_and(
                mgr.apply_and(mgr.apply_not(dc), to_s), mgr.apply_not(dc_next)
            ),
            mgr.apply_and(
                mgr.apply_or(dc, undefined), mgr.apply_and(dc_next, dc_code)
            ),
        )
        # ---- product and hiding (the monolithic bottleneck) ---- #
        product = mgr.apply_and(to_f, to_s_completed)
        hide = [problem.i_vars[n] for n in problem.i_names] + [
            problem.o_vars[n] for n in problem.o_names
        ]
        self.ts = mgr.exists(product, hide)  # TS(u, v, cs, ns)

        self.cs_vars = problem.all_cs_vars() + [problem.dc_var]
        self.ns_vars = problem.all_ns_vars() + [problem.dc_ns_var]
        # Interned quantification sets: every expansion quantifies the
        # same cs/ns blocks, so the per-call level sort/intern pass is
        # paid once (and revalidated lazily across dynamic reordering).
        self.cs_qs = mgr.quant_set(self.cs_vars)
        self.ns_qs = mgr.quant_set(self.ns_vars)
        self.rename = dict(problem.ns_to_cs())
        self.rename[problem.dc_ns_var] = problem.dc_var
        self.uv_vars = problem.uv_vars()
        self.init_cube = mgr.apply_and(
            problem.init_cube, mgr.apply_not(mgr.var_node(problem.dc_var))
        )

    # ------------------------------------------------------------------ #

    def live_roots(self) -> list[int]:
        """Every BDD the oracle reuses across expansions (GC roots).

        Only the hidden relation ``TS`` and the initial cube are read
        after construction; the (large) intermediate ``TO^F`` and
        completed ``TO^S`` are deliberately *not* kept, so the first
        collection can reclaim them.  ``TS`` being pinned also means a
        GC-triggered in-place sift (``--reorder auto``) keeps its edge
        valid while shrinking it — the monolithic flow's best defence
        against a bad initial order.
        """
        return [self.ts, self.init_cube]

    def initial(self) -> int:
        return self.init_cube

    def is_accepting(self, psi: int) -> bool:
        """Accepting in X unless ψ contains a DC1 product state."""
        dc = self.mgr.var_node(self.problem.dc_var)
        return self.mgr.apply_and(psi, dc) == FALSE

    def expand(self, psi: int) -> tuple[list[SubsetEdge], int]:
        """Single-item adapter over :meth:`expand_batch`."""
        return self.expand_batch([psi])[0]

    def expand_batch(
        self, psis: list[int]
    ) -> list[tuple[list[SubsetEdge], int]]:
        """Expand a frontier batch against the hidden relation.

        The monolithic flow has no cross-subset work to share — each
        expansion is one fused ``and_exists`` against ``TS`` — so the
        batch is the shared pinned loop, safe under opportunistic
        collection however the kernel evolves.
        """
        return expand_batch_pinned(self.mgr, psis, self._expand_one)

    def _expand_one(self, psi: int) -> tuple[list[SubsetEdge], int]:
        mgr = self.mgr
        # P_ψ(u,v,ns) = ∃cs [ TS ∧ ψ ] — one fused and_exists against the
        # hidden relation; the kernel's short-circuiting core quantifies
        # on the fly.
        p = mgr.and_exists(psi, self.ts, self.cs_qs)
        domain = mgr.exists(p, self.ns_qs)
        if self.trim:
            # Q_ψ: classes leading into a DC1-flagged successor.
            dc_next = mgr.var_node(self.problem.dc_ns_var)
            q = mgr.exists(mgr.apply_and(p, dc_next), self.ns_qs)
            p_good = mgr.apply_diff(p, q)
            edges = [
                SubsetEdge(cond=cond, successor=mgr.rename(leaf, self.rename))
                for leaf, cond in split_by_vars(mgr, p_good, self.uv_vars).items()
            ]
            dca = mgr.apply_diff(mgr.apply_not(q), domain)
            return edges, dca
        edges = []
        for leaf, cond in split_by_vars(mgr, p, self.uv_vars).items():
            successor = mgr.rename(leaf, self.rename)
            edges.append(
                SubsetEdge(
                    cond=cond,
                    successor=successor,
                    accepting=self.is_accepting(successor),
                )
            )
        return edges, mgr.apply_not(domain)
