"""Small shared utilities: timers, resource limits, table formatting."""

from repro.util.limits import ResourceLimit
from repro.util.tables import format_table
from repro.util.timer import Stopwatch

__all__ = ["ResourceLimit", "Stopwatch", "format_table"]
