"""Experiment E5 (ablation): early-quantification scheduling.

The paper's enabling technique is scheduled partitioned image
computation.  These benchmarks compare, on symbolic reachability and on
the solver's inner image:

* partitioned image with scheduling (the paper's method),
* partitioned image without scheduling (conjoin-then-quantify),
* image against the pre-built monolithic relation.

Expected shape: scheduled <= naive, with the gap growing with circuit
size; the monolithic-relation image pays its cost in the relation build.
"""

from __future__ import annotations

import pytest

from repro.bdd import BddManager
from repro.bench import circuits
from repro.network import build_network_bdds
from repro.symb import (
    PartitionedRelation,
    functions_to_relation,
    image_monolithic,
    image_partitioned,
    network_reachable_states,
)

CIRCUITS = {
    "count8": lambda: circuits.counter(8),
    "lfsr8": lambda: circuits.lfsr(8),
    "rand10": lambda: circuits.random_network(3, 10, 3, seed=11, n_nodes=60),
}


def setup_network(make):
    net = make()
    mgr = BddManager()
    iv = {name: mgr.add_var(name) for name in net.inputs}
    sv, nv = {}, {}
    for name in net.latches:
        sv[name] = mgr.add_var(name)
        nv[name] = mgr.add_var(f"{name}'")
    bdds = build_network_bdds(net, mgr, iv, sv)
    return net, mgr, bdds, nv


@pytest.mark.parametrize("name", CIRCUITS, ids=str)
@pytest.mark.parametrize("schedule", [True, False], ids=["scheduled", "naive"])
def test_reachability_scheduling(benchmark, name, schedule) -> None:
    net, mgr, bdds, nv = setup_network(CIRCUITS[name])

    def run():
        return network_reachable_states(bdds, ns_vars=nv, schedule=schedule)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.state_count > 0


@pytest.mark.parametrize("name", CIRCUITS, ids=str)
def test_single_image_partitioned_vs_monolithic(benchmark, name) -> None:
    """One image step from the reachable set, partitioned & scheduled."""
    net, mgr, bdds, nv = setup_network(CIRCUITS[name])
    reach = network_reachable_states(bdds, ns_vars=nv).states
    rel = functions_to_relation(
        mgr, ((nv[n], bdds.next_state[n]) for n in net.latches)
    )
    quantify = list(bdds.input_vars.values()) + list(bdds.state_vars.values())
    mono = PartitionedRelation(mgr, list(rel)).monolithic()
    want = image_monolithic(mgr, mono, reach, quantify)

    def run():
        return image_partitioned(mgr, list(rel), reach, quantify)

    got = benchmark(run)
    assert got == want
