"""Legacy setup shim: the offline environment lacks the `wheel` package,
so `pip install -e .` falls back to this setup.py develop path."""

from setuptools import setup

setup()
