"""ψ-handle lifecycle: shard-resident functions under GC, sift, release.

The resident registry is the batched subset engine's transfer saver:
each subset state ψ crosses the wire once (``retain``) and is then named
by handle until ``release``.  These tests pin the lifecycle contract:

* retained entries are refcounted — double retain needs double release;
* resident functions survive worker-side garbage collection *and*
  mid-run in-place sifting bit-for-bit (names-based snapshots);
* release is leak-free: after releasing everything and collecting, the
  worker's live node count returns to its post-spawn baseline.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bdd import BddManager, dump_nodes, load_nodes
from repro.bdd.manager import FALSE
from repro.shard import ShardError, ShardPool

from tests.strategies import DEFAULT_VARS, expressions

VARS = list(DEFAULT_VARS)


@pytest.fixture()
def mgr():
    m = BddManager()
    m.add_vars(VARS)
    return m


class TestRetainRelease:
    def test_retain_release_roundtrip(self, mgr) -> None:
        f = mgr.apply_xor(
            mgr.var_node(mgr.var_index("a")), mgr.var_node(mgr.var_index("b"))
        )
        with ShardPool(1, VARS) as pool:
            handle = pool.new_handle()
            assert pool.call(0, ("retain", handle, dump_nodes(mgr, [f]))) == 1
            assert pool.stats()[0]["resident"] == 1
            (back,) = load_nodes(mgr, pool.call(0, ("dump", handle)))
            assert back == f
            assert pool.call(0, ("release", [handle])) == 1
            assert pool.stats()[0]["resident"] == 0

    def test_refcounted_double_retain(self, mgr) -> None:
        f = mgr.var_node(mgr.var_index("c"))
        with ShardPool(1, VARS) as pool:
            handle = pool.new_handle()
            pool.call(0, ("retain", handle, dump_nodes(mgr, [f])))
            # Second retain of a resident handle needs no snapshot.
            assert pool.call(0, ("retain", handle, None)) == 2
            assert pool.call(0, ("release", [handle])) == 0  # still held
            assert pool.stats()[0]["resident"] == 1
            assert pool.call(0, ("release", [handle])) == 1
            assert pool.stats()[0]["resident"] == 0

    def test_retain_unknown_handle_without_snapshot_errors(self, mgr) -> None:
        with ShardPool(1, VARS) as pool:
            with pytest.raises(ShardError, match="retain"):
                pool.call(0, ("retain", 99, None))
            # The worker survives the bad command.
            assert pool.stats()[0]["resident"] == 0

    def test_release_unknown_handle_is_tolerated(self, mgr) -> None:
        with ShardPool(1, VARS) as pool:
            assert pool.call(0, ("release", [12345])) == 0

    def test_pool_op_counts_track_commands(self, mgr) -> None:
        f = mgr.var_node(mgr.var_index("a"))
        with ShardPool(1, VARS) as pool:
            handle = pool.new_handle()
            pool.call(0, ("retain", handle, dump_nodes(mgr, [f])))
            pool.call(0, ("release", [handle]))
            assert pool.op_counts["retain"] == 1
            assert pool.op_counts["release"] == 1
            assert pool.op_counts["vars"] == 1


class TestLifecycleUnderGcAndSift:
    def test_resident_survives_gc_and_sift(self, mgr) -> None:
        a, b, c = (mgr.var_index(v) for v in ("a", "b", "c"))
        f = mgr.apply_or(
            mgr.apply_and(mgr.var_node(a), mgr.var_node(b)),
            mgr.apply_and(mgr.var_node(b), mgr.var_node(c)),
        )
        with ShardPool(1, VARS) as pool:
            handle = pool.new_handle()
            pool.call(0, ("retain", handle, dump_nodes(mgr, [f])))
            pool.call(0, ("gc",))
            sift_stats = pool.call(0, ("sift",))
            assert sift_stats["size_after"] >= 2
            pool.call(0, ("gc",))
            (back,) = load_nodes(mgr, pool.call(0, ("dump", handle)))
            assert back == f
            pool.call(0, ("release", [handle]))

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        exprs=st.lists(expressions(VARS, max_leaves=10), min_size=1, max_size=5),
        double_retain=st.booleans(),
    )
    def test_lifecycle_is_leak_free(self, exprs, double_retain) -> None:
        """Retain → GC → sift → dump → release leaves no worker garbage.

        The worker's ``stats`` node count must return to the post-spawn
        baseline once every handle is released and a collection runs —
        the leak assertion of the ISSUE's handle-lifecycle satellite.
        """
        mgr = BddManager()
        mgr.add_vars(VARS)
        funcs = [e.to_bdd(mgr) for e in exprs]
        with ShardPool(1, VARS) as pool:
            # Literal (single-variable) nodes are permanent GC roots in
            # any manager; materialise them all before taking the
            # baseline so the leak check measures the registry only.
            parity = 0
            for name in VARS:
                parity = mgr.apply_xor(parity, mgr.var_node(mgr.var_index(name)))
            warm = pool.new_handle()
            pool.call(0, ("retain", warm, dump_nodes(mgr, [parity])))
            pool.call(0, ("release", [warm]))
            pool.call(0, ("gc",))
            baseline = pool.stats()[0]["live_nodes"]
            handles = []
            for f in funcs:
                handle = pool.new_handle()
                pool.call(0, ("retain", handle, dump_nodes(mgr, [f])))
                if double_retain:
                    pool.call(0, ("retain", handle, None))
                handles.append(handle)
            # Stress the registry: collect, sift, collect again.
            pool.call(0, ("gc",))
            pool.call(0, ("sift",))
            pool.call(0, ("gc",))
            # Every resident function must still round-trip bit-for-bit
            # (snapshots travel by name, so the sifted order is fine).
            for f, handle in zip(funcs, handles):
                (back,) = load_nodes(mgr, pool.call(0, ("dump", handle)))
                assert back == f
            pool.call(0, ("release", handles))
            if double_retain:
                assert pool.stats()[0]["resident"] == len(handles)
                pool.call(0, ("release", handles))
            assert pool.stats()[0]["resident"] == 0
            pool.call(0, ("gc",))
            assert pool.stats()[0]["live_nodes"] == baseline

    def test_expand_batch_over_resident_handles(self, mgr) -> None:
        """Worker-side batched images: plain handles and sliced specs."""
        a, b = mgr.var_index("a"), mgr.var_index("b")
        part = mgr.apply_iff(mgr.var_node(a), mgr.var_node(b))
        psi1 = mgr.var_node(a)
        psi2 = mgr.apply_or(mgr.var_node(a), mgr.var_node(b))
        with ShardPool(1, VARS) as pool:
            (part_handle,) = [pool.new_handle()]
            pool.call(0, ("load", part_handle, dump_nodes(mgr, [part])))
            plan_id = pool.new_handle()
            pool.call(0, ("plan", plan_id, [part_handle], ["a"], ["a", "b"]))
            h1, h2 = pool.new_handle(), pool.new_handle()
            pool.call(0, ("retain", h1, dump_nodes(mgr, [psi1])))
            pool.call(0, ("retain", h2, dump_nodes(mgr, [psi2])))
            snaps = pool.call(0, ("expand_batch", plan_id, [h1, h2]))
            expected1 = mgr.and_exists(psi1, part, [a])
            expected2 = mgr.and_exists(psi2, part, [a])
            (got1,) = load_nodes(mgr, snaps[0])
            (got2,) = load_nodes(mgr, snaps[1])
            assert (got1, got2) == (expected1, expected2)
            # Sliced item: image of ψ2 ∧ (a=1), no snapshot shipped.
            (snap,) = pool.call(
                0, ("expand_batch", plan_id, [(h2, {"a": 1})])
            )
            (got_slice,) = load_nodes(mgr, snap)
            sliced = mgr.apply_and(psi2, mgr.var_node(a))
            assert got_slice == mgr.and_exists(sliced, part, [a])
            # An empty spec means the whole resident constraint.
            (snap,) = pool.call(0, ("expand_batch", plan_id, [(h2, {})]))
            (got_whole,) = load_nodes(mgr, snap)
            assert got_whole == expected2
            pool.call(0, ("release", [h1, h2]))
            assert pool.stats()[0]["resident"] == 0
            assert got_slice != FALSE
