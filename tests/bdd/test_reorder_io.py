"""Tests for garbage collection, reordering, transfer, dot and dumps."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import (
    BddManager,
    compact,
    dump_function,
    greedy_sift_order,
    load_function,
    reorder,
    to_dot,
    transfer,
)
from repro.errors import BddError
from tests.strategies import DEFAULT_VARS, all_assignments, expressions


def build(expr):
    mgr = BddManager()
    mgr.add_vars(DEFAULT_VARS)
    return mgr, expr.to_bdd(mgr)


@given(expressions())
@settings(max_examples=50, deadline=None)
def test_compact_preserves_semantics(expr) -> None:
    mgr, node = build(expr)
    # Create garbage on purpose.
    for name in DEFAULT_VARS:
        mgr.apply_xor(node, mgr.var_node(mgr.var_index(name)))
    mapping = compact(mgr, [node])
    new_node = mapping[node]
    for env in all_assignments(DEFAULT_VARS):
        assert mgr.eval(new_node, env) == expr.evaluate(env)


@given(expressions())
@settings(max_examples=30, deadline=None)
def test_compact_reduces_to_live_nodes(expr) -> None:
    mgr, node = build(expr)
    for name in DEFAULT_VARS:
        mgr.apply_xor(node, mgr.var_node(mgr.var_index(name)))
    live = mgr.size(node)
    compact(mgr, [node])
    # live internal nodes + the single shared terminal (complement edges)
    assert len(mgr) == live + 1


@given(expressions(), st.permutations(list(DEFAULT_VARS)))
@settings(max_examples=50, deadline=None)
def test_reorder_preserves_semantics(expr, new_order) -> None:
    mgr, node = build(expr)
    fresh, (copy,) = reorder(mgr, new_order, [node])
    assert fresh.var_order() == list(new_order)
    for env in all_assignments(DEFAULT_VARS):
        assert fresh.eval(copy, env) == expr.evaluate(env)


def test_reorder_rejects_incomplete_order() -> None:
    mgr = BddManager()
    mgr.add_vars(["a", "b"])
    with pytest.raises(BddError):
        reorder(mgr, ["a"], [])


@given(expressions())
@settings(max_examples=50, deadline=None)
def test_transfer_with_rename(expr) -> None:
    mgr, node = build(expr)
    dst = BddManager()
    dst.add_vars([f"{n}_x" for n in DEFAULT_VARS])
    copy = transfer(node, mgr, dst, name_map={n: f"{n}_x" for n in DEFAULT_VARS})
    for env in all_assignments(DEFAULT_VARS):
        renamed = {f"{n}_x": v for n, v in env.items()}
        assert dst.eval(copy, renamed) == expr.evaluate(env)


def test_transfer_requires_declared_vars() -> None:
    mgr = BddManager()
    mgr.add_vars(["a"])
    dst = BddManager()
    with pytest.raises(BddError):
        transfer(mgr.var_node(0), mgr, dst)


def test_greedy_sift_finds_interleaved_order_for_comparator() -> None:
    # The equality function x_i <-> y_i is exponential when all x precede
    # all y, linear when interleaved; sifting should find a good order.
    n = 4
    mgr = BddManager()
    xs = mgr.add_vars([f"x{i}" for i in range(n)])
    ys = mgr.add_vars([f"y{i}" for i in range(n)])
    f = 1
    for x, y in zip(xs, ys):
        f = mgr.apply_and(f, mgr.apply_iff(mgr.var_node(x), mgr.var_node(y)))
    bad_size = mgr.size(f)
    order = greedy_sift_order(mgr, [f], max_passes=2)
    fresh, (copy,) = reorder(mgr, order, [f])
    assert fresh.size(copy) <= bad_size
    assert fresh.size(copy) <= 3 * n  # interleaved order gives 3n-ish nodes


@given(expressions())
@settings(max_examples=50, deadline=None)
def test_dump_load_roundtrip(expr) -> None:
    mgr, node = build(expr)
    blob = dump_function(mgr, node)
    dst = BddManager()
    dst.add_vars(DEFAULT_VARS)
    copy = load_function(dst, blob)
    for env in all_assignments(DEFAULT_VARS):
        assert dst.eval(copy, env) == expr.evaluate(env)


def test_dump_load_terminals() -> None:
    mgr = BddManager()
    assert load_function(mgr, dump_function(mgr, 1)) == 1
    assert load_function(mgr, dump_function(mgr, 0)) == 0


def test_to_dot_mentions_all_roots_and_edges() -> None:
    mgr = BddManager()
    a, b = mgr.add_vars(["a", "b"])
    f = mgr.apply_and(mgr.var_node(a), mgr.var_node(b))
    dot = to_dot(mgr, {"f": f})
    assert "digraph" in dot
    assert 'label="a"' in dot and 'label="b"' in dot
    assert "root_f" in dot
    assert "style=dashed" in dot and "style=solid" in dot
