"""Operator-overloaded wrapper around raw BDD node ids.

The manager's int-based API is fast but terse; :class:`Function` is the
ergonomic face used in examples, the expression builder and user code:

>>> from repro.bdd import BddManager, Function
>>> m = BddManager()
>>> a, b = Function.vars(m, "a", "b")
>>> f = (a & ~b) | (b & ~a)
>>> f == a ^ b
True
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.bdd import cube as _cube
from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.errors import BddError


class Function:
    """A Boolean function: a node id bound to its manager."""

    __slots__ = ("manager", "node")

    def __init__(self, manager: BddManager, node: int) -> None:
        self.manager = manager
        self.node = node

    # -- constructors ---------------------------------------------------- #

    @staticmethod
    def true(manager: BddManager) -> "Function":
        """The constant TRUE function."""
        return Function(manager, TRUE)

    @staticmethod
    def false(manager: BddManager) -> "Function":
        """The constant FALSE function."""
        return Function(manager, FALSE)

    @staticmethod
    def var(manager: BddManager, name: str) -> "Function":
        """The positive literal of ``name`` (declared on first use)."""
        if manager.has_var(name):
            index = manager.var_index(name)
        else:
            index = manager.add_var(name)
        return Function(manager, manager.var_node(index))

    @staticmethod
    def vars(manager: BddManager, *names: str) -> list["Function"]:
        """Several literals at once."""
        return [Function.var(manager, name) for name in names]

    # -- operators ------------------------------------------------------- #

    def _check(self, other: "Function") -> None:
        if self.manager is not other.manager:
            raise BddError("operands belong to different managers")

    def __and__(self, other: "Function") -> "Function":
        self._check(other)
        return Function(self.manager, self.manager.apply_and(self.node, other.node))

    def __or__(self, other: "Function") -> "Function":
        self._check(other)
        return Function(self.manager, self.manager.apply_or(self.node, other.node))

    def __xor__(self, other: "Function") -> "Function":
        self._check(other)
        return Function(self.manager, self.manager.apply_xor(self.node, other.node))

    def __invert__(self) -> "Function":
        return Function(self.manager, self.manager.apply_not(self.node))

    def implies(self, other: "Function") -> "Function":
        """Implication ``self → other``."""
        self._check(other)
        return Function(self.manager, self.manager.apply_implies(self.node, other.node))

    def iff(self, other: "Function") -> "Function":
        """Biconditional ``self ≡ other``."""
        self._check(other)
        return Function(self.manager, self.manager.apply_iff(self.node, other.node))

    def ite(self, then: "Function", otherwise: "Function") -> "Function":
        """If-then-else with ``self`` as the condition."""
        self._check(then)
        self._check(otherwise)
        return Function(
            self.manager, self.manager.ite(self.node, then.node, otherwise.node)
        )

    # -- quantification --------------------------------------------------- #

    def _var_indices(self, names: Iterable[str]) -> list[int]:
        return [self.manager.var_index(n) for n in names]

    def exists(self, *names: str) -> "Function":
        """Existentially quantify the named variables."""
        return Function(
            self.manager, self.manager.exists(self.node, self._var_indices(names))
        )

    def forall(self, *names: str) -> "Function":
        """Universally quantify the named variables."""
        return Function(
            self.manager, self.manager.forall(self.node, self._var_indices(names))
        )

    # -- inspection -------------------------------------------------------- #

    @property
    def is_true(self) -> bool:
        """Whether this is the constant TRUE."""
        return self.node == TRUE

    @property
    def is_false(self) -> bool:
        """Whether this is the constant FALSE."""
        return self.node == FALSE

    def support(self) -> set[str]:
        """Names of the variables the function depends on."""
        return {self.manager.var_name(v) for v in self.manager.support(self.node)}

    def size(self) -> int:
        """Number of internal BDD nodes."""
        return self.manager.size(self.node)

    def sat_count(self, names: Iterable[str]) -> int:
        """Number of satisfying assignments over the named variables."""
        return _cube.sat_count(self.manager, self.node, self._var_indices(names))

    def evaluate(self, assignment: Mapping[str, bool | int]) -> bool:
        """Evaluate under a name -> value assignment."""
        return self.manager.eval(self.node, assignment)

    def restrict(self, assignment: Mapping[str, bool | int]) -> "Function":
        """Cofactor with respect to a name -> value assignment."""
        bindings = {
            self.manager.var_index(name): value for name, value in assignment.items()
        }
        return Function(self.manager, self.manager.cofactor_cube(self.node, bindings))

    def constrain(self, care: "Function") -> "Function":
        """Generalised cofactor: agrees with ``self`` wherever ``care``."""
        self._check(care)
        return Function(self.manager, self.manager.constrain(self.node, care.node))

    # -- garbage collection ------------------------------------------------ #

    def ref(self) -> "Function":
        """Pin this function across manager garbage collections."""
        self.manager.ref(self.node)
        return self

    def deref(self) -> "Function":
        """Release one pin taken with :meth:`ref`."""
        self.manager.deref(self.node)
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Function):
            return NotImplemented
        return self.manager is other.manager and self.node == other.node

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def __bool__(self) -> bool:
        raise BddError(
            "a Function has no truth value; use .is_true / .is_false explicitly"
        )

    def __repr__(self) -> str:
        if self.node == TRUE:
            return "Function(TRUE)"
        if self.node == FALSE:
            return "Function(FALSE)"
        return f"Function(node={self.node}, size={self.size()})"
