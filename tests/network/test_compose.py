"""Tests for generic network composition."""

from __future__ import annotations

import random

import pytest

from repro.bench import circuits
from repro.errors import NetworkError
from repro.expr.ast import Var
from repro.network import Network, latch_split
from repro.network.transform import compose_networks


def stimulus(names, cycles=20, seed=2):
    rng = random.Random(seed)
    return [{n: rng.randint(0, 1) for n in names} for _ in range(cycles)]


class TestComposeNetworks:
    def test_series_composition(self) -> None:
        # A 2-stage shifter feeding another: q -> d2 via name matching.
        a = circuits.shift_register(2)
        a = a.rename_signals({"q": "mid"})
        b = Network(name="stage2")
        b.add_input("mid")
        b.add_node("n", Var("mid"))
        b.add_latch("s9", "n", 0)
        b.add_node("q2", Var("s9"))
        b.add_output("q2")
        b.validate()
        merged = compose_networks(a, b)
        assert merged.inputs == ["d"]
        assert "q2" in merged.outputs
        # End-to-end delay of 3 cycles.
        stream = [1, 0, 1, 1, 0, 0, 1, 0]
        trace = merged.simulate([{"d": x} for x in stream])
        assert [t["q2"] for t in trace] == [0, 0, 0, 1, 0, 1, 1, 0]

    def test_recompose_equivalence(self) -> None:
        # compose_networks(F, Xp) behaves like the original circuit on
        # the surviving outputs.
        net = circuits.counter(4)
        split = latch_split(net, ["b1", "b3"])
        merged = compose_networks(split.fixed, split.unknown)
        stim = stimulus(net.inputs)
        got = merged.simulate(stim)
        want = net.simulate(stim)
        for g, w in zip(got, want):
            assert g["tc"] == w["tc"]

    def test_internal_outputs_hidden_by_default(self) -> None:
        net = circuits.counter(3)
        split = latch_split(net, ["b1"])
        merged = compose_networks(split.fixed, split.unknown)
        # The u/v wires are internal now.
        assert not any(o.startswith("u_") for o in merged.outputs)
        assert not any(o.startswith("v_") for o in merged.outputs)

    def test_keep_internal_outputs(self) -> None:
        net = circuits.counter(3)
        split = latch_split(net, ["b1"])
        merged = compose_networks(
            split.fixed, split.unknown, keep_internal_outputs=True
        )
        assert any(o.startswith("u_") for o in merged.outputs)

    def test_collision_rejected(self) -> None:
        a = Network(name="a")
        a.add_input("x")
        a.add_node("g", Var("x"))
        a.add_output("g")
        b = Network(name="b")
        b.add_input("x")
        b.add_node("g", Var("x"))
        b.add_output("g")
        with pytest.raises(NetworkError):
            compose_networks(a, b)

    def test_combinational_loop_rejected(self) -> None:
        a = Network(name="a")
        a.add_input("p")
        a.add_node("q", Var("p"))
        a.add_output("q")
        b = Network(name="b")
        b.add_input("q")
        b.add_node("p", Var("q"))
        b.add_output("p")
        with pytest.raises(NetworkError, match="cycle"):
            compose_networks(a, b)

    def test_shared_primary_input(self) -> None:
        # Both networks read the same free input: stays a single PI.
        a = Network(name="a")
        a.add_input("clk_en")
        a.add_node("ga", Var("clk_en"))
        a.add_output("ga")
        b = Network(name="b")
        b.add_input("clk_en")
        b.add_node("gb", Var("clk_en"))
        b.add_output("gb")
        merged = compose_networks(a, b)
        assert merged.inputs == ["clk_en"]
        outs, _ = merged.step({}, {"clk_en": 1})
        assert outs == {"ga": 1, "gb": 1}
