"""Language-level queries: membership, emptiness, containment, equivalence.

Containment is the workhorse of the paper's verification step
(Section 4): ``X_P ⊆ X`` and ``F ∘ X ⊆ S`` are both language-containment
checks.  ``L(A) ⊆ L(B)`` is decided by complementing a determinized
completed ``B`` and checking emptiness of the product with ``A``; a
counterexample word is returned when containment fails.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.bdd import pick_minterm
from repro.bdd.manager import FALSE, BddManager
from repro.errors import AutomatonError
from repro.automata.automaton import Automaton
from repro.automata.ops import complement, complete, determinize, product


def accepts(aut: Automaton, word: Sequence[Mapping[str, int]]) -> bool:
    """Whether ``aut`` accepts ``word`` (a sequence of full letters).

    Works for non-deterministic automata via on-the-fly subset tracking.
    The empty word is accepted iff the initial state is accepting.
    """
    if aut.initial is None:
        return False
    current = {aut.initial}
    for letter in word:
        missing = set(aut.variables) - set(letter)
        if missing:
            raise AutomatonError(f"letter misses variables: {sorted(missing)}")
        nxt: set[int] = set()
        for sid in current:
            nxt.update(aut.successors(sid, letter))
        if not nxt:
            return False
        current = nxt
    return bool(current & aut.accepting)


def enumerate_language(
    aut: Automaton, max_length: int
) -> set[tuple[tuple[int, ...], ...]]:
    """All accepted words of length <= ``max_length`` (brute force).

    Exponential in word length and alphabet width — test helper only.
    Letters are tuples aligned with :attr:`Automaton.variables`.
    """
    words: set[tuple[tuple[int, ...], ...]] = set()
    letters = list(aut.letters())
    for length in range(max_length + 1):
        for combo in itertools.product(letters, repeat=length):
            word = [aut.letter_dict(letter) for letter in combo]
            if accepts(aut, word):
                words.add(tuple(combo))
    return words


def is_empty(aut: Automaton) -> bool:
    """Whether the language is empty (no reachable accepting state)."""
    if aut.initial is None:
        return True
    return not any(sid in aut.accepting for sid in aut.reachable_states())


@dataclass
class ContainmentResult:
    """Outcome of a containment check, with a counterexample when it fails."""

    holds: bool
    counterexample: list[dict[str, int]] | None = None

    def __bool__(self) -> bool:
        return self.holds


def contained_in(a: Automaton, b: Automaton) -> ContainmentResult:
    """Decide ``L(a) ⊆ L(b)`` and produce a witness word otherwise.

    Both automata must share a manager and alphabet.
    """
    if a.manager is not b.manager:
        raise AutomatonError("containment requires a shared manager")
    if set(a.variables) != set(b.variables):
        raise AutomatonError(
            f"alphabet mismatch: {a.variables} vs {b.variables}"
        )
    bad = product(a, complement(complete(determinize(b))))
    witness = _find_accepting_word(bad)
    if witness is None:
        return ContainmentResult(True)
    return ContainmentResult(False, witness)


def equivalent(a: Automaton, b: Automaton) -> bool:
    """Language equivalence via two containment checks."""
    return bool(contained_in(a, b)) and bool(contained_in(b, a))


def _find_accepting_word(aut: Automaton) -> list[dict[str, int]] | None:
    """BFS for a word reaching an accepting state; None if language empty."""
    if aut.initial is None:
        return None
    mgr: BddManager = aut.manager
    variables = aut.variable_indices()
    parents: dict[int, tuple[int, int] | None] = {aut.initial: None}
    queue = [aut.initial]
    target = None
    if aut.initial in aut.accepting:
        return []
    while queue and target is None:
        sid = queue.pop(0)
        for dst, label in aut.edges[sid].items():
            if label == FALSE or dst in parents:
                continue
            parents[dst] = (sid, label)
            if dst in aut.accepting:
                target = dst
                break
            queue.append(dst)
    if target is None:
        return None
    # Reconstruct letters along the path.
    path: list[dict[str, int]] = []
    node = target
    while parents[node] is not None:
        src, label = parents[node]  # type: ignore[misc]
        assignment = pick_minterm(mgr, label, variables)
        path.append({mgr.var_name(v): val for v, val in assignment.items()})
        node = src
    path.reverse()
    return path


def sample_words(
    aut: Automaton, count: int, max_length: int, *, seed: int = 0
) -> Iterable[list[dict[str, int]]]:
    """Random words over the alphabet (not necessarily accepted).

    Useful for differential testing of two automata: feed the same word
    to both and compare acceptance.
    """
    import random

    rng = random.Random(seed)
    for _ in range(count):
        length = rng.randint(0, max_length)
        word = [
            {name: rng.randint(0, 1) for name in aut.variables}
            for _ in range(length)
        ]
        yield word
