#!/usr/bin/env python
"""Tour of the adaptive kernel runtime: self-tuning GC + dynamic reordering.

Three short acts:

1. build a function under the *worst* variable order (all ``x`` above
   all ``y`` for Σ x_i·y_i — exponentially sized) and watch GC-triggered
   in-place sifting discover the interleaved order mid-build, while the
   held edge stays valid throughout;
2. show the adaptive GC policy backing off after unprofitable sweeps;
3. run a real language-equation solve with ``reorder="sift"`` /
   ``gc="adaptive"`` and read the kernel counters.

Run:  python examples/adaptive_runtime_tour.py
"""

import sys
from pathlib import Path

try:  # src layout: let `python examples/<name>.py` run without installing
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bdd import BddManager, GcPolicy, ReorderPolicy
from repro.bench import circuits
from repro.eqn import solve_latch_split, verify_solution


def act_one_reorder() -> None:
    print("== 1. GC-triggered in-place reordering ==")
    n = 9
    mgr = BddManager(
        gc_policy=GcPolicy(mode="adaptive", min_live=50, growth=1.05),
        reorder_policy=ReorderPolicy(
            mode="auto", min_live=0, window=1, reclaim_threshold=0.3
        ),
    )
    xs = mgr.add_vars([f"x{i}" for i in range(n)])
    ys = mgr.add_vars([f"y{i}" for i in range(n)])
    f = 0
    for x, y in zip(xs, ys):
        new = mgr.apply_or(f, mgr.apply_and(mgr.var_node(x), mgr.var_node(y)))
        mgr.ref(new)
        mgr.deref(f)
        f = new
        mgr.maybe_collect_garbage()  # the policies live on this path
    stats = mgr.stats
    print(f"  f = Σ x_i·y_i over {2 * n} vars, built blocked (x…, y…)")
    print(f"  final size(f) = {mgr.size(f)} nodes (blocked order needs ~2^{n})")
    print(
        f"  peak_live={stats['peak_live_nodes']}  gc_runs={stats['gc_runs']}  "
        f"reorders={stats['reorder_runs']}  swaps={stats['reorder_swaps']}"
    )
    print(f"  order now interleaved: {mgr.var_order()[:6]} …")
    assert mgr.eval_vars(f, {v: 1 for v in xs + ys})
    assert not mgr.eval_vars(f, {v: 0 for v in xs + ys})
    print("  held edge still evaluates correctly after every reorder ✓")


def act_two_adaptive_gc() -> None:
    print("== 2. Self-tuning garbage collection ==")
    mgr = BddManager(
        gc_policy=GcPolicy(mode="adaptive", min_live=8, growth=1.0, window=2)
    )
    mgr.add_vars([f"v{i}" for i in range(6)])
    g = 1
    for i in range(6):
        g = mgr.ref(mgr.apply_and(g, mgr.var_node(i)))  # pin everything
    print(f"  floor before: {mgr.gc_policy.floor} nodes, everything pinned")
    mgr.collect_garbage()
    mgr.collect_garbage()  # two sweeps reclaiming nothing → back-off
    print(
        f"  after 2 unprofitable sweeps: floor={mgr.gc_policy.floor}, "
        f"should_collect={mgr.should_collect()} (suppressed until real growth)"
    )


def act_three_solver() -> None:
    print("== 3. The adaptive runtime inside a real solve ==")
    result = solve_latch_split(
        circuits.counter(5),
        ["b3", "b4"],
        method="partitioned",
        reorder="sift",
        gc="adaptive",
    )
    stats = result.problem.manager.stats
    print(f"  {result.summary()}")
    print(
        f"  kernel: gc_runs={stats['gc_runs']} "
        f"reclaim_ratio_avg={stats['reclaim_ratio_avg']:.2f} "
        f"reorders={stats['reorder_runs']}"
    )
    report = verify_solution(result)
    print(f"  verification: {report.summary()}")
    assert report.ok


def main() -> None:
    act_one_reorder()
    act_two_adaptive_gc()
    act_three_solver()
    print("done.")


if __name__ == "__main__":
    main()
