"""Tests for sat counting, cube/minterm enumeration and picking."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.bdd import (
    FALSE,
    TRUE,
    BddManager,
    iter_cubes,
    iter_minterms,
    pick_cube,
    pick_minterm,
    sat_count,
)
from repro.errors import BddError
from tests.strategies import DEFAULT_VARS, all_assignments, expressions


def build(expr):
    mgr = BddManager()
    mgr.add_vars(DEFAULT_VARS)
    return mgr, expr.to_bdd(mgr)


def brute_count(expr) -> int:
    return sum(1 for env in all_assignments(DEFAULT_VARS) if expr.evaluate(env))


@given(expressions())
@settings(max_examples=100, deadline=None)
def test_sat_count_matches_brute_force(expr) -> None:
    mgr, node = build(expr)
    variables = [mgr.var_index(n) for n in DEFAULT_VARS]
    assert sat_count(mgr, node, variables) == brute_count(expr)


@given(expressions())
@settings(max_examples=75, deadline=None)
def test_minterms_enumerate_exactly_the_models(expr) -> None:
    mgr, node = build(expr)
    variables = [mgr.var_index(n) for n in DEFAULT_VARS]
    got = {mt for mt in iter_minterms(mgr, node, variables)}
    want = {
        tuple(env[n] for n in DEFAULT_VARS)
        for env in all_assignments(DEFAULT_VARS)
        if expr.evaluate(env)
    }
    assert got == want


@given(expressions())
@settings(max_examples=75, deadline=None)
def test_cubes_cover_exactly_the_function(expr) -> None:
    mgr, node = build(expr)
    cubes = list(iter_cubes(mgr, node))
    for env in all_assignments(DEFAULT_VARS):
        covered = any(
            all(env[mgr.var_name(v)] == val for v, val in cube.items())
            for cube in cubes
        )
        assert covered == expr.evaluate(env)


@given(expressions())
@settings(max_examples=75, deadline=None)
def test_cubes_are_disjoint(expr) -> None:
    mgr, node = build(expr)
    cubes = list(iter_cubes(mgr, node))
    for env in all_assignments(DEFAULT_VARS):
        hits = sum(
            1
            for cube in cubes
            if all(env[mgr.var_name(v)] == val for v, val in cube.items())
        )
        assert hits <= 1


@given(expressions())
@settings(max_examples=100, deadline=None)
def test_pick_cube_satisfies(expr) -> None:
    mgr, node = build(expr)
    if node == FALSE:
        with pytest.raises(BddError):
            pick_cube(mgr, node)
        return
    cube = pick_cube(mgr, node)
    env = {n: 0 for n in DEFAULT_VARS}
    env.update({mgr.var_name(v): val for v, val in cube.items()})
    assert expr.evaluate(env)


@given(expressions())
@settings(max_examples=75, deadline=None)
def test_pick_minterm_is_full_and_satisfying(expr) -> None:
    mgr, node = build(expr)
    variables = [mgr.var_index(n) for n in DEFAULT_VARS]
    if node == FALSE:
        return
    mt = pick_minterm(mgr, node, variables)
    assert set(mt) == set(variables)
    assert mgr.eval_vars(node, mt)


def test_sat_count_requires_support_coverage() -> None:
    mgr = BddManager()
    a, b = mgr.add_vars(["a", "b"])
    f = mgr.apply_and(mgr.var_node(a), mgr.var_node(b))
    with pytest.raises(BddError):
        sat_count(mgr, f, [a])


def test_sat_count_counts_dont_cares() -> None:
    mgr = BddManager()
    a, b, c = mgr.add_vars(["a", "b", "c"])
    f = mgr.var_node(a)
    assert sat_count(mgr, f, [a, b, c]) == 4
    assert sat_count(mgr, TRUE, [a, b, c]) == 8
    assert sat_count(mgr, FALSE, [a, b, c]) == 0


def test_minterms_of_constant_true() -> None:
    mgr = BddManager()
    a, b = mgr.add_vars(["a", "b"])
    assert len(list(iter_minterms(mgr, TRUE, [a, b]))) == 4
    assert list(iter_minterms(mgr, FALSE, [a, b])) == []
