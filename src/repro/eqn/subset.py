"""The modified subset construction (Section 3.2).

This driver realises the paper's key algorithmic point: given the
partitioned representations, *all* steps of Algorithm 1 — completion,
complementation, product, hiding — "are essentially embedded into a
modified determinization procedure".  The driver enumerates subset states
of the product ``F × complement(S)`` explicitly (each subset is a
characteristic-function BDD ψ over the product state variables) and asks
a :class:`TransitionOracle` for the outgoing structure of each subset:

* conforming ``(u,v)`` classes with their successor subsets (the
  cofactor classes of ``P'_ψ``),
* the completion condition routed to the accepting ``DCA`` state
  ("which are not contained in Q_ψ" and have no successor),
* non-conforming classes are either trimmed on the fly (``DCN``
  shortcut, footnote 9) or routed to explicit non-accepting subsets when
  the oracle runs with trimming disabled (the E6 ablation).

The partitioned and monolithic flows differ *only* in how their oracle
computes ``P_ψ`` and ``Q_ψ`` — which is exactly the paper's experimental
comparison.

Frontier batching
-----------------

The driver is split into a **frontier scheduler** and a **batched oracle
protocol**.  The scheduler (:class:`FrontierScheduler`) owns the pending
subset states and slices them into batches under a pluggable ordering
strategy (``dfs`` — the classic worklist, ``bfs`` — level order,
``size`` — smallest-ψ-first); deduplication against the seen-ψ table
happens before a state ever enters the frontier, so a batch never
contains the same ψ twice.  Oracles that implement
``expand_batch(psis) -> [(edges, dca), ...]`` receive whole batches —
the partitioned oracle uses this to pipeline all of a batch's image
computations across its shard pool and to share completion-condition
work between sibling subsets; oracles exposing only the single-item
``expand`` are driven one ψ at a time regardless of ``batch_size``
(batching an oracle that cannot pin intermediate results across sibling
expansions would be unsound under opportunistic GC).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Protocol

from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.errors import EquationError
from repro.automata.automaton import Automaton
from repro.eqn.problem import EquationProblem
from repro.util.limits import ResourceLimit

#: Frontier orderings accepted by :class:`FrontierScheduler`.
STRATEGIES = ("dfs", "bfs", "size")


@dataclass
class SubsetEdge:
    """One outgoing (u,v)-class of a subset state."""

    cond: int  # BDD over the (u, v) letter variables
    successor: int  # ψ' BDD over the product cs variables
    accepting: bool = True  # False only in no-trim mode (DC1-containing)


class TransitionOracle(Protocol):
    """What the subset driver needs from a solver flow."""

    def initial(self) -> int:
        """Initial subset ψ0 (a cube over the product state variables)."""

    def is_accepting(self, psi: int) -> bool:
        """Whether a subset state is accepting in the final solution."""

    def expand(self, psi: int) -> tuple[list[SubsetEdge], int]:
        """Outgoing edges of ψ plus the DCA completion condition."""

    def expand_batch(
        self, psis: list[int]
    ) -> list[tuple[list[SubsetEdge], int]]:
        """Expand a whole frontier batch; one ``expand`` result per ψ.

        Optional (checked with ``getattr``).  Implementations must keep
        every already-produced edge label and successor alive across the
        remaining expansions of the batch (the driver pins them only
        after the batch returns); both solver oracles do this.
        """

    def live_roots(self) -> list[int]:
        """BDDs the oracle needs alive across garbage collections.

        Optional (checked with ``getattr``); oracles without it simply
        disable opportunistic garbage collection in the driver.
        """

    def run_stats(self) -> dict:
        """Oracle-side instrumentation merged into ``SubsetStats.extra``.

        Optional (checked with ``getattr``); the partitioned oracle
        reports completion-memo hit rates and, when sharded, ψ-transfer
        and pool command counters.
        """


class FrontierScheduler:
    """Pending subset states, ordered by a pluggable strategy.

    The scheduler only *orders* the frontier; deduplication is the
    caller's job (the driver's seen-ψ table guards ``push``), which
    keeps every ψ in the frontier unique — a batch can never contain
    duplicates.

    Strategies
    ----------
    ``dfs``
        Last-in-first-out — with ``batch_size=1`` this is exactly the
        classic worklist order of the unbatched driver.
    ``bfs``
        First-in-first-out level order; batches then group sibling
        subsets discovered by the same expansions, which is what makes
        the completion-condition memo hit across a batch.
    ``size``
        Smallest ψ (by BDD node count, measured when the state enters
        the frontier) first: cheap subsets expand early, which keeps
        the manager small while the seen-table fills with the easy
        states.
    """

    def __init__(self, mgr: BddManager, strategy: str = "dfs") -> None:
        if strategy not in STRATEGIES:
            raise EquationError(
                f"unknown frontier strategy {strategy!r}; choose from {STRATEGIES}"
            )
        self.mgr = mgr
        self.strategy = strategy
        self._pending: deque[int] = deque()
        # size strategy: a heap of (push-time size, seq, ψ).  Sizing at
        # push keeps take() at O(log n) per ψ instead of re-walking
        # every pending DAG per batch; ties break by insertion order.
        self._heap: list[tuple[int, int, int]] = []
        self._seq = 0

    def __len__(self) -> int:
        if self.strategy == "size":
            return len(self._heap)
        return len(self._pending)

    def push(self, psi: int) -> None:
        """Add a (new, deduplicated) subset state to the frontier."""
        if self.strategy == "size":
            heappush(self._heap, (self.mgr.size(psi), self._seq, psi))
            self._seq += 1
            return
        self._pending.append(psi)

    def take(self, batch_size: int) -> list[int]:
        """Remove and return the next batch (at most ``batch_size`` ψ)."""
        if self.strategy == "size":
            k = min(max(1, batch_size), len(self._heap))
            return [heappop(self._heap)[2] for _ in range(k)]
        k = min(max(1, batch_size), len(self._pending))
        if self.strategy == "bfs":
            return [self._pending.popleft() for _ in range(k)]
        return [self._pending.pop() for _ in range(k)]


def expand_batch_pinned(
    mgr: BddManager,
    psis: list[int],
    expand_one,
) -> list[tuple[list[SubsetEdge], int]]:
    """Map ``expand_one`` over a batch, pinning sibling results.

    The shared in-process half of the oracles' ``expand_batch``
    contract: a later expansion's image folds may collect garbage, and
    the driver only pins what it stores *after* the whole batch
    returns, so every already-produced edge label, successor and DCA
    condition is ref'd while the rest of the batch runs (and deref'd
    before returning — nothing between the return and the driver's own
    pinning can trigger a collection).
    """
    out: list[tuple[list[SubsetEdge], int]] = []
    held: list[int] = []
    try:
        for psi in psis:
            edges, dca = expand_one(psi)
            out.append((edges, dca))
            if len(psis) > 1:
                for edge in edges:
                    held.append(mgr.ref(edge.cond))
                    held.append(mgr.ref(edge.successor))
                held.append(mgr.ref(dca))
    finally:
        for f in held:
            mgr.deref(f)
    return out


@dataclass
class SubsetStats:
    """Instrumentation of one subset construction run."""

    subsets: int = 0
    edges: int = 0
    dca_edges: int = 0
    batches: int = 0
    peak_nodes: int = 0
    extra: dict = field(default_factory=dict)


def subset_construct(
    oracle: TransitionOracle,
    problem: EquationProblem,
    *,
    limit: ResourceLimit | None = None,
    strategy: str = "dfs",
    batch_size: int = 1,
) -> tuple[Automaton, SubsetStats]:
    """Run the modified subset construction and build the solution.

    Returns the most general prefix-closed solution automaton ``X`` over
    the ``(u, v)`` alphabet (with trimming, every subset state is
    accepting and ``DCA`` is the accepting completion state) plus run
    statistics.  With a no-trim oracle, non-accepting subset states are
    produced and must be removed by ``prefix_close`` afterwards.

    ``strategy`` picks the frontier ordering (see
    :class:`FrontierScheduler`) and ``batch_size`` how many subset
    states are handed to the oracle per ``expand_batch`` call.  The
    defaults (``"dfs"``, ``1``) reproduce the classic one-ψ-at-a-time
    worklist bit for bit.  Whatever the settings, the *set* of subsets,
    edges and the extracted CSF are identical — only discovery order
    (and therefore state numbering) can differ between batch sizes.

    The wall-clock budget is checked once per batch (a batch is the
    oracle's atomic unit of work), so with ``batch_size > 1`` a
    ``max_seconds`` abort can overshoot by up to one batch of
    expansions — the price of pipelining; budget-critical CNC runs
    should keep the default batch size.
    """
    mgr = problem.manager
    budget = limit if limit is not None else ResourceLimit.unlimited()
    if batch_size < 1:
        raise EquationError(f"batch_size must be >= 1, got {batch_size}")
    aut = Automaton(mgr, tuple(problem.uv_names()))
    stats = SubsetStats()

    psi0 = oracle.initial()
    if psi0 == FALSE:
        raise EquationError("initial subset state is empty")
    ids: dict[int, int] = {}
    frontier = FrontierScheduler(mgr, strategy)

    # Everything that must survive a kernel garbage collection is pinned
    # as it is created: the oracle's relation parts/plans, every subset ψ
    # (the keys of ``ids``) and every edge-label BDD stored in the growing
    # automaton.  With those roots held, the driver can let the manager
    # reclaim the per-expansion intermediates (P_ψ, Q_ψ, cofactor churn)
    # whenever its growth trigger arms — long runs stay bounded.  The
    # pins also license GC-triggered dynamic reordering (``--reorder
    # auto``): a sift fired after an unprofitable sweep rewrites the
    # state-variable levels in place, so ψ keys, edge labels and plans
    # all keep their edges; the letter block is fenced off by the
    # problem's reorder boundary, preserving the split_by_vars order
    # requirement mid-run.
    roots_fn = getattr(oracle, "live_roots", None)
    gc_enabled = roots_fn is not None
    if gc_enabled:
        for root in roots_fn():
            mgr.ref(root)

    def subset_id(psi: int, accepting: bool) -> int:
        sid = ids.get(psi)
        if sid is None:
            sid = aut.add_state(f"q{len(ids)}", accepting=accepting)
            ids[psi] = sid
            frontier.push(psi)
            stats.subsets += 1
            if gc_enabled:
                mgr.ref(psi)
        return sid

    subset_id(psi0, oracle.is_accepting(psi0))
    expand_batch = getattr(oracle, "expand_batch", None)
    # Oracles without the batch protocol cannot pin intermediates across
    # sibling expansions, so they are driven one ψ at a time.
    effective_batch = batch_size if expand_batch is not None else 1
    dca_id: int | None = None
    while frontier:
        budget.check_time()
        batch = frontier.take(effective_batch)
        if expand_batch is not None:
            results = expand_batch(batch)
        else:
            results = [oracle.expand(psi) for psi in batch]
        stats.batches += 1
        for psi, (edges, dca_cond) in zip(batch, results):
            src = ids[psi]
            for edge in edges:
                dst = subset_id(edge.successor, edge.accepting)
                aut.add_edge(src, dst, edge.cond)
                if gc_enabled and edge.cond != FALSE:
                    # Pin the *stored* label: add_edge merges parallel
                    # edges with OR, so the bucket value is what must
                    # stay alive.
                    mgr.ref(aut.edges[src][dst])
                stats.edges += 1
            if dca_cond != FALSE:
                if dca_id is None:
                    dca_id = aut.add_state("DCA", accepting=True)
                    aut.add_edge(dca_id, dca_id, TRUE)
                aut.add_edge(src, dca_id, dca_cond)
                if gc_enabled:
                    mgr.ref(aut.edges[src][dca_id])
                stats.dca_edges += 1
        stats.peak_nodes = max(stats.peak_nodes, len(mgr))
        if gc_enabled:
            mgr.maybe_collect_garbage()
    run_stats = getattr(oracle, "run_stats", None)
    if run_stats is not None:
        stats.extra.update(run_stats())
    return aut, stats
