"""Experiment E2: the paper's Figure 3 worked example, reproduced exactly.

The paper shows a 1-input/1-output/2-latch circuit, its (incomplete)
automaton with reachable states 00, 01, 10, and the completed automaton
with the non-accepting DC state.  We check every state and arc, then
solve the latch-split equation on the same circuit with all three flows.
"""

from __future__ import annotations

import pytest

from repro.bdd.manager import TRUE
from repro.bench import figure3_network
from repro.automata import (
    accepts,
    complete,
    equivalent,
    network_to_automaton,
)
from repro.eqn import (
    build_latch_split_problem,
    solve_equation,
    verify_solution,
)


@pytest.fixture()
def aut():
    return network_to_automaton(figure3_network())


def ids_by_name(a):
    return {name: sid for sid, name in enumerate(a.state_names)}


class TestFigure3Automaton:
    def test_reachable_states(self, aut) -> None:
        assert sorted(aut.state_names) == ["00", "01", "10"]

    def test_every_arc_of_the_figure(self, aut) -> None:
        n = ids_by_name(aut)
        arcs = {
            # (src, i, o) -> dst   ; labels as in the figure (i o)
            ("00", 0, 0): "01",
            ("00", 1, 0): "00",
            ("01", 0, 1): "01",
            ("01", 1, 1): "10",
            ("10", 0, 1): "01",
            ("10", 1, 1): "01",
        }
        for (src, i, o), dst in arcs.items():
            assert aut.successors(n[src], {"i": i, "o": o}) == [n[dst]], (src, i, o)

    def test_undefined_transitions_match_figure(self, aut) -> None:
        n = ids_by_name(aut)
        # From (00): letters -1 (o=1) are undefined; from (01)/(10): -0.
        for i in (0, 1):
            assert aut.successors(n["00"], {"i": i, "o": 1}) == []
            assert aut.successors(n["01"], {"i": i, "o": 0}) == []
            assert aut.successors(n["10"], {"i": i, "o": 0}) == []

    def test_completion_adds_shaded_dc_state(self, aut) -> None:
        completed = complete(aut)
        n = ids_by_name(completed)
        dc = n["DC"]
        assert dc not in completed.accepting
        assert completed.edges[dc] == {dc: TRUE}
        # The previously undefined letters now lead to DC.
        assert completed.successors(n["00"], {"i": 1, "o": 1}) == [dc]
        # The example transition labelled "-1" from (00) in the figure.
        assert completed.successors(n["00"], {"i": 0, "o": 1}) == [dc]

    def test_accepting_states_are_the_reachable_ones(self, aut) -> None:
        assert aut.accepting == set(range(3))

    def test_language_spot_checks(self, aut) -> None:
        # The paper's narrative: from 00 under input 0 output is 0 -> 01.
        assert accepts(aut, [{"i": 0, "o": 0}])
        assert not accepts(aut, [{"i": 0, "o": 1}])
        assert accepts(aut, [{"i": 0, "o": 0}, {"i": 1, "o": 1}])


class TestFigure3Equation:
    @pytest.mark.parametrize("x_latches", [["cs1"], ["cs2"], ["cs1", "cs2"]])
    def test_three_flows_agree(self, x_latches) -> None:
        prob = build_latch_split_problem(figure3_network(), x_latches)
        results = {
            method: solve_equation(prob, method=method)
            for method in ("partitioned", "monolithic", "explicit")
        }
        assert equivalent(
            results["partitioned"].csf, results["monolithic"].csf
        )
        assert equivalent(results["partitioned"].csf, results["explicit"].csf)

    def test_solution_verifies(self) -> None:
        prob = build_latch_split_problem(figure3_network(), ["cs1"])
        result = solve_equation(prob, method="partitioned")
        report = verify_solution(result)
        assert report.ok, report.summary()

    def test_solution_contains_more_than_particular(self) -> None:
        # The CSF must offer strictly more behaviours than X_P alone
        # (flexibility): X_P ⊆ X and not X ⊆ X_P.
        from repro.automata import contained_in
        from repro.eqn import particular_solution_automaton

        prob = build_latch_split_problem(figure3_network(), ["cs1"])
        result = solve_equation(prob, method="partitioned")
        xp = particular_solution_automaton(prob)
        assert contained_in(xp, result.csf).holds
        assert not contained_in(result.csf, xp).holds
