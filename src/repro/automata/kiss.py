"""KISS2 import/export for automata.

KISS2 is the venerable FSM interchange format used by SIS/MVSIS/BALM.
We use the automaton flavour: a transition line is

    <input-cube> <current-state> <next-state>

where the "input" field covers *all* alphabet variables of the automaton
(for an FSM read as an automaton, that is the concatenation of the FSM's
input and output bits — the paper's "simple syntactic change").

Directives supported: ``.i`` (alphabet width), ``.s`` (state count),
``.p`` (transition count), ``.r`` (reset state), ``.ilb`` (alphabet
variable names), ``.accepting`` (extension: names of accepting states —
all states are accepting when absent, matching prefix-closed FSMs).
"""

from __future__ import annotations

from repro.bdd import iter_cubes
from repro.bdd.manager import BddManager
from repro.errors import AutomatonError
from repro.automata.automaton import Automaton


def write_kiss(aut: Automaton) -> str:
    """Render an automaton in KISS2 text."""
    if aut.initial is None:
        raise AutomatonError("cannot write an automaton with no states")
    mgr = aut.manager
    lines = [
        f".i {len(aut.variables)}",
        ".o 0",
        f".ilb {' '.join(aut.variables)}",
        f".s {aut.num_states}",
        f".r {aut.state_names[aut.initial]}",
    ]
    rows: list[str] = []
    for src, bucket in enumerate(aut.edges):
        for dst, label in bucket.items():
            for cube in iter_cubes(mgr, label):
                bits = []
                for name in aut.variables:
                    value = cube.get(mgr.var_index(name))
                    bits.append("-" if value is None else str(value))
                rows.append(
                    f"{''.join(bits)} {aut.state_names[src]} {aut.state_names[dst]}"
                )
    lines.append(f".p {len(rows)}")
    lines.extend(rows)
    if aut.accepting != set(range(aut.num_states)):
        names = " ".join(aut.state_names[s] for s in sorted(aut.accepting))
        lines.append(f".accepting {names}")
    lines.append(".e")
    return "\n".join(lines) + "\n"


def parse_kiss(text: str, manager: BddManager | None = None) -> Automaton:
    """Parse KISS2 text into an automaton.

    Alphabet variable names come from ``.ilb`` when present, otherwise
    ``x0..x{n-1}``.  Variables are declared in ``manager`` on demand.
    """
    width: int | None = None
    names: list[str] | None = None
    reset: str | None = None
    accepting_names: list[str] | None = None
    rows: list[tuple[str, str, str]] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        if tokens[0] == ".i":
            width = int(tokens[1])
        elif tokens[0] == ".ilb":
            names = tokens[1:]
        elif tokens[0] == ".r":
            reset = tokens[1]
        elif tokens[0] == ".accepting":
            accepting_names = tokens[1:]
        elif tokens[0] in (".o", ".s", ".p"):
            continue
        elif tokens[0] == ".e":
            break
        elif tokens[0].startswith("."):
            raise AutomatonError(f"unsupported KISS directive {tokens[0]!r}")
        else:
            if len(tokens) != 3:
                raise AutomatonError(f"malformed KISS transition: {line!r}")
            rows.append((tokens[0], tokens[1], tokens[2]))
    if width is None:
        raise AutomatonError("KISS input missing .i directive")
    variables = names if names is not None else [f"x{k}" for k in range(width)]
    if len(variables) != width:
        raise AutomatonError(".ilb width does not match .i")
    mgr = manager if manager is not None else BddManager()
    for name in variables:
        if not mgr.has_var(name):
            mgr.add_var(name)
    aut = Automaton(mgr, tuple(variables))
    ids: dict[str, int] = {}

    def state_id(name: str) -> int:
        sid = ids.get(name)
        if sid is None:
            sid = aut.add_state(name, accepting=True)
            ids[name] = sid
        return sid

    if reset is not None:
        state_id(reset)
    for cube, src, dst in rows:
        if len(cube) != width:
            raise AutomatonError(f"cube {cube!r} width != {width}")
        letter: dict[str, int] = {}
        for bit, name in zip(cube, variables):
            if bit == "1":
                letter[name] = 1
            elif bit == "0":
                letter[name] = 0
            elif bit != "-":
                raise AutomatonError(f"invalid cube character {bit!r}")
        aut.add_letter_edge(state_id(src), state_id(dst), letter)
    if reset is not None:
        aut.initial = ids[reset]
    if accepting_names is not None:
        missing = [n for n in accepting_names if n not in ids]
        if missing:
            raise AutomatonError(f"unknown accepting states: {missing}")
        aut.accepting = {ids[n] for n in accepting_names}
    return aut
