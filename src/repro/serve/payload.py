"""Result payloads: what the content-addressed cache stores.

A payload is a plain dict holding everything a warm-cache hit must
reproduce without touching a solver: the CSF automaton (states, edges
and the packed-array snapshot of every edge-label BDD —
:func:`repro.bdd.io.dump_nodes`, the same wire format the sharded
runtime ships between processes), the run's statistics, the flags it
ran under and its cold-solve timing.  Loading a payload rebuilds the
automaton in a tiny fresh manager in microseconds — no images, no
subset construction, no shard traffic.
"""

from __future__ import annotations

from repro.automata.automaton import Automaton
from repro.bdd.io import dump_nodes, load_nodes
from repro.bdd.manager import BddManager
from repro.errors import ServeError

#: Version tag of the cached result payload layout.
PAYLOAD_FORMAT = "repro-serve-result/1"


def dump_automaton(aut: Automaton) -> dict:
    """Serialise an automaton (structure + labels) into a plain dict.

    Edge labels travel as one shared :func:`dump_nodes` snapshot, so
    structure common to many labels is stored once.
    """
    mgr = aut.manager
    roots: list[int] = []
    edges: list[list[int]] = []
    for src, bucket in enumerate(aut.edges):
        for dst, label in bucket.items():
            edges.append([src, dst, len(roots)])
            roots.append(label)
    return {
        "variables": list(aut.variables),
        "state_names": list(aut.state_names),
        "accepting": sorted(aut.accepting),
        "initial": aut.initial,
        "edges": edges,
        "nodes": dump_nodes(mgr, roots),
    }


def load_automaton(data: dict, mgr: BddManager | None = None) -> Automaton:
    """Rebuild an automaton serialised by :func:`dump_automaton`.

    With no manager given, a fresh one is created (the cheap path of a
    cache hit); alphabet variables are declared on demand either way.
    """
    if mgr is None:
        mgr = BddManager()
    for name in data["variables"]:
        try:
            mgr.var_index(name)
        except KeyError:
            mgr.add_var(name)
    aut = Automaton(mgr, tuple(data["variables"]))
    for name in data["state_names"]:
        aut.add_state(name, accepting=False)
    aut.accepting = set(data["accepting"])
    aut.initial = data["initial"]
    roots = load_nodes(mgr, data["nodes"])
    for src, dst, ref in data["edges"]:
        aut.add_edge(src, dst, roots[ref])
    return aut


def dump_result(result, *, cache_key: str | None = None) -> dict:
    """Payload of one :class:`~repro.eqn.solver.SolveResult`."""
    stats = None
    if result.stats is not None:
        stats = {
            "subsets": result.stats.subsets,
            "edges": result.stats.edges,
            "dca_edges": result.stats.dca_edges,
            "batches": result.stats.batches,
            "peak_nodes": result.stats.peak_nodes,
            "extra": dict(result.stats.extra),
        }
    return {
        "format": PAYLOAD_FORMAT,
        "cache_key": cache_key,
        "method": result.method,
        "options": dict(result.options),
        "seconds": result.seconds,
        "csf_states": result.csf_states,
        "csf": dump_automaton(result.csf),
        "stats": stats,
    }


def load_result(payload: dict, mgr: BddManager | None = None) -> dict:
    """Decode a payload: the ``csf`` entry becomes a live automaton."""
    if payload.get("format") != PAYLOAD_FORMAT:
        raise ServeError(
            f"unknown result payload format {payload.get('format')!r} "
            f"(expected {PAYLOAD_FORMAT!r})"
        )
    out = dict(payload)
    out["csf"] = load_automaton(payload["csf"], mgr)
    return out


def result_kiss(payload: dict) -> str:
    """KISS2 text of a payload's CSF (the HTTP result representation).

    KISS2 is canonical given the automaton's state numbering, and both
    a cache hit and a checkpoint resume reproduce the numbering of the
    original run — so byte-equal KISS text is the end-to-end identity
    check the acceptance tests use.
    """
    from repro.automata.kiss import write_kiss

    return write_kiss(load_result(payload)["csf"])
