"""A shared, reduced, ordered BDD manager with complement edges (pure Python).

This module replaces the CUDD package the paper relies on.  It implements
the classic shared-ROBDD data structure, upgraded with the three features
that separate production kernels from toys:

* **complement edges** — an *edge* is an integer ``(node_index << 1) | sign``
  where the sign bit marks negation.  Then-edges are stored uncomplemented,
  which keeps the representation canonical, makes :meth:`~BddManager.apply_not`
  O(1) (``f ^ 1``) and lets AND/OR share computed-table entries through
  De Morgan's law.  There is a single terminal node (index 0): edge ``0`` is
  the constant FALSE and edge ``1`` its complement TRUE, so the classic
  ``f < 2`` terminal test still works on edges;
* a single *unique table* mapping ``(var, lo, hi)`` triples to regular
  edges, which guarantees canonicity (two equivalent functions share one
  edge);
* a unified, operator-tagged *computed table* (operation cache) for all
  Boolean connectives, quantification, the fused relational product
  ``and_exists`` (the workhorse of image computation), composition and
  renaming — with canonical argument ordering so commutative operations
  share entries;
* *reference-counted garbage collection* — callers pin the functions they
  hold with :meth:`~BddManager.ref` / :meth:`~BddManager.deref` or the
  ``with mgr.protect(...)`` context manager, and
  :meth:`~BddManager.collect_garbage` reclaims everything unreachable,
  sweeping dead entries out of the unique and computed tables.  Freed slots
  are recycled through a free list, so long fixpoint computations (image,
  reachability, subset construction) no longer grow without bound.

The node attribute arrays are **edge-indexed**: slot ``2n`` holds node
``n``'s children as stored, slot ``2n+1`` holds them with the complement
bit propagated.  Cofactor extraction in the recursive operators is then a
bare list index — no shift/mask arithmetic on the hot path — at the cost
of one extra (pointer-sized) slot per node.

Variable *levels* are separate from variable *indices*, so the order can be
changed (see :mod:`repro.bdd.reorder`).

All manager methods consume and produce int edges, which keeps the inner
loops fast; :class:`repro.bdd.function.Function` offers an
operator-overloaded wrapper for user-facing code.

The manager optionally enforces a node budget (``max_nodes``, counted over
*live* nodes), raising :class:`~repro.errors.BddNodeLimit` when exceeded.
The Table 1 harness uses this to emulate the paper's "CNC" (could not
complete) entries.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from contextlib import contextmanager

from repro.bdd.policy import GcPolicy, ReorderPolicy
from repro.errors import BddError, BddNodeLimit, BddOrderError

#: Edge of the constant FALSE function (terminal node, positive polarity).
FALSE = 0
#: Edge of the constant TRUE function (terminal node, complemented).
TRUE = 1

#: Sentinel level assigned to the terminal node; compares above all real
#: variable levels.
_TERMINAL_LEVEL = 1 << 60

#: ``_var`` sentinel marking a reclaimed node slot awaiting reuse.
_FREE = -2

# Operator tags for the unified computed table.  Every cache key is a tuple
# whose LAST element is one of these tags (trailing, so the most-varying
# field — the first edge — leads the tuple hash); commutative operators
# store their edge arguments in sorted order so both orientations hit the
# same entry, and complement-edge normalisation lets all four polarities of
# XOR, both AND/OR orientations, etc. share entries.  Key layouts:
#
# ==========  =====================================================
# AND, XOR    ``(f, g, op)``
# CONSTRAIN   ``(f, c, op)``
# ITE         ``(f, g, h, op)``
# COMPOSE     ``(f, g, var, op)``
# RESTRICT    ``(f, var, val, op)``
# EXISTS      ``(f, suffix_id, op)``
# ANDEX       ``(f, g, suffix_id, op)``
# RENAME      ``(f, ((old, new), ...), op)``
# ==========  =====================================================
_OP_AND = 0
_OP_XOR = 1
_OP_ITE = 2
_OP_EXISTS = 3
_OP_ANDEX = 4
_OP_COMPOSE = 5
_OP_RENAME = 6
_OP_RESTRICT = 7
_OP_CONSTRAIN = 8

#: Number of leading key positions that hold node-referencing edges, per
#: operator tag.  The garbage collector uses this to sweep computed-table
#: entries that mention a reclaimed node (stale entries must go before
#: slots are reused, or a recycled index could produce false cache hits).
_OP_EDGE_COUNT: dict[int, int] = {
    _OP_AND: 2,
    _OP_XOR: 2,
    _OP_ITE: 3,
    _OP_EXISTS: 1,
    _OP_ANDEX: 2,
    _OP_COMPOSE: 2,
    _OP_RENAME: 1,
    _OP_RESTRICT: 1,
    _OP_CONSTRAIN: 2,
}


def _key_edges(key: tuple) -> tuple[int, ...]:
    """Node-referencing edges mentioned by a computed-table key."""
    return key[: _OP_EDGE_COUNT[key[-1]]]


class BddManager:
    """A shared ROBDD manager with complement edges.

    Parameters
    ----------
    max_nodes:
        Optional budget on *live* nodes.  When the number of live nodes
        would exceed this, :class:`~repro.errors.BddNodeLimit` is raised.
    gc_min_live:
        Live-node floor below which :meth:`should_collect` never triggers
        (shorthand for a static :class:`~repro.bdd.policy.GcPolicy`).
    gc_growth:
        Growth factor over the live count after the previous collection
        that arms :meth:`should_collect`.
    gc_policy:
        Full :class:`~repro.bdd.policy.GcPolicy`; overrides the two
        shorthand knobs.  An ``"adaptive"`` policy tracks per-sweep
        reclaim ratios and backs the collection floor off when sweeps
        stop paying.
    reorder_policy:
        :class:`~repro.bdd.policy.ReorderPolicy` deciding when
        :meth:`collect_garbage` should follow an unprofitable sweep with
        an in-place sift (:func:`repro.bdd.reorder.sift`).  Defaults to
        ``"off"``.

    Examples
    --------
    >>> m = BddManager()
    >>> a, b = m.add_var("a"), m.add_var("b")
    >>> f = m.apply_and(m.var_node(a), m.var_node(b))
    >>> m.eval(f, {"a": True, "b": True})
    True
    """

    __slots__ = (
        "apply_and",
        "apply_xor",
        "_counters",
        "_computed",
        "_extref",
        "_free",
        "_gc_baseline",
        "_gc_ratio_sum",
        "_gc_reclaimed",
        "_gc_runs",
        "_hi",
        "_level2var",
        "_levels_intern",
        "_live",
        "_lo",
        "_name_to_var",
        "_node_budget",
        "_peak_live",
        "_reorder_boundaries",
        "_reorder_runs",
        "_reorder_swaps",
        "_suffix_cache",
        "_unique",
        "_var",
        "_var2level",
        "_var_names",
        "gc_policy",
        "reorder_policy",
    )

    #: Sentinel budget meaning "unlimited" (kept as an int so the hot
    #: allocation path is a single compare).
    _NO_BUDGET = 1 << 62

    def __init__(
        self,
        max_nodes: int | None = None,
        *,
        gc_min_live: int = 100_000,
        gc_growth: float = 2.0,
        gc_policy: GcPolicy | None = None,
        reorder_policy: ReorderPolicy | None = None,
    ) -> None:
        self._node_budget = self._NO_BUDGET if max_nodes is None else max_nodes
        self.gc_policy = (
            gc_policy
            if gc_policy is not None
            else GcPolicy(min_live=gc_min_live, growth=gc_growth)
        )
        self.reorder_policy = (
            reorder_policy if reorder_policy is not None else ReorderPolicy()
        )
        # Edge-indexed node attribute arrays; slots 0/1 are the two
        # polarities of the terminal (var sentinel -1).  Slot 2n holds the
        # children of node n as stored (then-edge regular), slot 2n+1 holds
        # them with the complement bit propagated.
        self._var: list[int] = [-1, -1]
        self._lo: list[int] = [0, 1]
        self._hi: list[int] = [0, 1]
        # Unique table: (var, lo_edge, hi_edge) -> regular (even) edge.
        self._unique: dict[tuple[int, int, int], int] = {}
        # Reclaimed regular edges available for reuse.
        self._free: list[int] = []
        # External reference counts: regular (even) edge -> count.
        self._extref: dict[int, int] = {}
        self._live = 1  # the terminal
        self._gc_baseline = 1
        # Unified computed table: op-tagged tuple key -> result edge.
        self._computed: dict[tuple, int] = {}
        # Interning tables for quantification level-suffixes.
        self._levels_intern: dict[tuple[int, ...], int] = {}
        self._suffix_cache: dict[tuple[int, ...], list[int]] = {}
        # Variable bookkeeping.
        self._var_names: list[str] = []
        self._name_to_var: dict[str, int] = {}
        self._var2level: list[int] = []
        self._level2var: list[int] = []
        # Statistics counters (exposed through the ``stats`` property).
        # The hot closures count into ``_counters`` (a list is a cheap
        # shared cell): [cache_hits, recursive_calls, unique_hits].
        self._counters = [0, 0, 0]
        self._gc_runs = 0
        self._gc_reclaimed = 0
        self._gc_ratio_sum = 0.0
        self._peak_live = 1
        # Levels that start a new reorder block (sifting never swaps a
        # variable across a block boundary).
        self._reorder_boundaries: set[int] = set()
        self._reorder_runs = 0
        self._reorder_swaps = 0
        self._bind_hot_ops()

    # -- back-compat shorthands for the static GC knobs ----------------- #

    @property
    def gc_min_live(self) -> int:
        """Current live-node collection floor (see :class:`GcPolicy`)."""
        return self.gc_policy.floor

    @gc_min_live.setter
    def gc_min_live(self, value: int) -> None:
        self.gc_policy.min_live = value
        self.gc_policy.floor = value

    @property
    def gc_growth(self) -> float:
        """Growth factor arming :meth:`should_collect`."""
        return self.gc_policy.growth

    @gc_growth.setter
    def gc_growth(self, value: float) -> None:
        self.gc_policy.growth = value

    @property
    def max_nodes(self) -> int | None:
        """Live-node budget (``None`` = unlimited)."""
        budget = self._node_budget
        return None if budget == self._NO_BUDGET else budget

    @max_nodes.setter
    def max_nodes(self, value: int | None) -> None:
        self._node_budget = self._NO_BUDGET if value is None else value

    # ------------------------------------------------------------------ #
    # Variables
    # ------------------------------------------------------------------ #

    def add_var(self, name: str) -> int:
        """Declare a new variable at the bottom of the order.

        Returns the variable *index* (not an edge).  Use :meth:`var_node`
        to obtain the BDD of the variable itself.
        """
        if name in self._name_to_var:
            raise BddError(f"variable {name!r} already declared")
        var = len(self._var_names)
        self._var_names.append(name)
        self._name_to_var[name] = var
        self._var2level.append(len(self._level2var))
        self._level2var.append(var)
        return var

    def add_vars(self, names: Iterable[str]) -> list[int]:
        """Declare several variables; returns their indices in order."""
        return [self.add_var(name) for name in names]

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    def var_name(self, var: int) -> str:
        """Name of variable index ``var``."""
        return self._var_names[var]

    def var_index(self, name: str) -> int:
        """Variable index of ``name``; raises ``KeyError`` if undeclared."""
        return self._name_to_var[name]

    def var_level(self, var: int) -> int:
        """Current level (position in the order) of variable ``var``."""
        return self._var2level[var]

    def var_at_level(self, level: int) -> int:
        """Variable index currently sitting at ``level``."""
        return self._level2var[level]

    def var_order(self) -> list[str]:
        """Variable names from the top of the order to the bottom."""
        return [self._var_names[v] for v in self._level2var]

    def set_order(self, names: Sequence[str]) -> None:
        """Set a complete variable order by name (top to bottom).

        All declared variables must be listed exactly once.  Only valid
        while the manager holds no internal nodes (use
        :func:`repro.bdd.reorder.reorder` afterwards).
        """
        if self._live > 1:
            raise BddError("set_order requires an empty manager; use reorder()")
        if sorted(names) != sorted(self._var_names):
            raise BddError("set_order must mention every declared variable once")
        self._level2var = [self._name_to_var[n] for n in names]
        for level, var in enumerate(self._level2var):
            self._var2level[var] = level

    def set_reorder_boundaries(self, levels: Iterable[int]) -> None:
        """Freeze reorder-block boundaries at the given levels.

        Each level in ``levels`` starts a new *block*: dynamic reordering
        (:func:`repro.bdd.reorder.sift`) only ever swaps adjacent levels
        inside one block, so variables never migrate across a boundary.
        The solver flows use this to keep the letter variables above all
        state variables — a hard requirement of the cofactor-splitting
        step (:func:`repro.bdd.cube.split_by_vars`) — while still letting
        the state block reorder freely mid-run.
        """
        self._reorder_boundaries = {int(lv) for lv in levels if lv > 0}

    @property
    def reorder_boundaries(self) -> set[int]:
        """Levels starting a new reorder block (empty = one big block)."""
        return set(self._reorder_boundaries)

    def var_node(self, var: int) -> int:
        """Edge for the positive literal of variable index ``var``."""
        return self._mk(var, FALSE, TRUE)

    def nvar_node(self, var: int) -> int:
        """Edge for the negative literal of variable index ``var``."""
        return self._mk(var, TRUE, FALSE)

    def node_var(self, f: int) -> int:
        """Top variable index of edge ``f`` (undefined for terminals)."""
        return self._var[f]

    def node_lo(self, f: int) -> int:
        """Low (else) child edge of ``f`` (complement bit propagated)."""
        return self._lo[f]

    def node_hi(self, f: int) -> int:
        """High (then) child edge of ``f`` (complement bit propagated)."""
        return self._hi[f]

    def level(self, f: int) -> int:
        """Level of the top variable of ``f`` (terminals compare last)."""
        if f < 2:
            return _TERMINAL_LEVEL
        return self._var2level[self._var[f]]

    # ------------------------------------------------------------------ #
    # Node construction
    # ------------------------------------------------------------------ #

    def _mk(self, var: int, lo: int, hi: int) -> int:
        """Find-or-create the edge for ``(var, lo, hi)`` (reduction applied).

        Canonical form: the then-edge is stored uncomplemented; when ``hi``
        carries the sign bit the node is stored with both children flipped
        and the complement moves onto the returned edge.
        """
        if lo == hi:
            return lo
        negate = hi & 1
        if negate:
            lo ^= 1
            hi ^= 1
        ukey = (var, lo, hi)
        edge = self._unique.get(ukey)
        if edge is not None:
            self._counters[2] += 1
            return edge | negate
        return self._mk_new(ukey) | negate

    def _mk_new(self, ukey: tuple[int, int, int]) -> int:
        """Allocate the (canonical, not yet present) node; returns its
        regular edge.

        The live count only ever drops at collection points, so peak-live
        tracking happens there (and in the ``stats`` property), keeping
        this path to a bare budget compare.
        """
        live = self._live
        if live >= self._node_budget:
            raise BddNodeLimit(self.max_nodes)
        var, lo, hi = ukey
        free = self._free
        if free:
            edge = free.pop()
            arr = self._var
            arr[edge] = var
            arr[edge + 1] = var
            arr = self._lo
            arr[edge] = lo
            arr[edge + 1] = lo ^ 1
            arr = self._hi
            arr[edge] = hi
            arr[edge + 1] = hi ^ 1
        else:
            arr = self._var
            edge = len(arr)
            arr.append(var)
            arr.append(var)
            arr = self._lo
            arr.append(lo)
            arr.append(lo ^ 1)
            arr = self._hi
            arr.append(hi)
            arr.append(hi ^ 1)
        self._unique[ukey] = edge
        self._live = live + 1
        return edge

    def __len__(self) -> int:
        """Number of live nodes in the manager (including the terminal)."""
        return self._live

    @property
    def num_nodes(self) -> int:
        """Number of live nodes in the manager (including the terminal)."""
        return self._live

    @property
    def allocated_nodes(self) -> int:
        """Number of node slots ever allocated (live + reusable free)."""
        return len(self._var) // 2

    # ------------------------------------------------------------------ #
    # Core connectives
    # ------------------------------------------------------------------ #

    def apply_not(self, f: int) -> int:
        """Negation — O(1) with complement edges."""
        return f ^ 1

    def _bind_hot_ops(self) -> None:
        """Bind ``apply_and`` / ``apply_xor`` as per-instance closures.

        The two hottest recursions run tens of thousands of times per
        image step; closing over the kernel state (node arrays, unique and
        computed tables, counter cell) replaces every ``self._x`` attribute
        load with a cell access and every method dispatch with a plain
        call.  All captured containers are only ever mutated *in place*
        (``clear_caches``, ``collect_garbage`` and ``compact`` update them
        with ``clear``/``update``/indexed stores), so the closures can
        never go stale.  The live count and node budget live on ``self``
        and are read through it on the (cold) allocation path.
        """
        computed = self._computed
        unique = self._unique
        var_arr = self._var
        lo_arr = self._lo
        hi_arr = self._hi
        var2level = self._var2level
        free = self._free
        counters = self._counters
        mgr = self

        def apply_and(f: int, g: int) -> int:
            """Conjunction (per-instance closure; see ``_bind_hot_ops``)."""
            if f == g:
                return f
            if f < 2 or g < 2:
                if f == 0 or g == 0:
                    return 0
                return g if f == 1 else f
            if f ^ g == 1:
                return 0
            if f > g:
                f, g = g, f
            key = (f, g, _OP_AND)
            r = computed.get(key)
            if r is not None:
                counters[0] += 1
                return r
            counters[1] += 1
            lf = var2level[var_arr[f]]
            lg = var2level[var_arr[g]]
            if lf <= lg:
                var = var_arr[f]
                f0, f1 = lo_arr[f], hi_arr[f]
            else:
                var = var_arr[g]
                f0 = f1 = f
            if lg <= lf:
                g0, g1 = lo_arr[g], hi_arr[g]
            else:
                g0 = g1 = g
            # Terminal cases are inlined at the call sites: about half of
            # all recursive calls are leaves, and skipping their frames is
            # the biggest constant-factor win available to a Python kernel.
            if f0 == g0 or g0 == 1:
                lo = f0
            elif f0 == 1:
                lo = g0
            elif f0 == 0 or g0 == 0 or f0 ^ g0 == 1:
                lo = 0
            else:
                lo = apply_and(f0, g0)
            if f1 == g1 or g1 == 1:
                hi = f1
            elif f1 == 1:
                hi = g1
            elif f1 == 0 or g1 == 0 or f1 ^ g1 == 1:
                hi = 0
            else:
                hi = apply_and(f1, g1)
            # Inlined _mk (this is the hottest path in the kernel).
            if lo == hi:
                r = lo
            else:
                negate = hi & 1
                if negate:
                    lo ^= 1
                    hi ^= 1
                ukey = (var, lo, hi)
                edge = unique.get(ukey)
                if edge is not None:
                    counters[2] += 1
                    r = edge | negate
                elif free:
                    # Freed slots exist: take the full (recycling) path.
                    r = mgr._mk_new(ukey) | negate
                else:
                    live = mgr._live
                    if live >= mgr._node_budget:
                        raise BddNodeLimit(mgr.max_nodes)
                    edge = len(var_arr)
                    var_arr.append(var)
                    var_arr.append(var)
                    lo_arr.append(lo)
                    lo_arr.append(lo ^ 1)
                    hi_arr.append(hi)
                    hi_arr.append(hi ^ 1)
                    unique[ukey] = edge
                    mgr._live = live + 1
                    r = edge | negate
            computed[key] = r
            return r

        def apply_xor(f: int, g: int) -> int:
            """Exclusive or (per-instance closure; see ``_bind_hot_ops``).

            Complement bits are factored out of both arguments, so all
            four polarities of a pair share one computed-table entry.
            """
            sign = (f ^ g) & 1
            f &= -2
            g &= -2
            if f == g:
                return sign
            if f == 0:
                return g ^ sign
            if g == 0:
                return f ^ sign
            if f > g:
                f, g = g, f
            key = (f, g, _OP_XOR)
            r = computed.get(key)
            if r is not None:
                counters[0] += 1
                return r ^ sign
            counters[1] += 1
            lf = var2level[var_arr[f]]
            lg = var2level[var_arr[g]]
            if lf <= lg:
                var = var_arr[f]
                f0, f1 = lo_arr[f], hi_arr[f]
            else:
                var = var_arr[g]
                f0 = f1 = f
            if lg <= lf:
                g0, g1 = lo_arr[g], hi_arr[g]
            else:
                g0 = g1 = g
            # Inlined terminal cases (xor(a,a)=0, xor(a,¬a)=1, xor(a,c)).
            if f0 == g0:
                lo = 0
            elif f0 ^ g0 == 1:
                lo = 1
            elif g0 < 2:
                lo = f0 ^ g0
            elif f0 < 2:
                lo = g0 ^ f0
            else:
                lo = apply_xor(f0, g0)
            if f1 == g1:
                hi = 0
            elif f1 ^ g1 == 1:
                hi = 1
            elif g1 < 2:
                hi = f1 ^ g1
            elif f1 < 2:
                hi = g1 ^ f1
            else:
                hi = apply_xor(f1, g1)
            r = mgr._mk(var, lo, hi)
            computed[key] = r
            return r ^ sign

        self.apply_and = apply_and
        self.apply_xor = apply_xor

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction — De Morgan over AND, sharing its cache entries."""
        return self.apply_and(f ^ 1, g ^ 1) ^ 1

    def apply_iff(self, f: int, g: int) -> int:
        """Biconditional (XNOR) — used to form ``ns_k ≡ T_k`` partitions."""
        return self.apply_xor(f, g) ^ 1

    def apply_implies(self, f: int, g: int) -> int:
        """Implication ``f → g``."""
        return self.apply_and(f, g ^ 1) ^ 1

    def apply_diff(self, f: int, g: int) -> int:
        """Difference ``f ∧ ¬g``."""
        return self.apply_and(f, g ^ 1)

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else ``(f ∧ g) ∨ (¬f ∧ h)``.

        Standard complement-edge normalisation: the condition and the
        then-branch are made uncomplemented, and constant branches are
        delegated to AND so they share its cache entries.
        """
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == f:
            g = TRUE
        elif g == f ^ 1:
            g = FALSE
        if h == f:
            h = FALSE
        elif h == f ^ 1:
            h = TRUE
        if g == h:
            return g
        if g == TRUE:
            if h == FALSE:
                return f
            return self.apply_and(f ^ 1, h ^ 1) ^ 1
        if g == FALSE:
            if h == TRUE:
                return f ^ 1
            return self.apply_and(f ^ 1, h)
        if h == FALSE:
            return self.apply_and(f, g)
        if h == TRUE:
            return self.apply_and(f, g ^ 1) ^ 1
        sign = 0
        if f & 1:
            f ^= 1
            g, h = h, g
        if g & 1:
            sign = 1
            g ^= 1
            h ^= 1
        key = (f, g, h, _OP_ITE)
        computed = self._computed
        r = computed.get(key)
        if r is not None:
            self._counters[0] += 1
            return r ^ sign
        self._counters[1] += 1
        top = min(self.level(f), self.level(g), self.level(h))
        var = self._level2var[top]
        f0, f1 = self._cofactors_at(f, top)
        g0, g1 = self._cofactors_at(g, top)
        h0, h1 = self._cofactors_at(h, top)
        r = self._mk(var, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        computed[key] = r
        return r ^ sign

    def _cofactors_at(self, f: int, level: int) -> tuple[int, int]:
        """Shannon cofactors of ``f`` with respect to the var at ``level``."""
        if self.level(f) == level:
            return self._lo[f], self._hi[f]
        return f, f

    # ------------------------------------------------------------------ #
    # Quantification and the relational product
    # ------------------------------------------------------------------ #

    def _levels_key(self, variables: Iterable[int]) -> tuple[int, ...]:
        """Canonical (sorted, deduplicated) level tuple for a var set."""
        return tuple(sorted({self._var2level[v] for v in variables}))

    def _suffix_ids(self, levels: tuple[int, ...]) -> list[int]:
        """Interned ids for every suffix of a quantification level tuple.

        Quantification recursions walk suffixes of the level tuple;
        interning them once per distinct set turns the computed-table keys
        into small ints and removes all per-call tuple slicing.  Suffixes
        are interned (not whole tuples), so ``exists(f, {a, b})`` still
        shares its tail work with ``exists(f, {b})``.
        """
        ids = self._suffix_cache.get(levels)
        if ids is None:
            intern = self._levels_intern
            ids = []
            for i in range(len(levels)):
                suffix = levels[i:]
                sid = intern.get(suffix)
                if sid is None:
                    sid = len(intern)
                    intern[suffix] = sid
                ids.append(sid)
            self._suffix_cache[levels] = ids
        return ids

    def exists(self, f: int, variables: Iterable[int]) -> int:
        """Existential quantification of ``variables`` (indices) from ``f``."""
        levels = self._levels_key(variables)
        if not levels:
            return f
        return self._exists_rec(f, levels, self._suffix_ids(levels), 0)

    def forall(self, f: int, variables: Iterable[int]) -> int:
        """Universal quantification of ``variables`` (indices) from ``f``."""
        return self.exists(f ^ 1, variables) ^ 1

    def _exists_rec(
        self, f: int, levels: tuple[int, ...], sids: list[int], li: int
    ) -> int:
        if f < 2:
            return f
        top = self._var2level[self._var[f]]
        # Drop quantified levels strictly above the top of f.
        n_levels = len(levels)
        while li < n_levels and levels[li] < top:
            li += 1
        if li == n_levels:
            return f
        key = (f, sids[li], _OP_EXISTS)
        computed = self._computed
        r = computed.get(key)
        if r is not None:
            self._counters[0] += 1
            return r
        self._counters[1] += 1
        lo, hi = self._lo[f], self._hi[f]
        if levels[li] == top:
            r0 = self._exists_rec(lo, levels, sids, li + 1)
            if r0 == TRUE:
                r = TRUE
            else:
                r1 = self._exists_rec(hi, levels, sids, li + 1)
                r = self.apply_and(r0 ^ 1, r1 ^ 1) ^ 1
        else:
            r = self._mk(
                self._var[f],
                self._exists_rec(lo, levels, sids, li),
                self._exists_rec(hi, levels, sids, li),
            )
        computed[key] = r
        return r

    def and_exists(self, f: int, g: int, variables: Iterable[int]) -> int:
        """Fused relational product ``∃ variables . (f ∧ g)``.

        This is the core primitive of image computation: the conjunction is
        never materialised above the quantified variables, which is what
        makes partitioned image computation feasible.
        """
        levels = self._levels_key(variables)
        if not levels:
            return self.apply_and(f, g)
        return self._andex_rec(f, g, levels, self._suffix_ids(levels), 0)

    def _andex_rec(
        self, f: int, g: int, levels: tuple[int, ...], sids: list[int], li: int
    ) -> int:
        if f == g:
            return self._exists_rec(f, levels, sids, li)
        if f < 2 or g < 2:
            if f == FALSE or g == FALSE:
                return FALSE
            return self._exists_rec(g if f == TRUE else f, levels, sids, li)
        if f ^ g == 1:
            return FALSE
        var2level = self._var2level
        var_arr = self._var
        lf = var2level[var_arr[f]]
        lg = var2level[var_arr[g]]
        top = lf if lf < lg else lg
        n_levels = len(levels)
        while li < n_levels and levels[li] < top:
            li += 1
        if li == n_levels:
            return self.apply_and(f, g)
        if f > g:
            f, g, lf, lg = g, f, lg, lf
        key = (f, g, sids[li], _OP_ANDEX)
        computed = self._computed
        r = computed.get(key)
        if r is not None:
            self._counters[0] += 1
            return r
        self._counters[1] += 1
        if lf <= lg:
            f0, f1 = self._lo[f], self._hi[f]
        else:
            f0 = f1 = f
        if lg <= lf:
            g0, g1 = self._lo[g], self._hi[g]
        else:
            g0 = g1 = g
        if levels[li] == top:
            r0 = self._andex_rec(f0, g0, levels, sids, li + 1)
            if r0 == TRUE:
                r = TRUE
            else:
                r1 = self._andex_rec(f1, g1, levels, sids, li + 1)
                r = self.apply_and(r0 ^ 1, r1 ^ 1) ^ 1
        else:
            var = self._level2var[top]
            r = self._mk(
                var,
                self._andex_rec(f0, g0, levels, sids, li),
                self._andex_rec(f1, g1, levels, sids, li),
            )
        computed[key] = r
        return r

    # ------------------------------------------------------------------ #
    # Cofactor, composition, renaming
    # ------------------------------------------------------------------ #

    def restrict(self, f: int, var: int, value: bool | int) -> int:
        """Cofactor of ``f`` with respect to ``var = value``."""
        val = 1 if value else 0
        target = self._var2level[var]
        return self._restrict_rec(f, var, val, target)

    def _restrict_rec(self, f: int, var: int, val: int, target: int) -> int:
        if f < 2 or self.level(f) > target:
            return f
        # Cofactoring commutes with negation: recurse on the regular edge
        # so both polarities share one cache entry.
        sign = f & 1
        f ^= sign
        if self._var[f] == var:
            return (self._hi[f] if val else self._lo[f]) ^ sign
        key = (f, var, val, _OP_RESTRICT)
        computed = self._computed
        r = computed.get(key)
        if r is not None:
            self._counters[0] += 1
            return r ^ sign
        self._counters[1] += 1
        r = self._mk(
            self._var[f],
            self._restrict_rec(self._lo[f], var, val, target),
            self._restrict_rec(self._hi[f], var, val, target),
        )
        computed[key] = r
        return r ^ sign

    def cofactor_cube(self, f: int, assignment: Mapping[int, bool | int]) -> int:
        """Cofactor with respect to several ``var -> value`` bindings."""
        for var, val in sorted(assignment.items(), key=lambda kv: self._var2level[kv[0]]):
            f = self.restrict(f, var, val)
        return f

    def constrain(self, f: int, c: int) -> int:
        """Generalised cofactor (Coudert-Madre constrain operator).

        Returns a function that agrees with ``f`` everywhere ``c`` holds
        (``constrain(f,c) ∧ c == f ∧ c``) and is typically smaller than
        ``f`` — the classic image-computation simplification: the
        transition parts can be constrained by the current frontier.
        ``c`` must not be FALSE.
        """
        if c == FALSE:
            raise BddError("constrain by the FALSE function")
        if c == TRUE or f < 2:
            return f
        if f == c:
            return TRUE
        if f == c ^ 1:
            return FALSE
        # Constrain commutes with negation of f (it composes f with a
        # mapping that depends only on c).
        sign = f & 1
        f ^= sign
        key = (f, c, _OP_CONSTRAIN)
        computed = self._computed
        r = computed.get(key)
        if r is not None:
            self._counters[0] += 1
            return r ^ sign
        self._counters[1] += 1
        top = min(self.level(f), self.level(c))
        f0, f1 = self._cofactors_at(f, top)
        c0, c1 = self._cofactors_at(c, top)
        if c0 == FALSE:
            r = self.constrain(f1, c1)
        elif c1 == FALSE:
            r = self.constrain(f0, c0)
        else:
            var = self._level2var[top]
            r = self._mk(var, self.constrain(f0, c0), self.constrain(f1, c1))
        computed[key] = r
        return r ^ sign

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` in ``f``."""
        target = self._var2level[var]
        return self._compose_rec(f, var, g, target)

    def _compose_rec(self, f: int, var: int, g: int, target: int) -> int:
        if f < 2 or self.level(f) > target:
            return f
        sign = f & 1
        f ^= sign
        key = (f, g, var, _OP_COMPOSE)
        computed = self._computed
        r = computed.get(key)
        if r is not None:
            self._counters[0] += 1
            return r ^ sign
        self._counters[1] += 1
        if self._var[f] == var:
            r = self.ite(g, self._hi[f], self._lo[f])
        else:
            c0 = self._compose_rec(self._lo[f], var, g, target)
            c1 = self._compose_rec(self._hi[f], var, g, target)
            r = self.ite(self.var_node(self._var[f]), c1, c0)
        computed[key] = r
        return r ^ sign

    def vector_compose(self, f: int, substitution: Mapping[int, int]) -> int:
        """Simultaneously substitute ``substitution[var]`` for each var.

        Implemented by introducing the substitutions bottom-up, which is
        correct because each single :meth:`compose` removes its variable.
        Simultaneity holds when the substituted functions do not mention
        the substituted variables; that is asserted.
        """
        sub_vars = set(substitution)
        for g in substitution.values():
            if self.support(g) & sub_vars:
                raise BddError(
                    "vector_compose requires substitutions independent of substituted vars"
                )
        for var in sorted(sub_vars, key=lambda v: self._var2level[v], reverse=True):
            f = self.compose(f, var, substitution[var])
        return f

    def rename(self, f: int, var_map: Mapping[int, int]) -> int:
        """Rename variables of ``f`` according to ``var_map`` (old -> new).

        Uses a fast structural rebuild when the mapping preserves the
        variable order; otherwise falls back to the quantification-based
        method (which requires the new variables to be absent from the
        support of ``f``).
        """
        relevant = {old: new for old, new in var_map.items() if old != new}
        if not relevant or f < 2:
            return f
        sign = f & 1
        f ^= sign
        key = (f, tuple(sorted(relevant.items())), _OP_RENAME)
        r = self._computed.get(key)
        if r is not None:
            self._counters[0] += 1
            return r ^ sign
        self._counters[1] += 1
        olds = sorted(relevant, key=lambda v: self._var2level[v])
        news = [relevant[v] for v in olds]
        new_levels = [self._var2level[v] for v in news]
        order_ok = all(new_levels[i] < new_levels[i + 1] for i in range(len(news) - 1))
        if order_ok:
            try:
                r = self._rename_rec(f, relevant, {})
            except BddOrderError:
                r = self._rename_general(f, relevant)
        else:
            r = self._rename_general(f, relevant)
        self._computed[key] = r
        return r ^ sign

    def _rename_rec(self, f: int, var_map: Mapping[int, int], memo: dict[int, int]) -> int:
        if f < 2:
            return f
        r = memo.get(f)
        if r is not None:
            return r
        lo = self._rename_rec(self._lo[f], var_map, memo)
        hi = self._rename_rec(self._hi[f], var_map, memo)
        var = var_map.get(self._var[f], self._var[f])
        level = self._var2level[var]
        if min(self.level(lo), self.level(hi)) <= level:
            raise BddOrderError("rename does not preserve the variable order")
        r = self._mk(var, lo, hi)
        memo[f] = r
        return r

    def _rename_general(self, f: int, var_map: Mapping[int, int]) -> int:
        support = self.support(f)
        if any(new in support for new in var_map.values()):
            raise BddOrderError(
                "general rename requires target variables absent from the support"
            )
        eq = TRUE
        for old, new in var_map.items():
            eq = self.apply_and(
                eq, self.apply_iff(self.var_node(old), self.var_node(new))
            )
        return self.and_exists(f, eq, list(var_map))

    # ------------------------------------------------------------------ #
    # Garbage collection
    # ------------------------------------------------------------------ #

    def ref(self, f: int) -> int:
        """Pin ``f`` as an external root; returns ``f`` for chaining.

        Referenced edges (and everything reachable from them) survive
        :meth:`collect_garbage`.  Balance with :meth:`deref`, or use the
        :meth:`protect` context manager.
        """
        n = f & -2
        if n:
            extref = self._extref
            extref[n] = extref.get(n, 0) + 1
        return f

    def deref(self, f: int) -> None:
        """Release one external reference to ``f`` (no-op below zero)."""
        n = f & -2
        if n:
            count = self._extref.get(n, 0)
            if count <= 1:
                self._extref.pop(n, None)
            else:
                self._extref[n] = count - 1

    @contextmanager
    def protect(self, *roots: int) -> Iterator["BddManager"]:
        """Context manager pinning ``roots`` for the duration of a block.

        >>> m = BddManager()
        >>> x = m.var_node(m.add_var("x"))
        >>> with m.protect(x):
        ...     _ = m.collect_garbage()
        """
        for f in roots:
            self.ref(f)
        try:
            yield self
        finally:
            for f in roots:
                self.deref(f)

    def should_collect(self) -> bool:
        """Cheap trigger delegating to :attr:`gc_policy`.

        Static policy: live nodes grew past the floor *and* the growth
        factor since the last collection.  Adaptive policy: same test,
        but the floor backs off after consecutive unprofitable sweeps
        (see :class:`~repro.bdd.policy.GcPolicy`).
        """
        return self.gc_policy.should_collect(self._live, self._gc_baseline)

    def collect_garbage(self, roots: Iterable[int] = ()) -> int:
        """Reclaim every node unreachable from refs, ``roots`` or literals.

        Returns the number of reclaimed nodes.  Edges of surviving nodes
        are stable (freed slots are recycled by later ``_mk`` calls), so
        held edges of *live* functions remain valid.  Unique-table entries
        of dead nodes are dropped and computed-table entries mentioning a
        dead node are swept before any slot can be reused — stale hits are
        impossible.  Variable literal nodes are always kept, so literal
        edges held by callers can never dangle.

        Every sweep reports its reclaim ratio to :attr:`gc_policy` (which
        may back off the collection floor) and asks :attr:`reorder_policy`
        whether the live structure should be sifted — an unprofitable
        sweep means the *live* BDDs are what is big, and only a better
        variable order shrinks those.  A triggered sift runs in place
        (:func:`repro.bdd.reorder.sift`), so every edge held by a caller
        — including ``roots`` and all pinned references — remains valid.
        """
        roots = list(roots)
        live_before = self._live
        if self._live > self._peak_live:
            self._peak_live = self._live
        var_arr, lo_arr, hi_arr = self._var, self._lo, self._hi
        marked = bytearray(len(var_arr))
        marked[0] = marked[1] = 1
        stack = list(self._extref)
        stack.extend(roots)
        unique = self._unique
        for v in range(len(self._var_names)):
            lit = unique.get((v, TRUE, FALSE))
            if lit is not None:
                stack.append(lit)
        while stack:
            e = stack.pop()
            if marked[e]:
                continue
            e &= -2
            marked[e] = marked[e + 1] = 1
            stack.append(lo_arr[e])
            stack.append(hi_arr[e])
        reclaimed = 0
        free = self._free
        for e in range(2, len(var_arr), 2):
            v = var_arr[e]
            if v == _FREE or marked[e]:
                continue
            del unique[(v, lo_arr[e], hi_arr[e])]
            var_arr[e] = var_arr[e + 1] = _FREE
            free.append(e)
            reclaimed += 1
        if reclaimed:
            self._live -= reclaimed
            computed = self._computed
            dead_keys = [
                key
                for key, val in computed.items()
                if not marked[val]
                or any(not marked[edge] for edge in _key_edges(key))
            ]
            for key in dead_keys:
                del computed[key]
        self._gc_runs += 1
        self._gc_reclaimed += reclaimed
        self._gc_baseline = self._live
        ratio = self.gc_policy.record(live_before, reclaimed)
        self._gc_ratio_sum += ratio
        if self.reorder_policy.should_reorder(self._live, ratio):
            from repro.bdd.reorder import sift

            policy = self.reorder_policy
            result = sift(
                self,
                roots,
                max_growth=policy.max_growth,
                max_vars=policy.max_vars,
            )
            self._reorder_runs += 1
            self._reorder_swaps += result.swaps
            policy.record_reorder(self._live)
            self._gc_baseline = self._live
        return reclaimed

    def maybe_collect_garbage(self, roots: Iterable[int] = ()) -> int:
        """Run :meth:`collect_garbage` iff :meth:`should_collect` is armed."""
        if self.should_collect():
            return self.collect_garbage(roots)
        return 0

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def support(self, f: int) -> set[int]:
        """Set of variable indices ``f`` depends on."""
        seen: set[int] = set()
        result: set[int] = set()
        stack = [f & -2]
        var_arr, lo_arr, hi_arr = self._var, self._lo, self._hi
        while stack:
            n = stack.pop()
            if n == 0 or n in seen:
                continue
            seen.add(n)
            result.add(var_arr[n])
            stack.append(lo_arr[n] & -2)
            stack.append(hi_arr[n] & -2)
        return result

    def size(self, f: int) -> int:
        """Number of internal nodes in the DAG rooted at ``f``.

        With complement edges, a function and its negation share all their
        nodes, so ``size(f) == size(apply_not(f))``.
        """
        return self.size_many([f])

    def size_many(self, roots: Iterable[int]) -> int:
        """Number of distinct internal nodes among several roots."""
        seen: set[int] = set()
        stack = [f & -2 for f in roots]
        lo_arr, hi_arr = self._lo, self._hi
        while stack:
            n = stack.pop()
            if n == 0 or n in seen:
                continue
            seen.add(n)
            stack.append(lo_arr[n] & -2)
            stack.append(hi_arr[n] & -2)
        return len(seen)

    def eval(self, f: int, assignment: Mapping[str, bool | int]) -> bool:
        """Evaluate ``f`` under a name -> value assignment."""
        node = f
        while node >= 2:
            name = self._var_names[self._var[node]]
            node = self._hi[node] if assignment[name] else self._lo[node]
        return node == TRUE

    def eval_vars(self, f: int, assignment: Mapping[int, bool | int]) -> bool:
        """Evaluate ``f`` under a var-index -> value assignment."""
        node = f
        while node >= 2:
            node = self._hi[node] if assignment[self._var[node]] else self._lo[node]
        return node == TRUE

    def cube(self, assignment: Mapping[int, bool | int]) -> int:
        """Build the conjunction of literals given by ``assignment``."""
        f = TRUE
        for var, val in sorted(
            assignment.items(), key=lambda kv: self._var2level[kv[0]], reverse=True
        ):
            lit = self.var_node(var) if val else self.nvar_node(var)
            f = self.apply_and(lit, f)
        return f

    # ------------------------------------------------------------------ #
    # Statistics and maintenance
    # ------------------------------------------------------------------ #

    @property
    def stats(self) -> dict[str, int | float]:
        """Counter snapshot: table hits/misses, recursion, GC and
        reordering activity.

        ``reclaim_ratio_avg`` is the mean reclaim ratio over all sweeps
        so far (1.0 when no sweep has run); ``reorder_runs`` /
        ``reorder_swaps`` count completed sifts and the adjacent-level
        swaps they performed.
        """
        gc_runs = self._gc_runs
        avg_ratio = self._gc_ratio_sum / gc_runs if gc_runs else 1.0
        return {
            "unique_hits": self._counters[2],
            "cache_hits": self._counters[0],
            # Every cache miss recurses exactly once, so the two coincide.
            "cache_misses": self._counters[1],
            "recursive_calls": self._counters[1],
            "gc_runs": gc_runs,
            "gc_reclaimed": self._gc_reclaimed,
            "reclaim_ratio_avg": avg_ratio,
            "reorder_runs": self._reorder_runs,
            "reorder_swaps": self._reorder_swaps,
            # The live count only drops at collection points, where the
            # peak is recorded; between them "now" may be the new peak.
            "peak_live_nodes": max(self._peak_live, self._live),
            "live_nodes": self._live,
        }

    def cache_hit_rate(self) -> float:
        """Computed-table hit rate over all lookups so far (0.0 when idle)."""
        hits, misses, _ = self._counters
        lookups = hits + misses
        if not lookups:
            return 0.0
        return hits / lookups

    def reset_stats(self) -> None:
        """Zero all counters (``peak_live_nodes`` restarts at the current
        live count)."""
        self._counters[:] = [0, 0, 0]
        self._gc_runs = 0
        self._gc_reclaimed = 0
        self._gc_ratio_sum = 0.0
        self._reorder_runs = 0
        self._reorder_swaps = 0
        self._peak_live = self._live

    def clear_caches(self) -> None:
        """Drop the computed table (the unique table is preserved)."""
        self._computed.clear()

    def computed_table_size(self) -> int:
        """Number of live computed-table entries."""
        return len(self._computed)

    def check(self) -> None:
        """Assert the kernel's structural invariants (slow; for tests).

        Verifies, over every live node:

        * canonical form — the stored then-edge is regular (complement
          bits only ever appear on else-edges and external edges);
        * ordering — both children sit at strictly lower levels;
        * reduction — no node has identical children;
        * table consistency — the unique table maps exactly the live
          ``(var, lo, hi)`` triples to their edges, and the mirrored odd
          slots hold the complement-propagated children;
        * the live count equals the number of unique-table entries + 1.

        Raises :class:`~repro.errors.BddError` on the first violation.
        """
        var_arr, lo_arr, hi_arr = self._var, self._lo, self._hi
        live = 0
        for e in range(2, len(var_arr), 2):
            v = var_arr[e]
            if v == _FREE:
                continue
            live += 1
            lo, hi = lo_arr[e], hi_arr[e]
            if hi & 1:
                raise BddError(f"node {e}: stored then-edge {hi} is complemented")
            if lo == hi:
                raise BddError(f"node {e}: unreduced (lo == hi == {lo})")
            here = self._var2level[v]
            for child in (lo, hi):
                if child >= 2 and self._var2level[var_arr[child & -2]] <= here:
                    raise BddError(f"node {e}: child {child} not below level {here}")
            if self._unique.get((v, lo, hi)) != e:
                raise BddError(f"node {e}: unique table missing/mismatched")
            if var_arr[e + 1] != v or lo_arr[e + 1] != lo ^ 1 or hi_arr[e + 1] != hi ^ 1:
                raise BddError(f"node {e}: odd-slot mirror out of sync")
        if live + 1 != self._live or len(self._unique) != live:
            raise BddError(
                f"live-count mismatch: scanned {live + 1}, tracked {self._live}, "
                f"unique table {len(self._unique)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BddManager vars={self.num_vars} nodes={self._live}>"
