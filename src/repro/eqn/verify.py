"""Formal verification of computed solutions (Section 4).

After computing the CSF ``X`` the paper verifies:

1. ``X_P ⊆ X`` — the particular solution (the split-off circuit part) is
   contained in the computed flexibility;
2. ``F ∘ X_P ≡ S`` — recomposing the particular solution reproduces the
   specification exactly (sanity of the split);
3. ``F ∘ X ⊆ S`` — *soundness* of the flexibility: composing ``F`` with
   the most general solution stays within the specification.

All three are language checks on explicit automata built from the
problem's function BDDs, so they are independent of the solver flow
being verified.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.automaton import Automaton
from repro.automata.language import ContainmentResult, contained_in
from repro.automata.ops import product, support
from repro.automata.symbolic_stg import functions_to_automaton
from repro.eqn.explicit_solver import fixed_automaton, specification_automaton
from repro.eqn.problem import EquationProblem
from repro.eqn.solver import SolveResult


@dataclass
class VerificationReport:
    """Results of the three paper checks."""

    xp_contained: ContainmentResult
    composition_equivalent: bool
    solution_sound: ContainmentResult

    @property
    def ok(self) -> bool:
        return (
            bool(self.xp_contained)
            and self.composition_equivalent
            and bool(self.solution_sound)
        )

    def summary(self) -> str:
        return (
            f"Xp⊆X: {bool(self.xp_contained)}  "
            f"F∘Xp≡S: {self.composition_equivalent}  "
            f"F∘X⊆S: {bool(self.solution_sound)}"
        )


def particular_solution_automaton(problem: EquationProblem) -> Automaton:
    """Automaton of ``X_P`` (the split-off circuit) over ``(u, v)``.

    The unknown component's latches get fresh state variables at the
    bottom of the order (below every letter variable, as required by the
    symbolic STG builder).
    """
    mgr = problem.manager
    unknown = problem.split.unknown
    cs_vars: dict[str, int] = {}
    ns_vars: dict[str, int] = {}
    for name in unknown.latches:
        for var_name, table in ((f"Xp.{name}", cs_vars), (f"Xp.{name}'", ns_vars)):
            try:
                table[name] = mgr.var_index(var_name)
            except KeyError:
                table[name] = mgr.add_var(var_name)
    from repro.network.bddbuild import build_network_bdds

    input_map = {wire: problem.u_vars[wire] for wire in unknown.inputs}
    bdds = build_network_bdds(unknown, mgr, input_map, cs_vars)
    return functions_to_automaton(
        mgr,
        alphabet=problem.uv_names(),
        letter_bindings={
            problem.v_vars[wire]: bdds.outputs[wire] for wire in unknown.outputs
        },
        next_state={ns_vars[name]: bdds.next_state[name] for name in unknown.latches},
        ns_of_cs={cs_vars[name]: ns_vars[name] for name in unknown.latches},
        init={cs_vars[name]: latch.init for name, latch in unknown.latches.items()},
    )


def compose_with_fixed(
    problem: EquationProblem, x_aut: Automaton
) -> Automaton:
    """``(F × X) ↓ (i, o)``: the closed-loop external behaviour."""
    f_aut = fixed_automaton(problem)
    closed = product(f_aut, x_aut)
    return support(closed, problem.i_names + problem.o_names)


def verify_solution(
    result: SolveResult,
    *,
    check_composition: bool = True,
) -> VerificationReport:
    """Run the paper's three checks on a solve result.

    ``check_composition=False`` skips the (more expensive) equivalence
    check ``F ∘ X_P ≡ S`` and reports it as vacuously true.
    """
    problem = result.problem
    xp_aut = particular_solution_automaton(problem)
    s_aut = specification_automaton(problem)

    xp_contained = contained_in(xp_aut, result.csf)

    if check_composition:
        closed_p = compose_with_fixed(problem, xp_aut)
        composition_equivalent = bool(contained_in(closed_p, s_aut)) and bool(
            contained_in(s_aut, closed_p)
        )
    else:
        composition_equivalent = True

    closed_x = compose_with_fixed(problem, result.csf)
    solution_sound = contained_in(closed_x, s_aut)

    return VerificationReport(
        xp_contained=xp_contained,
        composition_equivalent=composition_equivalent,
        solution_sound=solution_sound,
    )
