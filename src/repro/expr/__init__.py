"""Boolean expression front-end: AST, parser, BDD building."""

from repro.expr.ast import (
    FALSE_EXPR,
    TRUE_EXPR,
    And,
    Const,
    Expr,
    Not,
    Or,
    Var,
    Xor,
    and_,
    or_,
    var,
    xor_,
)
from repro.expr.parser import ExprParseError, parse_expr

__all__ = [
    "And",
    "Const",
    "Expr",
    "ExprParseError",
    "FALSE_EXPR",
    "Not",
    "Or",
    "TRUE_EXPR",
    "Var",
    "Xor",
    "and_",
    "or_",
    "parse_expr",
    "var",
    "xor_",
]
