"""Cube and minterm utilities: counting, enumeration, picking.

These helpers work on plain node ids against a :class:`BddManager`.  They
are used by the automata package (edge-label enumeration), the solver
(state counting) and the tests (exhaustive semantics checks).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.errors import BddError


def sat_count(mgr: BddManager, f: int, variables: Sequence[int]) -> int:
    """Number of satisfying assignments of ``f`` over ``variables``.

    ``variables`` must be a superset of the support of ``f``.  The count
    is exact (Python integers).
    """
    var_set = set(variables)
    if len(var_set) != len(variables):
        raise BddError("sat_count variables must be distinct")
    missing = mgr.support(f) - var_set
    if missing:
        names = sorted(mgr.var_name(v) for v in missing)
        raise BddError(f"sat_count variables miss support vars: {names}")
    levels = sorted(mgr.var_level(v) for v in var_set)
    position = {lev: i for i, lev in enumerate(levels)}
    n = len(levels)

    def pos(node: int) -> int:
        if node < 2:
            return n
        return position[mgr.level(node)]

    # Iterative postorder (explicit stack): counting stays safe on BDDs
    # deeper than the Python recursion limit.
    memo: dict[int, int] = {FALSE: 0, TRUE: 1}
    stack: list[tuple[int, int]] = [(0, f)]
    while stack:
        tag, node = stack.pop()
        if tag == 0:
            if node in memo:
                continue
            stack.append((1, node))
            stack.append((0, mgr.node_hi(node)))
            stack.append((0, mgr.node_lo(node)))
        else:
            lo, hi = mgr.node_lo(node), mgr.node_hi(node)
            p = pos(node)
            memo[node] = memo[lo] * (1 << (pos(lo) - p - 1)) + memo[hi] * (
                1 << (pos(hi) - p - 1)
            )
    return memo[f] * (1 << pos(f))


def iter_cubes(mgr: BddManager, f: int) -> Iterator[dict[int, int]]:
    """Yield the prime paths of ``f`` as ``var -> 0/1`` dicts.

    Each yielded cube is a path from the root of ``f`` to TRUE; variables
    absent from a cube are don't-cares.  Cubes are disjoint.
    """
    if f == FALSE:
        return
    path: dict[int, int] = {}

    def rec(node: int) -> Iterator[dict[int, int]]:
        if node == TRUE:
            yield dict(path)
            return
        if node == FALSE:
            return
        var = mgr.node_var(node)
        path[var] = 0
        yield from rec(mgr.node_lo(node))
        path[var] = 1
        yield from rec(mgr.node_hi(node))
        del path[var]

    yield from rec(f)


def iter_minterms(
    mgr: BddManager, f: int, variables: Sequence[int]
) -> Iterator[tuple[int, ...]]:
    """Yield all satisfying assignments of ``f`` over ``variables``.

    Each minterm is a tuple of 0/1 values aligned with ``variables``.
    ``variables`` must cover the support of ``f``.
    """
    missing = mgr.support(f) - set(variables)
    if missing:
        names = sorted(mgr.var_name(v) for v in missing)
        raise BddError(f"iter_minterms variables miss support vars: {names}")
    order = sorted(range(len(variables)), key=lambda i: mgr.var_level(variables[i]))
    values = [0] * len(variables)

    def rec(node: int, depth: int) -> Iterator[tuple[int, ...]]:
        if node == FALSE:
            return
        if depth == len(order):
            yield tuple(values)
            return
        var = variables[order[depth]]
        if node >= 2 and mgr.node_var(node) == var:
            lo, hi = mgr.node_lo(node), mgr.node_hi(node)
        else:
            lo = hi = node
        values[order[depth]] = 0
        yield from rec(lo, depth + 1)
        values[order[depth]] = 1
        yield from rec(hi, depth + 1)

    yield from rec(f, 0)


def pick_cube(mgr: BddManager, f: int) -> dict[int, int]:
    """Return one satisfying cube of ``f`` (vars absent are don't-cares).

    Raises :class:`~repro.errors.BddError` when ``f`` is FALSE.
    """
    if f == FALSE:
        raise BddError("pick_cube of the FALSE function")
    cube: dict[int, int] = {}
    node = f
    while node >= 2:
        var = mgr.node_var(node)
        lo = mgr.node_lo(node)
        if lo != FALSE:
            cube[var] = 0
            node = lo
        else:
            cube[var] = 1
            node = mgr.node_hi(node)
    return cube


def split_by_vars(
    mgr: BddManager, f: int, split_vars: Sequence[int]
) -> dict[int, int]:
    """Partition ``f`` into its distinct cofactors w.r.t. ``split_vars``.

    Returns ``{leaf: condition}`` where each ``leaf`` is a distinct
    cofactor of ``f`` (a function of the non-split variables) and
    ``condition`` (over the split variables) covers exactly the
    assignments producing that cofactor.  FALSE cofactors are omitted.

    Requirement: every split variable must sit *above* every other
    variable in the support of ``f`` in the current order (checked).
    This is the enumeration step of the paper's subset construction: with
    ``split_vars = (u, v)`` and ``f = P'_ψ(u,v,ns)``, each leaf is one
    successor subset ``ψ'(ns)`` and its condition is the edge label.
    """
    split_levels = {mgr.var_level(v) for v in split_vars}
    max_split = max(split_levels) if split_levels else -1
    memo: dict[int, dict[int, int]] = {}

    def rec(node: int) -> dict[int, int]:
        if node < 2 or mgr.level(node) not in split_levels:
            if node >= 2 and mgr.level(node) < max_split:
                bad = mgr.var_name(mgr.node_var(node))
                raise BddError(
                    f"split_by_vars: non-split variable {bad!r} above split vars"
                )
            return {node: TRUE}
        cached = memo.get(node)
        if cached is not None:
            return cached
        var_bdd = mgr.var_node(mgr.node_var(node))
        nvar_bdd = mgr.apply_not(var_bdd)
        result: dict[int, int] = {}
        for leaf, cond in rec(mgr.node_lo(node)).items():
            result[leaf] = mgr.apply_or(
                result.get(leaf, FALSE), mgr.apply_and(nvar_bdd, cond)
            )
        for leaf, cond in rec(mgr.node_hi(node)).items():
            result[leaf] = mgr.apply_or(
                result.get(leaf, FALSE), mgr.apply_and(var_bdd, cond)
            )
        memo[node] = result
        return result

    out = rec(f)
    out.pop(FALSE, None)
    return out


def pick_minterm(mgr: BddManager, f: int, variables: Sequence[int]) -> dict[int, int]:
    """Return one full satisfying assignment over ``variables``."""
    cube = pick_cube(mgr, f)
    extra = set(cube) - set(variables)
    if extra:
        names = sorted(mgr.var_name(v) for v in extra)
        raise BddError(f"pick_minterm variables miss support vars: {names}")
    return {var: cube.get(var, 0) for var in variables}
