"""Machine-readable benchmark driver: the repo's recorded perf trajectory.

Runs the BDD-kernel microbenchmarks and the Table 1 solver benchmarks and
writes two JSON artifacts (wall time, peak live node count, computed-table
hit rate, GC activity per workload).  Invoke through the console script or
the thin repo-root shim::

    repro bench --smoke                         # fast CI variant
    repro bench --list                          # list workloads, run nothing
    python benchmarks/run_all.py                # full run (deprecated shim)
    repro bench --baseline BENCH_kernel.json --tolerance 1.4

Outputs (written to ``--out-dir``, default: the repository root):

* ``BENCH_kernel.json``  — kernel workloads (apply/quantify/rename/GC)
* ``BENCH_table1.json``  — end-to-end solver runs over the Table 1 cases
* ``BENCH_diff.md``      — with ``--baseline``: a markdown diff table of
  **all** workloads vs the baseline (CI appends it to the job summary)

With ``--baseline`` the kernel results are compared against a previous
``BENCH_kernel.json``; any workload slower than ``tolerance ×`` the
median slowdown fails the run (exit code 1) — the benchmark-regression
gate used by CI.
"""

from __future__ import annotations

import argparse
import fnmatch
import gc
import json
import os
import platform
import subprocess
import sys
import time
from collections.abc import Callable
from pathlib import Path

from repro._version import __version__
from repro.bdd.manager import BddManager
from repro.bdd.policy import GcPolicy, ReorderPolicy
from repro.bench import circuits
from repro.network.bddbuild import build_network_bdds
from repro.obs.trace import current_tracer, install_tracer, uninstall_tracer
from repro.symb.reach import network_reachable_states

REPO_ROOT = Path(__file__).resolve().parents[3]

SCHEMA_KERNEL = "repro-bench-kernel/4"
SCHEMA_TABLE1 = "repro-bench-table1/9"

#: Table 1 cases re-run with ``--reorder auto`` as dedicated ``@auto``
#: rows: the paper-scale instances where dynamic reordering is the
#: difference between CNC and completion.
TABLE1_REORDER_VARIANTS = ("rand14", "rand15")

#: Table 1 cases re-run on the sharded runtime as ``@shards2`` rows
#: (partitioned flow only — the monolithic baseline cannot shard).
#: Wall-clock deltas vs the base row are only interpretable together
#: with the recorded ``meta.cpu_count``: on a single-core runner the
#: worker processes time-slice and the transfer overhead dominates.
TABLE1_SHARD_VARIANTS = ("johnson12",)

#: Table 1 cases re-run through the frontier-batched subset engine as
#: ``@batch8`` rows (partitioned flow only): BFS frontier order groups
#: sibling subsets, batches of 8 flow through ``expand_batch``, and the
#: incremental completion memo deduplicates their ``Q_ψ`` work.
TABLE1_BATCH_VARIANTS = ("johnson12", "rand20")

#: Table 1 cases re-run with the interleaved product order as
#: ``@interleave`` rows (the per-latch ``F.cs/F.ns/S.cs/S.ns`` grouping
#: instead of the stacked all-F-above-all-S layout).  Results are
#: byte-identical to the base row; only node counts and wall clock
#: differ — the ordering effect the coupled-split cases live and die by.
TABLE1_INTERLEAVE_VARIANTS = ("johnson12",)

#: Table 1 cases re-run on the native BuDDy kernel as ``@buddy`` rows —
#: recorded only when the shared library is actually loadable
#: (:func:`repro.bdd.backends.backend_available`), never via the
#: silent pure-Python fallback, so a ``@buddy`` row always measured the
#: native adapter.  Results are identical by the conformance contract;
#: only wall clock differs.
TABLE1_BACKEND_VARIANTS = ("s27", "johnson8")

#: Bench-only cases re-run under a resident-node budget as ``@budget``
#: rows (partitioned flow only): the same BFS/batch-8 engine as the
#: ``@batch8`` row, but with :class:`repro.eqn.residency.ResidencyManager`
#: evicting cold ψ handles to the spill store once the resident set
#: exceeds :data:`TABLE1_RESIDENT_BUDGET` nodes.  Results are
#: byte-identical to the unbounded row; the row records the price
#: (spills/reloads, wall clock) of the bounded peak.
TABLE1_BUDGET_VARIANTS = ("twin16x4",)

#: Resident ψ node budget for the ``@budget`` rows — far below the
#: unbounded resident peak of the twin-ring cases, so the row genuinely
#: exercises the evict/reload path instead of recording a no-op.
TABLE1_RESIDENT_BUDGET = 2_048


# --------------------------------------------------------------------- #
# Kernel workloads
# --------------------------------------------------------------------- #


def wl_and_or_chain(n: int) -> BddManager:
    """Monotone conjunction chain (the classic apply benchmark)."""
    mgr = BddManager()
    xs = mgr.add_vars([f"x{i}" for i in range(n)])
    ys = mgr.add_vars([f"y{i}" for i in range(n)])
    f = 1
    for x, y in zip(xs, ys):
        f = mgr.apply_and(f, mgr.apply_or(mgr.var_node(x), mgr.var_node(y)))
    return mgr


def wl_xor_parity(n: int) -> BddManager:
    """Parity chain — linear with complement edges."""
    mgr = BddManager()
    vs = mgr.add_vars([f"x{i}" for i in range(2 * n)])
    f = 0
    for v in vs:
        f = mgr.apply_xor(f, mgr.var_node(v))
    return mgr


def wl_equality_and_exists(n: int) -> BddManager:
    """∃x . (x ≡ y) ∧ g(x): the shape of every image step."""
    mgr = BddManager()
    xs = mgr.add_vars([f"x{i}" for i in range(n)])
    ys = mgr.add_vars([f"y{i}" for i in range(n)])
    eq = 1
    for x, y in zip(xs, ys):
        eq = mgr.apply_and(eq, mgr.apply_iff(mgr.var_node(x), mgr.var_node(y)))
    g = 1
    for x in xs[::2]:
        g = mgr.apply_and(g, mgr.var_node(x))
    mgr.and_exists(eq, g, xs)
    return mgr


def wl_iff_conformance_rebuild(n: int) -> BddManager:
    """Conformance-part shape: iff chains + negation, rebuilt cold.

    Mirrors how the solvers form ``ns_k ≡ T_k`` partitions and ``¬C_j``
    conformance complements; cold caches per round make the negation cost
    visible (O(1) with complement edges).
    """
    mgr = BddManager()
    xs = mgr.add_vars([f"x{i}" for i in range(n)])
    ys = mgr.add_vars([f"y{i}" for i in range(n)])
    out = 0
    for _ in range(6):
        mgr.clear_caches()
        eq = 1
        for x, y in zip(xs, ys):
            eq = mgr.apply_and(eq, mgr.apply_iff(mgr.var_node(x), mgr.var_node(y)))
        out = mgr.apply_not(eq)
    assert out != 0
    return mgr


def wl_frontier_diff_loop(n: int) -> BddManager:
    """Reached/frontier churn: or + diff, the reachability inner loop."""
    mgr = BddManager()
    xs = mgr.add_vars([f"x{i}" for i in range(2 * n)])
    reached = mgr.var_node(xs[0])
    for step in range(10 * n):
        nxt = reached
        lit = mgr.var_node(xs[1 + step % (2 * n - 1)])
        nxt = mgr.apply_or(nxt, mgr.apply_and(lit, mgr.apply_not(reached)))
        frontier = mgr.apply_diff(nxt, reached)
        reached = mgr.apply_or(reached, frontier)
    return mgr


def wl_rename(n: int) -> BddManager:
    """Order-preserving ns -> cs rename (fast structural path)."""
    mgr = BddManager()
    pairs = []
    for i in range(n):
        cs = mgr.add_var(f"cs{i}")
        ns = mgr.add_var(f"ns{i}")
        pairs.append((cs, ns))
    f = 1
    for cs, ns in pairs[: n // 2]:
        f = mgr.apply_and(f, mgr.apply_or(mgr.var_node(ns), 0))
    rename = {ns: cs for cs, ns in pairs}
    for _ in range(50):
        mgr.clear_caches()
        mgr.rename(f, rename)
    return mgr


def wl_gc_reachability(n: int) -> BddManager:
    """Symbolic reachability with GC wired into the fixpoint.

    The manager is configured with a low collection floor so the garbage
    collector actually runs; the recorded ``gc_runs``/``gc_reclaimed``
    stats prove node reclamation keeps the fixpoint bounded.
    """
    net = circuits.counter(n)
    mgr = BddManager(gc_min_live=1_000, gc_growth=1.5)
    input_vars = {name: mgr.add_var(name) for name in net.inputs}
    cs, ns = {}, {}
    for name in net.latches:
        cs[name] = mgr.add_var(name)
        ns[name] = mgr.add_var(f"{name}'")
    bdds = build_network_bdds(net, mgr, input_vars, cs)
    result = network_reachable_states(bdds, ns_vars=ns)
    assert result.state_count == 2**n
    return mgr


def wl_deep_chain(n: int) -> BddManager:
    """Deep-BDD stress: an ``n``-variable conjunction chain run on the
    iterative explicit-frame core.

    ``n`` exceeds any sane recursion limit, so this workload only exists
    because the kernel is recursion-free on deep managers; it tracks the
    constant factor of the iterative core (build + quantify + xor).
    """
    mgr = BddManager(apply_core="iterative")
    vs = mgr.add_vars([f"x{i}" for i in range(n)])
    f = 1
    for v in reversed(vs):  # bottom-up fold: O(1) nodes per step
        f = mgr.apply_and(mgr.var_node(v), f)
    assert mgr.size(f) == n
    mgr.exists(f, vs[: n // 2])
    g = 0
    for v in reversed(vs[: n // 4]):
        g = mgr.apply_xor(mgr.var_node(v), g)
    mgr.and_exists(f, g, vs[: n // 8])
    return mgr


def _misordered_product(n: int, reorder_mode: str) -> BddManager:
    """Σ x_i·y_i built under the worst (blocked) order.

    With all ``x`` above all ``y`` this function needs ~2^n nodes; the
    interleaved order needs ~3n.  The manager runs adaptive GC with a
    low floor, so collections fire during construction, reclaim almost
    nothing (the partial result is pinned and owns nearly every node),
    and — with ``reorder_mode != "off"`` — the reorder policy answers the
    unprofitable sweeps with an in-place sift that discovers the
    interleaving mid-build.  Comparing the recorded ``peak_live_nodes``
    of the ``off`` and ``auto`` variants is the headline number for
    GC-triggered dynamic reordering.
    """
    mgr = BddManager(
        gc_policy=GcPolicy(mode="adaptive", min_live=50, growth=1.05),
        reorder_policy=ReorderPolicy(
            mode=reorder_mode,
            min_live=0,
            window=1,
            cooldown_growth=1.3,
            reclaim_threshold=0.3,
        ),
    )
    xs = mgr.add_vars([f"x{i}" for i in range(n)])
    ys = mgr.add_vars([f"y{i}" for i in range(n)])
    f = 0
    for x, y in zip(xs, ys):
        new = mgr.apply_or(f, mgr.apply_and(mgr.var_node(x), mgr.var_node(y)))
        mgr.ref(new)
        mgr.deref(f)
        f = new
        mgr.maybe_collect_garbage()
    return mgr


def wl_misordered_product(n: int) -> BddManager:
    return _misordered_product(n, "off")


def wl_misordered_product_reorder(n: int) -> BddManager:
    return _misordered_product(n, "auto")


def _reach_blocked(n: int, reorder_mode: str) -> BddManager:
    """Gray-counter reachability under a blocked (cs…, ns…) order.

    The deliberately bad order — all current-state variables above all
    next-state variables instead of interleaved — inflates every image
    step.  The ``_reorder`` variant lets unprofitable collections
    trigger in-place sifting mid-fixpoint (pinned relation parts,
    reached set and frontier all keep their edges across the reorder).
    """
    net = circuits.gray_counter(n)
    mgr = BddManager(
        gc_policy=GcPolicy(mode="adaptive", min_live=200, growth=1.2),
        reorder_policy=ReorderPolicy(
            mode=reorder_mode, min_live=0, window=1, reclaim_threshold=0.5
        ),
    )
    input_vars = {name: mgr.add_var(name) for name in net.inputs}
    cs = {name: mgr.add_var(name) for name in net.latches}
    ns = {name: mgr.add_var(f"{name}'") for name in net.latches}
    bdds = build_network_bdds(net, mgr, input_vars, cs)
    result = network_reachable_states(bdds, ns_vars=ns)
    assert result.state_count == 2**n
    return mgr


def wl_reach_blocked(n: int) -> BddManager:
    return _reach_blocked(n, "off")


def wl_reach_blocked_reorder(n: int) -> BddManager:
    return _reach_blocked(n, "auto")


def _reach_sharded(n: int, shards: int) -> BddManager:
    """Random-logic reachability, optionally on the sharded runtime.

    Few iterations with heavy image steps — the shape where shipping
    frontier slices to worker processes amortises best.  ``shards=1`` is
    the in-process reference; compare the ``@shards2`` row against it
    *together with* the recorded ``meta.cpu_count`` (single-core runners
    pay the full transfer + duplication overhead with nothing to
    overlap; the win needs real cores).
    """
    net = circuits.random_network(4, n, 4, seed=5, n_nodes=110)
    mgr = BddManager()
    input_vars = {name: mgr.add_var(name) for name in net.inputs}
    cs = {name: mgr.add_var(name) for name in net.latches}
    ns = {name: mgr.add_var(f"{name}'") for name in net.latches}
    bdds = build_network_bdds(net, mgr, input_vars, cs)
    result = network_reachable_states(bdds, ns_vars=ns, shards=shards)
    assert result.state_count > 0
    return mgr


def wl_reach_shards1(n: int) -> BddManager:
    return _reach_sharded(n, 1)


def wl_reach_shards2(n: int) -> BddManager:
    return _reach_sharded(n, 2)


def _indep_images(n: int, shards: int) -> BddManager:
    """A round of independent image computations, dealt across shards.

    Mirrors the partitioned oracle's per-output ``Q_ψ`` images: several
    *complete* images of different constraints against the same relation
    — embarrassingly parallel, so the sharded variant's only overhead is
    the snapshot traffic.  This is the best case for multi-core scaling
    (each shard owns the full relation and serves whole images).
    """
    from repro.symb.image import image_with_plan, plan_image
    from repro.symb.relation import transition_relation

    net = circuits.random_network(3, n, 3, seed=13, n_nodes=100)
    mgr = BddManager()
    input_vars = {name: mgr.add_var(name) for name in net.inputs}
    cs = {name: mgr.add_var(name) for name in net.latches}
    ns = {name: mgr.add_var(f"{name}'") for name in net.latches}
    bdds = build_network_bdds(net, mgr, input_vars, cs)
    relation = transition_relation(
        mgr, bdds.next_state, ns, order=list(net.latches)
    )
    parts = list(relation)
    quantify = [*input_vars.values(), *cs.values()]
    cs_vars = list(cs.values())
    # One constraint per latch: the reachable wave from "that latch set".
    constraints = [
        mgr.apply_and(bdds.init_cube ^ 1, mgr.var_node(v)) for v in cs_vars
    ]
    constraints = [c for c in constraints if c != 0] or [bdds.init_cube]
    out = 0
    if shards <= 1:
        plan, leftover = plan_image(mgr, parts, quantify, set(cs_vars))
        for c in constraints:
            out = mgr.apply_or(out, image_with_plan(mgr, plan, leftover, c))
    else:
        from repro.bdd.io import dump_nodes, load_nodes
        from repro.shard import ShardPool
        from repro.shard.plan import load_parts, make_plan

        with ShardPool(shards, mgr.var_order()) as pool:
            plan_ids = []
            for k in range(pool.num_shards):
                handles = load_parts(pool, k, mgr, parts)
                plan_ids.append(
                    make_plan(pool, k, mgr, handles, quantify, cs_vars)
                )
            submitted = []
            for i, c in enumerate(constraints):
                k = i % pool.num_shards
                pool.submit(k, ("image", plan_ids[k], dump_nodes(mgr, [c])))
                submitted.append(k)
            for k in submitted:
                (img,) = load_nodes(mgr, pool.collect(k))
                out = mgr.apply_or(out, img)
    assert out != 0
    return mgr


def wl_indep_images_shards1(n: int) -> BddManager:
    return _indep_images(n, 1)


def wl_indep_images_shards2(n: int) -> BddManager:
    return _indep_images(n, 2)


def _solve_batched(
    n: int,
    batch: int,
    backend: str = "python",
    product_order: str = "stacked",
) -> BddManager:
    """A partitioned solve through the frontier-batched subset engine.

    The ``@batch1``/``@batch8`` pair isolates the cost/benefit of
    batching on one manager: same instance, same flow, only the
    frontier batch size (and the BFS sibling grouping that makes the
    completion memo hit) differs.  The ``@buddy`` variant runs the same
    ``batch=1`` solve on the native kernel — its twin is ``@batch1``.
    The ``@interleave`` variant runs the ``batch=1`` solve under the
    interleaved product order — its twin is also ``@batch1``, isolating
    the pure ordering effect on one instance.
    """
    from repro.eqn.problem import build_latch_split_problem
    from repro.eqn.solver import solve_equation

    net = circuits.johnson(n)
    x_latches = [f"j{k}" for k in range(1, n, 2)]
    problem = build_latch_split_problem(
        net, x_latches, backend=backend, product_order=product_order
    )
    result = solve_equation(
        problem, method="partitioned", frontier="bfs", batch=batch
    )
    assert result.csf_states > 0
    return problem.manager


def wl_solve_batch1(n: int) -> BddManager:
    return _solve_batched(n, 1)


def wl_solve_batch8(n: int) -> BddManager:
    return _solve_batched(n, 8)


def wl_solve_buddy(n: int):
    return _solve_batched(n, 1, backend="buddy")


def wl_solve_interleave(n: int) -> BddManager:
    return _solve_batched(n, 1, product_order="interleaved")


KERNEL_WORKLOADS = [
    # (name, fn, full_size, smoke_size)
    ("and_or_chain", wl_and_or_chain, 14, 8),
    ("xor_parity", wl_xor_parity, 14, 8),
    ("equality_and_exists", wl_equality_and_exists, 14, 8),
    ("iff_conformance_rebuild", wl_iff_conformance_rebuild, 12, 7),
    ("frontier_diff_loop", wl_frontier_diff_loop, 10, 5),
    ("rename", wl_rename, 12, 8),
    ("gc_reachability", wl_gc_reachability, 10, 5),
    ("deep_chain", wl_deep_chain, 4000, 1500),
    ("misordered_product", wl_misordered_product, 12, 7),
    ("misordered_product_reorder", wl_misordered_product_reorder, 12, 7),
    ("reach_blocked_order", wl_reach_blocked, 9, 8),
    ("reach_blocked_order_reorder", wl_reach_blocked_reorder, 9, 8),
    # Sharded-runtime pairs: compare each @shards2 row against its
    # @shards1 twin *and* the recorded meta.cpu_count.
    ("reach@shards1", wl_reach_shards1, 18, 12),
    ("reach@shards2", wl_reach_shards2, 18, 12),
    ("indep_images@shards1", wl_indep_images_shards1, 16, 10),
    ("indep_images@shards2", wl_indep_images_shards2, 16, 10),
    # Frontier-batched subset-engine pair: same solve, batch sizes 1/8.
    ("solve@batch1", wl_solve_batch1, 10, 8),
    ("solve@batch8", wl_solve_batch8, 10, 8),
    # Product-order pair: the @batch1 solve under the interleaved
    # product order (identical result bytes; ordering cost only).
    ("solve@interleave", wl_solve_interleave, 10, 8),
    # Backend pair: the @batch1 solve on the native BuDDy kernel.  Runs
    # only where the shared library loads (see _workload_available);
    # elsewhere the row is skipped, never silently measured on the
    # pure-Python fallback.
    ("solve@buddy", wl_solve_buddy, 10, 8),
]


def _phase_breakdown(start: int) -> dict | None:
    """Aggregate tracer spans since event index ``start`` into seconds.

    Returns ``None`` when no tracer is installed (the row then carries
    no ``phases`` key).  Worker-relayed ``shard:*`` spans run
    concurrently with coordinator spans, so the totals are per-phase
    sums, not a partition of wall time.
    """
    tracer = current_tracer()
    if tracer is None:
        return None
    totals: dict[str, float] = {}
    for event in tracer.events(start):
        if event.get("ph") == "X":
            name = event["name"]
            totals[name] = totals.get(name, 0.0) + event["dur"] / 1e6
    return {name: round(secs, 6) for name, secs in sorted(totals.items())}


def _trace_mark() -> int:
    """Current tracer event index (0 when tracing is off)."""
    tracer = current_tracer()
    return len(tracer) if tracer is not None else 0


def _workload_available(name: str) -> bool:
    """Whether a kernel workload can run *honestly* on this machine.

    ``@buddy`` rows require the native library: the registry would fall
    back to pure Python with a warning, and a row labelled ``buddy``
    that measured the reference kernel would poison every baseline
    comparison downstream.
    """
    if name.endswith("@buddy"):
        from repro.bdd.backends import backend_available

        return backend_available("buddy")
    return True


def make_workload_filter(
    only: str | None = None, skip: str | None = None
) -> Callable[[str, str], bool]:
    """Build an ``accept(suite, name)`` predicate from glob patterns.

    ``only`` and ``skip`` are comma-separated shell-style globs matched
    (case-sensitively) against the full ``suite/name`` path, the bare
    workload ``name`` and the bare ``suite`` name — so ``--only kernel``
    keeps a whole suite, ``--only 'table1/rand*'`` or ``--only 'rand*'``
    a family, and ``--skip '*@shards*'`` drops the sharded variants
    everywhere.  An empty/None ``only`` accepts everything; ``skip``
    wins over ``only``.
    """

    def patterns(spec: str | None) -> list[str]:
        return [p for p in (spec or "").split(",") if p]

    only_pats = patterns(only)
    skip_pats = patterns(skip)

    def matches(pats: list[str], suite: str, name: str) -> bool:
        full = f"{suite}/{name}"
        return any(
            fnmatch.fnmatchcase(full, pat)
            or fnmatch.fnmatchcase(name, pat)
            or fnmatch.fnmatchcase(suite, pat)
            for pat in pats
        )

    def accept(suite: str, name: str) -> bool:
        if only_pats and not matches(only_pats, suite, name):
            return False
        return not (skip_pats and matches(skip_pats, suite, name))

    return accept


def _accept_all(_suite: str, _name: str) -> bool:
    return True


def run_kernel(
    smoke: bool,
    repeats: int,
    select: Callable[[str, str], bool] = _accept_all,
) -> list[dict]:
    results = []
    for name, fn, full_n, smoke_n in KERNEL_WORKLOADS:
        if not select("kernel", name):
            continue
        if not _workload_available(name):
            print(
                f"  kernel/{name:28s} skipped (backend unavailable)",
                flush=True,
            )
            continue
        n = smoke_n if smoke else full_n
        best = None
        stats: dict = {}
        hit_rate = 0.0
        backend = "python"
        trace_start = _trace_mark()
        for _ in range(repeats):
            gc.collect()
            t0 = time.perf_counter()
            mgr = fn(n)
            elapsed = time.perf_counter() - t0
            if best is None or elapsed < best:
                best = elapsed
                stats = mgr.stats
                hit_rate = mgr.cache_hit_rate()
                backend = getattr(mgr, "backend_name", "python")
        phases = _phase_breakdown(trace_start)
        results.append(
            {
                "name": name,
                "backend": backend,
                "size": n,
                "wall_s": round(best, 6),
                **({"phases": phases} if phases is not None else {}),
                "peak_live_nodes": stats.get("peak_live_nodes", 0),
                "live_nodes": stats.get("live_nodes", 0),
                "cache_hit_rate": round(hit_rate, 4),
                "cache_hits": stats.get("cache_hits", 0),
                "cache_misses": stats.get("cache_misses", 0),
                "gc_runs": stats.get("gc_runs", 0),
                "gc_reclaimed": stats.get("gc_reclaimed", 0),
                "reclaim_ratio_avg": round(stats.get("reclaim_ratio_avg", 1.0), 4),
                "reorder_runs": stats.get("reorder_runs", 0),
                "reorder_swaps": stats.get("reorder_swaps", 0),
            }
        )
        print(
            f"  kernel/{name:28s} n={n:4d} {best * 1e3:9.2f} ms  "
            f"peak={stats.get('peak_live_nodes', 0):8d}  "
            f"hit_rate={hit_rate:.2f}  gc_runs={stats.get('gc_runs', 0)}  "
            f"reorders={stats.get('reorder_runs', 0)} "
            f"swaps={stats.get('reorder_swaps', 0)}",
            flush=True,
        )
    return results


# --------------------------------------------------------------------- #
# Table 1 (solver) benchmarks
# --------------------------------------------------------------------- #


def _run_table1_case(
    case,
    *,
    reorder: str,
    gc_mode: str,
    row_name: str,
    shards: int = 1,
    frontier: str = "dfs",
    batch: int = 1,
    backend: str = "python",
    product_order: str = "stacked",
    resident_budget: int | None = None,
    compose: bool = False,
) -> dict:
    from repro.eqn.problem import build_latch_split_problem
    from repro.eqn.solver import solve_equation
    from repro.errors import ReproError
    from repro.serve.keys import solve_cache_key
    from repro.util.limits import ResourceLimit

    net = case.network()
    u_signals = list(case.u_signals) if case.u_signals else None
    row: dict = {
        "name": row_name,
        "io_cs": net.stats(),
        "paper_row": case.paper_row,
        "reorder": reorder,
        "gc": gc_mode,
        "shards": shards,
        "frontier": frontier,
        "batch": batch,
        "backend": backend,
        "product_order": product_order,
        "resident_budget": resident_budget,
        "compose": compose,
        "methods": {},
    }
    # Only the partitioned flow shards, spills, and composes; those
    # variant rows skip the monolithic baseline (on the budget/compose
    # cases it is an expected CNC anyway — burning the whole time budget
    # to record a foregone conclusion).
    partitioned_only = shards > 1 or resident_budget is not None or compose
    methods = ("partitioned",) if partitioned_only else ("partitioned", "monolithic")
    for method in methods:
        # The same canonical problem hash the serve cache keys on: a row
        # and a served solve of the identical (circuit, split, flags)
        # combination carry the same key, making cached-vs-cold latency
        # comparisons attributable row by row.
        # ``backend`` is passed so the spec validates it, but it never
        # reaches the hash: a @buddy row and its base row carry the
        # same cache_key, because they produce the same bytes.
        key = solve_cache_key(
            net,
            list(case.x_latches),
            u_signals=u_signals,
            method=method,
            reorder=reorder,
            gc=gc_mode,
            shards=shards if method == "partitioned" else 1,
            frontier=frontier,
            batch=batch,
            backend=backend,
            product_order=product_order,
        )
        limit = ResourceLimit(max_seconds=case.max_seconds, max_nodes=case.max_nodes)
        gc.collect()
        trace_start = _trace_mark()
        t0 = time.perf_counter()
        try:
            problem = build_latch_split_problem(
                net,
                list(case.x_latches),
                u_signals=u_signals,
                max_nodes=case.max_nodes,
                reorder=reorder,
                gc=gc_mode,
                backend=backend,
                product_order=product_order,
            )
            result = solve_equation(
                problem,
                method=method,
                limit=limit,
                shards=shards,
                frontier=frontier,
                batch=batch,
                resident_budget=resident_budget,
                compose=compose,
            )
        except ReproError:
            row["methods"][method] = {"cnc": True, "cache_key": key}
            print(f"  table1/{row_name:14s} {method:12s} CNC", flush=True)
            continue
        elapsed = time.perf_counter() - t0
        mgr_stats = problem.manager.stats
        phases = _phase_breakdown(trace_start)
        extra = result.stats.extra if result.stats else {}
        residency_cols = (
            {
                "psi_spills": extra.get("psi_spills"),
                "psi_reloads": extra.get("psi_reloads"),
                "resident_evictions": extra.get("resident_evictions"),
                "resident_nodes_peak": extra.get("resident_nodes_peak"),
            }
            if extra.get("resident_budget")
            else {}
        )
        compose_cols = (
            {
                "compose_components": extra.get("compose_components"),
                "compose_solved_latches": extra.get("compose_solved_latches"),
                "compose_skipped_latches": extra.get("compose_skipped_latches"),
            }
            if result.options.get("compose")
            else {}
        )
        row["methods"][method] = {
            "cnc": False,
            "cache_key": key,
            "wall_s": round(elapsed, 4),
            **({"phases": phases} if phases is not None else {}),
            "csf_states": result.csf_states,
            "subsets": result.stats.subsets if result.stats else None,
            "batches": result.stats.batches if result.stats else None,
            "memo_hits": result.stats.extra.get("completion_memo_hits")
            if result.stats
            else None,
            "peak_live_nodes": mgr_stats["peak_live_nodes"],
            "cache_hit_rate": round(problem.manager.cache_hit_rate(), 4),
            "gc_runs": mgr_stats["gc_runs"],
            "reclaim_ratio_avg": round(mgr_stats["reclaim_ratio_avg"], 4),
            "reorder_runs": mgr_stats["reorder_runs"],
            "reorder_swaps": mgr_stats["reorder_swaps"],
            **residency_cols,
            **compose_cols,
        }
        print(
            f"  table1/{row_name:14s} {method:12s} {elapsed * 1e3:9.1f} ms  "
            f"states={result.csf_states}  "
            f"peak={mgr_stats['peak_live_nodes']}",
            flush=True,
        )
    part = row["methods"].get("partitioned", {})
    mono = row["methods"].get("monolithic", {})
    if not part.get("cnc", True) and not mono.get("cnc", True):
        row["ratio_mono_over_part"] = round(mono["wall_s"] / part["wall_s"], 2)
    return row


def _table1_base_cases(smoke: bool) -> list:
    from repro.bench.suite import TABLE1_CASES

    if not smoke:
        return list(TABLE1_CASES)
    return [c for c in TABLE1_CASES if not c.expect_mono_cnc][:3]


def table1_row_names(
    smoke: bool,
    *,
    reorder: str = "off",
    backend: str = "python",
    product_order: str = "stacked",
) -> list[str]:
    """Every row name a run with these settings would emit.

    This is the single source of truth the ``--only``/``--skip``
    nothing-matched guard checks against: a variant row that a smoke
    run (or an explicit ``--reorder`` run) suppresses must not count as
    selectable, or a filtered run could write an empty artifact with a
    success exit code.  ``@buddy`` rows count only where the native
    library is loadable (and ``backend`` is left at the default — an
    explicit ``--backend buddy`` run already covers every base row).
    ``@interleave`` rows likewise count only under the default
    ``product_order`` — an explicit ``--product-order interleaved`` run
    already records every base row interleaved.
    """
    from repro.bench.suite import (
        TABLE1_BENCH_ONLY_CASES,
        TABLE1_CASES,
        TABLE1_COMPOSE_CASES,
    )

    names = [case.name for case in _table1_base_cases(smoke)]
    if not smoke:
        in_suite = {c.name for c in TABLE1_CASES}
        if reorder == "off":
            names += [
                f"{n}@auto" for n in TABLE1_REORDER_VARIANTS if n in in_suite
            ]
        names += [f"{n}@shards2" for n in TABLE1_SHARD_VARIANTS if n in in_suite]
        names += [f"{n}@batch8" for n in TABLE1_BATCH_VARIANTS if n in in_suite]
        if product_order == "stacked":
            names += [
                f"{n}@interleave"
                for n in TABLE1_INTERLEAVE_VARIANTS
                if n in in_suite
            ]
        names += [f"{case.name}@batch8" for case in TABLE1_BENCH_ONLY_CASES]
        if product_order == "stacked":
            names += [
                f"{case.name}@interleave+batch8"
                for case in TABLE1_BENCH_ONLY_CASES
            ]
        bench_only = {c.name for c in TABLE1_BENCH_ONLY_CASES}
        names += [
            f"{n}@budget" for n in TABLE1_BUDGET_VARIANTS if n in bench_only
        ]
        names += [f"{case.name}@compose" for case in TABLE1_COMPOSE_CASES]
        if backend == "python" and _workload_available("@buddy"):
            names += [
                f"{n}@buddy" for n in TABLE1_BACKEND_VARIANTS if n in in_suite
            ]
    return names


def run_table1_bench(
    smoke: bool,
    *,
    reorder: str = "off",
    gc_mode: str = "static",
    backend: str = "python",
    product_order: str = "stacked",
    select: Callable[[str, str], bool] = _accept_all,
) -> list[dict]:
    from repro.bench.suite import TABLE1_CASES

    cases = _table1_base_cases(smoke)
    rows = [
        _run_table1_case(
            case,
            reorder=reorder,
            gc_mode=gc_mode,
            row_name=case.name,
            backend=backend,
            product_order=product_order,
        )
        for case in cases
        if select("table1", case.name)
    ]
    if not smoke:
        # Paper-scale @auto rows: the same instances with GC-triggered
        # dynamic reordering, recorded alongside the base rows so the
        # CNC-vs-completes effect of reordering is part of the artifact.
        by_name = {c.name: c for c in TABLE1_CASES}
        for name in TABLE1_REORDER_VARIANTS:
            case = by_name.get(name)
            row_name = f"{name}@auto"
            if case is None or reorder != "off":
                continue  # an explicit --reorder run already covers these
            if not select("table1", row_name):
                continue
            rows.append(
                _run_table1_case(
                    case,
                    reorder="auto",
                    gc_mode="adaptive",
                    row_name=row_name,
                    product_order=product_order,
                )
            )
        # Sharded-runtime rows: the partitioned flow on a 2-worker pool,
        # interpretable against the base row via meta.cpu_count.
        for name in TABLE1_SHARD_VARIANTS:
            case = by_name.get(name)
            row_name = f"{name}@shards2"
            if case is None or not select("table1", row_name):
                continue
            rows.append(
                _run_table1_case(
                    case,
                    reorder=reorder,
                    gc_mode=gc_mode,
                    row_name=row_name,
                    shards=2,
                    product_order=product_order,
                )
            )
        # Frontier-batched rows: BFS order, batches of 8 — the sibling
        # grouping that makes the incremental completion memo pay.
        for name in TABLE1_BATCH_VARIANTS:
            case = by_name.get(name)
            row_name = f"{name}@batch8"
            if case is None or not select("table1", row_name):
                continue
            rows.append(
                _run_table1_case(
                    case,
                    reorder=reorder,
                    gc_mode=gc_mode,
                    row_name=row_name,
                    frontier="bfs",
                    batch=8,
                    product_order=product_order,
                )
            )
        # Interleaved-product-order rows: the same instance with each
        # S latch grouped next to its F twin.  Recorded only under the
        # default product order (an explicit --product-order interleaved
        # run already covers every base row interleaved).
        if product_order == "stacked":
            for name in TABLE1_INTERLEAVE_VARIANTS:
                case = by_name.get(name)
                row_name = f"{name}@interleave"
                if case is None or not select("table1", row_name):
                    continue
                rows.append(
                    _run_table1_case(
                        case,
                        reorder=reorder,
                        gc_mode=gc_mode,
                        row_name=row_name,
                        product_order="interleaved",
                    )
                )
        # Bench-only rows (too slow for the per-case identity tests):
        # recorded through the batched engine, which is what makes their
        # completion-memo structure visible in the artifact.  Each case
        # is recorded stacked *and* interleaved — the pair is the
        # measurement: the coupled twin-ring rows are where the layouts
        # genuinely diverge (twin16x4 favours interleaved by ~20% wall;
        # subset-dominated twin12_8 is near-indifferent), and the
        # artifact should show both sides on the same machine.
        from repro.bench.suite import TABLE1_BENCH_ONLY_CASES

        for case in TABLE1_BENCH_ONLY_CASES:
            row_name = f"{case.name}@batch8"
            if select("table1", row_name):
                rows.append(
                    _run_table1_case(
                        case,
                        reorder=reorder,
                        gc_mode=gc_mode,
                        row_name=row_name,
                        frontier="bfs",
                        batch=8,
                        product_order=product_order,
                    )
                )
            row_name = f"{case.name}@interleave+batch8"
            if product_order == "stacked" and select("table1", row_name):
                rows.append(
                    _run_table1_case(
                        case,
                        reorder=reorder,
                        gc_mode=gc_mode,
                        row_name=row_name,
                        frontier="bfs",
                        batch=8,
                        product_order="interleaved",
                    )
                )
        # Memory-bounded rows: the same bench-only case through the same
        # BFS/batch-8 engine, but with the resident ψ set capped — the
        # row's spill/reload counters price the bounded peak against the
        # unbounded @batch8 row next to it (the results themselves are
        # byte-identical).
        bench_only_by_name = {c.name: c for c in TABLE1_BENCH_ONLY_CASES}
        for name in TABLE1_BUDGET_VARIANTS:
            case = bench_only_by_name.get(name)
            row_name = f"{name}@budget"
            if case is None or not select("table1", row_name):
                continue
            rows.append(
                _run_table1_case(
                    case,
                    reorder=reorder,
                    gc_mode=gc_mode,
                    row_name=row_name,
                    frontier="bfs",
                    batch=8,
                    product_order=product_order,
                    resident_budget=TABLE1_RESIDENT_BUDGET,
                )
            )
        # Compositional rows: cases whose restricted U alphabet leaves a
        # conforming letter-free component, solved via the component
        # decomposition instead of the full product.  The same case
        # would be recorded CNC (or tens of seconds) solved directly;
        # the compose columns record what the decomposition skipped.
        from repro.bench.suite import TABLE1_COMPOSE_CASES

        for case in TABLE1_COMPOSE_CASES:
            row_name = f"{case.name}@compose"
            if not select("table1", row_name):
                continue
            rows.append(
                _run_table1_case(
                    case,
                    reorder=reorder,
                    gc_mode=gc_mode,
                    row_name=row_name,
                    product_order=product_order,
                    compose=True,
                )
            )
        # Native-kernel rows: the same case on the BuDDy adapter, only
        # where the library actually loads (never the silent fallback),
        # and only when the run's own backend is the default — an
        # explicit --backend buddy run already records every base row
        # natively.
        if backend == "python" and _workload_available("@buddy"):
            for name in TABLE1_BACKEND_VARIANTS:
                case = by_name.get(name)
                row_name = f"{name}@buddy"
                if case is None or not select("table1", row_name):
                    continue
                rows.append(
                    _run_table1_case(
                        case,
                        reorder=reorder,
                        gc_mode=gc_mode,
                        row_name=row_name,
                        backend="buddy",
                        product_order=product_order,
                    )
                )
    return rows


# --------------------------------------------------------------------- #
# Workload listing (``repro bench --list``)
# --------------------------------------------------------------------- #


def list_workloads(
    select: Callable[[str, str], bool] = _accept_all,
) -> str:
    """Human-readable listing of every workload and variant, unrun.

    ``repro bench --list`` prints this: kernel workloads with their full
    and smoke sizes, and Table 1 cases with the ``@auto`` (dynamic
    reordering), ``@shards2`` (sharded runtime), ``@batch8``
    (frontier-batched engine), ``@interleave`` (interleaved product
    order), ``@budget`` (resident-ψ node budget with LRU spill),
    ``@compose`` (component-decomposed solve) and ``@buddy`` (native
    BDD kernel, only run where the library loads) variant rows the full
    run records alongside them.
    ``select`` (built from ``--only``/``--skip``) restricts the listing
    the same way it restricts a run.
    """
    from repro.bench.suite import TABLE1_CASES

    lines = ["kernel workloads (name, full n, smoke n):"]
    for name, _fn, full_n, smoke_n in KERNEL_WORKLOADS:
        if not select("kernel", name):
            continue
        lines.append(f"  kernel/{name:28s} n={full_n:<5d} smoke n={smoke_n}")
    lines.append("")
    lines.append("table1 cases (solver, partitioned vs monolithic):")
    for case in TABLE1_CASES:
        if not select("table1", case.name):
            continue
        variants = []
        if case.name in TABLE1_REORDER_VARIANTS:
            variants.append(f"{case.name}@auto")
        if case.name in TABLE1_SHARD_VARIANTS:
            variants.append(f"{case.name}@shards2")
        if case.name in TABLE1_BATCH_VARIANTS:
            variants.append(f"{case.name}@batch8")
        if case.name in TABLE1_INTERLEAVE_VARIANTS:
            variants.append(f"{case.name}@interleave")
        if case.name in TABLE1_BACKEND_VARIANTS:
            variants.append(f"{case.name}@buddy")
        suffix = f"  (+ variants: {', '.join(variants)})" if variants else ""
        cnc = "  [mono expected CNC]" if case.expect_mono_cnc else ""
        lines.append(f"  table1/{case.name:14s} {case.paper_row}{cnc}{suffix}")
    from repro.bench.suite import TABLE1_BENCH_ONLY_CASES, TABLE1_COMPOSE_CASES

    for case in TABLE1_BENCH_ONLY_CASES:
        row_names = [f"{case.name}@batch8", f"{case.name}@interleave+batch8"]
        if case.name in TABLE1_BUDGET_VARIANTS:
            row_names.append(f"{case.name}@budget")
        for row_name in row_names:
            if not select("table1", row_name):
                continue
            lines.append(
                f"  table1/{row_name:24s} {case.paper_row}  [bench-only row]"
            )
    for case in TABLE1_COMPOSE_CASES:
        row_name = f"{case.name}@compose"
        if select("table1", row_name):
            lines.append(
                f"  table1/{row_name:24s} {case.paper_row}  [compose row]"
            )
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Baseline comparison / the markdown diff table
# --------------------------------------------------------------------- #


def compare_to_baseline(results: list[dict], baseline: dict) -> list[dict]:
    """Per-workload comparison rows against a parsed baseline payload.

    Each row carries the raw ratio and the **median-normalised** ratio:
    the baseline may come from different hardware (the committed smoke
    baseline comes from a dev box; CI runners are slower and noisy), and
    a uniformly slower machine scales every workload alike, so only the
    spread around the median slowdown signals a real regression.
    Sub-millisecond baseline entries are noise-floored (excluded from
    the median and never failed).  A row whose BDD backend differs from
    the baseline's (rows without a recorded backend count as the
    pure-Python reference) is likewise excluded: a kernel swap is an
    environment change, not a code regression.  Sharded (``@shardsN``)
    rows where one side of the comparison ran on a single-core machine
    (``meta.cpu_count == 1``) and the other did not are marked
    ``env-limited`` and excluded too: on one core the worker processes
    time-slice and the transfer overhead dominates, so the ratio
    measures the machine, not the code.
    """
    old = {r["name"]: r for r in baseline.get("results", [])}
    base_cpus = baseline.get("meta", {}).get("cpu_count")
    cur_cpus = os.cpu_count()
    shards_env_limited = (
        base_cpus is not None
        and cur_cpus is not None
        and base_cpus != cur_cpus
        and min(base_cpus, cur_cpus) == 1
    )
    rows: list[dict] = []
    ratios: dict[str, float] = {}
    for r in results:
        base = old.get(r["name"])
        row = {
            "name": r["name"],
            "size": r["size"],
            "wall_s": r["wall_s"],
            "backend": r.get("backend", "python"),
            "base_wall_s": base["wall_s"] if base else None,
            "base_backend": base.get("backend", "python") if base else None,
            "ratio": None,
            "norm_ratio": None,
            "status": "new",
        }
        if base is not None:
            if base.get("backend", "python") != r.get("backend", "python"):
                row["status"] = "backend-changed"
            elif shards_env_limited and "@shards" in r["name"]:
                row["status"] = "env-limited"
                row["base_cpus"] = base_cpus
                row["cur_cpus"] = cur_cpus
            elif base.get("size") != r["size"]:
                row["status"] = "size-changed"
            elif base["wall_s"] < 0.001:
                row["status"] = "sub-ms"
            else:
                row["ratio"] = r["wall_s"] / base["wall_s"]
                ratios[r["name"]] = row["ratio"]
                row["status"] = "compared"
        rows.append(row)
    if ratios:
        ordered = sorted(ratios.values())
        median = ordered[len(ordered) // 2]
        scale = max(median, 1.0)  # a faster machine earns no slack
        for row in rows:
            if row["ratio"] is not None:
                row["norm_ratio"] = row["ratio"] / scale
                row["median"] = median
    return rows


def check_regression(
    results: list[dict], baseline_path: Path, tolerance: float
) -> list[str]:
    """Compare kernel wall times against a baseline file.

    Per-workload slowdowns are **normalised by the median slowdown**
    across all comparable workloads (see :func:`compare_to_baseline`);
    only a workload slower than ``tolerance ×`` the *median* ratio is a
    real, workload-specific regression.
    """
    baseline = json.loads(Path(baseline_path).read_text())
    failures = []
    for row in compare_to_baseline(results, baseline):
        if row["norm_ratio"] is not None and row["norm_ratio"] > tolerance:
            failures.append(
                f"{row['name']}: {row['ratio']:.2f}x vs baseline "
                f"(> {tolerance:.2f}x the median slowdown {row['median']:.2f}x)"
            )
    return failures


def format_markdown_diff(
    results: list[dict], baseline_path: Path, tolerance: float
) -> str:
    """Render the full baseline comparison as a markdown table.

    Every workload appears — passes as well as failures — so the PR
    comment / job summary shows the whole perf picture, not just the
    breakages (ROADMAP "benchmark trend tracking" follow-up).
    """
    baseline = json.loads(Path(baseline_path).read_text())
    rows = compare_to_baseline(results, baseline)
    medians = [r["median"] for r in rows if r.get("median") is not None]
    lines = [
        "## Kernel benchmark diff",
        "",
        f"Baseline: `{baseline_path}`"
        + (
            f" (rev `{baseline['meta']['git_rev']}`)"
            if baseline.get("meta", {}).get("git_rev")
            else ""
        ),
    ]
    # Surface both environments: shard-variant deltas (``@shards2`` vs
    # ``@shards1``) are only meaningful relative to the core counts.
    base_meta = baseline.get("meta", {})
    cur_cpus, cur_python = os.cpu_count(), platform.python_version()
    base_cpus = base_meta.get("cpu_count")
    base_python = base_meta.get("python")
    lines.append(
        f"Environment: cpus={cur_cpus}, "
        f"python={cur_python} "
        f"(baseline: cpus={base_cpus if base_cpus is not None else '?'}, "
        f"python={base_python if base_python is not None else '?'})"
    )
    mismatches = []
    if base_cpus is not None and base_cpus != cur_cpus:
        mismatches.append(
            f"cpu_count differs (baseline {base_cpus}, current {cur_cpus})"
        )
    if base_python is not None and base_python != cur_python:
        mismatches.append(
            f"python differs (baseline {base_python}, current {cur_python})"
        )
    backend_changed = [r["name"] for r in rows if r["status"] == "backend-changed"]
    if backend_changed:
        mismatches.append(
            "BDD backend differs on: " + ", ".join(backend_changed)
        )
    if mismatches:
        lines.append(
            "> ⚠️ **environment mismatch:** "
            + "; ".join(mismatches)
            + " — wall-clock ratios and especially the sharded "
            "(`@shardsN`) and cross-backend (`@buddy`) deltas are not "
            "comparable across these runs."
        )
    if medians:
        lines.append(
            f"Median slowdown: **{medians[0]:.2f}x** "
            f"(gate: > {tolerance:.2f}x the median fails)"
        )
    lines += [
        "",
        "| workload | n | baseline | current | ratio | vs median | status |",
        "|---|---:|---:|---:|---:|---:|---|",
    ]
    for r in rows:
        base = (
            f"{r['base_wall_s'] * 1e3:.2f} ms"
            if r["base_wall_s"] is not None
            else "—"
        )
        cur = f"{r['wall_s'] * 1e3:.2f} ms"
        ratio = f"{r['ratio']:.2f}x" if r["ratio"] is not None else "—"
        norm = f"{r['norm_ratio']:.2f}x" if r["norm_ratio"] is not None else "—"
        if r["status"] == "compared":
            status = "🔴 regression" if r["norm_ratio"] > tolerance else "✅"
        elif r["status"] == "env-limited":
            status = (
                f"⚪ environment-limited "
                f"(cpus {r['base_cpus']} → {r['cur_cpus']})"
            )
        elif r["status"] == "sub-ms":
            status = "⚪ sub-ms (noise floor)"
        elif r["status"] == "size-changed":
            status = "⚪ size changed"
        elif r["status"] == "backend-changed":
            status = (
                f"⚪ backend changed "
                f"({r['base_backend']} → {r['backend']})"
            )
        else:
            status = "🆕 new workload"
        lines.append(
            f"| {r['name']} | {r['size']} | {base} | {cur} | {ratio} | {norm} | {status} |"
        )
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #


def git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or None
    except Exception:
        return None


def meta(smoke: bool, **extra) -> dict:
    """Run provenance.  ``extra`` records suite-specific knobs only —
    the ``--reorder``/``--gc`` flags go into the table1 meta alone,
    since kernel workloads hard-code their per-workload policies.

    ``cpu_count`` makes the sharded-runtime rows interpretable across
    machines: ``@shards2`` beating ``@shards1`` needs real cores, and a
    single-core runner shows the pure overhead instead.
    """
    return {
        "version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "git_rev": git_rev(),
        "smoke": smoke,
        **extra,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small sizes / fewer repeats (CI)"
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list available workloads and variants without running them",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="kernel repeats (default 5, smoke 2)"
    )
    parser.add_argument(
        "--out-dir", type=Path, default=REPO_ROOT, help="where to write BENCH_*.json"
    )
    parser.add_argument(
        "--only",
        default=None,
        help=(
            "comma-separated glob(s) of workloads to run, matched against "
            "'suite/name', the bare name and the bare suite — e.g. "
            "'kernel', 'table1/rand*', '*@shards*' (default: everything)"
        ),
    )
    parser.add_argument(
        "--skip",
        default=None,
        help=(
            "comma-separated glob(s) of workloads to exclude (applied "
            "after --only; same matching rules)"
        ),
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        help=(
            "write a Chrome trace-event JSON of the whole run to this "
            "file (also enables span phases on the kernel rows; without "
            "it only the ungated table1 rows are traced)"
        ),
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="previous BENCH_kernel.json to gate regressions against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        help="max allowed slowdown factor vs the baseline (default 1.5)",
    )
    parser.add_argument(
        "--reorder",
        default="off",
        choices=("off", "auto", "sift"),
        help="dynamic-reordering mode for the table1 solver runs",
    )
    parser.add_argument(
        "--gc",
        default="static",
        choices=("static", "adaptive"),
        help="GC tuning mode for the table1 solver runs",
    )
    parser.add_argument(
        "--backend",
        default="python",
        choices=("python", "buddy"),
        help=(
            "BDD kernel for the table1 solver runs (kernel workloads "
            "pin their own managers; @buddy variant rows run only "
            "where the native library loads)"
        ),
    )
    parser.add_argument(
        "--product-order",
        default="stacked",
        choices=("stacked", "interleaved"),
        help=(
            "product variable order for the table1 solver runs "
            "(@interleave variant rows are recorded only under the "
            "default stacked order)"
        ),
    )
    args = parser.parse_args(argv)
    select = make_workload_filter(args.only, args.skip)
    if args.list:
        print(list_workloads(select))
        return 0
    args.out_dir.mkdir(parents=True, exist_ok=True)
    repeats = args.repeats if args.repeats is not None else (2 if args.smoke else 5)
    filtered = bool(args.only or args.skip)
    # Tracing policy: --trace traces everything (the user asked for a
    # trace and accepts the overhead inside timed regions).  Without it
    # the kernel suite — the one the regression gate compares — runs
    # with tracing fully disabled (a global None check per span site),
    # and a tracer is installed only for the ungated table1 suite so
    # its rows still record per-phase breakdowns.
    run_tracer = install_tracer() if args.trace else None

    rc = 0
    run_kernel_suite = any(
        select("kernel", name) for name, *_ in KERNEL_WORKLOADS
    )
    if run_kernel_suite:
        print("== kernel benchmarks ==", flush=True)
        kernel_results = run_kernel(args.smoke, repeats, select)
        payload = {
            "schema": SCHEMA_KERNEL,
            # Kernel workloads pin their own managers, so the suite-level
            # backend is always the reference kernel; per-row ``backend``
            # fields record what each workload actually ran on.
            "meta": meta(args.smoke, backend="python", filtered=filtered),
            "results": kernel_results,
        }
        out = args.out_dir / "BENCH_kernel.json"
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
        if args.baseline is not None:
            diff_md = format_markdown_diff(
                kernel_results, args.baseline, args.tolerance
            )
            diff_out = args.out_dir / "BENCH_diff.md"
            diff_out.write_text(diff_md)
            print(f"wrote {diff_out}")
            failures = check_regression(kernel_results, args.baseline, args.tolerance)
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            if failures:
                rc = 1

    run_table1_suite = any(
        select("table1", name)
        for name in table1_row_names(
            args.smoke,
            reorder=args.reorder,
            backend=args.backend,
            product_order=args.product_order,
        )
    )
    if run_table1_suite:
        if current_tracer() is None:
            install_tracer()  # table1 rows are ungated; record phases
        print("== table1 benchmarks ==", flush=True)
        table1_rows = run_table1_bench(
            args.smoke,
            reorder=args.reorder,
            gc_mode=args.gc,
            backend=args.backend,
            product_order=args.product_order,
            select=select,
        )
        payload = {
            "schema": SCHEMA_TABLE1,
            "meta": meta(
                args.smoke,
                reorder=args.reorder,
                gc=args.gc,
                backend=args.backend,
                product_order=args.product_order,
                filtered=filtered,
            ),
            "results": table1_rows,
        }
        out = args.out_dir / "BENCH_table1.json"
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")

    if not run_kernel_suite and not run_table1_suite:
        uninstall_tracer()
        print("no workloads match --only/--skip; nothing run", file=sys.stderr)
        return 2

    if run_tracer is not None:
        run_tracer.export(str(args.trace))
        print(f"wrote {args.trace} ({len(run_tracer)} events)")
    uninstall_tracer()
    return rc


if __name__ == "__main__":
    sys.exit(main())
