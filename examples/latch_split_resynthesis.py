#!/usr/bin/env python
"""Sequential resynthesis with Complete Sequential Flexibility (s27).

The headline use case of the paper: given a multi-level sequential
circuit, compute the *complete sequential flexibility* of a sub-part —
every FSM behaviour that could legally replace it — as the most general
prefix-closed solution of F x X ⊆ S.  A synthesis tool can then pick the
cheapest implementation inside the CSF.

This example runs the full flow on the ISCAS'89 s27 benchmark:
partitioned vs monolithic timing, formal verification, and a look at how
much freedom the CSF offers beyond the existing implementation.

Run:  python examples/latch_split_resynthesis.py
"""

import sys
from pathlib import Path

try:  # src layout: let `python examples/<name>.py` run without installing
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bdd import sat_count
from repro.bench import s27
from repro.automata import contained_in, write_kiss
from repro.eqn import (
    build_latch_split_problem,
    particular_solution_automaton,
    solve_equation,
    verify_solution,
)


def main() -> None:
    net = s27()
    x_latches = ["G6"]
    print(f"circuit {net.name}: {net.stats()}; unknown component: latch {x_latches}")

    # Solve with both flows on the same problem instance.
    problem = build_latch_split_problem(net, x_latches)
    part = solve_equation(problem, method="partitioned")
    mono = solve_equation(problem, method="monolithic")
    print(f"partitioned: {part.csf_states} CSF states in {part.seconds:.3f}s")
    print(f"monolithic:  {mono.csf_states} CSF states in {mono.seconds:.3f}s")

    # Formal checks (Section 4 of the paper).
    report = verify_solution(part)
    print(f"verification: {report.summary()}")
    assert report.ok

    # How much freedom did we gain?  Compare the number of (state, letter)
    # behaviours of the CSF against the original sub-circuit X_P.
    csf = part.csf
    mgr = csf.manager
    uv = [mgr.var_index(v) for v in csf.variables]
    xp = particular_solution_automaton(problem)
    assert contained_in(xp, csf).holds

    def behaviour_count(aut):
        total = 0
        for sid in range(aut.num_states):
            total += sat_count(mgr, aut.defined_cond(sid), uv)
        return total

    print(f"defined (state,letter) pairs: X_P = {behaviour_count(xp)}, "
          f"CSF = {behaviour_count(csf)}")

    # Export the CSF for a downstream synthesis tool (KISS2, as used by
    # the BALM/MVSIS toolchain the paper was implemented in).
    kiss = write_kiss(csf)
    print(f"CSF exported as KISS2 ({len(kiss.splitlines())} lines); first lines:")
    for line in kiss.splitlines()[:6]:
        print(f"  {line}")

    # Close the loop (the paper's "future work"): pick a sub-solution
    # FSM inside the CSF, encode it as a circuit, and recompose with F.
    from repro.eqn import implement_csf, recompose_with_implementation

    impl = implement_csf(csf, problem.u_names, problem.v_names, name="s27_impl")
    print(f"\nextracted implementation: {impl.state_count} states, "
          f"{impl.network.num_latches} latch(es), "
          f"{len(impl.network.nodes)} nodes")
    resynth = recompose_with_implementation(problem, impl)
    print(f"resynthesised circuit: {resynth.stats()} "
          f"(original was {net.stats()})")


if __name__ == "__main__":
    main()
