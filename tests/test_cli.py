"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.bench import S27_BLIF
from repro.cli import main


@pytest.fixture()
def blif_file(tmp_path):
    path = tmp_path / "s27.blif"
    path.write_text(S27_BLIF)
    return str(path)


class TestInfo:
    def test_info_prints_stats(self, blif_file, capsys) -> None:
        assert main(["info", "--blif", blif_file]) == 0
        out = capsys.readouterr().out
        assert "s27" in out
        assert "4/1/3" in out
        assert "G5 G6 G7" in out


class TestSolve:
    def test_solve_with_verification(self, blif_file, capsys) -> None:
        code = main(["solve", "--blif", blif_file, "--x-latches", "G6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "csf_states=7" in out
        assert "verification" in out and "True" in out

    def test_solve_monolithic_no_verify(self, blif_file, capsys) -> None:
        code = main(
            [
                "solve",
                "--blif",
                blif_file,
                "--x-latches",
                "G6",
                "--method",
                "monolithic",
                "--no-verify",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "method=monolithic" in out
        assert "verification" not in out

    def test_solve_writes_kiss_and_dot(self, blif_file, tmp_path, capsys) -> None:
        kiss = tmp_path / "csf.kiss"
        dot = tmp_path / "csf.dot"
        code = main(
            [
                "solve",
                "--blif",
                blif_file,
                "--x-latches",
                "G6",
                "--no-verify",
                "--kiss-out",
                str(kiss),
                "--dot-out",
                str(dot),
            ]
        )
        assert code == 0
        assert kiss.read_text().startswith(".i ")
        assert "digraph" in dot.read_text()
        # And the KISS round-trips.
        from repro.automata import parse_kiss

        aut = parse_kiss(kiss.read_text())
        assert aut.num_states == 7

    def test_solve_multiple_latches(self, blif_file, capsys) -> None:
        code = main(
            ["solve", "--blif", blif_file, "--x-latches", "G5,G7", "--no-verify"]
        )
        assert code == 0

    def test_solve_sharded_rejects_monolithic(self, blif_file, capsys) -> None:
        code = main(
            [
                "solve",
                "--blif",
                blif_file,
                "--x-latches",
                "G6",
                "--method",
                "monolithic",
                "--shards",
                "2",
            ]
        )
        assert code == 2
        assert "--shards requires" in capsys.readouterr().err

    def test_solve_sharded_matches_inprocess(self, blif_file, capsys) -> None:
        code = main(
            [
                "solve",
                "--blif",
                blif_file,
                "--x-latches",
                "G6",
                "--shards",
                "2",
                "--no-verify",
            ]
        )
        assert code == 0
        assert "csf_states=7" in capsys.readouterr().out

    def test_solve_batched_frontier(self, blif_file, capsys) -> None:
        code = main(
            [
                "solve",
                "--blif",
                blif_file,
                "--x-latches",
                "G6",
                "--frontier",
                "bfs",
                "--batch",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "csf_states=7" in out
        assert "batches=" in out
        assert "True" in out  # verification still passes

    def test_solve_interleaved_product_order(self, blif_file, capsys) -> None:
        code = main(
            [
                "solve",
                "--blif",
                blif_file,
                "--x-latches",
                "G6",
                "--product-order",
                "interleaved",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "csf_states=7" in out
        assert "True" in out  # verification passes under either order

    def test_solve_sharded_batched(self, blif_file, capsys) -> None:
        code = main(
            [
                "solve",
                "--blif",
                blif_file,
                "--x-latches",
                "G6",
                "--shards",
                "2",
                "--batch",
                "4",
                "--frontier",
                "size",
                "--no-verify",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "csf_states=7" in out
        # The ψ-transfer accounting is printed for sharded runs.
        assert "psi_serializations" in out

    def test_solve_sharded_trace_export(
        self, blif_file, tmp_path, capsys
    ) -> None:
        """Acceptance: one ``solve --shards 2 --trace out.json`` writes a
        Chrome-trace-loadable file with coordinator and worker spans."""
        import json

        from repro.obs.trace import current_tracer, validate_trace, worker_pids

        out = tmp_path / "out.json"
        code = main(
            [
                "solve",
                "--blif",
                blif_file,
                "--x-latches",
                "G6,G7",
                "--shards",
                "2",
                "--batch",
                "4",
                "--trace",
                str(out),
                "--no-verify",
            ]
        )
        assert code == 0
        assert current_tracer() is None  # CLI uninstalls after export
        assert f"trace written to {out}" in capsys.readouterr().out
        data = json.loads(out.read_text())
        assert validate_trace(data, require_workers=True) == []
        assert len(worker_pids(data)) == 2
        names = {
            e["name"] for e in data["traceEvents"] if e.get("ph") == "X"
        }
        assert {"solve", "frontier_batch", "shard:expand_batch"} <= names

    def test_reach_trace_export(self, blif_file, tmp_path, capsys) -> None:
        import json

        from repro.obs.trace import validate_trace

        out = tmp_path / "reach.json"
        code = main(
            ["reach", "--blif", blif_file, "--trace", str(out)]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert validate_trace(data) == []
        names = {
            e["name"] for e in data["traceEvents"] if e.get("ph") == "X"
        }
        assert "reach_iteration" in names

    def test_log_level_flag_routes_structured_logs(
        self, blif_file, capsys
    ) -> None:
        import json as json_mod
        import logging

        code = main(
            [
                "solve",
                "--blif",
                blif_file,
                "--x-latches",
                "G6",
                "--no-verify",
                "--log-level",
                "debug",
                "--log-json",
            ]
        )
        assert code == 0
        root = logging.getLogger("repro")
        assert root.level == logging.DEBUG  # configure() took effect
        err = capsys.readouterr().err
        for line in err.splitlines():
            if line.startswith("{"):
                json_mod.loads(line)  # any emitted log lines are JSON

    def test_frontier_choices_match_strategies(self) -> None:
        """The CLI's literal --frontier choices must track STRATEGIES."""
        from repro.cli import _build_parser
        from repro.eqn.subset import STRATEGIES

        parser = _build_parser()
        subparsers = parser._subparsers._group_actions[0]
        solve = subparsers.choices["solve"]
        (action,) = [
            a for a in solve._actions if "--frontier" in a.option_strings
        ]
        assert tuple(action.choices) == STRATEGIES

    def test_version_flag(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestReach:
    def test_reach_counts_states(self, blif_file, capsys) -> None:
        assert main(["reach", "--blif", blif_file]) == 0
        out = capsys.readouterr().out
        assert "reachable states: 6 of 8" in out

    def test_reach_without_scheduling(self, blif_file, capsys) -> None:
        assert main(["reach", "--blif", blif_file, "--no-schedule"]) == 0
        out = capsys.readouterr().out
        assert "reachable states: 6 of 8" in out

    def test_reach_sharded_matches_inprocess(self, blif_file, capsys) -> None:
        assert main(["reach", "--blif", blif_file, "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "reachable states: 6 of 8" in out


class TestStg:
    def test_stg_summary(self, blif_file, capsys) -> None:
        assert main(["stg", "--blif", blif_file]) == 0
        out = capsys.readouterr().out
        assert "states: 6" in out
        assert "deterministic: True" in out

    def test_stg_complete_and_export(self, blif_file, tmp_path, capsys) -> None:
        kiss = tmp_path / "stg.kiss"
        dot = tmp_path / "stg.dot"
        code = main(
            [
                "stg",
                "--blif",
                blif_file,
                "--complete",
                "--kiss-out",
                str(kiss),
                "--dot-out",
                str(dot),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "states: 7" in out  # 6 + DC
        assert "complete: True" in out
        from repro.automata import parse_kiss

        assert parse_kiss(kiss.read_text()).num_states == 7
        assert "digraph" in dot.read_text()


class TestImplementOut:
    def test_solve_writes_implementation(self, blif_file, tmp_path, capsys) -> None:
        out_blif = tmp_path / "impl.blif"
        code = main(
            [
                "solve",
                "--blif",
                blif_file,
                "--x-latches",
                "G6",
                "--no-verify",
                "--implement-out",
                str(out_blif),
            ]
        )
        assert code == 0
        from repro.network import read_blif

        impl = read_blif(str(out_blif))
        impl.validate()
        assert impl.name == "s27_impl"
        assert impl.num_latches >= 1


class TestTable1:
    def test_single_row(self, capsys) -> None:
        assert main(["table1", "--rows", "s27"]) == 0
        out = capsys.readouterr().out
        assert "States(X)" in out
        assert "s27" in out

    def test_row_with_paper_reference(self, capsys) -> None:
        assert main(["table1", "--rows", "s27", "--paper"]) == 0
        out = capsys.readouterr().out
        assert "s510" in out  # the paper table is printed

    def test_unknown_row_rejected(self) -> None:
        with pytest.raises(KeyError):
            main(["table1", "--rows", "sDoesNotExist"])


class TestBench:
    def test_bench_subcommand_runs_kernel_smoke(self, tmp_path, capsys) -> None:
        """``repro bench`` forwards its flags to the benchmark driver."""
        code = main(
            [
                "bench",
                "--smoke",
                "--only",
                "kernel",
                "--repeats",
                "1",
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "kernel/and_or_chain" in out
        assert (tmp_path / "BENCH_kernel.json").exists()

    def test_bench_subcommand_writes_diff_against_baseline(
        self, tmp_path, capsys
    ) -> None:
        import json
        import pathlib

        baseline = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "baselines"
            / "BENCH_kernel_smoke.json"
        )
        code = main(
            [
                "bench",
                "--smoke",
                "--only",
                "kernel",
                "--repeats",
                "1",
                "--out-dir",
                str(tmp_path),
                "--baseline",
                str(baseline),
                "--tolerance",
                "50",  # generous: this asserts plumbing, not performance
            ]
        )
        assert code == 0
        diff = (tmp_path / "BENCH_diff.md").read_text()
        assert diff.startswith("## Kernel benchmark diff")
        payload = json.loads((tmp_path / "BENCH_kernel.json").read_text())
        assert {r["name"] for r in payload["results"]} >= {"and_or_chain", "deep_chain"}

    def test_table1_rows_carry_phase_breakdowns(self, tmp_path, capsys) -> None:
        """Default (untraced) table1 rows still record per-phase time —
        the ungated suite auto-installs a tracer for its own rows."""
        import json

        code = main(
            [
                "bench",
                "--smoke",
                "--only",
                "table1/s27",
                "--repeats",
                "1",
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        payload = json.loads((tmp_path / "BENCH_table1.json").read_text())
        assert payload["schema"] == "repro-bench-table1/9"
        (row,) = payload["results"]
        for method in ("partitioned", "monolithic"):
            phases = row["methods"][method]["phases"]
            assert phases["solve"] > 0
            assert "frontier_batch" in phases
            # Phase wall time never exceeds the row's measured wall time
            # by more than nesting double-counts allow; sanity-check the
            # headline phase against it.
            assert phases["solve"] <= row["methods"][method]["wall_s"] * 1.5

    def test_kernel_rows_untraced_by_default(self, tmp_path, capsys) -> None:
        """The regression-gated kernel suite runs with tracing off
        unless --trace opts in, so the gate never sees tracer overhead."""
        import json

        code = main(
            [
                "bench",
                "--smoke",
                "--only",
                "kernel",
                "--repeats",
                "1",
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        payload = json.loads((tmp_path / "BENCH_kernel.json").read_text())
        assert payload["schema"] == "repro-bench-kernel/4"
        assert all("phases" not in r for r in payload["results"])

    def test_bench_trace_flag_exports_run_trace(self, tmp_path, capsys) -> None:
        import json

        from repro.obs.trace import validate_trace

        out = tmp_path / "bench-trace.json"
        code = main(
            [
                "bench",
                "--smoke",
                "--only",
                "kernel",
                "--repeats",
                "1",
                "--out-dir",
                str(tmp_path),
                "--trace",
                str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert validate_trace(data) == []
        # Opting in traces the kernel suite too: rows gain phases.
        payload = json.loads((tmp_path / "BENCH_kernel.json").read_text())
        assert any("phases" in r for r in payload["results"])
