"""Partitioned transition/output relations.

The paper's central data structure: instead of the monolithic relation
``T(i,cs,ns) = Π_k [ns_k ≡ T_k(i,cs)]`` (whose BDD "may be huge"), keep
the list of conjuncts — one small BDD per latch/output — and perform all
computations directly on the parts.  :class:`PartitionedRelation` is a
thin container with helpers to build the parts from a network's function
BDDs and to (deliberately) collapse to the monolithic form for the
baseline flow.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.bdd.manager import TRUE, BddManager


@dataclass
class PartitionedRelation:
    """A conjunction of relation parts kept in partitioned form."""

    manager: BddManager
    parts: list[int] = field(default_factory=list)

    def add_part(self, part: int) -> None:
        """Append one conjunct (dropping trivially-true parts)."""
        if part != TRUE:
            self.parts.append(part)

    def add_function(self, var: int, function: int) -> None:
        """Append the part ``var ≡ function`` (e.g. ``ns_k ≡ T_k``)."""
        mgr = self.manager
        self.add_part(mgr.apply_iff(mgr.var_node(var), function))

    def extend(self, other: "PartitionedRelation") -> None:
        """Concatenate parts — the paper's partitioned *product*:

        "the partitioned representation of the product automaton is
        simply the union of the two partitions."
        """
        self.parts.extend(other.parts)

    def monolithic(self) -> int:
        """Collapse to a single conjunction (the baseline representation)."""
        mgr = self.manager
        result = TRUE
        for part in self.parts:
            result = mgr.apply_and(result, part)
        return result

    def support(self) -> set[int]:
        """Union of the supports of all parts."""
        out: set[int] = set()
        for part in self.parts:
            out |= self.manager.support(part)
        return out

    def size(self) -> int:
        """Shared BDD node count of all parts."""
        return self.manager.size_many(self.parts)

    def copy(self) -> "PartitionedRelation":
        return PartitionedRelation(self.manager, list(self.parts))

    def __len__(self) -> int:
        return len(self.parts)

    def __iter__(self):
        return iter(self.parts)


def functions_to_relation(
    mgr: BddManager,
    bindings: Iterable[tuple[int, int]],
) -> PartitionedRelation:
    """Build ``Π (var ≡ function)`` in partitioned form.

    ``bindings`` yields (variable index, function BDD) pairs — e.g. the
    ``(ns_k, T_k)`` pairs of a network.
    """
    rel = PartitionedRelation(mgr)
    for var, function in bindings:
        rel.add_function(var, function)
    return rel


def transition_relation(
    mgr: BddManager,
    next_state: Mapping[str, int],
    ns_vars: Mapping[str, int],
    order: Sequence[str] | None = None,
) -> PartitionedRelation:
    """Partitioned transition relation ``{ns_k ≡ T_k(i,cs)}`` of a network.

    ``next_state`` maps latch name -> function BDD and ``ns_vars`` maps
    latch name -> next-state variable index.
    """
    names = list(order) if order is not None else list(next_state)
    return functions_to_relation(
        mgr, ((ns_vars[name], next_state[name]) for name in names)
    )


def output_relation(
    mgr: BddManager,
    outputs: Mapping[str, int],
    o_vars: Mapping[str, int],
    order: Sequence[str] | None = None,
) -> PartitionedRelation:
    """Partitioned output relation ``{o_j ≡ O_j(i,cs)}`` of a network."""
    names = list(order) if order is not None else list(outputs)
    return functions_to_relation(
        mgr, ((o_vars[name], outputs[name]) for name in names)
    )
