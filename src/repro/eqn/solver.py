"""Top-level solver facade.

``solve_latch_split(net, x_latches)`` is the one-call API: split the
network, build the problem, run the requested flow (partitioned /
monolithic / explicit), extract the CSF, and return everything with
timings.  This is what the examples, the CLI, the Table 1 harness and
most tests use.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import EquationError
from repro.automata.automaton import Automaton
from repro.eqn.csf import csf_state_count, extract_csf
from repro.eqn.explicit_solver import ExplicitTrace, solve_explicit
from repro.eqn.monolithic import MonolithicOracle
from repro.eqn.partitioned import PartitionedOracle
from repro.eqn.problem import EquationProblem, build_problem
from repro.eqn.subset import SubsetStats, subset_construct
from repro.network.netlist import Network
from repro.network.transform import LatchSplit, latch_split
from repro.obs.trace import span as obs_span
from repro.util.limits import ResourceLimit
from repro.util.timer import Stopwatch

#: Flow names accepted by the solver entry points.
METHODS = ("partitioned", "monolithic", "explicit")


@dataclass
class SolveResult:
    """Outcome of one language-equation solve."""

    problem: EquationProblem
    method: str
    solution: Automaton  # most general prefix-closed solution (incl. DCA)
    csf: Automaton  # largest prefix-closed input-progressive part
    seconds: float
    stats: SubsetStats | None = None
    explicit_trace: ExplicitTrace | None = None
    options: dict = field(default_factory=dict)

    @property
    def split(self) -> LatchSplit:
        return self.problem.split

    @property
    def csf_states(self) -> int:
        """The paper's ``States(X)`` column."""
        return csf_state_count(self.csf)

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"{self.split.original.name}: method={self.method} "
            f"csf_states={self.csf_states} time={self.seconds:.3f}s"
        )


def solve_equation(
    problem: EquationProblem,
    *,
    method: str = "partitioned",
    limit: ResourceLimit | None = None,
    schedule: bool = True,
    trim: bool = True,
    shards: int = 1,
    shard_opts: dict | None = None,
    frontier: str = "dfs",
    batch: int = 1,
    pool=None,
    progress=None,
    cancel=None,
    checkpoint=None,
    checkpoint_every: int = 0,
    checkpoint_seconds: float = 0.0,
    resume: dict | None = None,
    resident_budget: int | None = None,
    spill_dir: str | None = None,
    compose: bool = False,
) -> SolveResult:
    """Solve a built problem with the chosen flow.

    Parameters
    ----------
    method:
        ``"partitioned"`` (the paper's contribution), ``"monolithic"``
        (the baseline), or ``"explicit"`` (Algorithm 1 on explicit
        automata — reference only).
    limit:
        Optional wall-clock budget; BDD-node budgets are configured when
        *building* the problem (``max_nodes``).
    schedule:
        Early-quantification scheduling (partitioned flow only; the E5
        ablation switches it off).
    trim:
        The DCN subset-trimming shortcut (both symbolic flows; the E6
        ablation switches it off).
    shards:
        ``1`` (default) keeps the in-process path bit-identically;
        ``N ≥ 2`` runs the partitioned oracle's image computations on a
        pool of ``N`` worker processes (:mod:`repro.shard`), joining the
        transferred partial results in the problem manager.  The result
        is identical to ``shards=1``; only the partitioned flow shards.
    shard_opts:
        Worker-manager knobs forwarded to the pool (``gc``, ``reorder``,
        ``max_nodes``).
    frontier:
        Frontier ordering strategy of the subset driver (``"dfs"`` —
        the classic worklist, ``"bfs"``, ``"size"``; see
        :class:`repro.eqn.subset.FrontierScheduler`).
    batch:
        Subset states expanded per ``expand_batch`` call (``1`` — the
        classic one-ψ-at-a-time loop).  Larger batches pipeline the
        sharded oracle's image computations across the pool and let the
        completion memo deduplicate sibling subsets; the solved language
        (and the CSF) is identical for every setting, only subset
        discovery order can differ.
    pool:
        Optional pre-warmed :class:`~repro.shard.pool.ShardPool` to
        borrow instead of forking a fresh one (the job server reuses one
        pool across jobs).  Must already be reset to this problem's
        variable order and have ``shards`` workers; it is left running
        when the solve finishes.
    progress / cancel / checkpoint / checkpoint_every /
    checkpoint_seconds / resume:
        Serving hooks forwarded to
        :func:`~repro.eqn.subset.subset_construct` (per-batch progress
        events, cooperative cancellation, resumable frontier
        checkpoints on a batch-count and/or wall-clock cadence —
        whichever fires first).  Symbolic flows only.
    resident_budget / spill_dir:
        Bounded-memory residency (:mod:`repro.eqn.residency`): with a
        node-count budget set, cold expanded subset states are spilled
        to a content-addressed store — ``spill_dir`` when given, a
        private temporary directory otherwise — and the solve is
        byte-identical to the unbounded run at a bounded peak.  With
        ``shards > 1`` the workers share the same store and budget for
        their resident registries.
    compose:
        Compositional solving (:mod:`repro.eqn.compose`): when the
        split's support graph decomposes into independent latch
        components with all the ``(u, v)`` letters in one of them (and
        the letter-free rest verified conformant), solve only the
        letterful sub-equation — language-identical to the direct
        solve, typically far smaller.  Falls back to the direct solve
        when the decomposition does not apply.  Partitioned flow with
        trimming only.
    """
    if method not in METHODS:
        raise EquationError(f"unknown method {method!r}; choose from {METHODS}")
    if shards > 1 and method != "partitioned":
        raise EquationError(
            f"--shards requires the partitioned flow, not {method!r}"
        )
    if method == "explicit" and (resident_budget is not None or compose):
        raise EquationError(
            "--resident-budget/--compose apply to the symbolic flows only"
        )
    if compose:
        if method != "partitioned" or not trim:
            raise EquationError(
                "--compose requires the partitioned flow with trimming"
            )
        from repro.eqn.compose import solve_compositional

        result = solve_compositional(
            problem,
            limit=limit,
            schedule=schedule,
            shards=shards,
            shard_opts=shard_opts,
            frontier=frontier,
            batch=batch,
            resident_budget=resident_budget,
            spill_dir=spill_dir,
        )
        if result is not None:
            return result
        # The decomposition does not apply — fall through to the
        # direct solve (recorded in the options so callers can tell).
    watch = Stopwatch()
    if limit is not None:
        limit.restart()
    if method == "explicit":
        with obs_span("solve", method=method):
            csf, trace = solve_explicit(problem)
        return SolveResult(
            problem=problem,
            method=method,
            solution=csf,
            csf=csf,
            seconds=watch.elapsed(),
            explicit_trace=trace,
            options={"schedule": schedule, "trim": trim},
        )
    residency = None
    if resident_budget is not None:
        from repro.eqn.residency import ResidencyManager

        residency = ResidencyManager(
            problem.manager, resident_budget, spill_dir=spill_dir
        )
        if shards > 1:
            # Workers run the same discipline over their resident
            # registries, sharing the coordinator's store (content
            # addressing makes concurrent writers idempotent).
            shard_opts = dict(shard_opts or {})
            shard_opts.setdefault("resident_budget", resident_budget)
            shard_opts.setdefault("spill_dir", residency.store.root)
    try:
        with obs_span(
            "solve",
            method=method,
            shards=shards,
            batch=batch,
            frontier=frontier,
        ) as solve_span:
            if method == "partitioned":
                with obs_span("oracle_setup", shards=shards):
                    oracle = PartitionedOracle(
                        problem,
                        schedule=schedule,
                        trim=trim,
                        shards=shards,
                        shard_opts=shard_opts,
                        pool=pool,
                    )
            else:
                with obs_span("oracle_setup", shards=0):
                    oracle = MonolithicOracle(problem, trim=trim)
            try:
                solution, stats = subset_construct(
                    oracle,
                    problem,
                    limit=limit,
                    strategy=frontier,
                    batch_size=batch,
                    progress=progress,
                    cancel=cancel,
                    checkpoint=checkpoint,
                    checkpoint_every=checkpoint_every,
                    checkpoint_seconds=checkpoint_seconds,
                    resume=resume,
                    residency=residency,
                )
            finally:
                closer = getattr(oracle, "close", None)
                if closer is not None:
                    closer()
            with obs_span("extract_csf"):
                csf = extract_csf(solution, problem.u_names)
            solve_span.set(subsets=stats.subsets, batches=stats.batches)
    finally:
        if residency is not None:
            # After the oracle (and its pool) is down: a worker must
            # never outlive the spill store it shares.
            residency.close()
    return SolveResult(
        problem=problem,
        method=method,
        solution=solution,
        csf=csf,
        seconds=watch.elapsed(),
        stats=stats,
        options={
            "schedule": schedule,
            "trim": trim,
            "shards": shards,
            "frontier": frontier,
            "batch": batch,
            "product_order": getattr(problem, "product_order", "stacked"),
            "resident_budget": resident_budget,
            "compose": False,
        },
    )


def solve_latch_split(
    net: Network,
    x_latches: Sequence[str],
    *,
    method: str = "partitioned",
    u_signals: Sequence[str] | None = None,
    limit: ResourceLimit | None = None,
    schedule: bool = True,
    trim: bool = True,
    reorder: str = "off",
    gc: str = "static",
    backend: str = "python",
    product_order: str = "stacked",
    shards: int = 1,
    shard_opts: dict | None = None,
    frontier: str = "dfs",
    batch: int = 1,
    pool=None,
    progress=None,
    cancel=None,
    checkpoint=None,
    checkpoint_every: int = 0,
    checkpoint_seconds: float = 0.0,
    resume: dict | None = None,
    resident_budget: int | None = None,
    spill_dir: str | None = None,
    compose: bool = False,
) -> SolveResult:
    """Split ``net``, then solve for the CSF of the moved latches.

    This reproduces the paper's experimental setup end to end: the
    original network is the specification ``S``, the part keeping the
    latches *not* in ``x_latches`` is ``F``, and the computed ``X`` is
    the complete sequential flexibility of the moved part.

    ``reorder`` / ``gc`` select the manager's adaptive runtime (see
    :func:`repro.eqn.problem.build_problem`): with ``reorder="auto"``
    long subset constructions sift their state variables in place when
    garbage collections stop reclaiming, without invalidating any of the
    pinned subset/edge BDDs.

    ``backend`` picks the BDD kernel (see
    :func:`repro.bdd.backends.create_manager`); results are identical on
    every backend — only wall-clock changes — and shard workers inherit
    the same backend choice through the pool options.

    ``product_order`` picks the product variable-order policy
    (``"stacked"`` / ``"interleaved"``, see
    :func:`repro.eqn.problem.build_problem`); results are identical for
    both — interleaving is a node-count lever for coupled splits.
    """
    split = latch_split(net, x_latches, u_signals=u_signals)
    max_nodes = limit.max_nodes if limit is not None else None
    with obs_span("build_problem", network=net.name, backend=backend):
        problem = build_problem(
            split,
            max_nodes=max_nodes,
            reorder=reorder,
            gc=gc,
            backend=backend,
            product_order=product_order,
        )
    return solve_equation(
        problem,
        method=method,
        limit=limit,
        schedule=schedule,
        trim=trim,
        shards=shards,
        shard_opts=shard_opts,
        frontier=frontier,
        batch=batch,
        pool=pool,
        progress=progress,
        cancel=cancel,
        checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        checkpoint_seconds=checkpoint_seconds,
        resume=resume,
        resident_budget=resident_budget,
        spill_dir=spill_dir,
        compose=compose,
    )


def verify_solution(result: SolveResult, **kwargs):
    """Shortcut to :func:`repro.eqn.verify.verify_solution`."""
    from repro.eqn.verify import verify_solution as _verify

    return _verify(result, **kwargs)
