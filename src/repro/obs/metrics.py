"""Stdlib-only metrics: counters, gauges, histograms, Prometheus text.

The runtime already *measures* a lot — GC reclaim ratios, reorder
swaps, completion-memo hits, psi serializations, steal counts, cache
hits — but each statistic lives in its own ad-hoc dict
(``mgr.stats``, ``SubsetStats.extra``, ``ShardPool.op_counts``).  A
:class:`MetricsRegistry` federates them behind one interface and one
wire format: the Prometheus text exposition format served at
``GET /metrics`` by :mod:`repro.serve.server`::

    registry = MetricsRegistry()
    solves = registry.counter("repro_solves_total", "Completed solves.")
    solves.inc()
    print(registry.render())
    # HELP repro_solves_total Completed solves.
    # TYPE repro_solves_total counter
    # repro_solves_total 1

Metric constructors are get-or-create: asking twice for the same name
returns the same object (with a :class:`ValueError` on a kind
mismatch), so independent call sites can share families without
plumbing.  All mutation is lock-protected — the executor thread and the
HTTP threads touch the same registry.

:func:`parse_exposition` is the matching mini-parser used by the tests
(grammar round-trip) and available for scripting against ``/metrics``.
"""

from __future__ import annotations

import math
import re
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_exposition",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets — seconds-oriented, spanning the sub-ms
#: shard commands up to multi-minute Table 1 solves.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.025, 0.1, 0.5, 1.0, 5.0, 25.0, 100.0, 500.0,
)


def _fmt(value: float) -> str:
    """Render a sample value (ints without a trailing ``.0``)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def _label_key(labels: dict) -> tuple:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"bad label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_str(key: tuple) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in key)
    return "{" + inner + "}"


class _Metric:
    """Shared naming/locking scaffolding of the three metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"bad metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._values: dict[tuple, float] = {}

    def value(self, **labels) -> float:
        """Current value of one label combination (0 when unseen)."""
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> list[tuple[str, tuple, float]]:
        """Flat ``(sample_name, label_key, value)`` triples to render."""
        with self._lock:
            items = sorted(self._values.items())
        if not items:
            items = [((), 0.0)]
        return [(self.name, key, value) for key, value in items]


class Counter(_Metric):
    """A monotonically increasing count (name should end ``_total``)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set_to(self, value: float, **labels) -> None:
        """Raise the counter to an absolute value (for federating an
        already-cumulative source counter); never moves backwards."""
        key = _label_key(labels)
        with self._lock:
            self._values[key] = max(self._values.get(key, 0.0), float(value))


class Gauge(_Metric):
    """A value that can go up and down (queue depth, live nodes)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)


class Histogram(_Metric):
    """Cumulative-bucket histogram (``_bucket``/``_sum``/``_count``)."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str, buckets: tuple = DEFAULT_BUCKETS
    ) -> None:
        super().__init__(name, help)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        # Per label key: [per-bucket counts..., +Inf count], sum.
        self._data: dict[tuple, tuple[list, list]] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            counts, total = self._data.setdefault(
                key, ([0] * (len(self.buckets) + 1), [0.0])
            )
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            total[0] += float(value)
            self._values[key] = self._values.get(key, 0.0) + 1

    def samples(self) -> list[tuple[str, tuple, float]]:
        with self._lock:
            data = {k: (list(c), t[0]) for k, (c, t) in self._data.items()}
        if not data:
            data = {(): ([0] * (len(self.buckets) + 1), 0.0)}
        out: list[tuple[str, tuple, float]] = []
        for key in sorted(data):
            counts, total = data[key]
            running = 0
            for bound, n in zip(self.buckets, counts):
                running += n
                out.append(
                    (
                        f"{self.name}_bucket",
                        key + (("le", _fmt(bound)),),
                        float(running),
                    )
                )
            running += counts[-1]
            out.append(
                (f"{self.name}_bucket", key + (("le", "+Inf"),), float(running))
            )
            out.append((f"{self.name}_sum", key, total))
            out.append((f"{self.name}_count", key, float(running)))
        return out


class MetricsRegistry:
    """A named family of metrics rendered in one exposition document."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str) -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str) -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str, buckets: tuple = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def render(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: list[str] = []
        for metric in metrics:
            help_text = metric.help.replace("\\", r"\\").replace("\n", r"\n")
            lines.append(f"# HELP {metric.name} {help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample_name, key, value in metric.samples():
                lines.append(f"{sample_name}{_label_str(key)} {_fmt(value)}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """Plain-dict view (per-job ``metrics`` field, ``repro jobs``).

        Label-free metrics map to their value; labelled ones map to a
        ``{"k=v": value}`` dict; histograms to ``{"count", "sum"}``.
        """
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        out: dict = {}
        for metric in metrics:
            if isinstance(metric, Histogram):
                with metric._lock:
                    count = sum(metric._values.values())
                    total = sum(t[0] for _, t in metric._data.values())
                out[metric.name] = {"count": count, "sum": total}
                continue
            with metric._lock:
                values = dict(metric._values)
            if not values:
                out[metric.name] = 0.0
            elif len(values) == 1 and () in values:
                out[metric.name] = values[()]
            else:
                out[metric.name] = {
                    ",".join(f"{k}={v}" for k, v in key) or "": value
                    for key, value in sorted(values.items())
                }
        return out


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def parse_exposition(text: str) -> dict:
    """Parse Prometheus exposition text back into families.

    Returns ``{family: {"type", "help", "samples": [(name, labels,
    value), ...]}}`` and raises :class:`ValueError` on any line that
    does not match the grammar — this is the round-trip check used by
    the tests against :meth:`MetricsRegistry.render`.
    """
    families: dict = {}

    def family_for(sample_name: str) -> dict:
        for suffix in ("_bucket", "_sum", "_count", ""):
            if suffix and sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
            else:
                base = sample_name
            if base in families:
                return families[base]
        return families.setdefault(
            sample_name, {"type": "untyped", "help": "", "samples": []}
        )

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram", "untyped"):
                raise ValueError(f"line {lineno}: unknown type {kind!r}")
            families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )["type"] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: bad sample line {line!r}")
        labels = {}
        raw = match.group("labels")
        if raw:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(raw):
                labels[pair.group("key")] = (
                    pair.group("value")
                    .replace(r"\"", '"')
                    .replace(r"\n", "\n")
                    .replace(r"\\", "\\")
                )
                consumed = pair.end()
            if consumed != len(raw):
                raise ValueError(f"line {lineno}: bad labels {raw!r}")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad value {match.group('value')!r}"
            ) from exc
        family_for(match.group("name"))["samples"].append(
            (match.group("name"), labels, value)
        )
    return families
