"""Wall-clock stopwatch used by the solver flows and the bench harness."""

from __future__ import annotations

import time


class Stopwatch:
    """A restartable wall-clock stopwatch.

    >>> sw = Stopwatch()
    >>> sw.elapsed() >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def restart(self) -> None:
        """Reset the stopwatch to zero."""
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds elapsed since construction or the last :meth:`restart`."""
        return time.perf_counter() - self._start
