"""The paper's contribution: the partitioned transition oracle.

Implements Section 3.2 verbatim.  For each subset state ψ(cs):

* ``Q_ψ(u,v) = ∃i,cs [ Π_j(u_j ≡ U_j) ∧ ¬C ∧ ψ ]`` — the (u,v) classes
  under which some input makes the outputs of ``F`` and ``S``
  non-conform.  Computed **one output at a time** (``¬C = Σ_j ¬C_j``)
  so the monolithic conformance relation is never built.
* ``P_ψ(u,v,ns) = ∃i,cs [ Π_j(u_j ≡ U_j) ∧ Π_k(ns_k ≡ T_k) ∧ ψ ]`` —
  the successor image, a partitioned image computation with early
  quantification of ``i`` and ``cs``.
* ``P'_ψ = P_ψ ∧ ¬Q_ψ``; its (u,v)-cofactor classes are the outgoing
  edges, each leaf (a function of ``ns``) renamed ``ns → cs`` becoming
  the successor subset.
* letters with no successor and not in ``Q_ψ`` go to the accepting
  completion state ``DCA`` (handled by the driver).

Neither ``F`` nor ``S`` is ever completed and no monolithic relation is
ever constructed; validity rests on Theorem 1 (tested in
``tests/automata/test_commutation.py``).

``trim=False`` disables the DCN shortcut of footnote 9 for the E6
ablation: a DC1 flag variable is threaded through the image as one more
partition ``dc' ≡ (dc ∨ ¬C)``, non-conforming subsets are expanded like
any others, and prefix-closure removes them at the end.
"""

from __future__ import annotations

from repro.bdd.cube import split_by_vars
from repro.bdd.manager import FALSE, BddManager
from repro.symb.image import image_partitioned, image_with_plan, plan_image
from repro.eqn.problem import EquationProblem
from repro.eqn.subset import SubsetEdge


class PartitionedOracle:
    """Transition oracle computing on partitioned representations."""

    def __init__(
        self,
        problem: EquationProblem,
        *,
        schedule: bool = True,
        trim: bool = True,
    ) -> None:
        self.problem = problem
        self.schedule = schedule
        self.trim = trim
        mgr: BddManager = problem.manager
        self.mgr = mgr

        # Π_j (u_j ≡ U_j): F's communication outputs.
        self.u_parts = [
            mgr.apply_iff(mgr.var_node(problem.u_vars[name]), problem.f_u[name])
            for name in problem.u_names
        ]
        # Π_k (ns_k ≡ T_k): product transition partition = union of the
        # partitions of F and S (the paper's partitioned product).
        self.t_parts = [
            mgr.apply_iff(mgr.var_node(problem.f_ns_vars[name]), problem.f_next[name])
            for name in problem.f_ns_vars
        ] + [
            mgr.apply_iff(mgr.var_node(problem.s_ns_vars[name]), problem.s_next[name])
            for name in problem.s_ns_vars
        ]
        # Per-output non-conformance ¬C_j = ¬[O^F_j ≡ O^S_j].
        self.nonconf = [
            mgr.apply_not(c) for _, c in problem.conformance_parts()
        ]
        self.quantify = problem.quantify_vars()
        self.ns_vars = problem.all_ns_vars()
        self.rename = problem.ns_to_cs()
        self.uv_vars = problem.uv_vars()
        self.init_cube = problem.init_cube
        if not self.trim:
            # DC1 flag partition: dc' ≡ (dc ∨ ¬C).   Only built in the
            # ablation mode — with trimming the flag never exists.
            any_nonconf = FALSE
            for nc in self.nonconf:
                any_nonconf = mgr.apply_or(any_nonconf, nc)
            flag = mgr.apply_or(mgr.var_node(problem.dc_var), any_nonconf)
            self.dc_part = mgr.apply_iff(mgr.var_node(problem.dc_ns_var), flag)
            self.t_parts = self.t_parts + [self.dc_part]
            self.quantify = self.quantify + [problem.dc_var]
            self.ns_vars = self.ns_vars + [problem.dc_ns_var]
            self.rename = dict(self.rename)
            self.rename[problem.dc_ns_var] = problem.dc_var
            self.init_cube = mgr.apply_and(
                self.init_cube, mgr.apply_not(mgr.var_node(problem.dc_var))
            )
        # Interned quantification set for the per-expansion ∃ns domain
        # computation (revalidates lazily across dynamic reordering).
        self.ns_qs = mgr.quant_set(self.ns_vars)
        # Every ψ is a function of the product cs variables, so the
        # quantification schedules can be computed once and reused for
        # every subset expansion; plan_image interns every retire set as
        # a QuantSet, so each of the thousands of and_exists fold steps
        # skips the per-call level sort/intern pass.
        cs_support = set(self.quantify)
        if self.schedule:
            self.p_plan = plan_image(
                mgr, self.u_parts + self.t_parts, self.quantify, cs_support
            )
            self.q_plans = [
                plan_image(mgr, self.u_parts + [nc], self.quantify, cs_support)
                for nc in self.nonconf
            ]
        else:
            self.p_plan = None
            self.q_plans = None

    # ------------------------------------------------------------------ #

    def live_roots(self) -> list[int]:
        """Every BDD the oracle reuses across expansions (GC roots).

        The subset driver pins these, which also makes them safe across
        GC-triggered in-place reordering: sifting preserves all pinned
        edges, and the reusable image plans stay valid because their
        retire sets are variable indices, not levels.
        """
        roots = [*self.u_parts, *self.t_parts, *self.nonconf, self.init_cube]
        if self.p_plan is not None:
            plan, _ = self.p_plan
            roots.extend(part for part, _ in plan)
            for plan, _ in self.q_plans:
                roots.extend(part for part, _ in plan)
        if not self.trim:
            roots.append(self.dc_part)
        return roots

    def initial(self) -> int:
        return self.init_cube

    def is_accepting(self, psi: int) -> bool:
        """A subset is accepting unless it contains a DC1-flagged state."""
        if self.trim:
            return True
        dc = self.mgr.var_node(self.problem.dc_var)
        return self.mgr.apply_and(psi, dc) == FALSE

    def non_conformance(self, psi: int) -> int:
        """``Q_ψ(u,v)``, computed one output at a time."""
        mgr = self.mgr
        q = FALSE
        if self.q_plans is not None:
            for plan, leftover in self.q_plans:
                # The accumulator must survive collections triggered
                # inside the next image fold.
                with mgr.protect(q):
                    img = image_with_plan(mgr, plan, leftover, psi, gc=True)
                q = mgr.apply_or(q, img)
            return q
        for nc in self.nonconf:
            q = mgr.apply_or(
                q,
                image_partitioned(
                    mgr,
                    self.u_parts + [nc],
                    psi,
                    self.quantify,
                    schedule=False,
                ),
            )
        return q

    def successor_image(self, psi: int) -> int:
        """``P_ψ(u,v,ns)`` — the partitioned image of ψ."""
        if self.p_plan is not None:
            plan, leftover = self.p_plan
            return image_with_plan(self.mgr, plan, leftover, psi, gc=True)
        return image_partitioned(
            self.mgr,
            self.u_parts + self.t_parts,
            psi,
            self.quantify,
            schedule=False,
        )

    def expand(self, psi: int) -> tuple[list[SubsetEdge], int]:
        mgr = self.mgr
        # ψ and the successor image must survive collections triggered
        # inside the image folds (everything after the last fold runs
        # GC-free, so plain locals are safe from there on).
        with mgr.protect(psi):
            p = self.successor_image(psi)
            if self.trim:
                with mgr.protect(p):
                    q = self.non_conformance(psi)
        if self.trim:
            p_good = mgr.apply_diff(p, q)
            edges = [
                SubsetEdge(cond=cond, successor=mgr.rename(leaf, self.rename))
                for leaf, cond in split_by_vars(mgr, p_good, self.uv_vars).items()
            ]
            domain = mgr.exists(p, self.ns_qs)
            dca = mgr.apply_diff(mgr.apply_not(q), domain)
            return edges, dca
        # Ablation: no trimming — every class is expanded; acceptance of
        # the successor is decided by its DC1 flag.
        edges = []
        for leaf, cond in split_by_vars(mgr, p, self.uv_vars).items():
            successor = mgr.rename(leaf, self.rename)
            edges.append(
                SubsetEdge(
                    cond=cond,
                    successor=successor,
                    accepting=self.is_accepting(successor),
                )
            )
        domain = mgr.exists(p, self.ns_qs)
        dca = mgr.apply_not(domain)
        return edges, dca
