"""The content-addressed result store (and checkpoint side-store).

Layout (everything under one cache root)::

    <root>/results/<k[:2]>/<key>.pkl     # pickled result payloads
    <root>/checkpoints/<key>.pkl         # latest mid-solve checkpoint

Payloads are pickled because they contain packed ``array('q')`` columns
(the :func:`repro.bdd.io.dump_nodes` wire format); pickling keeps them
at a few bytes per BDD node.  Writes are atomic (temp file + rename in
the same directory), so a killed server never leaves a torn entry — a
partial temp file is simply ignored and overwritten by the next solve.

Eviction is LRU by file mtime: every :meth:`ResultStore.get` touches
the entry, and :meth:`ResultStore.put` evicts the stalest entries when
``max_entries`` is exceeded.  Only trust the cache directory as far as
you trust its writers — pickles execute code when loaded, so the store
must never be pointed at an untrusted directory.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path

#: Hex-digest shape of valid store keys (defensive: keys become paths).
_KEY_CHARS = set("0123456789abcdef")


def _check_key(key: str) -> str:
    if not key or set(key) - _KEY_CHARS:
        raise ValueError(f"malformed cache key {key!r}")
    return key


class ResultStore:
    """Content-addressed payload store with LRU eviction."""

    def __init__(self, root: "str | Path", *, max_entries: int | None = None):
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.checkpoints_dir = self.root / "checkpoints"
        self.max_entries = max_entries
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.checkpoints_dir.mkdir(parents=True, exist_ok=True)

    # -- results ------------------------------------------------------- #

    def path_for(self, key: str) -> Path:
        key = _check_key(key)
        return self.results_dir / key[:2] / f"{key}.pkl"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def get(self, key: str) -> dict | None:
        """Load a payload (and refresh its LRU position); None on miss."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return None
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry evicted mid-read
            pass
        return payload

    def put(self, key: str, payload: dict) -> Path:
        """Atomically store a payload, then evict beyond ``max_entries``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path, payload)
        if self.max_entries is not None:
            self.evict(self.max_entries)
        return path

    def keys(self) -> list[str]:
        """Stored keys, most recently used first."""
        entries = sorted(
            self.results_dir.glob("*/*.pkl"),
            key=lambda p: p.stat().st_mtime,
            reverse=True,
        )
        return [p.stem for p in entries]

    def evict(self, keep: int) -> int:
        """Delete all but the ``keep`` most recently used entries."""
        victims = self.keys()[max(0, keep):]
        for key in victims:
            try:
                self.path_for(key).unlink()
            except FileNotFoundError:  # pragma: no cover - racing eviction
                pass
        return len(victims)

    # -- checkpoints --------------------------------------------------- #

    def checkpoint_path(self, key: str) -> Path:
        return self.checkpoints_dir / f"{_check_key(key)}.pkl"

    def put_checkpoint(self, key: str, snapshot: dict) -> Path:
        """Atomically persist the latest mid-solve checkpoint for a key."""
        path = self.checkpoint_path(key)
        self._atomic_write(path, snapshot)
        return path

    def get_checkpoint(self, key: str) -> dict | None:
        try:
            with open(self.checkpoint_path(key), "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None

    def drop_checkpoint(self, key: str) -> None:
        try:
            self.checkpoint_path(key).unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------ #

    @staticmethod
    def _atomic_write(path: Path, payload: dict) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.stem}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def stats(self) -> dict:
        """Entry counts and on-disk size (the ops page's cache block)."""
        entries = list(self.results_dir.glob("*/*.pkl"))
        checkpoints = list(self.checkpoints_dir.glob("*.pkl"))
        return {
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "checkpoints": len(checkpoints),
            "max_entries": self.max_entries,
        }
