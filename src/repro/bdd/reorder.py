"""Garbage collection and variable reordering for the BDD manager.

Two generations of reordering live here:

* :func:`sift` / :func:`swap_levels` — **in-place, CUDD-style dynamic
  reordering**.  Adjacent levels are exchanged by rewriting the upper
  level's nodes in place (complement-edge aware: the rewritten then-edge
  is provably regular, so canonical form is preserved without touching
  any parent), which means *every edge held by a caller stays valid
  across a reorder* — no remapping, no fresh manager.  Sifting moves
  each variable through its block to the position minimising the live
  node count, with the classic ``max_growth`` abort.  This is the engine
  behind ``ReorderPolicy`` (GC-triggered reordering mid-solve).
* :func:`transfer` / :func:`reorder` / :func:`greedy_sift_order` — the
  older rebuild-based primitives: copy functions into another manager
  (possibly with a different order).  Still useful for cross-manager
  transfer and order search on small managers, and kept as the reference
  implementation the in-place path is property-tested against.

:func:`compact` — mark-and-sweep garbage collection that rebuilds the
node arrays densely, returning an old-id -> new-id mapping for the
caller's live references — also lives here.

With **per-level subtables** (see :mod:`repro.bdd.manager`) the swap gets
its candidate bucket for free: the upper variable's subtable *is* the
list of nodes to rewrite — no array scan, no lazily-filtered bucket
lists.  Every completed swap bumps the manager's ``_order_epoch`` so
interned :class:`~repro.bdd.manager.QuantSet` level caches revalidate.

**In-place swap, in one paragraph.**  To exchange level ``l`` (variable
``x``) with level ``l+1`` (variable ``y``): every ``x``-node whose
children do not mention ``y`` is untouched (only the level tables flip).
An ``x``-node ``F = ite(x, f1, f0)`` with a ``y``-child is rewritten in
place as ``F = ite(y, G1, G0)`` where ``G1 = ite(x, f1|y=1, f0|y=1)`` and
``G0 = ite(x, f1|y=0, f0|y=0)`` are found-or-created below it.  Because
stored then-edges are regular, ``f1`` is regular, hence ``f1|y=1`` (a
stored then-edge, a terminal, or ``f1`` itself) is regular, hence ``G1``
is regular — so the rewrite never needs to push a complement bit up to
the parents, which is exactly what makes the in-place update sound.
Node deaths (``y``-nodes orphaned by the rewrite, plus cascades) are
detected with sift-local reference counts seeded from the stored parent
edges, external refs, literals and the caller's roots; freed slots are
withheld from reuse until the sift completes.  The computed table is
flushed once per sift: quantification cache keys embed level-set ids
whose meaning changes with the order.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.bdd.manager import _EDGE_SHIFT, _FREE, FALSE, TRUE, BddManager
from repro.errors import BddError


def compact(mgr: BddManager, roots: Iterable[int]) -> dict[int, int]:
    """Garbage-collect ``mgr`` keeping only nodes reachable from ``roots``.

    Unlike :meth:`~repro.bdd.manager.BddManager.collect_garbage` (which
    keeps surviving ids stable and recycles freed slots), this rebuilds the
    node arrays densely: edges are renumbered, the free list is dropped and
    external reference counts are reset.  The returned dict maps every old
    live edge (including the terminals and both polarities) to its new
    edge; callers must remap any edges they hold.  The computed table is
    cleared.
    """
    # Collect reachable nodes (as regular/even edges), children before
    # parents.
    order: list[int] = []
    seen: set[int] = set()
    stack: list[tuple[int, bool]] = [(r & -2, False) for r in roots]
    while stack:
        n, emit = stack.pop()
        if emit:
            order.append(n)
            continue
        if n == 0 or n in seen:
            continue
        seen.add(n)
        stack.append((n, True))
        stack.append((mgr._lo[n] & -2, False))
        stack.append((mgr._hi[n] & -2, False))

    new_var: list[int] = [-1, -1]
    new_lo: list[int] = [0, 1]
    new_hi: list[int] = [0, 1]
    new_subtables: list[dict[int, int]] = [{} for _ in range(mgr.num_vars)]
    edge_map: dict[int, int] = {0: 0}
    for n in order:
        var = mgr._var[n]
        old_lo, old_hi = mgr._lo[n], mgr._hi[n]
        lo = edge_map[old_lo & -2] | (old_lo & 1)
        hi = edge_map[old_hi & -2] | (old_hi & 1)
        new_edge = len(new_var)
        new_var += (var, var)
        new_lo += (lo, lo ^ 1)
        new_hi += (hi, hi ^ 1)
        new_subtables[var][lo << _EDGE_SHIFT | hi] = new_edge
        edge_map[n] = new_edge

    if mgr._nb[0] > mgr._peak_live:
        mgr._peak_live = mgr._nb[0]
    # In-place updates: the manager's hot closures capture these containers
    # (see BddManager._bind_hot_ops), so they must never be rebound.
    mgr._var[:] = new_var
    mgr._lo[:] = new_lo
    mgr._hi[:] = new_hi
    for sub, new_sub in zip(mgr._subtables, new_subtables):
        sub.clear()
        sub.update(new_sub)
    mgr._free.clear()
    mgr._extref.clear()
    mgr._nb[0] = 1 + len(order)
    mgr._gc_baseline = mgr._nb[0]
    mgr.clear_caches()
    mapping: dict[int, int] = {}
    for old, new in edge_map.items():
        mapping[old] = new
        mapping[old | 1] = new | 1
    return mapping


def transfer(
    f: int,
    src: BddManager,
    dst: BddManager,
    name_map: dict[str, str] | None = None,
) -> int:
    """Copy function ``f`` from manager ``src`` into manager ``dst``.

    Variables are matched by name (optionally renamed through
    ``name_map``); they must already be declared in ``dst``.  The copy is
    order-safe: it recombines children with ITE, so the destination order
    may differ arbitrarily from the source order.  Iterative (postorder
    stack), so arbitrarily deep functions transfer without touching the
    recursion limit.
    """
    memo: dict[int, int] = {FALSE: FALSE, TRUE: TRUE}
    stack: list[tuple[int, int]] = [(0, f)]
    rstack: list[int] = []
    while stack:
        tag, node = stack.pop()
        if tag == 0:
            cached = memo.get(node)
            if cached is not None:
                rstack.append(cached)
                continue
            stack.append((1, node))
            stack.append((0, src.node_hi(node)))
            stack.append((0, src.node_lo(node)))
        else:
            hi = rstack.pop()
            lo = rstack.pop()
            name = src.var_name(src.node_var(node))
            if name_map is not None:
                name = name_map.get(name, name)
            try:
                var = dst.var_index(name)
            except KeyError:
                raise BddError(
                    f"transfer: variable {name!r} not declared in destination"
                )
            result = dst.ite(dst.var_node(var), hi, lo)
            memo[node] = result
            rstack.append(result)
    return rstack[0]


def reorder(
    mgr: BddManager,
    new_order: Sequence[str],
    roots: Sequence[int],
) -> tuple[BddManager, list[int]]:
    """Rebuild ``roots`` in a fresh manager with variable order ``new_order``.

    Returns the new manager and the transferred roots.  ``new_order`` must
    list every variable of ``mgr`` exactly once (top to bottom).
    """
    if sorted(new_order) != sorted(mgr.var_order()):
        raise BddError("reorder must mention every declared variable once")
    fresh = BddManager(
        max_nodes=mgr.max_nodes,
        gc_min_live=mgr.gc_min_live,
        gc_growth=mgr.gc_growth,
    )
    fresh.add_vars(new_order)
    new_roots = [transfer(f, mgr, fresh) for f in roots]
    return fresh, new_roots


@dataclass
class SiftResult:
    """Outcome of one in-place :func:`sift` pass."""

    swaps: int  # adjacent-level swaps performed
    size_before: int  # live nodes when the sift started
    size_after: int  # live nodes when it finished
    vars_sifted: int  # variables actually moved through their block


class _SiftContext:
    """Sift-local bookkeeping: reference counts over the subtables.

    The manager has no per-node reference counts (mark-and-sweep GC does
    not need them), but swap-based reordering does: it must know, after
    rewriting a level, which lower nodes just lost their last parent.
    The context computes counts once (O(live), iterating the subtables —
    live entries only) and maintains them incrementally across swaps.
    The per-variable candidate buckets that the old context maintained
    by hand now *are* the manager's per-level subtables; a swap snapshots
    the upper variable's subtable values and rewrites from there.

    Slots freed during the sift are *not* recycled until :meth:`finish`
    (they are merged into the manager's free list then), so edges stay
    unambiguous for the whole pass.
    """

    __slots__ = ("dead", "freed", "mgr", "rc")

    def __init__(self, mgr: BddManager, roots: Iterable[int]) -> None:
        self.mgr = mgr
        lo_arr, hi_arr = mgr._lo, mgr._hi
        rc = [0] * (len(mgr._var) // 2)
        rc[0] = 1 << 60  # the terminal is immortal
        for sub in mgr._subtables:
            for e in sub.values():
                rc[(lo_arr[e] & -2) >> 1] += 1
                rc[hi_arr[e] >> 1] += 1
        for n in mgr._extref:
            rc[n >> 1] += 1
        lit_key = TRUE << _EDGE_SHIFT  # literals store as (TRUE, FALSE)
        for sub in mgr._subtables:
            lit = sub.get(lit_key)
            if lit is not None:
                rc[lit >> 1] += 1
        for root in {r & -2 for r in roots}:
            rc[root >> 1] += 1
        self.rc = rc
        self.dead: list[int] = []  # regular edges whose rc hit zero
        self.freed: list[int] = []  # slots reclaimed by this sift

    # -- reference counting -------------------------------------------- #

    def incref(self, edge: int) -> None:
        self.rc[(edge & -2) >> 1] += 1

    def decref(self, edge: int) -> None:
        n = (edge & -2) >> 1
        if n == 0:
            return
        rc = self.rc
        rc[n] -= 1
        if rc[n] == 0:
            self.dead.append(n << 1)

    def reap(self) -> None:
        """Free every node whose reference count reached zero (cascading)."""
        mgr = self.mgr
        var_arr, lo_arr, hi_arr = mgr._var, mgr._lo, mgr._hi
        subtables = mgr._subtables
        nb = mgr._nb
        rc = self.rc
        dead = self.dead
        while dead:
            e = dead.pop()
            if rc[e >> 1] != 0:
                continue  # resurrected by a shared-result hit
            v = var_arr[e]
            if v == _FREE:
                continue
            lo, hi = lo_arr[e], hi_arr[e]
            del subtables[v][lo << _EDGE_SHIFT | hi]
            var_arr[e] = var_arr[e + 1] = _FREE
            self.freed.append(e)
            nb[0] -= 1
            self.decref(lo)
            self.decref(hi)

    # -- node construction --------------------------------------------- #

    def mk(self, var: int, lo: int, hi: int) -> int:
        """Find-or-create ``(var, lo, hi)`` with sift bookkeeping.

        Same reduction and complement normalisation as ``BddManager._mk``
        but: new nodes start at refcount zero (the caller owns the
        parent-edge increment), children are counted, and the node
        *budget is not enforced* — a swap must never fail halfway
        through, and sifting's whole purpose is to end up smaller than
        it started.
        """
        if lo == hi:
            return lo
        negate = hi & 1
        if negate:
            lo ^= 1
            hi ^= 1
        mgr = self.mgr
        sub = mgr._subtables[var]
        ukey = lo << _EDGE_SHIFT | hi
        e = sub.get(ukey)
        if e is not None:
            return e | negate
        var_arr, lo_arr, hi_arr = mgr._var, mgr._lo, mgr._hi
        free = mgr._free
        if free:
            e = free.pop()
            var_arr[e] = var_arr[e + 1] = var
            lo_arr[e] = lo
            lo_arr[e + 1] = lo ^ 1
            hi_arr[e] = hi
            hi_arr[e + 1] = hi ^ 1
            self.rc[e >> 1] = 0
        else:
            e = len(var_arr)
            var_arr.append(var)
            var_arr.append(var)
            lo_arr.append(lo)
            lo_arr.append(lo ^ 1)
            hi_arr.append(hi)
            hi_arr.append(hi ^ 1)
            self.rc.append(0)
        sub[ukey] = e
        mgr._nb[0] += 1
        self.incref(lo)
        self.incref(hi)
        return e | negate

    # -- the adjacent-level swap --------------------------------------- #

    def swap(self, level: int) -> int:
        """Exchange ``level`` and ``level + 1`` in place.

        Returns the number of nodes rewritten.  See the module docstring
        for the algorithm and the canonical-form argument.  The upper
        variable's subtable is snapshotted up front: nodes created
        mid-swap land in the same subtable but never depend on the lower
        variable, so they must not be revisited.
        """
        mgr = self.mgr
        level2var, var2level = mgr._level2var, mgr._var2level
        x = level2var[level]
        y = level2var[level + 1]
        var_arr, lo_arr, hi_arr = mgr._var, mgr._lo, mgr._hi
        sub_x = mgr._subtables[x]
        sub_y = mgr._subtables[y]
        moved = 0
        for e in list(sub_x.values()):
            f0 = lo_arr[e]
            f1 = hi_arr[e]
            dep0 = f0 >= 2 and var_arr[f0] == y
            dep1 = f1 >= 2 and var_arr[f1] == y
            if not (dep0 or dep1):
                continue
            # Cofactors w.r.t. y; the edge-indexed arrays propagate the
            # complement bit of an odd f0 for free.
            if dep0:
                f00, f01 = lo_arr[f0], hi_arr[f0]
            else:
                f00 = f01 = f0
            if dep1:
                f10, f11 = lo_arr[f1], hi_arr[f1]
            else:
                f10 = f11 = f1
            g0 = self.mk(x, f00, f10)
            g1 = self.mk(x, f01, f11)  # provably regular: f11 is regular
            self.incref(g0)
            self.incref(g1)
            self.decref(f0)
            self.decref(f1)
            del sub_x[f0 << _EDGE_SHIFT | f1]
            var_arr[e] = var_arr[e + 1] = y
            lo_arr[e] = g0
            lo_arr[e + 1] = g0 ^ 1
            hi_arr[e] = g1
            hi_arr[e + 1] = g1 ^ 1
            sub_y[g0 << _EDGE_SHIFT | g1] = e
            moved += 1
        # Transient growth (new cofactor nodes before the dead level is
        # reaped, or an exploration that will be walked back) counts
        # toward the peak: peak_live_nodes must report the true
        # high-water mark, not just the pre/post-sift sizes.
        if mgr._nb[0] > mgr._peak_live:
            mgr._peak_live = mgr._nb[0]
        self.reap()
        level2var[level], level2var[level + 1] = y, x
        var2level[x] = level + 1
        var2level[y] = level
        mgr._order_epoch += 1
        return moved

    # -- per-variable sifting ------------------------------------------ #

    def sift_var(self, var: int, block_lo: int, block_hi: int, max_growth: float) -> int:
        """Move ``var`` to its best level within ``[block_lo, block_hi)``.

        Classic sifting: walk the variable to the closer block edge
        first, then all the way to the other edge, then back to the best
        position seen.  A direction is abandoned early once the live
        count exceeds ``max_growth ×`` the starting size.  Returns the
        number of adjacent-level swaps performed.
        """
        mgr = self.mgr
        var2level = mgr._var2level
        nb = mgr._nb
        start = var2level[var]
        limit = int(max_growth * nb[0]) + 2
        best_size = nb[0]
        best_level = start
        swaps = 0

        def move_down() -> int:
            nonlocal best_size, best_level
            count = 0
            while var2level[var] < block_hi - 1:
                self.swap(var2level[var])
                count += 1
                if nb[0] < best_size:
                    best_size = nb[0]
                    best_level = var2level[var]
                elif nb[0] > limit:
                    break
            return count

        def move_up() -> int:
            nonlocal best_size, best_level
            count = 0
            while var2level[var] > block_lo:
                self.swap(var2level[var] - 1)
                count += 1
                if nb[0] < best_size:
                    best_size = nb[0]
                    best_level = var2level[var]
                elif nb[0] > limit:
                    break
            return count

        if (block_hi - 1 - start) <= (start - block_lo):
            swaps += move_down()
            swaps += move_up()
        else:
            swaps += move_up()
            swaps += move_down()
        while var2level[var] < best_level:
            self.swap(var2level[var])
            swaps += 1
        while var2level[var] > best_level:
            self.swap(var2level[var] - 1)
            swaps += 1
        return swaps

    def finish(self) -> None:
        """Release sift-local state back to the manager."""
        self.mgr._free.extend(self.freed)
        self.freed.clear()
        if self.mgr._gc_baseline > self.mgr._nb[0]:
            self.mgr._gc_baseline = self.mgr._nb[0]


def swap_levels(mgr: BddManager, level: int, roots: Iterable[int] = ()) -> int:
    """Exchange adjacent ``level``/``level + 1`` in place (one swap).

    All held edges stay valid.  ``roots`` protects otherwise-unreferenced
    functions from the swap's dead-node reaping, exactly like
    :meth:`~repro.bdd.manager.BddManager.collect_garbage`.  Returns the
    number of nodes rewritten.  Exposed mainly for tests; :func:`sift`
    is the real consumer.
    """
    if not 0 <= level < mgr.num_vars - 1:
        raise BddError(f"swap_levels: no adjacent pair at level {level}")
    mgr.clear_caches()
    ctx = _SiftContext(mgr, roots)
    swapped = ctx.swap(level)
    ctx.finish()
    return swapped


def sift(
    mgr: BddManager,
    roots: Iterable[int] = (),
    *,
    max_growth: float = 1.2,
    max_vars: int | None = None,
) -> SiftResult:
    """In-place sifting: move each variable to its locally best level.

    Variables are processed largest-level-population first (the
    per-level subtables provide the population counts for free); each is
    walked through its reorder block (see
    :meth:`~repro.bdd.manager.BddManager.set_reorder_boundaries`) and
    parked at the level minimising the live node count, abandoning a
    direction once the table grows past ``max_growth ×`` its size at the
    variable's start.  ``max_vars`` caps how many variables move.

    Everything is in place: all held edges — external references, the
    extra ``roots``, literals — remain valid, and pinned functions can
    never be reaped.  The computed table is flushed (its quantification
    keys embed level-set ids that change meaning with the order); the
    node budget is *not* enforced during the sift, so a near-budget
    manager can reorder its way back under the limit.
    """
    size_before = mgr._nb[0]
    nvars = mgr.num_vars
    if nvars < 2 or size_before <= 2:
        return SiftResult(0, size_before, size_before, 0)
    if size_before > mgr._peak_live:
        mgr._peak_live = size_before
    mgr.clear_caches()
    ctx = _SiftContext(mgr, roots)

    bounds = sorted(b for b in mgr._reorder_boundaries if 0 < b < nvars)
    starts = [0, *bounds]
    ends = [*bounds, nvars]

    def block_of(level: int) -> tuple[int, int]:
        for lo, hi in zip(starts, ends):
            if lo <= level < hi:
                return lo, hi
        return 0, nvars

    subtables = mgr._subtables
    order = sorted(range(nvars), key=lambda v: -len(subtables[v]))
    if max_vars is not None:
        order = order[:max_vars]
    swaps = 0
    sifted = 0
    for v in order:
        if not subtables[v]:
            continue
        lo, hi = block_of(mgr._var2level[v])
        if hi - lo < 2:
            continue
        swaps += ctx.sift_var(v, lo, hi, max_growth)
        sifted += 1
    ctx.finish()
    return SiftResult(
        swaps=swaps,
        size_before=size_before,
        size_after=mgr._nb[0],
        vars_sifted=sifted,
    )


def greedy_sift_order(
    mgr: BddManager,
    roots: Sequence[int],
    *,
    max_passes: int = 1,
) -> list[str]:
    """Search for a better variable order by rebuild-based sifting.

    A lightweight stand-in for CUDD's dynamic reordering: each variable in
    turn is tried at every position (by rebuilding the roots in a scratch
    manager) and left at the position minimising the shared node count.
    Quadratic in the number of variables and linear in BDD size per trial,
    so intended for modest managers; returns the best order found.
    """
    order = mgr.var_order()
    if not roots or len(order) < 3:
        return order

    def cost(candidate: Sequence[str]) -> int:
        scratch = BddManager()
        scratch.add_vars(candidate)
        copies = [transfer(f, mgr, scratch) for f in roots]
        return scratch.size_many(copies)

    best_cost = cost(order)
    for _ in range(max_passes):
        improved = False
        for name in list(order):
            base = [n for n in order if n != name]
            for pos in range(len(order)):
                candidate = base[:pos] + [name] + base[pos:]
                if candidate == order:
                    continue
                c = cost(candidate)
                if c < best_cost:
                    best_cost = c
                    order = candidate
                    improved = True
        if not improved:
            break
    return order


# --------------------------------------------------------------------------- #
# Product-order pairing helpers (boundary-aware)
# --------------------------------------------------------------------------- #
#
# These helpers order only the *state block* of a product problem — the
# variables declared below the letters/states reorder boundary (see
# ``repro.eqn.problem``).  They never touch letter variables, so any order
# they emit keeps the letters-above-states invariant by construction.


def pair_state_latches(
    s_latches: Sequence[str], f_latches: Sequence[str]
) -> list[tuple[str | None, str]]:
    """Pair each specification latch with its fixed-component twin by name.

    The latch split keeps the fixed component's latches under their
    original names (minus the extracted ``x`` latches), so name equality
    is an exact affinity signal: ``F.q0`` is the fixed copy of ``S.q0``.
    Returns ``(f_name | None, s_name)`` pairs in ``s_latches`` order —
    ``None`` marks an extracted latch with no fixed twin.  Raises
    :class:`BddError` if a fixed latch has no specification counterpart
    (the split invariant would be broken upstream).
    """
    s_order = list(s_latches)
    s_set = set(s_order)
    orphans = [name for name in f_latches if name not in s_set]
    if orphans:
        raise BddError(
            f"fixed latches without specification twin: {orphans!r}"
        )
    f_set = set(f_latches)
    return [(name if name in f_set else None, name) for name in s_order]


def interleaved_state_order(
    pairs: Sequence[tuple[str | None, str]],
    *,
    f_prefix: str = "F.",
    s_prefix: str = "S.",
    ns_suffix: str = "'",
) -> list[str]:
    """Flatten latch pairs into the interleaved state-block variable order.

    Each kept pair contributes ``(F.cs, F.ns, S.cs, S.ns)``; an extracted
    latch (``f_name is None``) contributes only ``(S.cs, S.ns)``.  Within
    every group the cs variable sits directly above its ns twin, so the
    order-preserving ``ns -> cs`` rename fast path holds exactly as it
    does for the stacked order: sources sorted by level map to targets in
    the same relative order, each target one level above its source.
    """
    out: list[str] = []
    for f_name, s_name in pairs:
        if f_name is not None:
            out.append(f"{f_prefix}{f_name}")
            out.append(f"{f_prefix}{f_name}{ns_suffix}")
        out.append(f"{s_prefix}{s_name}")
        out.append(f"{s_prefix}{s_name}{ns_suffix}")
    return out
