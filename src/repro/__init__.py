"""repro — reproduction of "Efficient Solution of Language Equations
Using Partitioned Representations" (Mishchenko, Brayton, Jiang, Villa,
Yevtushenko; DATE 2005).

The package solves language equations ``F ∘ X ⊆ S`` for prefix-closed
``F`` and ``S`` given as multi-level sequential networks, computing the
Complete Sequential Flexibility (CSF) of an unknown component.  Two
engines are provided — the paper's *partitioned* flow and the baseline
*monolithic* flow — plus an explicit reference implementation, on top of
a from-scratch BDD manager, network, automata and image-computation
substrate.

Quickstart::

    from repro import solve_latch_split, verify_solution
    from repro.bench import circuits

    net = circuits.counter(4)
    result = solve_latch_split(net, x_latches=net.latch_names()[:2])
    print(result.csf.num_states, "CSF states")
    report = verify_solution(result)
    assert report.ok
"""

from repro._version import __version__

__all__ = ["__version__"]


def __getattr__(name: str):
    # Lazy re-exports keep `import repro` light while offering a flat API.
    if name in {
        "solve_latch_split",
        "solve_equation",
        "SolveResult",
        "verify_solution",
    }:
        from repro.eqn import solver as _solver

        return getattr(_solver, name)
    if name in {"implement_csf", "extract_fsm", "fsm_to_network"}:
        from repro.eqn import implement as _implement

        return getattr(_implement, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
