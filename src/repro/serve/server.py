"""The HTTP face of the job server.

Plain-stdlib serving: a :class:`http.server.ThreadingHTTPServer` whose
handler threads do only JSON plumbing — every solve runs on the single
:class:`~repro.serve.executor.SolveExecutor` thread, and cache hits are
answered synchronously in the submit path (a repeat solve never touches
the executor, the pool, or any BDD heavier than the payload decode).

API (all bodies and replies are JSON, except ``/metrics`` which is
Prometheus text exposition format 0.0.4):

====== ========================== =======================================
Method Path                       Meaning
====== ========================== =======================================
GET    ``/healthz``               liveness, version, uptime, queue depth
GET    ``/metrics``               Prometheus text exposition (counters,
                                  gauges, histograms; see repro.obs)
GET    ``/cache``                 store entry count / bytes / checkpoints
POST   ``/jobs``                  submit a job spec; replies id + status
GET    ``/jobs``                  all job summaries
GET    ``/jobs/<id>``             one job summary
GET    ``/jobs/<id>/events``      events after ``?since=N`` + new cursor
GET    ``/jobs/<id>/result``      result of a done job (incl. KISS text)
POST   ``/jobs/<id>/cancel``      flip the job's cancel flag
POST   ``/shutdown``              graceful stop (drain executor, exit)
====== ========================== =======================================
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro._version import __version__
from repro.errors import ServeError
from repro.obs.metrics import MetricsRegistry
from repro.serve.executor import SolveExecutor, _result_summary
from repro.serve.jobs import JobRegistry
from repro.serve.keys import FLAG_DEFAULTS, cache_key, job_spec
from repro.serve.payload import load_result, result_kiss
from repro.serve.store import ResultStore
from repro.util.timer import Stopwatch

#: Default bind for ``repro serve`` and the client tools.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: Per-job runtime options accepted alongside the spec fields (none of
#: these participate in the cache key; ``backend`` is validated by
#: :func:`~repro.serve.keys.job_spec` and then excluded — backends are
#: byte-identical, so it is a runtime knob, not part of the problem).
OPTION_FIELDS = (
    "max_seconds",
    "max_nodes",
    "checkpoint_every",
    "checkpoint_seconds",
    "resume",
    "backend",
    "resident_budget",
)


class ServeApp:
    """Registry + store + executor, wired together behind the handler."""

    def __init__(
        self,
        cache_dir: str,
        *,
        max_entries: int | None = None,
        batch_hook=None,
    ) -> None:
        self.store = ResultStore(cache_dir, max_entries=max_entries)
        self.registry = JobRegistry()
        self.metrics = MetricsRegistry()
        self.uptime = Stopwatch()
        self.executor = SolveExecutor(
            self.registry, self.store, batch_hook=batch_hook, metrics=self.metrics
        )
        self.executor.start()

    def close(self) -> None:
        """Drain the executor and close the shard pool."""
        self.executor.stop()

    # ------------------------------------------------------------------ #

    def submit(self, body: dict):
        """Validate a submit body, consult the cache, enqueue on a miss."""
        if not isinstance(body, dict):
            raise ServeError("submit body must be a JSON object")
        for required in ("blif", "x_latches"):
            if required not in body:
                raise ServeError(f"submit body is missing {required!r}")
        known = {"blif", "x_latches", "u_signals", *FLAG_DEFAULTS, *OPTION_FIELDS}
        unknown = set(body) - known
        if unknown:
            # A typo'd flag must not silently alias onto its default.
            raise ServeError(f"unknown solver flags in job spec: {sorted(unknown)}")
        # ``backend`` rides along so job_spec validates it, then drops
        # it from the spec (and therefore from the cache key).
        flags = {k: body[k] for k in (*FLAG_DEFAULTS, "backend") if k in body}
        spec = job_spec(
            body["blif"],
            body["x_latches"],
            u_signals=body.get("u_signals"),
            **flags,
        )
        key = cache_key(spec)
        options = {k: body[k] for k in OPTION_FIELDS if k in body}
        cached = self.store.get(key)
        if cached is not None:
            job = self.registry.create(spec, key, options=options, cached=True)
            job.summary = _result_summary(cached, cached=True)
            self.registry.add_event(job, {"type": "cache_hit", "cache_key": key})
            self.registry.set_status(job, "done")
            self.metrics.counter("repro_cache_hits_total", "").inc()
            return job
        job = self.registry.create(spec, key, options=options)
        self.registry.add_event(job, {"type": "queued", "cache_key": key})
        self.executor.enqueue(job)
        return job

    def result(self, job_id: str) -> dict:
        """JSON-safe result of a done job (decoded from the store)."""
        job = self.registry.get(job_id)
        if job.status != "done":
            raise ServeError(f"job {job_id} is {job.status}, not done")
        payload = self.store.get(job.key)
        if payload is None:
            raise ServeError(f"result of job {job_id} was evicted from the cache")
        decoded = load_result(payload)
        return {
            "cache_key": payload["cache_key"],
            "method": payload["method"],
            "options": payload["options"],
            "seconds": payload["seconds"],
            "csf_states": payload["csf_states"],
            "stats": payload["stats"],
            "cached": job.cached,
            "resumed": job.resumed,
            "kiss": result_kiss(payload),
            "csf_state_names": decoded["csf"].state_names,
        }

    def cancel(self, job_id: str) -> dict:
        job = self.registry.get(job_id)
        job.cancel_event.set()
        self.registry.add_event(job, {"type": "cancel_requested"})
        return job.summary_dict()

    def health(self) -> dict:
        """Liveness payload: version, uptime and load, plus job counts."""
        return {
            "ok": True,
            "version": __version__,
            "uptime_seconds": round(self.uptime.elapsed(), 3),
            "queue_depth": self.executor.queue_depth,
            "cache_entries": self.store.stats()["entries"],
            "jobs": self.registry.counts(),
        }

    def render_metrics(self) -> str:
        """The registry in exposition format, gauges refreshed first."""
        self.metrics.gauge("repro_queue_depth", "").set(self.executor.queue_depth)
        self.metrics.gauge("repro_cache_entries", "").set(
            self.store.stats()["entries"]
        )
        self.metrics.gauge("repro_uptime_seconds", "").set(self.uptime.elapsed())
        return self.metrics.render()


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the :class:`ServeApp` on the server object."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> ServeApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # -- plumbing ------------------------------------------------------ #

    def _reply(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, text: str, content_type: str, status: int = 200) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from exc

    def _dispatch(self, method: str) -> None:
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if method == "GET" and parts == ["metrics"]:
                # Prometheus scrapes expect the text exposition format,
                # not JSON — the one non-JSON endpoint.
                self._reply_text(
                    self.app.render_metrics(), "text/plain; version=0.0.4"
                )
                return
            handler = self._route(method, parts)
            if handler is None:
                self._reply({"error": f"no route {method} {url.path}"}, 404)
                return
            self._reply(handler(parse_qs(url.query)))
        except ServeError as exc:
            self._reply({"error": str(exc)}, 400)
        except Exception as exc:  # pragma: no cover - handler bug
            self._reply({"error": f"{type(exc).__name__}: {exc}"}, 500)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    # -- routing ------------------------------------------------------- #

    def _route(self, method: str, parts: list[str]):
        app = self.app
        if method == "GET":
            if parts == ["healthz"]:
                return lambda q: app.health()
            if parts == ["cache"]:
                return lambda q: app.store.stats()
            if parts == ["jobs"]:
                return lambda q: {
                    "jobs": [j.summary_dict() for j in app.registry.list()]
                }
            if len(parts) == 2 and parts[0] == "jobs":
                return lambda q: app.registry.get(parts[1]).summary_dict()
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                def events(q):
                    since = int(q.get("since", ["0"])[0])
                    fresh, cursor = app.registry.events_since(parts[1], since)
                    return {"events": fresh, "next": cursor}

                return events
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                return lambda q: app.result(parts[1])
        if method == "POST":
            if parts == ["jobs"]:
                body = self._body()
                return lambda q: app.submit(body).summary_dict()
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                return lambda q: app.cancel(parts[1])
            if parts == ["shutdown"]:
                def shutdown(q):
                    threading.Thread(
                        target=self.server.shutdown, daemon=True
                    ).start()
                    return {"ok": True, "shutting_down": True}

                return shutdown
        return None


def make_server(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    app: ServeApp,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Bind a server around an app (caller drives ``serve_forever``)."""
    server = ThreadingHTTPServer((host, port), _Handler)
    server.app = app  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    cache_dir: str,
    max_entries: int | None = None,
    verbose: bool = False,
) -> int:
    """Run the server until ``POST /shutdown`` or Ctrl-C.  Returns 0."""
    app = ServeApp(cache_dir, max_entries=max_entries)
    server = make_server(host, port, app=app, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve listening on http://{bound_host}:{bound_port}")
    print(f"  cache: {app.store.root} ({app.store.stats()['entries']} entries)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
        app.close()
    print("repro serve stopped")
    return 0
