"""Shared hypothesis strategies for the test suite.

The central strategy is :func:`expressions`, which generates random
Boolean expression trees over a fixed variable list.  Tests evaluate both
the expression (reference semantics) and its BDD to cross-check every
engine operation against truth tables.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from hypothesis import strategies as st

from repro.expr.ast import And, Const, Expr, Not, Or, Var, Xor

DEFAULT_VARS = ("a", "b", "c", "d", "e")


def expressions(
    variables: Sequence[str] = DEFAULT_VARS,
    *,
    max_leaves: int = 12,
) -> st.SearchStrategy[Expr]:
    """Random Boolean expression trees over ``variables``."""
    leaves = st.one_of(
        st.sampled_from([Var(v) for v in variables]),
        st.sampled_from([Const(False), Const(True)]),
    )

    def extend(children: st.SearchStrategy[Expr]) -> st.SearchStrategy[Expr]:
        binary = st.tuples(children, children)
        return st.one_of(
            children.map(Not),
            binary.map(lambda ab: And(ab)),
            binary.map(lambda ab: Or(ab)),
            binary.map(lambda ab: Xor(ab)),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


def assignments(variables: Sequence[str] = DEFAULT_VARS) -> st.SearchStrategy[dict]:
    """A random full assignment for ``variables``."""
    return st.tuples(*[st.booleans() for _ in variables]).map(
        lambda bits: dict(zip(variables, bits))
    )


def all_assignments(variables: Sequence[str]):
    """Deterministic generator of every assignment over ``variables``."""
    for bits in itertools.product((0, 1), repeat=len(variables)):
        yield dict(zip(variables, bits))


def reference_minterms(expr, variables: Sequence[str]) -> frozenset[tuple[int, ...]]:
    """Truth table of ``expr`` by brute-force evaluation.

    This is the kernel-independent reference semantics: the seed kernel
    (plain edges, per-op caches) and the current kernel (complement
    edges, unified computed table, GC) must both realise exactly this set
    of satisfying assignments.  Used by the GC/complement-edge Hypothesis
    tests to compare kernel results on random expressions.
    """
    return frozenset(
        tuple(env[v] for v in variables)
        for env in all_assignments(variables)
        if expr.evaluate(env)
    )


def bdd_minterms(mgr, node: int, variables: Sequence[str]) -> frozenset[tuple[int, ...]]:
    """Truth table of a BDD by brute-force evaluation (same shape as
    :func:`reference_minterms`)."""
    return frozenset(
        tuple(env[v] for v in variables)
        for env in all_assignments(variables)
        if mgr.eval(node, env)
    )
