"""Symbolic engine: partitioned relations, scheduling, image, reachability."""

from repro.symb.image import (
    constrain_parts,
    image_monolithic,
    image_partitioned,
    preimage_partitioned,
)
from repro.symb.reach import (
    ReachabilityResult,
    network_reachable_states,
    reachable_states,
)
from repro.symb.relation import (
    PartitionedRelation,
    functions_to_relation,
    output_relation,
    transition_relation,
)
from repro.symb.schedule import cluster_parts, schedule_parts

__all__ = [
    "PartitionedRelation",
    "ReachabilityResult",
    "cluster_parts",
    "constrain_parts",
    "functions_to_relation",
    "image_monolithic",
    "image_partitioned",
    "network_reachable_states",
    "output_relation",
    "preimage_partitioned",
    "reachable_states",
    "schedule_parts",
    "transition_relation",
]
