"""The frontier-batched subset engine: scheduler, protocol, identity.

The acceptance bar of the batched refactor: whatever the frontier
strategy or batch size (and whether expansion runs in-process or on the
shard pool), the subset construction discovers the same subsets, the
same edges and the same CSF — only discovery *order* (state numbering)
may change between settings.
"""

from __future__ import annotations

import pytest

from repro.automata import equivalent
from repro.bdd.manager import BddManager
from repro.bench.suite import TABLE1_CASES, case_by_name
from repro.errors import EquationError
from repro.eqn.monolithic import MonolithicOracle
from repro.eqn.partitioned import PartitionedOracle
from repro.eqn.problem import build_latch_split_problem
from repro.eqn.solver import solve_equation
from repro.eqn.subset import STRATEGIES, FrontierScheduler

LIGHT_CASES = [c for c in TABLE1_CASES if not c.expect_mono_cnc][:4]


class TestFrontierScheduler:
    def test_dfs_is_lifo(self) -> None:
        sched = FrontierScheduler(BddManager(), "dfs")
        for psi in (10, 12, 14):
            sched.push(psi)
        assert sched.take(2) == [14, 12]
        assert sched.take(5) == [10]
        assert not sched

    def test_bfs_is_fifo(self) -> None:
        sched = FrontierScheduler(BddManager(), "bfs")
        for psi in (10, 12, 14):
            sched.push(psi)
        assert sched.take(2) == [10, 12]
        assert sched.take(1) == [14]

    def test_size_takes_smallest_first(self) -> None:
        mgr = BddManager()
        vs = mgr.add_vars(["a", "b", "c"])
        small = mgr.var_node(vs[0])
        big = mgr.apply_and(
            mgr.apply_or(mgr.var_node(vs[0]), mgr.var_node(vs[1])),
            mgr.apply_or(mgr.var_node(vs[1]), mgr.var_node(vs[2])),
        )
        sched = FrontierScheduler(mgr, "size")
        sched.push(big)
        sched.push(small)
        assert sched.take(1) == [small]
        assert sched.take(1) == [big]

    def test_unknown_strategy_rejected(self) -> None:
        with pytest.raises(EquationError, match="strategy"):
            FrontierScheduler(BddManager(), "alphabetical")

    def test_batch_never_exceeds_pending(self) -> None:
        sched = FrontierScheduler(BddManager(), "bfs")
        sched.push(10)
        assert sched.take(100) == [10]


class TestBatchProtocol:
    @pytest.fixture(scope="class")
    def problem(self):
        case = case_by_name("s27")
        return build_latch_split_problem(case.network(), list(case.x_latches))

    def test_expand_is_single_item_adapter(self, problem) -> None:
        for oracle_cls in (PartitionedOracle, MonolithicOracle):
            oracle = oracle_cls(problem)
            psi = oracle.initial()
            single = oracle.expand(psi)
            (batched,) = oracle.expand_batch([psi])
            assert [(e.cond, e.successor) for e in single[0]] == [
                (e.cond, e.successor) for e in batched[0]
            ]
            assert single[1] == batched[1]
            closer = getattr(oracle, "close", None)
            if closer:
                closer()

    def test_sharded_batch_tolerates_duplicate_psi(self, problem) -> None:
        """A direct caller repeating ψ in one batch must not break the
        resident-handle lifecycle (the driver itself never does this)."""
        oracle = PartitionedOracle(problem, shards=2)
        try:
            psi = oracle.initial()
            first, second = oracle.expand_batch([psi, psi])
            assert first[1] == second[1]
            assert [(e.cond, e.successor) for e in first[0]] == [
                (e.cond, e.successor) for e in second[0]
            ]
            # One serialization despite the duplicate, and a clean
            # registry afterwards (workers hold nothing resident).
            assert oracle._psi_serialized[psi] == 1
            assert all(
                s["resident"] == 0 for s in oracle._pool.stats()
            )
        finally:
            oracle.close()

    def test_batch_size_must_be_positive(self, problem) -> None:
        from repro.eqn.subset import subset_construct

        with pytest.raises(EquationError, match="batch_size"):
            subset_construct(
                PartitionedOracle(problem), problem, batch_size=0
            )

    def test_invalid_strategy_through_solver(self, problem) -> None:
        with pytest.raises(EquationError, match="strategy"):
            solve_equation(problem, frontier="rainbow")


@pytest.mark.parametrize("case", LIGHT_CASES, ids=[c.name for c in LIGHT_CASES])
def test_batched_vs_single_expansion_identity(case) -> None:
    """The CI shard-smoke check: batch=8 finds exactly the one-ψ result."""
    prob = build_latch_split_problem(case.network(), list(case.x_latches))
    base = solve_equation(prob, method="partitioned")  # classic dfs@1
    batched = solve_equation(prob, method="partitioned", frontier="bfs", batch=8)
    assert batched.csf_states == base.csf_states
    assert batched.stats.subsets == base.stats.subsets
    assert batched.stats.edges == base.stats.edges
    assert batched.stats.dca_edges == base.stats.dca_edges
    assert equivalent(batched.csf, base.csf)
    # Batching can only shrink the number of oracle round trips.
    assert batched.stats.batches <= base.stats.batches


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("batch", [1, 3, 8])
def test_all_strategies_and_batches_agree(strategy, batch) -> None:
    case = case_by_name("count6")
    prob = build_latch_split_problem(case.network(), list(case.x_latches))
    base = solve_equation(prob, method="partitioned")
    run = solve_equation(
        prob, method="partitioned", frontier=strategy, batch=batch
    )
    assert run.csf_states == base.csf_states
    assert run.stats.subsets == base.stats.subsets
    assert run.stats.edges == base.stats.edges
    assert equivalent(run.csf, base.csf)


def test_monolithic_batched_agrees() -> None:
    case = case_by_name("johnson8")
    prob = build_latch_split_problem(case.network(), list(case.x_latches))
    base = solve_equation(prob, method="monolithic")
    batched = solve_equation(
        prob, method="monolithic", frontier="bfs", batch=4
    )
    assert batched.csf_states == base.csf_states
    assert batched.stats.subsets == base.stats.subsets
    assert equivalent(batched.csf, base.csf)


def test_batched_deterministic_at_fixed_settings() -> None:
    """Same settings ⇒ structurally identical automata, twice over."""
    case = case_by_name("johnson8")
    prob = build_latch_split_problem(case.network(), list(case.x_latches))
    a = solve_equation(prob, method="partitioned", frontier="bfs", batch=4)
    b = solve_equation(prob, method="partitioned", frontier="bfs", batch=4)
    assert a.solution.state_names == b.solution.state_names
    assert a.solution.edges == b.solution.edges


def test_completion_memo_reported_and_hitting() -> None:
    """johnson8 has latches irrelevant per output: the memo must hit."""
    case = case_by_name("johnson8")
    prob = build_latch_split_problem(case.network(), list(case.x_latches))
    result = solve_equation(prob, method="partitioned", frontier="bfs", batch=8)
    extra = result.stats.extra
    assert extra["completion_memo_misses"] > 0
    assert extra["completion_memo_hits"] > 0


def test_memo_off_ablation_path_unchanged() -> None:
    """schedule=False (the E5 strawman) bypasses plans and the memo."""
    case = case_by_name("s27")
    prob = build_latch_split_problem(case.network(), list(case.x_latches))
    base = solve_equation(prob, method="partitioned")
    raw = solve_equation(prob, method="partitioned", schedule=False)
    assert raw.csf_states == base.csf_states
    assert raw.stats.extra["completion_memo_misses"] == 0
    assert raw.stats.extra["completion_memo_hits"] == 0


def test_no_trim_ablation_batched() -> None:
    case = case_by_name("s27")
    prob = build_latch_split_problem(case.network(), list(case.x_latches))
    base = solve_equation(prob, method="partitioned", trim=False)
    batched = solve_equation(
        prob, method="partitioned", trim=False, frontier="bfs", batch=4
    )
    assert batched.csf_states == base.csf_states
    assert equivalent(batched.csf, base.csf)


def test_batches_counted() -> None:
    case = case_by_name("count6")
    prob = build_latch_split_problem(case.network(), list(case.x_latches))
    one = solve_equation(prob, method="partitioned", batch=1)
    eight = solve_equation(prob, method="partitioned", frontier="bfs", batch=8)
    assert one.stats.batches == one.stats.subsets
    assert eight.stats.batches < one.stats.batches
