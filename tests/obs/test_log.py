"""Tests for the structured logging layer."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.log import ROOT, configure, get_logger


@pytest.fixture(autouse=True)
def _clean_root():
    """Leave the ``repro`` root unconfigured after every test."""
    yield
    root = logging.getLogger(ROOT)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    root.setLevel(logging.NOTSET)
    root.propagate = True


class TestGetLogger:
    def test_names_are_prefixed_into_the_family(self) -> None:
        assert get_logger("shard.worker").name == "repro.shard.worker"
        assert get_logger("repro.serve").name == "repro.serve"
        assert get_logger().name == "repro"


class TestTextFormat:
    def test_fields_render_as_key_value(self) -> None:
        stream = io.StringIO()
        configure("info", stream=stream)
        get_logger("test").warning("shard died", op="expand_batch", pid=42)
        line = stream.getvalue()
        assert "shard died" in line
        assert "op='expand_batch'" in line and "pid=42" in line

    def test_level_threshold(self) -> None:
        stream = io.StringIO()
        configure("warning", stream=stream)
        log = get_logger("test")
        log.info("quiet")
        log.warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_unknown_level_rejected(self) -> None:
        with pytest.raises(ValueError, match="unknown log level"):
            configure("chatty")


class TestJsonLines:
    def test_one_json_object_per_line(self) -> None:
        stream = io.StringIO()
        configure("debug", json_lines=True, stream=stream)
        log = get_logger("test")
        log.debug("first", a=1)
        log.error("second")
        lines = [json.loads(x) for x in stream.getvalue().splitlines()]
        assert [entry["msg"] for entry in lines] == ["first", "second"]
        first = lines[0]
        assert first["level"] == "debug"
        assert first["logger"] == "repro.test"
        assert first["a"] == 1
        # Both clocks, for correlating with traces and job events.
        assert isinstance(first["ts"], float) and isinstance(first["mono"], float)

    def test_exception_carries_traceback(self) -> None:
        stream = io.StringIO()
        configure("info", json_lines=True, stream=stream)
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            get_logger("test").exception("shard command failed", op="plan")
        (entry,) = [json.loads(x) for x in stream.getvalue().splitlines()]
        assert entry["op"] == "plan"
        assert "RuntimeError: boom" in entry["exc"]

    def test_reconfigure_replaces_handler(self) -> None:
        configure("info", stream=io.StringIO())
        configure("info", stream=io.StringIO())
        assert len(logging.getLogger(ROOT).handlers) == 1
