"""Join-tree scheduler tests: clustering soundness + sharded images."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BddManager
from repro.shard import ShardPool, ShardedImage, partition_clusters
from repro.shard.pool import ShardError
from repro.symb.image import image_partitioned

N_VARS = 8


def relation_manager():
    """A manager with interleaved (x_i, y_i) pairs and iff parts."""
    mgr = BddManager()
    xs, ys = [], []
    for i in range(N_VARS):
        xs.append(mgr.add_var(f"x{i}"))
        ys.append(mgr.add_var(f"y{i}"))
    return mgr, xs, ys


def make_parts(mgr, xs, ys, spec):
    """Parts ``y_i ≡ <function of xs>`` per (i, xs-subset) spec."""
    parts = []
    for i, deps in spec:
        f = 1
        for d in deps:
            f = mgr.apply_and(f, mgr.var_node(xs[d]))
        parts.append(mgr.apply_iff(mgr.var_node(ys[i]), f))
    return parts


class TestPartitionClusters:
    def test_covers_every_part_once(self) -> None:
        mgr, xs, ys = relation_manager()
        parts = make_parts(mgr, xs, ys, [(i, [i]) for i in range(6)])
        asg = partition_clusters(mgr, parts, 3, xs, set())
        flat = sorted(i for cluster in asg.clusters for i in cluster)
        assert flat == list(range(6))
        assert 1 <= asg.num_clusters <= 3

    def test_never_more_clusters_than_parts(self) -> None:
        mgr, xs, ys = relation_manager()
        parts = make_parts(mgr, xs, ys, [(0, [0]), (1, [1])])
        asg = partition_clusters(mgr, parts, 8, xs, set())
        assert asg.num_clusters == 2

    def test_local_vars_are_exclusive_and_sound(self) -> None:
        mgr, xs, ys = relation_manager()
        # Part i depends on x_i only → every quantified x_i is local.
        parts = make_parts(mgr, xs, ys, [(i, [i]) for i in range(6)])
        asg = partition_clusters(mgr, parts, 2, xs[:6], set())
        seen: set[int] = set()
        for k, local in enumerate(asg.local_vars):
            cluster_support = set()
            for i in asg.clusters[k]:
                cluster_support |= mgr.support(parts[i])
            for v in local:
                assert v not in seen
                seen.add(v)
                assert v in cluster_support
        assert sorted(seen | set(asg.shared_vars)) == sorted(xs[:6])

    def test_constraint_support_blocks_locality(self) -> None:
        mgr, xs, ys = relation_manager()
        parts = make_parts(mgr, xs, ys, [(i, [i]) for i in range(4)])
        # Constraint mentions every x: nothing may retire in-shard.
        asg = partition_clusters(mgr, parts, 2, xs[:4], set(xs[:4]))
        assert all(not local for local in asg.local_vars)
        assert asg.shared_vars == sorted(xs[:4])

    def test_shared_vars_include_cross_cluster_vars(self) -> None:
        mgr, xs, ys = relation_manager()
        # x0 appears in every part → never local.
        parts = make_parts(mgr, xs, ys, [(i, [0, i]) for i in range(4)])
        asg = partition_clusters(mgr, parts, 2, xs[:4], set())
        for local in asg.local_vars:
            assert xs[0] not in local


class TestShardedImage:
    @pytest.mark.parametrize("mode", ["cluster", "split", "auto"])
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_matches_in_process_image(self, mode, shards) -> None:
        mgr, xs, ys = relation_manager()
        parts = make_parts(
            mgr, xs, ys, [(0, [0]), (1, [0, 1]), (2, [2, 3]), (3, [3])]
        )
        quantify = xs[:4]
        psi = mgr.apply_or(
            mgr.apply_and(mgr.var_node(xs[0]), mgr.var_node(xs[2])),
            mgr.nvar_node(xs[1]),
        )
        expected = image_partitioned(mgr, parts, psi, quantify)
        with ShardPool(shards, mgr.var_order()) as pool:
            img = ShardedImage(
                pool, mgr, parts, quantify, set(xs[:4]), mode=mode
            )
            assert img.run(psi) == expected
            # FALSE constraint short-circuits without worker traffic.
            assert img.run(0) == 0

    def test_auto_picks_split_when_nothing_local(self) -> None:
        mgr, xs, ys = relation_manager()
        parts = make_parts(mgr, xs, ys, [(i, [i]) for i in range(4)])
        with ShardPool(2, mgr.var_order()) as pool:
            img = ShardedImage(pool, mgr, parts, xs[:4], set(xs[:4]))
            assert img.mode == "split"

    def test_auto_picks_cluster_when_retirement_possible(self) -> None:
        mgr, xs, ys = relation_manager()
        parts = make_parts(mgr, xs, ys, [(i, [i]) for i in range(4)])
        # Constraint over y-space only: every quantified x is local.
        with ShardPool(2, mgr.var_order()) as pool:
            img = ShardedImage(pool, mgr, parts, xs[:4], set())
            assert img.mode == "cluster"
            psi = 1
            assert img.run(psi) == image_partitioned(mgr, parts, psi, xs[:4])

    def test_rejects_unknown_mode(self) -> None:
        mgr, xs, ys = relation_manager()
        parts = make_parts(mgr, xs, ys, [(0, [0])])
        with ShardPool(1, mgr.var_order()) as pool:
            with pytest.raises(ShardError, match="unknown sharded-image mode"):
                ShardedImage(pool, mgr, parts, xs[:1], set(), mode="bogus")


@given(st.data())
@settings(max_examples=15, deadline=None)
def test_sharded_image_random_relations(data) -> None:
    """Random dependency structure, both modes, vs the in-process image."""
    mgr, xs, ys = relation_manager()
    n_parts = data.draw(st.integers(2, 5))
    spec = [
        (i, sorted(data.draw(st.sets(st.integers(0, 5), max_size=3))))
        for i in range(n_parts)
    ]
    parts = make_parts(mgr, xs, ys, spec)
    quantify = xs[:6]
    cube = data.draw(st.lists(st.sampled_from(xs[:6]), max_size=3))
    psi = 1
    for v in cube:
        psi = mgr.apply_and(psi, mgr.var_node(v))
    expected = image_partitioned(mgr, parts, psi, quantify)
    mode = data.draw(st.sampled_from(["cluster", "split"]))
    with ShardPool(2, mgr.var_order()) as pool:
        img = ShardedImage(pool, mgr, parts, quantify, set(xs[:6]), mode=mode)
        assert img.run(psi) == expected
