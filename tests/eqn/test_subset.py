"""Unit tests for the subset-construction driver itself (mock oracles)."""

from __future__ import annotations

import time

import pytest

from repro.bdd.manager import FALSE, TRUE
from repro.errors import EquationError, TimeLimit
from repro.bench import figure3_network
from repro.eqn import build_latch_split_problem
from repro.eqn.subset import SubsetEdge, subset_construct
from repro.util.limits import ResourceLimit


@pytest.fixture()
def problem():
    return build_latch_split_problem(figure3_network(), ["cs1"])


class ChainOracle:
    """A mock: ψ0 -> ψ1 -> DCA, one edge each, over the (u,v) letters."""

    def __init__(self, problem):
        self.problem = problem
        mgr = problem.manager
        self.mgr = mgr
        cs = problem.all_cs_vars()
        self.psi0 = mgr.cube({v: 0 for v in cs})
        self.psi1 = mgr.cube({v: 1 for v in cs})
        u0 = problem.uv_vars()[0]
        self.letter = mgr.var_node(u0)

    def initial(self):
        return self.psi0

    def is_accepting(self, psi):
        return True

    def expand(self, psi):
        if psi == self.psi0:
            return [SubsetEdge(cond=self.letter, successor=self.psi1)], FALSE
        return [], self.mgr.apply_not(self.letter)


class TestDriver:
    def test_chain_exploration(self, problem) -> None:
        aut, stats = subset_construct(ChainOracle(problem), problem)
        # ψ0, ψ1 and DCA.
        assert aut.num_states == 3
        assert stats.subsets == 2
        assert stats.edges == 1
        assert stats.dca_edges == 1
        # DCA has the universal self-loop and is accepting.
        dca = aut.state_names.index("DCA")
        assert aut.edges[dca] == {dca: TRUE}
        assert dca in aut.accepting

    def test_alphabet_is_uv(self, problem) -> None:
        aut, _ = subset_construct(ChainOracle(problem), problem)
        assert list(aut.variables) == problem.uv_names()

    def test_no_dca_state_when_never_needed(self, problem) -> None:
        class TotalOracle(ChainOracle):
            def expand(self, psi):
                return [SubsetEdge(cond=TRUE, successor=self.psi0)], FALSE

        aut, stats = subset_construct(TotalOracle(problem), problem)
        assert "DCA" not in aut.state_names
        assert stats.dca_edges == 0

    def test_duplicate_successors_are_merged(self, problem) -> None:
        class DiamondOracle(ChainOracle):
            def expand(self, psi):
                if psi == self.psi0:
                    return (
                        [
                            SubsetEdge(cond=self.letter, successor=self.psi1),
                            SubsetEdge(
                                cond=self.mgr.apply_not(self.letter),
                                successor=self.psi1,
                            ),
                        ],
                        FALSE,
                    )
                return [SubsetEdge(cond=TRUE, successor=self.psi1)], FALSE

        aut, stats = subset_construct(DiamondOracle(problem), problem)
        assert stats.subsets == 2  # ψ1 created once
        src = 0
        # Both edges merged into a single TRUE label.
        assert list(aut.edges[src].values()) == [TRUE]

    def test_empty_initial_rejected(self, problem) -> None:
        class EmptyOracle(ChainOracle):
            def initial(self):
                return FALSE

        with pytest.raises(EquationError):
            subset_construct(EmptyOracle(problem), problem)

    def test_time_limit_aborts(self, problem) -> None:
        class SlowOracle(ChainOracle):
            def expand(self, psi):
                time.sleep(0.02)
                # Endless fresh successors: ψ ∧ fresh var patterns.
                return [SubsetEdge(cond=TRUE, successor=self.psi1)], FALSE

        class EndlessOracle(ChainOracle):
            def __init__(self, problem):
                super().__init__(problem)
                self.counter = 0

            def expand(self, psi):
                time.sleep(0.05)
                mgr = self.mgr
                cs = self.problem.all_cs_vars()
                self.counter += 1
                bits = self.counter
                succ = mgr.cube(
                    {v: (bits >> k) & 1 for k, v in enumerate(cs)}
                )
                return [SubsetEdge(cond=TRUE, successor=succ)], FALSE

        with pytest.raises(TimeLimit):
            subset_construct(
                EndlessOracle(problem),
                problem,
                limit=ResourceLimit(max_seconds=0.1),
            )

    def test_nonaccepting_subsets_supported(self, problem) -> None:
        class MixedOracle(ChainOracle):
            def is_accepting(self, psi):
                return psi == self.psi0

            def expand(self, psi):
                if psi == self.psi0:
                    return (
                        [
                            SubsetEdge(
                                cond=self.letter,
                                successor=self.psi1,
                                accepting=False,
                            )
                        ],
                        FALSE,
                    )
                return [], FALSE

        aut, _ = subset_construct(MixedOracle(problem), problem)
        assert 0 in aut.accepting
        assert 1 not in aut.accepting
