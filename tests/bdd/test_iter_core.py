"""Cross-checks between the iterative apply core and the recursive one.

The recursive closures are the retained reference implementation; the
explicit-frame iterative core must agree with them operation for
operation — on random op DAGs, across garbage collections and across
mid-run in-place sifting.  Because both cores share one unique table
per manager, agreement is checked two ways:

* *across managers*: the same op program applied to a recursive-core
  manager and an iterative-core manager yields identical truth tables;
* *within one manager*: recompute with the other core after a cache
  flush and the canonical edge must be bit-identical.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.bdd.reorder import sift

from tests.strategies import DEFAULT_VARS, bdd_minterms


#: Op codes for the random program strategy: (arity, needs_vars).
_OPS = ("and", "or", "xor", "ite", "exists", "andex", "restrict", "diff")


def _fresh_pair() -> tuple[BddManager, BddManager]:
    rec = BddManager(apply_core="recursive", gc_min_live=0, gc_growth=1.0)
    it = BddManager(apply_core="iterative", gc_min_live=0, gc_growth=1.0)
    for name in DEFAULT_VARS:
        rec.add_var(name)
        it.add_var(name)
    return rec, it


def _apply(mgr: BddManager, op: str, pool: list[int], step) -> int:
    a = pool[step.a % len(pool)]
    b = pool[step.b % len(pool)]
    c = pool[step.c % len(pool)]
    var = step.var % mgr.num_vars
    var2 = step.var2 % mgr.num_vars
    if op == "and":
        return mgr.apply_and(a, b)
    if op == "or":
        return mgr.apply_or(a, b)
    if op == "xor":
        return mgr.apply_xor(a, b)
    if op == "diff":
        return mgr.apply_diff(a, b)
    if op == "ite":
        return mgr.ite(a, b, c)
    if op == "exists":
        return mgr.exists(a, [var, var2])
    if op == "andex":
        return mgr.and_exists(a, b, [var, var2])
    if op == "restrict":
        return mgr.restrict(a, var, step.b & 1)
    raise AssertionError(op)


class _Step:
    def __init__(self, op, a, b, c, var, var2, gc, reorder):
        self.op = op
        self.a = a
        self.b = b
        self.c = c
        self.var = var
        self.var2 = var2
        self.gc = gc
        self.reorder = reorder


_steps = st.builds(
    _Step,
    op=st.sampled_from(_OPS),
    a=st.integers(min_value=0, max_value=63),
    b=st.integers(min_value=0, max_value=63),
    c=st.integers(min_value=0, max_value=63),
    var=st.integers(min_value=0, max_value=63),
    var2=st.integers(min_value=0, max_value=63),
    gc=st.booleans(),
    reorder=st.integers(min_value=0, max_value=9),
)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program=st.lists(_steps, min_size=1, max_size=14))
def test_cores_agree_on_random_op_dags(program) -> None:
    """Both cores realise the same functions on random op DAGs,
    including interleaved GC and mid-run in-place sifting."""
    rec, it = _fresh_pair()
    pool_rec = [FALSE, TRUE] + [rec.var_node(v) for v in range(rec.num_vars)]
    pool_it = [FALSE, TRUE] + [it.var_node(v) for v in range(it.num_vars)]
    for step in program:
        r = _apply(rec, step.op, pool_rec, step)
        i = _apply(it, step.op, pool_it, step)
        assert bdd_minterms(rec, r, DEFAULT_VARS) == bdd_minterms(it, i, DEFAULT_VARS)
        pool_rec.append(r)
        pool_it.append(i)
        if step.gc:
            # Collect on both managers with the pools rooted; results
            # must stay valid (edges are stable across collections).
            rec.collect_garbage(pool_rec)
            it.collect_garbage(pool_it)
        if step.reorder == 0:
            # Sift only the iterative manager: orders diverge, semantics
            # must not.
            sift(it, pool_it)
            it.check()
    rec.check()
    it.check()
    # Final full-pool comparison after all the churn.
    for r, i in zip(pool_rec, pool_it):
        assert bdd_minterms(rec, r, DEFAULT_VARS) == bdd_minterms(it, i, DEFAULT_VARS)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program=st.lists(_steps, min_size=1, max_size=10))
def test_core_switch_is_edge_identical(program) -> None:
    """Recomputing with the other core (same manager, flushed computed
    table) yields the *same canonical edge* — the unique table is shared,
    so agreement is exact, not just semantic."""
    mgr = BddManager(apply_core="recursive")
    for name in DEFAULT_VARS:
        mgr.add_var(name)
    pool = [FALSE, TRUE] + [mgr.var_node(v) for v in range(mgr.num_vars)]
    results = []
    for step in program:
        results.append((step, len(pool)))
        pool.append(_apply(mgr, step.op, pool, step))
    mgr.clear_caches()
    mgr.set_apply_core("iterative")
    assert mgr.apply_core == "iterative"
    for step, at in results:
        redo = _apply(mgr, step.op, pool[:at], step)
        assert redo == pool[at], f"{step.op} diverged between cores"
    mgr.check()


def test_auto_core_tracks_recursion_limit() -> None:
    """``auto`` binds the recursive fast path on shallow managers and
    flips to the iterative core once the level count approaches the
    interpreter recursion limit."""
    mgr = BddManager()
    mgr.add_vars([f"x{i}" for i in range(8)])
    assert mgr.apply_core == "recursive"
    import sys

    limit = sys.getrecursionlimit()
    threshold = (limit - BddManager._DEEP_MARGIN) // 3
    mgr.add_vars([f"y{i}" for i in range(threshold)])
    assert mgr.apply_core == "iterative"


def test_explicit_core_modes() -> None:
    mgr = BddManager(apply_core="iterative")
    a, b = mgr.add_vars(["a", "b"])
    f = mgr.apply_and(mgr.var_node(a), mgr.var_node(b))
    assert mgr.apply_core == "iterative"
    mgr.set_apply_core("recursive")
    assert mgr.apply_core == "recursive"
    g = mgr.apply_and(mgr.var_node(a), mgr.var_node(b))
    assert f == g
    with pytest.raises(Exception):
        mgr.set_apply_core("warp-drive")


def test_iterative_core_respects_node_budget() -> None:
    from repro.errors import BddNodeLimit

    mgr = BddManager(max_nodes=10, apply_core="iterative")
    vs = mgr.add_vars([f"x{i}" for i in range(12)])
    with pytest.raises(BddNodeLimit):
        f = TRUE
        for v in vs:
            f = mgr.apply_and(f, mgr.var_node(v))
            f = mgr.apply_or(f, mgr.apply_xor(mgr.var_node(v), f))
