"""Cross-backend conformance kit: random op DAGs, compared edge-for-edge.

Any two :class:`~repro.bdd.backends.protocol.BddBackend` implementations
must compute *the same functions* for the same program of operations —
that is the whole premise of swapping a native kernel under the solver.
This kit makes the property executable:

1. :func:`program_strategy` draws a random **operation program** (a
   little DAG of and/or/xor/ite/quantify/restrict/compose/constrain
   steps over a shared operand pool, with garbage collections and
   in-place sifts interleaved at random points — the events most likely
   to shake loose lifetime or canonicity bugs);
2. :func:`run_program` replays a program on one backend, returning the
   operand pool's edge handles;
3. :func:`assert_same_functions` compares the two runs **edge for
   edge**: both pools are snapshotted via the backend-independent
   ``dump_nodes`` wire format and loaded into one fresh pure-Python
   reference manager, where shared-unique-table canonicity turns
   function equality into plain ``int`` equality.

:func:`run_conformance_case` wires the three together for a pair of
backend names, and :func:`conformance_pairs` enumerates the pairs worth
running on this machine.  The repo's own suite lives in
``tests/bdd/test_backends.py``; a third-party adapter gets the same
coverage with::

    from repro.bdd.backends import register_backend
    from repro.bdd.backends.conformance import (
        conformance_pairs, program_strategy, run_conformance_case,
    )

    register_backend("mybackend", MyManager, probe=my_probe)

    @given(program=program_strategy())
    def test_mybackend_matches_reference(program):
        run_conformance_case("python", "mybackend", program)

hypothesis is imported lazily inside :func:`program_strategy`, so the
kit itself imports fine in production environments without it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bdd.manager import BddManager

#: Operations a program step may perform.  Deliberately the full
#: operator surface the solver uses, not just the easy binary ones.
OPS = (
    "and",
    "or",
    "xor",
    "iff",
    "implies",
    "diff",
    "not",
    "ite",
    "exists",
    "forall",
    "andex",
    "restrict",
    "compose",
    "constrain",
)

#: Default variable names programs run over (small on purpose: narrow
#: managers collide on the unique/computed tables far more often, which
#: is where canonicity bugs live).
DEFAULT_NAMES = ("a", "b", "c", "d", "e")


@dataclass(frozen=True)
class Step:
    """One operation of a conformance program.

    Operand indices (``a``/``b``/``c``) address the growing operand
    pool modulo its current length, so every drawn program is valid on
    every backend.  ``event`` interleaves lifecycle operations: 0 = GC
    after this step, 1 = in-place sift after this step, anything else =
    nothing.
    """

    op: str
    a: int = 0
    b: int = 0
    c: int = 0
    var: int = 0
    value: bool = False
    qvars: tuple[int, ...] = (0,)
    event: int = 99


@dataclass(frozen=True)
class Program:
    """A full conformance case: variables plus the step sequence."""

    names: tuple[str, ...] = DEFAULT_NAMES
    steps: tuple[Step, ...] = field(default_factory=tuple)


def program_strategy(
    max_steps: int = 25,
    names: tuple[str, ...] = DEFAULT_NAMES,
    ops: tuple[str, ...] = OPS,
):
    """Hypothesis strategy drawing random :class:`Program` values."""
    from hypothesis import strategies as st

    nvars = len(names)
    steps = st.builds(
        Step,
        op=st.sampled_from(ops),
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
        c=st.integers(min_value=0, max_value=255),
        var=st.integers(min_value=0, max_value=nvars - 1),
        value=st.booleans(),
        qvars=st.lists(
            st.integers(min_value=0, max_value=nvars - 1),
            min_size=1,
            max_size=nvars,
        ).map(tuple),
        # ~1 in 8 steps collects, ~1 in 16 sifts mid-program.
        event=st.integers(min_value=0, max_value=15),
    )
    return st.builds(
        Program,
        names=st.just(tuple(names)),
        steps=st.lists(steps, min_size=1, max_size=max_steps).map(tuple),
    )


def run_program(mgr, program: Program) -> list[int]:
    """Replay ``program`` on ``mgr``; returns the final operand pool.

    The pool starts with both literals of every variable plus the two
    terminals, and every step appends its result, so later steps can
    consume earlier results (a DAG, not a tree).  GC passes the live
    pool as roots — exactly how the solver protects its frontier — and
    sift events reorder in place with the pool pinned.
    """
    variables = [mgr.add_var(n) for n in program.names]
    pool: list[int] = [0, 1]
    for v in variables:
        pool.append(mgr.var_node(v))
        pool.append(mgr.nvar_node(v))
    for step in program.steps:
        f = pool[step.a % len(pool)]
        g = pool[step.b % len(pool)]
        h = pool[step.c % len(pool)]
        qset = [variables[i] for i in step.qvars]
        op = step.op
        if op == "and":
            r = mgr.apply_and(f, g)
        elif op == "or":
            r = mgr.apply_or(f, g)
        elif op == "xor":
            r = mgr.apply_xor(f, g)
        elif op == "iff":
            r = mgr.apply_iff(f, g)
        elif op == "implies":
            r = mgr.apply_implies(f, g)
        elif op == "diff":
            r = mgr.apply_diff(f, g)
        elif op == "not":
            r = mgr.apply_not(f)
        elif op == "ite":
            r = mgr.ite(f, g, h)
        elif op == "exists":
            r = mgr.exists(f, mgr.quant_set(qset))
        elif op == "forall":
            r = mgr.forall(f, qset)
        elif op == "andex":
            r = mgr.and_exists(f, g, mgr.quant_set(qset))
        elif op == "restrict":
            r = mgr.restrict(f, variables[step.var], step.value)
        elif op == "compose":
            # The composed-in function must not mention the composed
            # variable on either backend; a literal-free substitute is
            # the simplest function with that guarantee per canonicity.
            sub = mgr.restrict(g, variables[step.var], step.value)
            r = mgr.compose(f, variables[step.var], sub)
        elif op == "constrain":
            # Constraining by FALSE is undefined; FALSE is handle 0 on
            # every backend (canonicity), so the guard replays equally.
            r = mgr.constrain(f, g if g != 0 else 1)
        else:  # pragma: no cover - strategy only draws known ops
            raise ValueError(f"unknown conformance op {op!r}")
        pool.append(r)
        if step.event == 0:
            mgr.collect_garbage(pool)
        elif step.event == 1:
            mgr.sift_now(pool)
    return pool


def canonical_roots(snapshot_a: dict, snapshot_b: dict) -> tuple[list[int], list[int]]:
    """Load two ``dump_nodes`` snapshots into ONE fresh reference manager.

    Sharing a single unique table is what makes the comparison
    *edge-for-edge*: two loads of the same function meet at the same
    node, so root handles compare as plain ints.  (Loading into two
    separate managers would be unsound — allocation order differs with
    traversal order, so equal functions could get different ints.)
    """
    ref = BddManager()
    roots_a = ref.load_nodes(snapshot_a)
    roots_b = ref.load_nodes(snapshot_b)
    return roots_a, roots_b


def assert_same_functions(mgr_a, mgr_b, pool_a: list[int], pool_b: list[int]) -> None:
    """Assert two replays produced identical functions, edge for edge."""
    assert len(pool_a) == len(pool_b), (
        f"pool lengths diverged: {len(pool_a)} vs {len(pool_b)}"
    )
    roots_a, roots_b = canonical_roots(
        mgr_a.dump_nodes(pool_a), mgr_b.dump_nodes(pool_b)
    )
    for i, (ea, eb) in enumerate(zip(roots_a, roots_b)):
        assert ea == eb, (
            f"pool entry {i} diverged between "
            f"{mgr_a.backend_name!r} (edge {ea}) and "
            f"{mgr_b.backend_name!r} (edge {eb})"
        )


def run_conformance_case(
    backend_a,
    backend_b,
    program: Program,
    **kwargs,
) -> None:
    """Replay ``program`` on two backends and compare edge-for-edge.

    ``backend_a``/``backend_b`` are registry names (strings) or
    zero-argument factories returning a fresh manager; ``kwargs`` go to
    :func:`~repro.bdd.backends.create_manager` for named backends.
    Managers holding process-global state (``close()``-able) are torn
    down afterwards, so hypothesis can run hundreds of cases.
    """
    mgr_a = _make(backend_a, kwargs)
    try:
        mgr_b = _make(backend_b, kwargs)
        try:
            pool_a = run_program(mgr_a, program)
            pool_b = run_program(mgr_b, program)
            assert_same_functions(mgr_a, mgr_b, pool_a, pool_b)
        finally:
            _close(mgr_b)
    finally:
        _close(mgr_a)


def conformance_pairs() -> list[tuple[str, str]]:
    """Backend pairs worth testing on this machine.

    The reference is always half of every pair: conformance is defined
    *against* it, and transitivity covers native-vs-native.
    """
    from repro.bdd.backends import DEFAULT_BACKEND, available_backends

    return [
        (DEFAULT_BACKEND, name)
        for name in available_backends()
        if name != DEFAULT_BACKEND
    ]


def _make(backend, kwargs):
    if callable(backend):
        return backend()
    from repro.bdd.backends import create_manager

    return create_manager(backend, **kwargs)


def _close(mgr) -> None:
    close = getattr(mgr, "close", None)
    if close is not None:
        close()
