"""Tests for the verification module itself (including failure detection)."""

from __future__ import annotations

from repro.bdd.manager import TRUE
from repro.bench import circuits, figure3_network, s27
from repro.automata import Automaton, accepts, contained_in
from repro.eqn import (
    build_latch_split_problem,
    compose_with_fixed,
    particular_solution_automaton,
    solve_equation,
    specification_automaton,
    verify_solution,
)


class TestComponentAutomata:
    def test_specification_matches_simulation(self) -> None:
        net = figure3_network()
        prob = build_latch_split_problem(net, ["cs1"])
        s_aut = specification_automaton(prob)
        # Words from simulation are accepted.
        import random

        rng = random.Random(4)
        for _ in range(15):
            inputs = [{"i": rng.randint(0, 1)} for _ in range(5)]
            outs = net.simulate(inputs)
            word = [{**i, **o} for i, o in zip(inputs, outs)]
            assert accepts(s_aut, word)
            bad = [dict(l) for l in word]
            bad[-1]["o"] ^= 1
            assert not accepts(s_aut, bad)

    def test_specification_state_count_is_reachable_set(self) -> None:
        from repro.automata import reachable_state_count

        net = s27()
        prob = build_latch_split_problem(net, ["G6"])
        s_aut = specification_automaton(prob)
        assert s_aut.num_states == reachable_state_count(net)

    def test_particular_solution_tracks_moved_latches(self) -> None:
        net = circuits.counter(4)
        prob = build_latch_split_problem(net, ["b2"])
        xp = particular_solution_automaton(prob)
        # X_P over (u, v): 2 states (one moved latch).
        assert xp.num_states == 2
        assert xp.variables == tuple(prob.uv_names())

    def test_composition_of_particular_equals_spec(self) -> None:
        net = circuits.johnson(3)
        prob = build_latch_split_problem(net, ["j1"])
        xp = particular_solution_automaton(prob)
        s_aut = specification_automaton(prob)
        closed = compose_with_fixed(prob, xp)
        assert contained_in(closed, s_aut).holds
        assert contained_in(s_aut, closed).holds


class TestVerifySolution:
    def test_full_report_ok(self) -> None:
        prob = build_latch_split_problem(s27(), ["G5"])
        result = solve_equation(prob, method="partitioned")
        report = verify_solution(result)
        assert report.ok
        assert "True" in report.summary()

    def test_skip_composition_check(self) -> None:
        prob = build_latch_split_problem(circuits.counter(3), ["b1"])
        result = solve_equation(prob, method="partitioned")
        report = verify_solution(result, check_composition=False)
        assert report.ok

    def test_detects_unsound_solution(self) -> None:
        # Replace the CSF with the universal automaton over (u,v): it is
        # NOT a valid flexibility, and the checks must catch it.
        prob = build_latch_split_problem(figure3_network(), ["cs1"])
        result = solve_equation(prob, method="partitioned")
        universal = Automaton(prob.manager, tuple(prob.uv_names()))
        sid = universal.add_state("top", accepting=True)
        universal.add_edge(sid, sid, TRUE)
        result.csf = universal
        report = verify_solution(result, check_composition=False)
        assert not report.solution_sound.holds
        assert report.solution_sound.counterexample is not None
        assert not report.ok

    def test_detects_truncated_solution(self) -> None:
        # An empty "solution" fails check 1 (X_P not contained).
        from repro.automata import empty_automaton

        prob = build_latch_split_problem(figure3_network(), ["cs1"])
        result = solve_equation(prob, method="partitioned")
        result.csf = empty_automaton(prob.manager, tuple(prob.uv_names()))
        report = verify_solution(result, check_composition=False)
        assert not report.xp_contained.holds
        assert not report.ok

    def test_counterexample_word_is_concrete(self) -> None:
        prob = build_latch_split_problem(figure3_network(), ["cs1"])
        result = solve_equation(prob, method="partitioned")
        universal = Automaton(prob.manager, tuple(prob.uv_names()))
        sid = universal.add_state("top", accepting=True)
        universal.add_edge(sid, sid, TRUE)
        result.csf = universal
        report = verify_solution(result, check_composition=False)
        word = report.solution_sound.counterexample
        for letter in word:
            assert set(letter) == set(prob.i_names) | set(prob.o_names)
