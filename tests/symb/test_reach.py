"""Tests for symbolic reachability vs explicit BFS."""

from __future__ import annotations

import pytest

from repro.bdd import BddManager, sat_count
from repro.bench import circuits, figure3_network, s27
from repro.network import build_network_bdds, declare_network_vars
from repro.symb import network_reachable_states
from repro.automata import reachable_state_count


def interleaved_manager(net):
    """Manager with inputs first, then interleaved (cs, ns) pairs."""
    mgr = BddManager()
    iv = {name: mgr.add_var(name) for name in net.inputs}
    sv, nv = {}, {}
    for name in net.latches:
        sv[name] = mgr.add_var(name)
        nv[name] = mgr.add_var(f"{name}'")
    return mgr, iv, sv, nv


@pytest.mark.parametrize(
    "make",
    [
        figure3_network,
        s27,
        lambda: circuits.counter(4),
        lambda: circuits.johnson(4),
        lambda: circuits.lfsr(4),
        lambda: circuits.shift_register(3),
        lambda: circuits.sequence_detector("1011"),
        lambda: circuits.traffic_light(),
        lambda: circuits.token_arbiter(3),
        lambda: circuits.random_network(2, 4, 2, seed=13),
    ],
)
@pytest.mark.parametrize("schedule", [True, False])
def test_symbolic_reach_equals_explicit(make, schedule) -> None:
    net = make()
    mgr, iv, sv, nv = interleaved_manager(net)
    bdds = build_network_bdds(net, mgr, iv, sv)
    result = network_reachable_states(bdds, ns_vars=nv, schedule=schedule)
    assert result.state_count == reachable_state_count(net)


def test_reach_iterations_bounded_by_diameter() -> None:
    net = circuits.counter(3)
    mgr, iv, sv, nv = interleaved_manager(net)
    bdds = build_network_bdds(net, mgr, iv, sv)
    result = network_reachable_states(bdds, ns_vars=nv)
    # 8 states on a counting path: fixed point within 9 iterations.
    assert result.state_count == 8
    assert result.iterations <= 9


def test_reach_declares_ns_vars_on_demand() -> None:
    net = circuits.counter(2)
    mgr = BddManager()
    iv, sv = declare_network_vars(mgr, net)
    bdds = build_network_bdds(net, mgr, iv, sv)
    result = network_reachable_states(bdds)
    assert result.state_count == 4


def test_reached_set_is_closed_under_image() -> None:
    net = circuits.johnson(3)
    mgr, iv, sv, nv = interleaved_manager(net)
    bdds = build_network_bdds(net, mgr, iv, sv)
    from repro.symb import functions_to_relation, image_partitioned

    result = network_reachable_states(bdds, ns_vars=nv)
    rel = functions_to_relation(
        mgr, ((nv[n], bdds.next_state[n]) for n in net.latches)
    )
    quantify = list(iv.values()) + list(sv.values())
    img = image_partitioned(mgr, list(rel), result.states, quantify)
    img_cs = mgr.rename(img, {nv[n]: sv[n] for n in net.latches})
    # image(reached) ⊆ reached
    assert mgr.apply_diff(img_cs, result.states) == 0
    # and the count matches sat_count over cs vars.
    assert result.state_count == sat_count(mgr, result.states, list(sv.values()))
