"""Span tracing exported as Chrome trace-event JSON.

A :class:`Tracer` records *spans* — named, timed intervals opened as
context managers::

    from repro.obs import trace

    tracer = trace.install_tracer()
    with trace.span("frontier_batch", batch=3, size=8):
        ...
    tracer.export("out.json")

Spans nest through a thread-local stack, so a ``plan_image`` span opened
inside a ``frontier_batch`` span renders as its child in the viewer.
The export is the Chrome trace-event format (a ``{"traceEvents": [...]}``
object of ``"X"`` complete events plus ``"M"`` metadata events naming
the tracks); open it in ``chrome://tracing`` or https://ui.perfetto.dev.

**Disabled cost.**  Tracing is off unless a tracer is installed.  The
module-level :func:`span` checks one global and returns a shared null
context manager when tracing is off, so instrumentation sites in hot
loops (GC sweeps, image calls) cost a function call and an ``is None``
test — nothing is allocated and no clock is read.

**Cross-process relay.**  Shard workers cannot share the coordinator's
tracer object, but on platforms where :func:`time.perf_counter` is a
system-wide monotonic clock (``CLOCK_MONOTONIC`` on Linux — the only
platform the fork-based pool targets) the *timebase* is shared.  Workers
therefore stamp ``{"op", "pid", "t0", "t1"}`` records into every reply;
:meth:`ShardPool.collect <repro.shard.pool.ShardPool.collect>` feeds
them to :meth:`Tracer.add_worker_event`, which lands each command on a
pid-tagged per-worker track in the same timeline as the coordinator's
spans.  Steals and the speculative cluster-vs-split race become visible
as gaps and overlaps between the worker tracks.

:func:`validate_trace` is the schema checker used by the tests and the
CI trace-smoke step (``python -m repro.obs.trace out.json``): it checks
event shape, non-negative timestamps, and proper per-track nesting.
"""

from __future__ import annotations

import json
import os
import threading
import time

__all__ = [
    "Tracer",
    "current_tracer",
    "install_tracer",
    "uninstall_tracer",
    "span",
    "instant",
    "validate_trace",
    "worker_pids",
]

#: Category stamped on every event (lets viewers filter repro traces).
_CATEGORY = "repro"

#: Nesting tolerance in microseconds — sibling spans produced by
#: back-to-back ``perf_counter`` reads can disagree by sub-ns rounding.
_NEST_EPS_US = 0.01


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> None:
        """Ignore late-bound span arguments."""


_NULL_SPAN = _NullSpan()

#: The installed tracer (``None`` = tracing disabled).  Module-global on
#: purpose: the fast path of :func:`span` is one load and one ``is``.
_TRACER: "Tracer | None" = None


class _Span:
    """One live span: records its interval on ``__exit__``."""

    __slots__ = ("_tracer", "name", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args

    def set(self, **args) -> None:
        """Attach result arguments discovered while the span is open."""
        self.args.update(args)

    def __enter__(self) -> "_Span":
        self._tracer._stack().append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        tracer.add_complete(
            self.name, self._start, end, args=self.args or None
        )
        return False


class Tracer:
    """Collects trace events and exports Chrome trace-event JSON.

    All timestamps are :func:`time.perf_counter` seconds, converted to
    microseconds relative to the tracer's creation instant (``t0``) at
    export.  The wall-clock creation time is recorded in the export's
    ``metadata`` block so a trace can be correlated with logs.

    The tracer is thread-safe: spans may be opened from any coordinator
    thread (each gets its own track via its thread id), and
    :meth:`add_worker_event` may be called while spans are open.
    """

    def __init__(self) -> None:
        self.pid = os.getpid()
        self.t0 = time.perf_counter()
        self.wall0 = time.time()
        self._events: list[dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._track_names: dict[int, str] = {
            self.pid: "coordinator",
        }
        self._tid_names: dict[tuple[int, int], str] = {}

    # -- span recording ------------------------------------------------ #

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **args) -> _Span:
        """Open a coordinator span (use as a context manager)."""
        return _Span(self, name, args)

    def add_complete(
        self,
        name: str,
        t0: float,
        t1: float,
        *,
        pid: int | None = None,
        tid: int | None = None,
        args: dict | None = None,
    ) -> None:
        """Record a finished interval (``perf_counter`` seconds)."""
        event = {
            "name": name,
            "cat": _CATEGORY,
            "ph": "X",
            "ts": self._us(t0),
            "dur": max(0.0, round((t1 - t0) * 1e6, 3)),
            "pid": self.pid if pid is None else pid,
            "tid": threading.get_ident() if tid is None else tid,
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            self._events.append(event)

    def add_instant(self, name: str, *, args: dict | None = None) -> None:
        """Record a zero-duration marker at the current instant."""
        event = {
            "name": name,
            "cat": _CATEGORY,
            "ph": "i",
            "s": "p",
            "ts": self._us(time.perf_counter()),
            "pid": self.pid,
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            self._events.append(event)

    def add_worker_event(self, meta: dict) -> None:
        """Merge one worker-stamped command record into the trace.

        ``meta`` is the ``{"op", "pid", "t0", "t1"}`` dict a shard
        worker attaches to its reply (see
        :func:`repro.shard.worker.worker_main`).  The event lands on a
        per-worker track named after the worker's pid; the shared
        ``perf_counter`` timebase makes it line up with the
        coordinator's spans.
        """
        pid = meta["pid"]
        if pid not in self._track_names:
            self.set_track_name(pid, f"shard-worker-{pid}")
        self.add_complete(
            f"shard:{meta['op']}",
            meta["t0"],
            meta["t1"],
            pid=pid,
            tid=0,
            args={k: v for k, v in meta.items() if k not in ("t0", "t1")},
        )

    def set_track_name(self, pid: int, name: str) -> None:
        """Label a process track (rendered as the row title)."""
        with self._lock:
            self._track_names[pid] = name

    def _us(self, t: float) -> float:
        """Convert ``perf_counter`` seconds to trace µs (clamped ≥ 0)."""
        return max(0.0, round((t - self.t0) * 1e6, 3))

    # -- export -------------------------------------------------------- #

    def to_dict(self) -> dict:
        """Build the Chrome trace-event JSON object."""
        with self._lock:
            meta_events = [
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
                for pid, name in sorted(self._track_names.items())
            ]
            return {
                "traceEvents": meta_events + list(self._events),
                "displayTimeUnit": "ms",
                "metadata": {
                    "tool": "repro.obs.trace",
                    "wall_start": self.wall0,
                    "coordinator_pid": self.pid,
                },
            }

    def export(self, path: str) -> None:
        """Write the trace to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh)

    def events(self, start: int = 0) -> list[dict]:
        """Raw events recorded since index ``start`` (no metadata events).

        With ``start = len(tracer)`` taken before a region, this is the
        window the bench driver aggregates into per-phase breakdowns.
        """
        with self._lock:
            return list(self._events[start:])

    def __len__(self) -> int:
        return len(self._events)


# -- module-level API (what instrumentation sites call) ---------------- #


def install_tracer(tracer: Tracer | None = None) -> Tracer:
    """Install ``tracer`` (a fresh one by default) as the process tracer."""
    global _TRACER
    if tracer is None:
        tracer = Tracer()
    _TRACER = tracer
    return tracer


def uninstall_tracer() -> None:
    """Disable tracing (the installed tracer keeps its events)."""
    global _TRACER
    _TRACER = None


def current_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _TRACER


def span(name: str, **args):
    """Open a span on the installed tracer; a shared no-op when disabled.

    This is *the* instrumentation entry point::

        with obs_span("gc_sweep", live_before=n):
            ...

    When no tracer is installed the same ``_NullSpan`` singleton is
    returned every time — no allocation, no clock read.
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return _Span(tracer, name, args)


def instant(name: str, **args) -> None:
    """Record an instant marker on the installed tracer (no-op when off)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.add_instant(name, args=args or None)


# -- schema validation (tests + CI trace-smoke) ------------------------ #


def worker_pids(data: dict) -> set[int]:
    """Pids of the per-worker tracks announced by metadata events."""
    pids = set()
    for event in data.get("traceEvents", ()):
        if (
            event.get("ph") == "M"
            and event.get("name") == "process_name"
            and str(event.get("args", {}).get("name", "")).startswith(
                "shard-worker"
            )
        ):
            pids.add(event["pid"])
    return pids


def validate_trace(data: dict, *, require_workers: bool = False) -> list[str]:
    """Check ``data`` against the Chrome trace-event schema.

    Returns a list of human-readable problems (empty = valid):

    - the top level must be an object with a ``traceEvents`` list;
    - every ``"X"`` event needs a string ``name``, numeric ``ts ≥ 0``
      and ``dur ≥ 0``, and integer ``pid``/``tid``;
    - per ``(pid, tid)`` track, spans must properly nest — a span may
      contain or follow a sibling but never partially overlap it;
    - with ``require_workers=True``, at least one pid-tagged
      ``shard-worker-*`` track must exist and carry at least one span.
    """
    problems: list[str] = []
    if not isinstance(data, dict) or not isinstance(
        data.get("traceEvents"), list
    ):
        return ["top level must be an object with a 'traceEvents' list"]
    tracks: dict[tuple, list[tuple[float, float, str]]] = {}
    for i, event in enumerate(data["traceEvents"]):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") not in ("process_name", "thread_name"):
                problems.append(f"event {i}: unknown metadata {event.get('name')!r}")
            continue
        if ph == "i":
            continue
        if ph != "X":
            problems.append(f"event {i}: unsupported phase {ph!r}")
            continue
        name = event.get("name")
        ts = event.get("ts")
        dur = event.get("dur")
        if not isinstance(name, str) or not name:
            problems.append(f"event {i}: missing span name")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i} ({name!r}): bad ts {ts!r}")
            continue
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append(f"event {i} ({name!r}): bad dur {dur!r}")
            continue
        if not isinstance(event.get("pid"), int) or not isinstance(
            event.get("tid"), int
        ):
            problems.append(f"event {i} ({name!r}): pid/tid must be ints")
            continue
        tracks.setdefault((event["pid"], event["tid"]), []).append(
            (float(ts), float(ts) + float(dur), str(name))
        )
    for (pid, tid), spans in tracks.items():
        # Chronological, outermost-first for equal starts.
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack: list[tuple[float, float, str]] = []
        for start, end, name in spans:
            while stack and start >= stack[-1][1] - _NEST_EPS_US:
                stack.pop()
            if stack and end > stack[-1][1] + _NEST_EPS_US:
                problems.append(
                    f"track {pid}/{tid}: span {name!r} [{start}, {end}] "
                    f"partially overlaps {stack[-1][2]!r} "
                    f"[{stack[-1][0]}, {stack[-1][1]}]"
                )
                continue
            stack.append((start, end, name))
    if require_workers:
        pids = worker_pids(data)
        if not pids:
            problems.append("no shard-worker tracks in trace")
        else:
            spanned = {
                event["pid"]
                for event in data["traceEvents"]
                if event.get("ph") == "X" and event.get("pid") in pids
            }
            if not spanned:
                problems.append("shard-worker tracks carry no spans")
    return problems


def _main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.trace FILE`` — validate a trace file."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.trace",
        description="Validate a Chrome trace-event JSON file.",
    )
    parser.add_argument("file", help="trace JSON produced by --trace")
    parser.add_argument(
        "--require-workers",
        action="store_true",
        help="fail unless pid-tagged shard-worker tracks carry spans",
    )
    opts = parser.parse_args(argv)
    with open(opts.file, encoding="utf-8") as fh:
        data = json.load(fh)
    problems = validate_trace(data, require_workers=opts.require_workers)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}")
        return 1
    events = [e for e in data["traceEvents"] if e.get("ph") == "X"]
    print(
        f"ok: {len(events)} spans across "
        f"{len({(e['pid'], e['tid']) for e in events})} tracks "
        f"({len(worker_pids(data))} worker tracks)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(_main())
