"""Adaptive kernel runtime threaded through the solver flows.

Forces garbage collections (low floor) and GC-triggered in-place
reordering during real subset constructions, and checks that both flows
still compute the exact CSF, pass formal verification, and keep the
letter-above-state order requirement intact (the problem's reorder
boundary).
"""

from __future__ import annotations

import pytest

from repro.bench.circuits import counter
from repro.eqn.problem import build_latch_split_problem
from repro.eqn.solver import solve_equation, verify_solution


def _force_adaptive(problem):
    """Lower the policy floors so GC + reordering fire on tiny cases."""
    mgr = problem.manager
    mgr.gc_policy.min_live = 200
    mgr.gc_policy.floor = 200
    mgr.gc_policy.growth = 1.1
    mgr.reorder_policy.min_live = 0
    mgr.reorder_policy.reclaim_threshold = 0.8
    return mgr


@pytest.mark.parametrize("method", ["partitioned", "monolithic"])
def test_solve_with_midrun_reordering_matches_baseline(method) -> None:
    net = counter(6)
    x = ["b3", "b4", "b5"]
    base = solve_equation(build_latch_split_problem(net, x), method=method)

    problem = build_latch_split_problem(net, x, reorder="sift", gc="adaptive")
    mgr = _force_adaptive(problem)
    result = solve_equation(problem, method=method)
    stats = mgr.stats

    assert stats["reorder_runs"] > 0, "reordering never fired"
    assert stats["reorder_swaps"] > 0
    assert result.csf_states == base.csf_states
    assert verify_solution(result).ok
    mgr.check()


def test_boundary_keeps_letters_above_state_vars() -> None:
    problem = build_latch_split_problem(
        counter(6), ["b3", "b4", "b5"], reorder="sift", gc="adaptive"
    )
    mgr = _force_adaptive(problem)
    n_letters = len(problem.uv_vars()) + len(problem.i_vars) + len(problem.o_vars)
    assert mgr.reorder_boundaries == {n_letters}
    solve_equation(problem, method="partitioned")
    for var in problem.uv_vars():
        assert mgr.var_level(var) < n_letters
    for var in problem.all_cs_vars() + problem.all_ns_vars():
        assert mgr.var_level(var) >= n_letters


def test_adaptive_gc_backs_off_during_solve() -> None:
    """With everything pinned and a tiny floor, the adaptive policy must
    raise its floor rather than sweep uselessly forever."""
    problem = build_latch_split_problem(counter(5), ["b3", "b4"], gc="adaptive")
    mgr = problem.manager
    mgr.gc_policy.min_live = 50
    mgr.gc_policy.floor = 50
    mgr.gc_policy.growth = 1.0
    solve_equation(problem, method="partitioned")
    assert mgr.gc_policy.backoffs > 0
    assert mgr.gc_policy.floor > 50
