"""Graphviz export of automata (used by examples and debugging)."""

from __future__ import annotations

from repro.bdd import iter_cubes
from repro.automata.automaton import Automaton


def automaton_to_dot(aut: Automaton, *, graph_name: str = "automaton") -> str:
    """Render an automaton as a Graphviz digraph.

    Accepting states are drawn as double circles (the paper's unshaded
    states); non-accepting states are shaded.  Edge labels list the cube
    values of the alphabet variables in order, ``-`` for don't-care.
    """
    mgr = aut.manager
    lines = [f"digraph {graph_name} {{", "  rankdir=LR;"]
    lines.append('  __init [shape=point, label=""];')
    for sid, name in enumerate(aut.state_names):
        if sid in aut.accepting:
            shape = "doublecircle"
            style = ""
        else:
            shape = "circle"
            style = ", style=filled, fillcolor=gray80"
        lines.append(f'  s{sid} [label="{name}", shape={shape}{style}];')
    if aut.initial is not None:
        lines.append(f"  __init -> s{aut.initial};")
    for src, bucket in enumerate(aut.edges):
        for dst, label in bucket.items():
            cubes = []
            for cube in iter_cubes(mgr, label):
                bits = []
                for name in aut.variables:
                    value = cube.get(mgr.var_index(name))
                    bits.append("-" if value is None else str(value))
                cubes.append("".join(bits))
            text = "\\n".join(cubes) if cubes else "true"
            lines.append(f'  s{src} -> s{dst} [label="{text}"];')
    lines.append("}")
    return "\n".join(lines)
