"""Deep-BDD regression tests: depth > 2000 under a 1000-frame limit.

The historical kernel recursed per BDD level, so any function deeper
than ``sys.getrecursionlimit()`` (minus the caller's stack) died with
``RecursionError`` — the ceiling that kept Table 1 away from the paper's
s444/s526-class instances.  The iterative explicit-frame core removes
it: these tests lower the recursion limit to 1000 frames and push
depth-2000+ BDDs through every operator, GC and reordering.  CI runs
this file in a dedicated recursion-stress step.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager

from repro.bdd.cube import sat_count
from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.bdd.reorder import swap_levels, transfer

DEPTH = 2200  #: > 2x the lowered recursion limit


@contextmanager
def recursion_limit(n: int):
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(n)
    try:
        yield
    finally:
        sys.setrecursionlimit(old)


def _deep_manager(n: int = DEPTH) -> tuple[BddManager, list[int]]:
    mgr = BddManager()  # auto: must select the iterative core itself
    vs = mgr.add_vars([f"x{i}" for i in range(n)])
    assert mgr.apply_core == "iterative"
    return mgr, vs


def test_deep_chain_builds_under_low_recursion_limit() -> None:
    with recursion_limit(1000):
        mgr, vs = _deep_manager()
        # Bottom-up fold: conjoining the next-higher literal onto the
        # chain is O(1) per step (top-down would rebuild the whole chain
        # each step — O(n^2) nodes — without proving anything more).
        f = TRUE
        for v in reversed(vs):
            f = mgr.apply_and(mgr.var_node(v), f)
        assert mgr.size(f) == DEPTH
        # The conjunction is satisfied by exactly the all-ones point.
        assert sat_count(mgr, f, vs) == 1
        assert mgr.eval_vars(f, {v: 1 for v in vs})
        assert not mgr.eval_vars(f, {**{v: 1 for v in vs}, vs[-1]: 0})


def test_deep_or_xor_ite_under_low_recursion_limit() -> None:
    with recursion_limit(1000):
        mgr, vs = _deep_manager()
        f = FALSE
        for v in reversed(vs):  # bottom-up: O(1) nodes per step
            f = mgr.apply_or(mgr.var_node(v), f)
        assert sat_count(mgr, f, vs) == 2**DEPTH - 1
        parity = FALSE
        for v in reversed(vs):
            parity = mgr.apply_xor(mgr.var_node(v), parity)
        assert sat_count(mgr, parity, vs) == 2 ** (DEPTH - 1)
        g = mgr.ite(f, parity, mgr.apply_not(parity))
        assert mgr.size(g) >= DEPTH


def test_deep_quantification_under_low_recursion_limit() -> None:
    with recursion_limit(1000):
        mgr, vs = _deep_manager()
        f = TRUE
        for v in reversed(vs):  # bottom-up: O(1) nodes per step
            f = mgr.apply_and(mgr.var_node(v), f)
        half = vs[: DEPTH // 2]
        g = mgr.exists(f, half)
        # ∃(first half) of the full conjunction = conjunction of the rest.
        expect = TRUE
        for v in reversed(vs[DEPTH // 2 :]):
            expect = mgr.apply_and(mgr.var_node(v), expect)
        assert g == expect
        # Fused and_exists: ∃half (f ∧ even-parity-of-half).  Even parity
        # holds at the all-ones point (len(half) is even), so the fold
        # keeps exactly f's satisfying point.
        parity = FALSE
        for v in reversed(half):
            parity = mgr.apply_xor(mgr.var_node(v), parity)
        h = mgr.and_exists(f, parity ^ 1, half)
        assert h == expect
        # The odd-parity conjunction is empty: the fused fold must
        # short-circuit to FALSE.
        assert mgr.and_exists(f, parity, half) == FALSE
        assert mgr.forall(g, vs[DEPTH // 2 :]) == FALSE


def test_deep_restrict_compose_rename_under_low_recursion_limit() -> None:
    with recursion_limit(1000):
        mgr = BddManager()
        xs = mgr.add_vars([f"x{i}" for i in range(DEPTH)])
        ys = mgr.add_vars([f"y{i}" for i in range(DEPTH)])
        assert mgr.apply_core == "iterative"
        f = TRUE
        for v in reversed(xs):  # bottom-up: O(1) nodes per step
            f = mgr.apply_and(mgr.var_node(v), f)
        # Cofactor at the very bottom variable forces a full-depth walk.
        r = mgr.restrict(f, xs[-1], 1)
        expect = TRUE
        for v in reversed(xs[:-1]):
            expect = mgr.apply_and(mgr.var_node(v), expect)
        assert r == expect
        # Compose the bottom variable with a literal of the y block.
        c = mgr.compose(f, xs[-1], mgr.var_node(ys[0]))
        assert mgr.eval_vars(
            c, {**{v: 1 for v in xs}, **{v: 1 for v in ys}}
        )
        # Order-preserving rename x block -> y block (structural path).
        renamed = mgr.rename(f, dict(zip(xs, ys)))
        expect_y = TRUE
        for v in reversed(ys):
            expect_y = mgr.apply_and(mgr.var_node(v), expect_y)
        assert renamed == expect_y


def test_deep_gc_sift_and_transfer_under_low_recursion_limit() -> None:
    with recursion_limit(1000):
        mgr, vs = _deep_manager()
        f = TRUE
        for v in reversed(vs):  # bottom-up: O(1) nodes per step
            f = mgr.apply_and(mgr.var_node(v), f)
        mgr.ref(f)
        # A sub-chain over every third variable allocates nodes disjoint
        # from f's chain (an or-with-literal would be absorbed node-free
        # through complement-edge sharing); dropping it makes garbage.
        garbage = TRUE
        for v in reversed(vs[::3]):
            garbage = mgr.apply_and(mgr.var_node(v), garbage)
        assert garbage != f
        reclaimed = mgr.collect_garbage()
        assert reclaimed > 0
        mgr.check()
        # One in-place adjacent swap on a deep manager.
        swap_levels(mgr, DEPTH // 2, [f])
        mgr.check()
        assert sat_count(mgr, f, vs) == 1
        # Cross-manager transfer of a deep function (iterative rebuild).
        dst = BddManager()
        dst.add_vars([f"x{i}" for i in range(DEPTH)])
        g = transfer(f, mgr, dst)
        assert dst.size(g) == DEPTH


def test_deep_solver_shaped_image_fold_under_low_recursion_limit() -> None:
    """A partitioned-image-shaped fold (the solver hot loop) on a
    600-latch relation: ∃cs,i . (Π ns_k ≡ cs_k) ∧ frontier."""
    n = 600  # 1200 interleaved vars + depth-600 parts: > the 1000 limit
    with recursion_limit(1000):
        mgr = BddManager()
        cs, ns = [], []
        for i in range(n):
            cs.append(mgr.add_var(f"cs{i}"))
            ns.append(mgr.add_var(f"ns{i}"))
        assert mgr.apply_core == "iterative"
        parts = [mgr.apply_iff(mgr.var_node(a), mgr.var_node(b)) for a, b in zip(ns, cs)]
        frontier = mgr.cube({v: 1 for v in cs})
        # Early quantification: each fold step retires exactly the cs
        # variable its part consumes (interned once, reused per step).
        plan = [(part, mgr.quant_set([v])) for part, v in zip(parts, cs)]
        result = frontier
        for part, retire in plan:
            result = mgr.and_exists(result, part, retire)
            assert result != FALSE
        # The image of the all-ones cs state is the all-ones ns state.
        assert result == mgr.cube({v: 1 for v in ns})
