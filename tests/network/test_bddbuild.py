"""Tests for partitioned BDD building: {T_k} and {O_j} vs simulation."""

from __future__ import annotations

import random

import pytest

from repro.bdd import BddManager
from repro.bench import circuits, figure3_network, s27
from repro.errors import NetworkError
from repro.network import build_network_bdds, declare_network_vars


def build(net):
    mgr = BddManager()
    input_vars, state_vars = declare_network_vars(mgr, net)
    return build_network_bdds(net, mgr, input_vars, state_vars)


@pytest.mark.parametrize(
    "make",
    [
        figure3_network,
        s27,
        lambda: circuits.counter(4),
        lambda: circuits.johnson(3),
        lambda: circuits.lfsr(4),
        lambda: circuits.sequence_detector("1101"),
        lambda: circuits.traffic_light(),
        lambda: circuits.token_arbiter(3),
        lambda: circuits.random_network(3, 4, 2, seed=4),
    ],
)
def test_bdd_functions_match_simulation(make) -> None:
    net = make()
    bdds = build(net)
    mgr = bdds.manager
    rng = random.Random(17)
    for _ in range(32):
        inputs = {n: rng.randint(0, 1) for n in net.inputs}
        state = {n: rng.randint(0, 1) for n in net.latches}
        outputs, next_state = net.step(state, inputs)
        env = {**inputs, **state}
        for name, node in bdds.outputs.items():
            assert mgr.eval(node, env) == bool(outputs[name]), name
        for name, node in bdds.next_state.items():
            assert mgr.eval(node, env) == bool(next_state[name]), name


def test_figure3_exact_functions() -> None:
    net = figure3_network()
    bdds = build(net)
    mgr = bdds.manager
    i = mgr.var_node(bdds.input_vars["i"])
    cs1 = mgr.var_node(bdds.state_vars["cs1"])
    cs2 = mgr.var_node(bdds.state_vars["cs2"])
    assert bdds.next_state["cs1"] == mgr.apply_and(i, cs2)
    assert bdds.next_state["cs2"] == mgr.apply_or(mgr.apply_not(i), cs1)
    assert bdds.outputs["o"] == mgr.apply_xor(cs1, cs2)


def test_init_cube_is_initial_state() -> None:
    net = circuits.johnson(3)
    bdds = build(net)
    mgr = bdds.manager
    env = {**{n: 0 for n in net.inputs}, **net.initial_state()}
    assert mgr.eval(bdds.init_cube, env)
    flipped = dict(env)
    flipped["j0"] = 1 - flipped["j0"]
    assert not mgr.eval(bdds.init_cube, flipped)


def test_state_cube_builder() -> None:
    net = figure3_network()
    bdds = build(net)
    cube = bdds.state_cube({"cs1": 1, "cs2": 0})
    mgr = bdds.manager
    assert mgr.eval(cube, {"i": 0, "cs1": 1, "cs2": 0})
    assert not mgr.eval(cube, {"i": 0, "cs1": 1, "cs2": 1})


def test_missing_vars_rejected() -> None:
    net = figure3_network()
    mgr = BddManager()
    with pytest.raises(NetworkError):
        build_network_bdds(net, mgr, {}, {})


def test_var_lists_follow_network_order() -> None:
    net = circuits.counter(3)
    bdds = build(net)
    assert len(bdds.all_input_vars()) == 1
    assert len(bdds.all_state_vars()) == 3
    names = [bdds.manager.var_name(v) for v in bdds.all_state_vars()]
    assert names == ["b0", "b1", "b2"]


def test_prefix_allows_two_networks_in_one_manager() -> None:
    mgr = BddManager()
    net1 = circuits.counter(2)
    net2 = circuits.shift_register(2)
    iv1, sv1 = declare_network_vars(mgr, net1, prefix="a_")
    iv2, sv2 = declare_network_vars(mgr, net2, prefix="b_")
    b1 = build_network_bdds(net1, mgr, iv1, sv1)
    b2 = build_network_bdds(net2, mgr, iv2, sv2)
    assert set(b1.next_state) == {"b0", "b1"}
    assert set(b2.next_state) == {"s0", "s1"}
