"""Experiment E7: BDD-engine microbenchmarks (the CUDD substitute).

Throughput of the primitives every flow is built from: apply ops,
quantification, the fused relational product, renaming, and the
monolithic-relation build that the partitioned method avoids.
"""

from __future__ import annotations

from repro.bdd import BddManager
from repro.bench import circuits
from repro.network import build_network_bdds
from repro.symb import PartitionedRelation, functions_to_relation

N = 12


def fresh_manager():
    mgr = BddManager()
    xs = mgr.add_vars([f"x{i}" for i in range(N)])
    ys = mgr.add_vars([f"y{i}" for i in range(N)])
    return mgr, xs, ys


def test_apply_and_chain(benchmark) -> None:
    def run():
        mgr, xs, ys = fresh_manager()
        f = 1
        for x, y in zip(xs, ys):
            f = mgr.apply_and(f, mgr.apply_or(mgr.var_node(x), mgr.var_node(y)))
        return f

    assert benchmark(run) > 1


def test_apply_xor_parity(benchmark) -> None:
    def run():
        mgr, xs, ys = fresh_manager()
        f = 0
        for v in xs + ys:
            f = mgr.apply_xor(f, mgr.var_node(v))
        return f

    assert benchmark(run) > 1


def test_equality_relation_and_exists(benchmark) -> None:
    # ∃x . (x ≡ y) ∧ g(x): the shape of every image step.
    def run():
        mgr, xs, ys = fresh_manager()
        eq = 1
        for x, y in zip(xs, ys):
            eq = mgr.apply_and(
                eq, mgr.apply_iff(mgr.var_node(x), mgr.var_node(y))
            )
        g = 1
        for x in xs[::2]:
            g = mgr.apply_and(g, mgr.var_node(x))
        return mgr.and_exists(eq, g, xs)

    assert benchmark(run) > 1


def test_rename_fast_path(benchmark) -> None:
    mgr = BddManager()
    pairs = []
    for i in range(N):
        cs = mgr.add_var(f"cs{i}")
        ns = mgr.add_var(f"ns{i}")
        pairs.append((cs, ns))
    f = 1
    for cs, ns in pairs[: N // 2]:
        f = mgr.apply_and(f, mgr.apply_or(mgr.var_node(ns), 0))
    rename = {ns: cs for cs, ns in pairs}

    def run():
        return mgr.rename(f, rename)

    assert benchmark(run) >= 1


def test_monolithic_relation_build(benchmark) -> None:
    """The cost the partitioned method avoids: conjoining all parts."""
    net = circuits.lfsr(8)
    mgr = BddManager()
    iv = {name: mgr.add_var(name) for name in net.inputs}
    sv, nv = {}, {}
    for name in net.latches:
        sv[name] = mgr.add_var(name)
        nv[name] = mgr.add_var(f"{name}'")
    bdds = build_network_bdds(net, mgr, iv, sv)
    rel = functions_to_relation(
        mgr, ((nv[n], bdds.next_state[n]) for n in net.latches)
    )

    def run():
        mgr.clear_caches()
        return PartitionedRelation(mgr, list(rel)).monolithic()

    assert benchmark(run) > 1


def test_iff_conformance_rebuild(benchmark) -> None:
    """Conformance-part shape: iff chains + negation, cold caches.

    This is the op mix of the solvers (``ns_k ≡ T_k`` partitions, per
    output ``¬C_j``); with complement edges the negations are O(1) and
    AND/OR share computed-table entries.
    """

    def run():
        mgr, xs, ys = fresh_manager()
        out = 0
        for _ in range(3):
            mgr.clear_caches()
            eq = 1
            for x, y in zip(xs, ys):
                eq = mgr.apply_and(
                    eq, mgr.apply_iff(mgr.var_node(x), mgr.var_node(y))
                )
            out = mgr.apply_not(eq)
        return out

    assert benchmark(run) > 1


def test_frontier_diff_loop(benchmark) -> None:
    """Reached/frontier churn (or + diff): the reachability inner loop."""

    def run():
        mgr, xs, ys = fresh_manager()
        vs = xs + ys
        reached = mgr.var_node(vs[0])
        for step in range(8 * N):
            lit = mgr.var_node(vs[1 + step % (2 * N - 1)])
            nxt = mgr.apply_or(
                reached, mgr.apply_and(lit, mgr.apply_not(reached))
            )
            frontier = mgr.apply_diff(nxt, reached)
            reached = mgr.apply_or(reached, frontier)
        return reached

    assert benchmark(run) > 1


def test_gc_bounded_fixpoint(benchmark) -> None:
    """Reachability with GC wired in: live nodes stay bounded.

    The manager uses a low collection floor so the garbage collector
    actually runs during the fixpoint; the assertion checks nodes were
    reclaimed (the seed kernel grew without bound here).
    """
    net = circuits.counter(8)

    def run():
        mgr = BddManager(gc_min_live=1_000, gc_growth=1.5)
        input_vars = {name: mgr.add_var(name) for name in net.inputs}
        cs, ns = {}, {}
        for name in net.latches:
            cs[name] = mgr.add_var(name)
            ns[name] = mgr.add_var(f"{name}'")
        bdds = build_network_bdds(net, mgr, input_vars, cs)
        from repro.symb.reach import network_reachable_states

        result = network_reachable_states(bdds, ns_vars=ns)
        assert result.state_count == 2**8
        return mgr.stats["gc_reclaimed"]

    assert benchmark(run) > 0  # collections must actually reclaim nodes
