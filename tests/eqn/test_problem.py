"""Tests for equation-problem construction."""

from __future__ import annotations

import pytest

from repro.bench import circuits, figure3_network, s27
from repro.errors import EquationError
from repro.network import latch_split
from repro.eqn import build_latch_split_problem, build_problem


class TestVariableLayout:
    def test_letter_vars_above_state_vars(self) -> None:
        # Required by the cofactor-splitting step (see problem.py docstring).
        prob = build_latch_split_problem(s27(), ["G6"])
        mgr = prob.manager
        letter_levels = [mgr.var_level(v) for v in prob.uv_vars()]
        letter_levels += [mgr.var_level(prob.i_vars[n]) for n in prob.i_names]
        letter_levels += [mgr.var_level(prob.o_vars[n]) for n in prob.o_names]
        state_levels = [mgr.var_level(v) for v in prob.all_cs_vars()]
        state_levels += [mgr.var_level(v) for v in prob.all_ns_vars()]
        state_levels += [mgr.var_level(prob.dc_var), mgr.var_level(prob.dc_ns_var)]
        assert max(letter_levels) < min(state_levels)

    def test_cs_ns_interleaved(self) -> None:
        prob = build_latch_split_problem(s27(), ["G6"])
        mgr = prob.manager
        for name, cs in prob.f_cs_vars.items():
            assert mgr.var_level(prob.f_ns_vars[name]) == mgr.var_level(cs) + 1
        for name, cs in prob.s_cs_vars.items():
            assert mgr.var_level(prob.s_ns_vars[name]) == mgr.var_level(cs) + 1

    def test_rename_map_is_ns_to_cs(self) -> None:
        prob = build_latch_split_problem(figure3_network(), ["cs1"])
        rename = prob.ns_to_cs()
        assert set(rename) == set(prob.all_ns_vars())
        assert set(rename.values()) == set(prob.all_cs_vars())

    def test_quantify_vars_are_inputs_and_cs(self) -> None:
        prob = build_latch_split_problem(figure3_network(), ["cs1"])
        quantify = set(prob.quantify_vars())
        assert set(prob.all_cs_vars()) <= quantify
        assert {prob.i_vars[n] for n in prob.i_names} <= quantify
        assert not (set(prob.all_ns_vars()) & quantify)


class TestFunctions:
    def test_s_functions_are_original_network_functions(self) -> None:
        net = figure3_network()
        prob = build_latch_split_problem(net, ["cs1"])
        mgr = prob.manager
        i = mgr.var_node(prob.i_vars["i"])
        s_cs1 = mgr.var_node(prob.s_cs_vars["cs1"])
        s_cs2 = mgr.var_node(prob.s_cs_vars["cs2"])
        assert prob.s_next["cs1"] == mgr.apply_and(i, s_cs2)
        assert prob.s_next["cs2"] == mgr.apply_or(mgr.apply_not(i), s_cs1)
        assert prob.s_o["o"] == mgr.apply_xor(s_cs1, s_cs2)

    def test_f_output_reads_v_wire_for_moved_latch(self) -> None:
        net = figure3_network()
        prob = build_latch_split_problem(net, ["cs1"])
        mgr = prob.manager
        v = mgr.var_node(prob.v_vars["v_cs1"])
        f_cs2 = mgr.var_node(prob.f_cs_vars["cs2"])
        # o = cs1 ^ cs2 with cs1 replaced by the v wire.
        assert prob.f_o["o"] == mgr.apply_xor(v, f_cs2)

    def test_u_functions_are_projections(self) -> None:
        # Default u exposes the PIs and kept latches as identity wires.
        prob = build_latch_split_problem(figure3_network(), ["cs1"])
        mgr = prob.manager
        assert prob.f_u["u_i"] == mgr.var_node(prob.i_vars["i"])
        assert prob.f_u["u_cs2"] == mgr.var_node(prob.f_cs_vars["cs2"])

    def test_init_cube_covers_both_components(self) -> None:
        net = circuits.johnson(3)
        prob = build_latch_split_problem(net, ["j1"])
        mgr = prob.manager
        support = mgr.support(prob.init_cube)
        assert support == set(prob.all_cs_vars())

    def test_conformance_parts_one_per_output(self) -> None:
        net = circuits.traffic_light()
        prob = build_latch_split_problem(net, ["p0"])
        parts = prob.conformance_parts()
        assert [name for name, _ in parts] == ["green_major", "green_minor"]

    def test_output_that_is_a_moved_latch(self) -> None:
        # A network whose primary output IS a latch signal.
        from repro.network import Network

        net = Network(name="latchout")
        net.add_input("a")
        net.add_node("n", "a")
        net.add_latch("q", "n", 0)
        net.add_node("n2", "q & a")
        net.add_latch("q2", "n2", 0)
        net.add_output("q")
        net.validate()
        split = latch_split(net, ["q"])
        prob = build_problem(split)
        mgr = prob.manager
        # F's output function for "q" is the v wire itself.
        assert prob.f_o["q"] == mgr.var_node(prob.v_vars["v_q"])


class TestBuildErrors:
    def test_letter_collision_rejected(self) -> None:
        from repro.network import Network

        net = Network(name="clash")
        net.add_input("a")
        net.add_node("f", "a")
        net.add_latch("q", "f", 0)
        net.add_latch("q2", "f", 0)
        net.add_output("a")  # output name collides with input name
        net.validate()
        split = latch_split(net, ["q"])
        with pytest.raises(EquationError):
            build_problem(split)

    def test_max_nodes_propagates(self) -> None:
        prob = build_latch_split_problem(s27(), ["G6"], max_nodes=500_000)
        assert prob.manager.max_nodes == 500_000
