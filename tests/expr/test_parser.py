"""Tests for the Boolean expression parser and AST."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.bdd import BddManager
from repro.expr import (
    And,
    Const,
    ExprParseError,
    Not,
    Or,
    Var,
    Xor,
    and_,
    or_,
    parse_expr,
    var,
    xor_,
)
from tests.strategies import DEFAULT_VARS, all_assignments, expressions


class TestParser:
    def test_single_variable(self) -> None:
        assert parse_expr("x") == Var("x")

    def test_constants(self) -> None:
        assert parse_expr("0") == Const(False)
        assert parse_expr("1") == Const(True)

    def test_precedence_not_over_and_over_xor_over_or(self) -> None:
        e = parse_expr("a | b ^ c & !d")
        assert isinstance(e, Or)
        rhs = e.args[1]
        assert isinstance(rhs, Xor)
        inner = rhs.args[1]
        assert isinstance(inner, And)
        assert isinstance(inner.args[1], Not)

    def test_parentheses_override_precedence(self) -> None:
        e1 = parse_expr("(a | b) & c")
        e2 = parse_expr("a | b & c")
        env = {"a": 1, "b": 0, "c": 0}
        assert e1.evaluate(env) != e2.evaluate(env)

    def test_alternative_operator_spellings(self) -> None:
        assert parse_expr("a * b") == parse_expr("a & b")
        assert parse_expr("a + b") == parse_expr("a | b")
        assert parse_expr("~a") == parse_expr("!a")

    def test_netlist_style_identifiers(self) -> None:
        e = parse_expr("cs[3] & G17 | n_12.q")
        assert e.variables() == {"cs[3]", "G17", "n_12.q"}

    def test_double_negation_parses(self) -> None:
        e = parse_expr("!!a")
        assert e.evaluate({"a": 1}) is True

    @pytest.mark.parametrize("bad", ["", "a &", "(a", "a b", "& a", "a | | b", "a @ b"])
    def test_malformed_inputs_rejected(self, bad: str) -> None:
        with pytest.raises(ExprParseError):
            parse_expr(bad)


class TestAst:
    def test_operator_sugar(self) -> None:
        e = (var("a") & ~var("b")) | var("c")
        assert e.evaluate({"a": 1, "b": 0, "c": 0})
        assert not e.evaluate({"a": 0, "b": 0, "c": 0})

    def test_nary_constructors(self) -> None:
        e = and_(var("a"), var("b"), var("c"))
        assert e.evaluate({"a": 1, "b": 1, "c": 1})
        assert not e.evaluate({"a": 1, "b": 0, "c": 1})
        assert or_().evaluate({}) is False
        assert and_().evaluate({}) is True
        assert xor_(var("a"), var("b"), var("c")).evaluate({"a": 1, "b": 1, "c": 1})

    def test_variables_collection(self) -> None:
        e = parse_expr("a & (b | a) ^ c")
        assert e.variables() == {"a", "b", "c"}

    def test_str_roundtrip_preserves_semantics(self) -> None:
        text = "a & !b | (c ^ d) & 1"
        e = parse_expr(text)
        e2 = parse_expr(str(e))
        for env in all_assignments(["a", "b", "c", "d"]):
            assert e.evaluate(env) == e2.evaluate(env)


@given(expressions())
@settings(max_examples=100, deadline=None)
def test_str_parse_roundtrip_property(expr) -> None:
    reparsed = parse_expr(str(expr))
    for env in all_assignments(DEFAULT_VARS):
        assert reparsed.evaluate(env) == expr.evaluate(env)


@given(expressions())
@settings(max_examples=50, deadline=None)
def test_to_bdd_requires_declared_variables(expr) -> None:
    mgr = BddManager()
    mgr.add_vars(DEFAULT_VARS)
    node = expr.to_bdd(mgr)
    support_names = {mgr.var_name(v) for v in mgr.support(node)}
    assert support_names <= expr.variables()
