"""Shared fixtures and random-automaton strategies for automata tests."""

from __future__ import annotations

import random

import pytest

from repro.bdd.manager import BddManager
from repro.automata.automaton import Automaton

ALPHABET = ("x", "y")


@pytest.fixture()
def mgr() -> BddManager:
    m = BddManager()
    m.add_vars(ALPHABET)
    return m


def random_automaton(
    seed: int,
    *,
    n_states: int = 4,
    variables: tuple[str, ...] = ALPHABET,
    edge_density: float = 0.5,
    accept_prob: float = 0.7,
    deterministic: bool = False,
) -> Automaton:
    """A seeded random automaton over ``variables``.

    When ``deterministic`` is set, each state assigns each letter to at
    most one destination (possibly none -> incomplete DFA).
    """
    rng = random.Random(seed)
    m = BddManager()
    m.add_vars(variables)
    aut = Automaton(m, variables)
    for sid in range(n_states):
        aut.add_state(f"q{sid}", accepting=rng.random() < accept_prob)
    letters = [
        {name: (code >> k) & 1 for k, name in enumerate(variables)}
        for code in range(1 << len(variables))
    ]
    for src in range(n_states):
        for letter in letters:
            if deterministic:
                if rng.random() < edge_density:
                    aut.add_letter_edge(src, rng.randrange(n_states), letter)
            else:
                for dst in range(n_states):
                    if rng.random() < edge_density / n_states * 2:
                        aut.add_letter_edge(src, dst, letter)
    return aut
