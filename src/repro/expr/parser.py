"""Recursive-descent parser for Boolean expressions.

Grammar (loosest binding first)::

    or_expr   := xor_expr ( ('|' | '+') xor_expr )*
    xor_expr  := and_expr ( '^' and_expr )*
    and_expr  := unary ( ('&' | '*') unary )*
    unary     := ('!' | '~') unary | atom
    atom      := '(' or_expr ')' | '0' | '1' | identifier

Identifiers may contain letters, digits, ``_``, ``.``, ``[``, ``]`` —
enough for netlist signal names like ``cs[3]`` or ``G17``.
"""

from __future__ import annotations

import re

from repro.errors import ReproError
from repro.expr.ast import And, Const, Expr, Not, Or, Var, Xor


class ExprParseError(ReproError):
    """Raised on malformed expression text."""


_TOKEN = re.compile(r"\s*(?:([&*|+^!~()])|([A-Za-z_][\w.\[\]]*|0|1))")


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m or m.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ExprParseError(f"cannot tokenize expression at: {remainder[:20]!r}")
        tokens.append(m.group(1) or m.group(2))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise ExprParseError("unexpected end of expression")
        self.pos += 1
        return token

    def parse_or(self) -> Expr:
        args = [self.parse_xor()]
        while self.peek() in ("|", "+"):
            self.take()
            args.append(self.parse_xor())
        return args[0] if len(args) == 1 else Or(tuple(args))

    def parse_xor(self) -> Expr:
        args = [self.parse_and()]
        while self.peek() == "^":
            self.take()
            args.append(self.parse_and())
        return args[0] if len(args) == 1 else Xor(tuple(args))

    def parse_and(self) -> Expr:
        args = [self.parse_unary()]
        while self.peek() in ("&", "*"):
            self.take()
            args.append(self.parse_unary())
        return args[0] if len(args) == 1 else And(tuple(args))

    def parse_unary(self) -> Expr:
        if self.peek() in ("!", "~"):
            self.take()
            return Not(self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        token = self.take()
        if token == "(":
            inner = self.parse_or()
            closing = self.take()
            if closing != ")":
                raise ExprParseError(f"expected ')', found {closing!r}")
            return inner
        if token == "0":
            return Const(False)
        if token == "1":
            return Const(True)
        if token in ("&", "*", "|", "+", "^", ")"):
            raise ExprParseError(f"unexpected operator {token!r}")
        return Var(token)


def parse_expr(text: str) -> Expr:
    """Parse ``text`` into an :class:`~repro.expr.ast.Expr`.

    >>> str(parse_expr("a & !b | c ^ d"))
    '(a & !b) | (c ^ d)'
    """
    parser = _Parser(_tokenize(text))
    expr = parser.parse_or()
    if parser.peek() is not None:
        raise ExprParseError(f"trailing tokens: {parser.tokens[parser.pos:]!r}")
    return expr
