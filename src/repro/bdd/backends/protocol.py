"""The formal backend contract the solver stack is written against.

Every layer above the kernel — the automata wrappers, the equation
solver, the sharded runtime, the serve executor — manipulates BDDs
through integer **edge handles** handed out by a manager object.  This
module names that contract: :class:`BddBackend` is a
:class:`typing.Protocol` listing exactly the operations those layers
call, so an alternative kernel (a ctypes adapter to a native library, a
remote manager, an instrumented wrapper) can drop in behind
:func:`repro.bdd.backends.create_manager` without the solver knowing.

The contract, in prose
----------------------

* **Edges are opaque ints.**  ``0`` is FALSE and ``1`` is TRUE; every
  other handle is backend-defined.  Callers never do arithmetic on
  handles — negation goes through :meth:`~BddBackend.apply_not`,
  structure walks through ``node_var``/``node_lo``/``node_hi``.
* **Variables are small ints** returned by ``add_var`` and stable for
  the manager's lifetime; *levels* (positions in the order) move under
  reordering, indices do not.  Names are the cross-manager identity:
  the :meth:`~BddBackend.dump_nodes` snapshot format travels by name.
* **Results are canonical**: two equivalent functions built any way
  whatsoever must compare equal as handles.  (The conformance kit in
  :mod:`repro.bdd.backends.conformance` checks this property across
  backends via the snapshot form.)
* **Lifetime**: handles stay valid until a garbage collection; edges
  pinned with :meth:`~BddBackend.ref` (or passed as GC roots, or
  variable literals) survive collections.  ``sift_now`` reorders in
  place and must keep every live handle valid.
* **Introspection may be weaker than the reference.**  ``check()``
  should verify structural invariants when the backend can, and must
  otherwise no-op with a :class:`BackendCheckWarning` — never raise for
  "not supported".  ``stats`` must return the reference key set, with
  zeros where a counter is not tracked.

:func:`missing_ops` reports which parts of the surface an object lacks;
third-party adapters can use it (and the conformance kit) as a
checklist.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class BddBackend(Protocol):
    """Structural type of a BDD manager the solver stack can run on.

    :class:`~repro.bdd.manager.BddManager` is the reference
    implementation; :class:`~repro.bdd.backends.buddy.BuddyManager`
    adapts the native BuDDy library to the same surface.
    """

    #: Registry name of the backend ("python", "buddy", ...).
    backend_name: str

    # -- variables and the order ------------------------------------- #
    def add_var(self, name: str) -> int: ...
    def add_vars(self, names: Iterable[str]) -> list[int]: ...
    def has_var(self, name: str) -> bool: ...
    def var_name(self, var: int) -> str: ...
    def var_index(self, name: str) -> int: ...
    def var_level(self, var: int) -> int: ...
    def var_order(self) -> list[str]: ...
    def set_reorder_boundaries(self, levels: Iterable[int]) -> None: ...
    def reorder_boundaries(self) -> set[int]: ...

    # -- edge handles ------------------------------------------------ #
    def var_node(self, var: int) -> int: ...
    def nvar_node(self, var: int) -> int: ...
    def node_var(self, f: int) -> int: ...
    def node_lo(self, f: int) -> int: ...
    def node_hi(self, f: int) -> int: ...

    # -- operators --------------------------------------------------- #
    def apply_not(self, f: int) -> int: ...
    def apply_and(self, f: int, g: int) -> int: ...
    def apply_or(self, f: int, g: int) -> int: ...
    def apply_xor(self, f: int, g: int) -> int: ...
    def apply_iff(self, f: int, g: int) -> int: ...
    def apply_implies(self, f: int, g: int) -> int: ...
    def apply_diff(self, f: int, g: int) -> int: ...
    def ite(self, f: int, g: int, h: int) -> int: ...

    # -- quantification and substitution ----------------------------- #
    def quant_set(self, variables: Iterable[int]) -> Any: ...
    def exists(self, f: int, variables: Any) -> int: ...
    def forall(self, f: int, variables: Any) -> int: ...
    def and_exists(self, f: int, g: int, variables: Any) -> int: ...
    def restrict(self, f: int, var: int, value: bool | int) -> int: ...
    def cofactor_cube(self, f: int, assignment: Mapping[int, bool | int]) -> int: ...
    def constrain(self, f: int, c: int) -> int: ...
    def compose(self, f: int, var: int, g: int) -> int: ...
    def vector_compose(self, f: int, substitution: Mapping[int, int]) -> int: ...
    def rename(self, f: int, var_map: Mapping[int, int]) -> int: ...

    # -- lifetime ---------------------------------------------------- #
    def ref(self, f: int) -> int: ...
    def deref(self, f: int) -> None: ...
    def protect(self, *roots: int) -> Any: ...
    def should_collect(self) -> bool: ...
    def collect_garbage(self, roots: Iterable[int] = ()) -> int: ...
    def maybe_collect_garbage(self, roots: Iterable[int] = ()) -> int: ...

    # -- reordering -------------------------------------------------- #
    def sift_now(self, roots: Iterable[int] = (), *, max_growth: float = 1.2,
                 max_vars: int | None = None) -> Any: ...

    # -- inspection -------------------------------------------------- #
    def support(self, f: int) -> set[int]: ...
    def size(self, f: int) -> int: ...
    def size_many(self, roots: Iterable[int]) -> int: ...
    def eval(self, f: int, assignment: Mapping[str, bool | int]) -> bool: ...
    def cube(self, assignment: Mapping[int, bool | int]) -> int: ...
    def cache_hit_rate(self) -> float: ...
    def clear_caches(self) -> None: ...
    def check(self) -> None: ...

    @property
    def num_vars(self) -> int: ...
    @property
    def stats(self) -> dict[str, object]: ...
    @property
    def max_nodes(self) -> int | None: ...

    # -- transfer ---------------------------------------------------- #
    def dump_nodes(self, roots: Sequence[int]) -> dict: ...
    def load_nodes(self, data: Mapping) -> list[int]: ...


#: Every member of the protocol surface, for :func:`missing_ops`.
PROTOCOL_SURFACE: tuple[str, ...] = tuple(
    sorted(
        name
        for name in vars(BddBackend)
        if not name.startswith("_") and name != "backend_name"
    )
) + ("backend_name",)


def missing_ops(obj: object) -> list[str]:
    """Names of the :class:`BddBackend` surface ``obj`` does not provide.

    Empty for a conforming backend.  Third-party adapters can assert
    ``missing_ops(MyManager()) == []`` as a first smoke test before
    running the full conformance kit.
    """
    return [name for name in PROTOCOL_SURFACE if not hasattr(obj, name)]


def generic_load_nodes(mgr: "BddBackend", data: Mapping) -> list[int]:
    """Backend-agnostic :func:`~repro.bdd.io.load_nodes`.

    Rebuilds a ``repro-bdd-nodes/1`` snapshot using only protocol
    operations (``var_index``/``add_var``/``var_node``/``ite``/
    ``apply_not``), so any backend can consume snapshots produced by any
    other.  The reference manager keeps its faster complement-edge
    loader in :mod:`repro.bdd.io`; adapters without complement edges use
    this one (negation goes through ``apply_not`` instead of bit flips).
    """
    from repro.bdd.io import NODES_FORMAT
    from repro.errors import BddError

    if data.get("format") != NODES_FORMAT:
        raise BddError(f"unknown BDD snapshot format: {data.get('format')!r}")
    vars_local: list[int] = []
    for name in data["names"]:
        if mgr.has_var(name):
            vars_local.append(mgr.var_index(name))
        else:
            vars_local.append(mgr.add_var(name))
    built: list[int] = []

    def unpack(ref: int) -> int:
        if ref < 2:
            return ref
        f = built[(ref >> 1) - 1]
        return mgr.apply_not(f) if ref & 1 else f

    for vid, lo_ref, hi_ref in zip(data["var"], data["lo"], data["hi"]):
        built.append(
            mgr.ite(mgr.var_node(vars_local[vid]), unpack(hi_ref), unpack(lo_ref))
        )
    return [unpack(r) for r in data["roots"]]
