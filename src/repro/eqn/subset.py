"""The modified subset construction (Section 3.2).

This driver realises the paper's key algorithmic point: given the
partitioned representations, *all* steps of Algorithm 1 — completion,
complementation, product, hiding — "are essentially embedded into a
modified determinization procedure".  The driver enumerates subset states
of the product ``F × complement(S)`` explicitly (each subset is a
characteristic-function BDD ψ over the product state variables) and asks
a :class:`TransitionOracle` for the outgoing structure of each subset:

* conforming ``(u,v)`` classes with their successor subsets (the
  cofactor classes of ``P'_ψ``),
* the completion condition routed to the accepting ``DCA`` state
  ("which are not contained in Q_ψ" and have no successor),
* non-conforming classes are either trimmed on the fly (``DCN``
  shortcut, footnote 9) or routed to explicit non-accepting subsets when
  the oracle runs with trimming disabled (the E6 ablation).

The partitioned and monolithic flows differ *only* in how their oracle
computes ``P_ψ`` and ``Q_ψ`` — which is exactly the paper's experimental
comparison.

Frontier batching
-----------------

The driver is split into a **frontier scheduler** and a **batched oracle
protocol**.  The scheduler (:class:`FrontierScheduler`) owns the pending
subset states and slices them into batches under a pluggable ordering
strategy (``dfs`` — the classic worklist, ``bfs`` — level order,
``size`` — smallest-ψ-first); deduplication against the seen-ψ table
happens before a state ever enters the frontier, so a batch never
contains the same ψ twice.  Oracles that implement
``expand_batch(psis) -> [(edges, dca), ...]`` receive whole batches —
the partitioned oracle uses this to pipeline all of a batch's image
computations across its shard pool and to share completion-condition
work between sibling subsets; oracles exposing only the single-item
``expand`` are driven one ψ at a time regardless of ``batch_size``
(batching an oracle that cannot pin intermediate results across sibling
expansions would be unsound under opportunistic GC).
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Protocol

from repro.bdd.io import dump_nodes, load_nodes
from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.errors import EquationError, SolveCancelled
from repro.automata.automaton import Automaton
from repro.eqn.problem import EquationProblem
from repro.obs.trace import span as obs_span
from repro.util.limits import ResourceLimit

#: Frontier orderings accepted by :class:`FrontierScheduler`.
STRATEGIES = ("dfs", "bfs", "size")

#: Version tag of the subset-construction checkpoint snapshot format.
CHECKPOINT_FORMAT = "repro-subset-ckpt/1"


@dataclass
class SubsetEdge:
    """One outgoing (u,v)-class of a subset state."""

    cond: int  # BDD over the (u, v) letter variables
    successor: int  # ψ' BDD over the product cs variables
    accepting: bool = True  # False only in no-trim mode (DC1-containing)


class TransitionOracle(Protocol):
    """What the subset driver needs from a solver flow."""

    def initial(self) -> int:
        """Initial subset ψ0 (a cube over the product state variables)."""

    def is_accepting(self, psi: int) -> bool:
        """Whether a subset state is accepting in the final solution."""

    def expand(self, psi: int) -> tuple[list[SubsetEdge], int]:
        """Outgoing edges of ψ plus the DCA completion condition."""

    def expand_batch(
        self, psis: list[int]
    ) -> list[tuple[list[SubsetEdge], int]]:
        """Expand a whole frontier batch; one ``expand`` result per ψ.

        Optional (checked with ``getattr``).  Implementations must keep
        every already-produced edge label and successor alive across the
        remaining expansions of the batch (the driver pins them only
        after the batch returns); both solver oracles do this.
        """

    def live_roots(self) -> list[int]:
        """BDDs the oracle needs alive across garbage collections.

        Optional (checked with ``getattr``); oracles without it simply
        disable opportunistic garbage collection in the driver.
        """

    def run_stats(self) -> dict:
        """Oracle-side instrumentation merged into ``SubsetStats.extra``.

        Optional (checked with ``getattr``); the partitioned oracle
        reports completion-memo hit rates and, when sharded, ψ-transfer
        and pool command counters.
        """


class FrontierScheduler:
    """Pending subset states, ordered by a pluggable strategy.

    The scheduler only *orders* the frontier; deduplication is the
    caller's job (the driver's seen-ψ table guards ``push``), which
    keeps every ψ in the frontier unique — a batch can never contain
    duplicates.

    Strategies
    ----------
    ``dfs``
        Last-in-first-out — with ``batch_size=1`` this is exactly the
        classic worklist order of the unbatched driver.
    ``bfs``
        First-in-first-out level order; batches then group sibling
        subsets discovered by the same expansions, which is what makes
        the completion-condition memo hit across a batch.
    ``size``
        Smallest ψ (by BDD node count, measured when the state enters
        the frontier) first: cheap subsets expand early, which keeps
        the manager small while the seen-table fills with the easy
        states.
    """

    def __init__(self, mgr: BddManager, strategy: str = "dfs") -> None:
        if strategy not in STRATEGIES:
            raise EquationError(
                f"unknown frontier strategy {strategy!r}; choose from {STRATEGIES}"
            )
        self.mgr = mgr
        self.strategy = strategy
        self._pending: deque[int] = deque()
        # size strategy: a heap of (push-time size, seq, ψ).  Sizing at
        # push keeps take() at O(log n) per ψ instead of re-walking
        # every pending DAG per batch; ties break by insertion order.
        self._heap: list[tuple[int, int, int]] = []
        self._seq = 0

    def __len__(self) -> int:
        if self.strategy == "size":
            return len(self._heap)
        return len(self._pending)

    def push(self, psi: int) -> None:
        """Add a (new, deduplicated) subset state to the frontier."""
        if self.strategy == "size":
            heappush(self._heap, (self.mgr.size(psi), self._seq, psi))
            self._seq += 1
            return
        self._pending.append(psi)

    def take(self, batch_size: int) -> list[int]:
        """Remove and return the next batch (at most ``batch_size`` ψ)."""
        if self.strategy == "size":
            k = min(max(1, batch_size), len(self._heap))
            return [heappop(self._heap)[2] for _ in range(k)]
        k = min(max(1, batch_size), len(self._pending))
        if self.strategy == "bfs":
            return [self._pending.popleft() for _ in range(k)]
        return [self._pending.pop() for _ in range(k)]

    def pending(self) -> list[int]:
        """The pending ψ in push order (checkpointing, no removal).

        Re-pushing the returned list into a fresh scheduler of the same
        strategy reproduces the frontier exactly: ``dfs``/``bfs`` keep
        insertion order in the deque, and ``size`` re-derives its keys
        at push time (node counts are stable across a dump/load
        round-trip, so the heap order survives too).
        """
        if self.strategy == "size":
            return [psi for _, _, psi in sorted(self._heap, key=lambda t: t[1])]
        return list(self._pending)


def expand_batch_pinned(
    mgr: BddManager,
    psis: list[int],
    expand_one,
) -> list[tuple[list[SubsetEdge], int]]:
    """Map ``expand_one`` over a batch, pinning sibling results.

    The shared in-process half of the oracles' ``expand_batch``
    contract: a later expansion's image folds may collect garbage, and
    the driver only pins what it stores *after* the whole batch
    returns, so every already-produced edge label, successor and DCA
    condition is ref'd while the rest of the batch runs (and deref'd
    before returning — nothing between the return and the driver's own
    pinning can trigger a collection).
    """
    out: list[tuple[list[SubsetEdge], int]] = []
    held: list[int] = []
    try:
        for psi in psis:
            edges, dca = expand_one(psi)
            out.append((edges, dca))
            if len(psis) > 1:
                for edge in edges:
                    held.append(mgr.ref(edge.cond))
                    held.append(mgr.ref(edge.successor))
                held.append(mgr.ref(dca))
    finally:
        for f in held:
            mgr.deref(f)
    return out


@dataclass
class SubsetStats:
    """Instrumentation of one subset construction run."""

    subsets: int = 0
    edges: int = 0
    dca_edges: int = 0
    batches: int = 0
    peak_nodes: int = 0
    extra: dict = field(default_factory=dict)


def _construction_snapshot(
    mgr: BddManager,
    aut: Automaton,
    ids: dict[int, int],
    frontier: FrontierScheduler,
    stats: SubsetStats,
    dca_id: int | None,
) -> dict:
    """Serialise the in-flight construction into one resumable dict.

    Everything the driver owns goes into the snapshot — discovered
    subsets (with their ψ), automaton edges, the pending frontier in
    push order, and the driver-side counters.  All BDDs travel as a
    single :func:`~repro.bdd.io.dump_nodes` blob so shared structure is
    stored once; references into the blob are root indices.  The
    oracle's completion memo is deliberately *not* captured: it is a
    pure cache and repopulates lazily after a resume.
    """
    psi_by_sid = {sid: psi for psi, sid in ids.items()}
    roots: list[int] = []
    root_of_psi: dict[int, int] = {}
    states: list[list] = []
    for sid in range(aut.num_states):
        psi = psi_by_sid.get(sid)
        if psi is None:
            states.append([aut.state_names[sid], sid in aut.accepting, None])
        else:
            root_of_psi[psi] = len(roots)
            states.append(
                [aut.state_names[sid], sid in aut.accepting, len(roots)]
            )
            roots.append(psi)
    edges: list[list[int]] = []
    for src, bucket in enumerate(aut.edges):
        for dst, label in bucket.items():
            edges.append([src, dst, len(roots)])
            roots.append(label)
    return {
        "format": CHECKPOINT_FORMAT,
        "strategy": frontier.strategy,
        "variables": list(aut.variables),
        "states": states,
        "initial": aut.initial,
        "dca_id": dca_id,
        "edges": edges,
        "frontier": [root_of_psi[psi] for psi in frontier.pending()],
        "stats": {
            "subsets": stats.subsets,
            "edges": stats.edges,
            "dca_edges": stats.dca_edges,
            "batches": stats.batches,
            "peak_nodes": stats.peak_nodes,
        },
        "nodes": dump_nodes(mgr, roots),
    }


def _restore_construction(
    mgr: BddManager,
    aut: Automaton,
    ids: dict[int, int],
    frontier: FrontierScheduler,
    stats: SubsetStats,
    snapshot: dict,
    *,
    gc_enabled: bool,
) -> int | None:
    """Rebuild driver state from a :func:`_construction_snapshot` dict.

    Mutates the (freshly constructed, empty) ``aut``/``ids``/``frontier``
    /``stats`` in place and returns the restored ``dca_id``.  GC pins
    mirror what the live construction would hold at the same point:
    every ψ and every stored edge label.
    """
    if snapshot.get("format") != CHECKPOINT_FORMAT:
        raise EquationError(
            f"unsupported checkpoint format {snapshot.get('format')!r} "
            f"(expected {CHECKPOINT_FORMAT!r})"
        )
    if list(snapshot["variables"]) != list(aut.variables):
        raise EquationError(
            "checkpoint alphabet does not match this problem: "
            f"{snapshot['variables']} != {list(aut.variables)}"
        )
    if snapshot["strategy"] != frontier.strategy:
        raise EquationError(
            f"checkpoint was taken with frontier strategy "
            f"{snapshot['strategy']!r}; resume with the same strategy"
        )
    roots = load_nodes(mgr, snapshot["nodes"])
    for name, accepting, ref in snapshot["states"]:
        sid = aut.add_state(name, accepting=accepting)
        if ref is not None:
            psi = roots[ref]
            ids[psi] = sid
            if gc_enabled:
                mgr.ref(psi)
    aut.initial = snapshot["initial"]
    for src, dst, ref in snapshot["edges"]:
        label = roots[ref]
        aut.add_edge(src, dst, label)
        if gc_enabled and label != FALSE:
            mgr.ref(aut.edges[src][dst])
    for ref in snapshot["frontier"]:
        frontier.push(roots[ref])
    saved = snapshot["stats"]
    stats.subsets = saved["subsets"]
    stats.edges = saved["edges"]
    stats.dca_edges = saved["dca_edges"]
    stats.batches = saved["batches"]
    stats.peak_nodes = saved["peak_nodes"]
    return snapshot["dca_id"]


def subset_construct(
    oracle: TransitionOracle,
    problem: EquationProblem,
    *,
    limit: ResourceLimit | None = None,
    strategy: str = "dfs",
    batch_size: int = 1,
    progress: Callable[[dict], None] | None = None,
    cancel: Callable[[], bool] | None = None,
    checkpoint: Callable[[dict], None] | None = None,
    checkpoint_every: int = 0,
    checkpoint_seconds: float = 0.0,
    resume: dict | None = None,
    residency: "object | None" = None,
) -> tuple[Automaton, SubsetStats]:
    """Run the modified subset construction and build the solution.

    Returns the most general prefix-closed solution automaton ``X`` over
    the ``(u, v)`` alphabet (with trimming, every subset state is
    accepting and ``DCA`` is the accepting completion state) plus run
    statistics.  With a no-trim oracle, non-accepting subset states are
    produced and must be removed by ``prefix_close`` afterwards.

    ``strategy`` picks the frontier ordering (see
    :class:`FrontierScheduler`) and ``batch_size`` how many subset
    states are handed to the oracle per ``expand_batch`` call.  The
    defaults (``"dfs"``, ``1``) reproduce the classic one-ψ-at-a-time
    worklist bit for bit.  Whatever the settings, the *set* of subsets,
    edges and the extracted CSF are identical — only discovery order
    (and therefore state numbering) can differ between batch sizes.

    The wall-clock budget is checked once per batch (a batch is the
    oracle's atomic unit of work), so with ``batch_size > 1`` a
    ``max_seconds`` abort can overshoot by up to one batch of
    expansions — the price of pipelining; budget-critical CNC runs
    should keep the default batch size.

    Serving hooks (all optional, all observed at batch boundaries —
    the only points where no oracle pipeline is in flight and the
    manager holds no unpinned intermediates):

    ``progress``
        Called after every batch with a flat event dict (counters from
        :class:`SubsetStats`, frontier length, live/peak node counts
        and, when the oracle exposes them, memo and GC/reorder stats).
    ``cancel``
        Polled before every batch; returning true raises
        :class:`~repro.errors.SolveCancelled`, which unwinds through
        the caller's ``finally`` blocks so oracle and pool teardown
        always run.
    ``checkpoint`` / ``checkpoint_every`` / ``checkpoint_seconds``
        Every ``checkpoint_every`` batches *or* every
        ``checkpoint_seconds`` of wall clock — whichever fires first,
        each on its own cadence — while the frontier is non-empty,
        ``checkpoint`` receives a resumable snapshot dict
        (:data:`CHECKPOINT_FORMAT`) capturing subsets, edges, frontier
        and counters with all BDDs in one packed
        :func:`~repro.bdd.io.dump_nodes` blob.  Either cadence may be
        zero (disabled); the wall clock restarts after every snapshot,
        however it was triggered.
    ``resume``
        A snapshot from a previous run: the construction restarts from
        its frontier instead of ψ0.  The snapshot must come from the
        same problem and frontier strategy; the restored initial ψ is
        checked against ``oracle.initial()``.

    ``residency`` is an optional
    :class:`~repro.eqn.residency.ResidencyManager`: at every batch
    boundary, cold *expanded* subset states beyond its node budget are
    spilled to disk and their pins dropped; successor candidates then
    deduplicate against the spilled states by content key, so the
    construction (and its KISS output) is byte-identical to the
    unbounded run — only peak memory changes.  Requires a GC-aware
    oracle (one exposing ``live_roots``); checkpoints transparently
    reload every spilled state first, so snapshots stay complete.
    """
    mgr = problem.manager
    budget = limit if limit is not None else ResourceLimit.unlimited()
    if batch_size < 1:
        raise EquationError(f"batch_size must be >= 1, got {batch_size}")
    aut = Automaton(mgr, tuple(problem.uv_names()))
    stats = SubsetStats()

    psi0 = oracle.initial()
    if psi0 == FALSE:
        raise EquationError("initial subset state is empty")
    ids: dict[int, int] = {}
    frontier = FrontierScheduler(mgr, strategy)

    # Everything that must survive a kernel garbage collection is pinned
    # as it is created: the oracle's relation parts/plans, every subset ψ
    # (the keys of ``ids``) and every edge-label BDD stored in the growing
    # automaton.  With those roots held, the driver can let the manager
    # reclaim the per-expansion intermediates (P_ψ, Q_ψ, cofactor churn)
    # whenever its growth trigger arms — long runs stay bounded.  The
    # pins also license GC-triggered dynamic reordering (``--reorder
    # auto``): a sift fired after an unprofitable sweep rewrites the
    # state-variable levels in place, so ψ keys, edge labels and plans
    # all keep their edges; the letter block is fenced off by the
    # problem's reorder boundary, preserving the split_by_vars order
    # requirement mid-run.
    roots_fn = getattr(oracle, "live_roots", None)
    gc_enabled = roots_fn is not None
    if gc_enabled:
        for root in roots_fn():
            mgr.ref(root)
    if residency is not None and not gc_enabled:
        raise EquationError(
            "a resident budget needs a GC-aware oracle (one exposing "
            "live_roots): without pins, eviction cannot free anything"
        )

    def subset_id(psi: int, accepting: bool) -> int:
        sid = ids.get(psi)
        if sid is not None:
            if residency is not None:
                residency.touch(psi)
            return sid
        if residency is not None:
            # The candidate may equal a state that was spilled out of
            # ``ids``; dedup by content key keeps the construction
            # identical to the unbounded run.
            sid = residency.lookup(psi)
            if sid is not None:
                return sid
        # Named by discovery count (not ``len(ids)``, which shrinks under
        # residency eviction — the numbering must match the unbounded run).
        sid = aut.add_state(f"q{stats.subsets}", accepting=accepting)
        ids[psi] = sid
        frontier.push(psi)
        stats.subsets += 1
        if gc_enabled:
            mgr.ref(psi)
        if residency is not None:
            residency.admit(psi, sid)
        return sid

    dca_id: int | None = None
    if resume is None:
        subset_id(psi0, oracle.is_accepting(psi0))
    else:
        dca_id = _restore_construction(
            mgr, aut, ids, frontier, stats, resume, gc_enabled=gc_enabled
        )
        if ids.get(psi0) != aut.initial:
            raise EquationError(
                "checkpoint does not match this problem: restored initial "
                "subset differs from the oracle's ψ0"
            )
        if residency is not None:
            pending = set(frontier.pending())
            for psi, sid in ids.items():
                residency.admit(psi, sid)
                if psi not in pending:
                    residency.mark_expanded(psi)
    expand_batch = getattr(oracle, "expand_batch", None)
    # Oracles without the batch protocol cannot pin intermediates across
    # sibling expansions, so they are driven one ψ at a time.
    effective_batch = batch_size if expand_batch is not None else 1
    last_checkpoint = time.monotonic()
    while frontier:
        if cancel is not None and cancel():
            raise SolveCancelled("solve cancelled at batch boundary")
        budget.check_time()
        with obs_span("frontier_batch", batch=stats.batches + 1) as batch_span:
            batch = frontier.take(effective_batch)
            if expand_batch is not None:
                results = expand_batch(batch)
            else:
                results = [oracle.expand(psi) for psi in batch]
            stats.batches += 1
            for psi, (edges, dca_cond) in zip(batch, results):
                src = ids[psi]
                for edge in edges:
                    dst = subset_id(edge.successor, edge.accepting)
                    aut.add_edge(src, dst, edge.cond)
                    if gc_enabled and edge.cond != FALSE:
                        # Pin the *stored* label: add_edge merges parallel
                        # edges with OR, so the bucket value is what must
                        # stay alive.
                        mgr.ref(aut.edges[src][dst])
                    stats.edges += 1
                if dca_cond != FALSE:
                    if dca_id is None:
                        dca_id = aut.add_state("DCA", accepting=True)
                        aut.add_edge(dca_id, dca_id, TRUE)
                    aut.add_edge(src, dca_id, dca_cond)
                    if gc_enabled:
                        mgr.ref(aut.edges[src][dca_id])
                    stats.dca_edges += 1
            stats.peak_nodes = max(stats.peak_nodes, len(mgr))
            evicted: list[int] = []
            if residency is not None:
                for psi in batch:
                    residency.mark_expanded(psi)
                evicted = residency.enforce()
                for psi in evicted:
                    del ids[psi]
                    mgr.deref(psi)
            if evicted:
                # Eviction only pays off if the nodes actually go away;
                # the adaptive policy's growth floors may never arm at
                # budget-sized scales, so collect explicitly.
                mgr.collect_garbage()
            elif gc_enabled:
                mgr.maybe_collect_garbage()
            batch_span.set(
                size=len(batch),
                subsets=stats.subsets,
                frontier=len(frontier),
            )
        if progress is not None:
            progress(_progress_event(mgr, oracle, stats, frontier))
        ckpt_due = checkpoint is not None and frontier and (
            (checkpoint_every > 0 and stats.batches % checkpoint_every == 0)
            or (
                checkpoint_seconds > 0
                and time.monotonic() - last_checkpoint >= checkpoint_seconds
            )
        )
        if ckpt_due:
            with obs_span("checkpoint_write", batch=stats.batches):
                if residency is not None:
                    # A snapshot must carry every subset state: reload
                    # the spilled ones (they come back evictable, so the
                    # next batch boundary re-bounds the working set).
                    for psi, sid in residency.restore_all():
                        ids[psi] = sid
                        mgr.ref(psi)
                        residency.admit(psi, sid)
                        residency.mark_expanded(psi)
                checkpoint(
                    _construction_snapshot(
                        mgr, aut, ids, frontier, stats, dca_id
                    )
                )
            last_checkpoint = time.monotonic()
    run_stats = getattr(oracle, "run_stats", None)
    if run_stats is not None:
        stats.extra.update(run_stats())
    if residency is not None:
        for key, value in residency.stats().items():
            if key in ("psi_spills", "psi_reloads", "resident_evictions"):
                # Shard workers report the same counters through the
                # oracle; the totals are coordinator + workers.
                stats.extra[key] = stats.extra.get(key, 0) + value
            else:
                stats.extra[key] = value
    return aut, stats


def _progress_event(
    mgr: BddManager,
    oracle: TransitionOracle,
    stats: SubsetStats,
    frontier: FrontierScheduler,
) -> dict:
    """One per-batch progress event (the serve stream's payload)."""
    event = {
        "batches": stats.batches,
        "subsets": stats.subsets,
        "edges": stats.edges,
        "dca_edges": stats.dca_edges,
        "frontier": len(frontier),
        "live_nodes": len(mgr),
        "peak_nodes": stats.peak_nodes,
    }
    for key in ("memo_hits", "memo_misses"):
        value = getattr(oracle, key, None)
        if value is not None:
            event[key] = value
    mgr_stats = mgr.stats
    for key in ("gc_runs", "reorder_runs"):
        if key in mgr_stats:
            event[key] = mgr_stats[key]
    return event
