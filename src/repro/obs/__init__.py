"""Observability layer: span tracing, metrics, structured logging.

Three small stdlib-only modules that make the runtime's behaviour
visible without changing it:

:mod:`repro.obs.trace`
    Context-manager spans with a thread-local stack, exported as Chrome
    trace-event JSON (``repro solve --trace out.json``; open the file in
    ``chrome://tracing`` or Perfetto).  Shard workers stamp per-command
    timing records into their replies and the pool merges them into the
    coordinator trace as pid-tagged per-worker tracks, so work stealing
    and the speculative cluster-vs-split race are visible end-to-end.

:mod:`repro.obs.metrics`
    Counters, gauges and histograms federating the runtime's previously
    fragmented statistics (GC reclaim ratios, reorder swaps, memo hits,
    psi serializations, steal counts, cache hits), rendered in
    Prometheus text exposition format — ``GET /metrics`` on the job
    server and a per-job ``metrics`` snapshot in job status.

:mod:`repro.obs.log`
    Structured logging on top of the stdlib :mod:`logging` module, with
    an optional JSON-lines formatter and a ``--log-level`` CLI flag,
    replacing the previously silent failure paths in worker and
    executor error handling.

Tracing is off unless a :class:`~repro.obs.trace.Tracer` is installed;
the disabled path is a module-global ``None`` check returning a shared
null context manager, so instrumented code pays no measurable cost.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, current_tracer, install_tracer, span

__all__ = [
    "MetricsRegistry",
    "Tracer",
    "current_tracer",
    "install_tracer",
    "span",
]
