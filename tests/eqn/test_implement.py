"""Tests for sub-solution extraction (CSF -> FSM -> circuit).

This is the "outstanding problem for future research" of the paper's
conclusion, implemented as a baseline: every extracted implementation
must be a deterministic, u-complete FSM contained in the CSF, and its
recomposition with F must stay within the specification.
"""

from __future__ import annotations

import random

import pytest

from repro.bench import circuits, figure3_network, s27
from repro.errors import EquationError
from repro.automata import (
    contained_in,
    empty_automaton,
    equivalent,
    network_to_automaton,
)
from repro.eqn import build_latch_split_problem, solve_equation
from repro.eqn.implement import (
    extract_fsm,
    fsm_to_network,
    implement_csf,
    recompose_with_implementation,
)

CASES = [
    (lambda: figure3_network(), ["cs1"]),
    (lambda: s27(), ["G6"]),
    (lambda: circuits.counter(4), ["b1", "b2"]),
    (lambda: circuits.johnson(4), ["j1"]),
    (lambda: circuits.traffic_light(), ["p0"]),
    (lambda: circuits.sequence_detector("1011"), ["h0", "h2"]),
]


def solve(make, x):
    problem = build_latch_split_problem(make(), x)
    return problem, solve_equation(problem, method="partitioned")


class TestExtractFsm:
    @pytest.mark.parametrize("make,x", CASES)
    def test_fsm_is_deterministic_and_u_complete(self, make, x) -> None:
        problem, result = solve(make, x)
        fsm = extract_fsm(result.csf, problem.u_names, problem.v_names)
        assert fsm.is_deterministic()
        # Complete with respect to u: every u has exactly one (v, dst).
        mgr = fsm.manager
        v_vars = [mgr.var_index(n) for n in problem.v_names]
        for sid in range(fsm.num_states):
            u_defined = mgr.exists(fsm.defined_cond(sid), v_vars)
            assert u_defined == 1

    @pytest.mark.parametrize("make,x", CASES)
    def test_fsm_is_contained_in_csf(self, make, x) -> None:
        problem, result = solve(make, x)
        fsm = extract_fsm(result.csf, problem.u_names, problem.v_names)
        assert contained_in(fsm, result.csf).holds

    def test_extraction_is_deterministic_across_runs(self) -> None:
        problem, result = solve(lambda: s27(), ["G6"])
        fsm1 = extract_fsm(result.csf, problem.u_names, problem.v_names)
        fsm2 = extract_fsm(result.csf, problem.u_names, problem.v_names)
        assert equivalent(fsm1, fsm2)
        assert fsm1.num_states == fsm2.num_states

    def test_empty_csf_rejected(self) -> None:
        problem, result = solve(lambda: figure3_network(), ["cs1"])
        empty = empty_automaton(problem.manager, tuple(problem.uv_names()))
        with pytest.raises(EquationError):
            extract_fsm(empty, problem.u_names, problem.v_names)


class TestFsmToNetwork:
    @pytest.mark.parametrize("make,x", CASES)
    def test_network_simulates_the_fsm(self, make, x) -> None:
        problem, result = solve(make, x)
        impl = implement_csf(result.csf, problem.u_names, problem.v_names)
        net = impl.network
        net.validate()
        assert net.inputs == list(problem.u_names)
        assert net.outputs == list(problem.v_names)
        # Walk the FSM and the network side by side on random u stimuli.
        mgr = impl.fsm.manager
        rng = random.Random(11)
        state = net.initial_state()
        fsm_state = impl.fsm.initial
        for _ in range(30):
            u_letter = {n: rng.randint(0, 1) for n in problem.u_names}
            outputs, state = net.step(state, u_letter)
            # Find the FSM's move for this u.
            moved = False
            for dst, label in impl.fsm.edges[fsm_state].items():
                cof = mgr.cofactor_cube(
                    label, {mgr.var_index(n): v for n, v in u_letter.items()}
                )
                if cof != 0:
                    from repro.bdd import pick_minterm

                    v_vars = [mgr.var_index(n) for n in problem.v_names]
                    v_choice = pick_minterm(mgr, cof, v_vars)
                    for n in problem.v_names:
                        assert outputs[n] == v_choice[mgr.var_index(n)], n
                    fsm_state = dst
                    moved = True
                    break
            assert moved

    def test_single_state_fsm_encodes(self) -> None:
        # DCA-only CSF (full freedom): one state, one latch, constant v.
        problem, result = solve(lambda: figure3_network(), ["cs1"])
        from repro.bdd.manager import TRUE
        from repro.automata import Automaton

        aut = Automaton(problem.manager, tuple(problem.uv_names()))
        sid = aut.add_state("only", accepting=True)
        aut.add_edge(sid, sid, TRUE)
        net = fsm_to_network(aut, problem.u_names, problem.v_names)
        assert net.num_latches == 1
        outs, _ = net.step(net.initial_state(), {n: 0 for n in problem.u_names})
        assert set(outs) == set(problem.v_names)


class TestEndToEndResynthesis:
    @pytest.mark.parametrize("make,x", CASES)
    def test_recomposed_circuit_refines_the_spec(self, make, x) -> None:
        problem, result = solve(make, x)
        impl = implement_csf(result.csf, problem.u_names, problem.v_names)
        merged = recompose_with_implementation(problem, impl)
        merged.validate()
        # Language check: the resynthesised circuit's behaviour over the
        # original (i, o) alphabet is contained in the specification.
        from repro.bdd import BddManager
        from repro.network.transform import v_wire

        mgr = BddManager()
        spec = problem.split.original
        rename_out = {
            v_wire(o): o for o in spec.outputs if o in problem.split.x_latches
        }
        merged_view = merged.rename_signals(rename_out) if rename_out else merged
        impl_aut = network_to_automaton(merged_view, mgr)
        spec_aut = network_to_automaton(spec, mgr)
        assert contained_in(impl_aut, spec_aut).holds

    def test_implementation_states_not_larger_than_csf(self) -> None:
        problem, result = solve(lambda: s27(), ["G6"])
        impl = implement_csf(result.csf, problem.u_names, problem.v_names)
        assert impl.state_count <= result.csf_states

    def test_minimise_flag(self) -> None:
        problem, result = solve(lambda: circuits.counter(4), ["b1", "b2"])
        raw = implement_csf(
            result.csf, problem.u_names, problem.v_names, minimise=False
        )
        small = implement_csf(
            result.csf, problem.u_names, problem.v_names, minimise=True
        )
        assert small.state_count <= raw.state_count
        assert equivalent(raw.fsm, small.fsm)
